"""Submarine Maneuver Decision Aid over 4-dimensional CST objects.

Run with::

    python examples/submarine_mda.py

Maneuvers are regions of the 4-D space (course, speed, depth, time);
goals are constraints over the same space (the paper's second
application realm, after [BVCS93]).  The example finds compatible
maneuver/goal pairs, maneuvers satisfying every high-priority goal
jointly, and the slowest speed achievable inside a feasible region.
"""

from repro import lyric
from repro.workloads import mda


def main() -> None:
    workload = mda.generate(n_goals=6, n_maneuvers=5, seed=7)
    db = workload.db
    print(f"{len(workload.goals)} goals, "
          f"{len(workload.maneuvers)} maneuver envelopes "
          "(4-D: course, speed, depth, time)")

    print("\n[1] Compatible maneuver/goal pairs (nonempty "
          "intersection):")
    compatible = lyric.query(db, mda.COMPATIBLE_QUERY)
    print(f"    {len(compatible)} of "
          f"{len(workload.goals) * len(workload.maneuvers)} pairs")

    print("\n[2] Maneuvers lying wholly within a goal region "
          "(entailment |=):")
    within = lyric.query(db, mda.WITHIN_QUERY)
    for row in within:
        print(f"    {row.values[0]} within {row.values[1]}")
    if not within:
        print("    none - envelopes are larger than most goal bands")

    print("\n[3] Joint feasibility against every priority >= 8 goal:")
    hot_goals = [
        g for g in workload.goals
        if db.attribute_values(g, "priority")[0].value >= 8]
    print(f"    {len(hot_goals)} high-priority goals")
    for maneuver in workload.maneuvers:
        envelope = db.cst_value(maneuver, "envelope")
        region = envelope
        for goal in hot_goals:
            region = region.intersect(db.cst_value(goal, "region"))
        verdict = "feasible" if region.is_satisfiable() else "infeasible"
        print(f"    {maneuver}: {verdict}")

    print("\n[4] Feasible region and slowest speed per compatible "
          "pair:")
    best = lyric.query(db, mda.BEST_SPEED_QUERY)
    for row in list(best)[:5]:
        maneuver, goal, region, speed = row.values
        print(f"    {maneuver} + {goal}: min speed {speed}")
    print(f"    ... {len(best)} pairs total")


if __name__ == "__main__":
    main()

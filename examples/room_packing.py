"""Room packing: the paper's opening design questions, solved with the
constraint engine.

Run with::

    python examples/room_packing.py

"Can we put in a room two desks and a file cabinet such that no two
objects touch each other or the walls?  Can the system give constraints
describing possible interconnections of centers of objects?  What would
be the location of the objects if we want to maximize the size of a
square of available empty space?"  (Section 1.2.)

Object centers become constraint variables; non-overlap of two boxes is
a 4-way disjunction (left / right / below / above), so the joint
placement space is a disjunctive constraint the engine manipulates
directly: satisfiability finds a placement, projection yields the
"interconnection of centers", and branch-wise LP maximizes the free
square.
"""

from fractions import Fraction

from repro import lyric
from repro.constraints import lp
from repro.constraints.atoms import Ge, Le
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.terms import Variable
from repro.model.office import add_file_cabinet, build_office_database

ROOM_W, ROOM_H = 24, 14
CLEARANCE = Fraction(1, 2)  # "not touch": strict gap, kept rational


def catalog_half_extents(db):
    """Half-widths/heights of catalog objects via a LyriC query (the
    database side of the problem)."""
    result = lyric.query(db, """
        SELECT CO, E FROM Office_Object CO WHERE CO.extent[E]
    """)
    out = []
    for row in result:
        box = row.values[1].cst.bounding_box()
        (wlo, whi), (zlo, zhi) = box
        out.append((str(row.values[0]), (whi - wlo) / 2,
                    (zhi - zlo) / 2))
    return out


def non_overlap(cx_a, cy_a, ha, cx_b, cy_b, hb) -> DisjunctiveConstraint:
    """Centers (cx,cy) of two boxes with half-extents ha=(hw,hh),
    hb must be separated in x or in y (with clearance)."""
    (hwa, hha), (hwb, hhb) = ha, hb
    dx = hwa + hwb + CLEARANCE
    dy = hha + hhb + CLEARANCE
    return DisjunctiveConstraint([
        ConjunctiveConstraint.of(Le(cx_a - cx_b, -dx)),   # a left of b
        ConjunctiveConstraint.of(Ge(cx_a - cx_b, dx)),    # a right of b
        ConjunctiveConstraint.of(Le(cy_a - cy_b, -dy)),   # a below b
        ConjunctiveConstraint.of(Ge(cy_a - cy_b, dy)),    # a above b
    ])


def main() -> None:
    db, _ = build_office_database()
    add_file_cabinet(db)
    pieces = catalog_half_extents(db)
    # Two desks and one cabinet: duplicate the desk entry.
    desk = next(p for p in pieces if "desk" in p[0])
    cabinet = next(p for p in pieces if "cabinet" in p[0])
    to_place = [("desk_a", desk[1], desk[2]),
                ("desk_b", desk[1], desk[2]),
                ("cabinet", cabinet[1], cabinet[2])]
    print(f"Placing {[p[0] for p in to_place]} in a "
          f"{ROOM_W} x {ROOM_H} room, clearance {CLEARANCE}")

    centers = {name: (Variable(f"cx_{name}"), Variable(f"cy_{name}"))
               for name, _, _ in to_place}

    inside = ConjunctiveConstraint([
        atom
        for name, hw, hh in to_place
        for atom in (
            Ge(centers[name][0], hw + CLEARANCE),
            Le(centers[name][0], ROOM_W - hw - CLEARANCE),
            Ge(centers[name][1], hh + CLEARANCE),
            Le(centers[name][1], ROOM_H - hh - CLEARANCE),
        )])

    space = DisjunctiveConstraint.of_conjunctive(inside)
    for i, (name_a, hwa, hha) in enumerate(to_place):
        for name_b, hwb, hhb in to_place[i + 1:]:
            space = space.conjoin(non_overlap(
                centers[name_a][0], centers[name_a][1], (hwa, hha),
                centers[name_b][0], centers[name_b][1], (hwb, hhb)))

    print(f"\n[1] Joint placement space: {len(space)} disjuncts "
          f"(4^3 arrangements, pruned to the feasible ones)")
    placement = space.sample_point()
    assert placement is not None, "room too small"
    for name, _, _ in to_place:
        cx, cy = centers[name]
        print(f"    {name} center: "
              f"({placement[cx]}, {placement[cy]})")

    print("\n[2] Interconnection of the two desk centers "
          "(projection; first disjuncts):")
    desk_vars = [centers["desk_a"][0], centers["desk_b"][0]]
    connection = space.project(desk_vars)
    for disjunct in connection.disjuncts[:3]:
        print(f"    {disjunct}")
    print(f"    ... {len(connection)} disjuncts")

    print("\n[3] Largest empty square with that placement:")
    sx, sy, side = (Variable("sx"), Variable("sy"), Variable("s"))
    square_system = ConjunctiveConstraint.of(
        Ge(side, 0), Ge(sx, 0), Ge(sy, 0),
        Le(sx + side, ROOM_W), Le(sy + side, ROOM_H))
    square_space = DisjunctiveConstraint.of_conjunctive(square_system)
    for name, hw, hh in to_place:
        cx = placement[centers[name][0]]
        cy = placement[centers[name][1]]
        # The square [sx,sx+s]x[sy,sy+s] avoids the placed box.
        square_space = square_space.conjoin(DisjunctiveConstraint([
            ConjunctiveConstraint.of(Le(sx + side, cx - hw)),
            ConjunctiveConstraint.of(Ge(sx, cx + hw)),
            ConjunctiveConstraint.of(Le(sy + side, cy - hh)),
            ConjunctiveConstraint.of(Ge(sy, cy + hh)),
        ]))
    best = lp.max_value(side.as_expression(), square_space)
    print(f"    side {best.value} at "
          f"({best.point[sx]}, {best.point[sy]})")


if __name__ == "__main__":
    main()

"""Quickstart: the paper's Figure 1/2 database and worked queries.

Run with::

    python examples/quickstart.py

Builds the office schema and the ``my_desk`` instance exactly as in the
paper, then walks through the queries of Section 4.1 — retrieving
constraint oids, creating new CST objects with projection formulas
(including the implicit schema equalities), the satisfiability and
implication predicates, and the linear-programming operators.
"""

from repro import lyric
from repro.model.office import build_office_database


def main() -> None:
    db, oids = build_office_database()
    print("Loaded the paper's instance:",
          ", ".join(str(o) for o in
                    (oids.my_desk, oids.standard_desk,
                     oids.standard_drawer)))

    print("\n[1] Constraints as logical oids "
          "(SELECT Y FROM Desk X WHERE X.drawer.extent[Y]):")
    result = lyric.query(db, """
        SELECT Y FROM Desk X WHERE X.drawer.extent[Y]
    """)
    print("   ", result.single().values[0])

    print("\n[2] A new CST object: the desk extent in room coordinates"
          " with center (6,4).")
    result = lyric.query(db, """
        SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
        FROM Office_Object CO
        WHERE CO.extent[E] and CO.translation[D]
    """)
    co, extent = result.single().values
    print(f"    {co} -> {extent}")
    print("    (the paper derives ((u,v) | 2 <= u <= 10 and "
          "2 <= v <= 6))")

    print("\n[3] The drawer sweep area, using the implicit interface"
          " equalities p = x1 and q = y1:")
    result = lyric.query(db, """
        SELECT O,
          ((u,v) | D(w,z,x,y,u,v) and DD(w1,z1,x1,y1,u1,v1)
                   and w = u1 and z = v1
                   and DC(p,q) and DE(w1,z1) and L(x,y))
        FROM Object_in_Room O, Desk DSK
        WHERE O.location[L] and O.catalog_object[DSK]
          and DSK.translation[D] and DSK.drawer_center[DC]
          and DSK.drawer.translation[DD] and DSK.drawer.extent[DE]
    """)
    _, sweep = result.single().values
    print(f"    {sweep}")

    print("\n[4] The implication predicate: desks whose drawer line is"
          " centered (C(p,q) |= p = 0):")
    result = lyric.query(db, """
        SELECT DSK FROM Desk DSK
        WHERE DSK.drawer_center[C] and (C(p,q) |= p = 0)
    """)
    print(f"    {len(result)} rows (the standard desk's line is "
          "p = -2)")

    print("\n[5] Linear programming in the SELECT clause:")
    result = lyric.query(db, """
        SELECT MAX(u SUBJECT TO ((u,v) | E and D and x = 6 and y = 4)),
               MIN_POINT(u + v SUBJECT TO
                         ((u,v) | E and D and x = 6 and y = 4))
        FROM Office_Object CO
        WHERE CO.extent[E] and CO.translation[D]
    """)
    rightmost, corner = result.single().values
    print(f"    rightmost room coordinate reached: {rightmost}")
    print(f"    lower-left corner (MIN_POINT of u+v): {corner}")

    print("\n[6] The same query through the Section 5 translation to"
          " flat SQL with constraints:")
    result = lyric.query_translated(db, """
        SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
        FROM Office_Object CO
        WHERE CO.extent[E] and CO.translation[D]
    """)
    print("   ", result.single().values[1])


if __name__ == "__main__":
    main()

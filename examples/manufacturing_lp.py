"""Manufacturing: linear programming generalized to a constraint
database (the paper's third application realm).

Run with::

    python examples/manufacturing_lp.py

Processes are stored constraint systems relating raw-material inputs,
output quantity and cost; orders are plain tuples.  Queries return
constraints ("what is the connection among the required raw
materials?") and LP optima ("the best manufacturing process for a given
set of orders").
"""

from repro import lyric
from repro.workloads import manufacturing


def main() -> None:
    workload = manufacturing.generate(
        n_products=3, processes_per_product=2, n_orders=3, seed=5)
    db = workload.db
    print(f"{len(workload.products)} products, "
          f"{len(workload.processes)} candidate processes, "
          f"{len(workload.orders)} orders")

    print("\n[1] The raw-material connection per (order, process) — a "
          "constraint-valued answer:")
    connections = lyric.query(
        db, manufacturing.MATERIAL_CONNECTION_QUERY)
    for row in list(connections)[:4]:
        print(f"    {row.values[0]} via {row.values[1]}:")
        print(f"        {row.values[2]}")
    print(f"    ... {len(connections)} combinations total")

    print("\n[2] Cheapest way to fill each order (MIN cost SUBJECT "
          "TO recipe):")
    fills = lyric.query(db, manufacturing.CHEAPEST_FILL_QUERY)
    best: dict = {}
    for row in fills:
        order, process, cost = row.values
        key = str(order)
        if key not in best or cost.value < best[key][1].value:
            best[key] = (process, cost)
    for order, (process, cost) in sorted(best.items()):
        print(f"    {order}: {process} at cost {cost}")
    unfillable = len(workload.orders) - len(best)
    if unfillable:
        print(f"    {unfillable} orders exceed every process capacity")

    print("\n[3] Maximum output per process given 500 units of "
          "material r1:")
    outputs = lyric.query(db, manufacturing.MAX_OUTPUT_QUERY)
    for row in list(outputs)[:6]:
        print(f"    {row.values[0]}: up to {row.values[1]} units")

    print("\n[4] Can profit improve by choosing per-order processes? "
          "(price - min cost):")
    for order in workload.orders:
        product = db.attribute_values(order, "product")[0]
        price = db.attribute_values(product, "unit_price")[0].value
        quantity = db.attribute_values(order, "quantity")[0].value
        candidates = [
            (row.values[1], row.values[2].value)
            for row in fills if row.values[0] == order]
        if not candidates:
            print(f"    {order}: not fillable at quantity {quantity}")
            continue
        process, cost = min(candidates, key=lambda pc: pc[1])
        profit = price * quantity - cost
        print(f"    {order}: best process {process}, profit {profit}")


if __name__ == "__main__":
    main()

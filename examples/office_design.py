"""Office design: room layout, clearance and classification queries.

Run with::

    python examples/office_design.py

Builds a generated office (Figure 1 schema, a dozen placed objects),
then answers the designer questions from the paper's introduction:
which placed objects overlap, which desks keep their drawers clear of
the walls, a cut of the room at a given height-line, and a
constraint-parameterized view classifying objects by room region.
"""

from fractions import Fraction

from repro import lyric
from repro.constraints import geometry
from repro.constraints.parser import parse_cst
from repro.workloads import office


def main() -> None:
    workload = office.generate(8, seed=11)
    db = workload.db
    print(f"Generated office with {len(workload.placed)} placed "
          f"objects in a {workload.room_width} x "
          f"{workload.room_height} room")

    print("\n[1] Placed extents (local extent + translation + "
          "location):")
    result = lyric.query(db, office.PLACED_EXTENT_QUERY)
    for row in list(result)[:4]:
        print(f"    {row.values[0]}: {row.values[1]}")
    print(f"    ... {len(result)} objects total")

    print("\n[2] Overlapping pairs (SAT join):")
    overlaps = lyric.query(db, office.OVERLAP_QUERY)
    if overlaps:
        for row in overlaps:
            print(f"    {row.values[0]} overlaps {row.values[1]}")
    else:
        print("    none - the generator places objects on a grid")

    print("\n[3] Desks whose drawer sweep stays strictly inside the "
          "room (entailment):")
    clear = lyric.query(db, f"""
        SELECT DSK
        FROM Object_in_Room O, Desk DSK
        WHERE O.catalog_object[DSK] and O.location[L]
          and DSK.drawer_center[C] and DSK.translation[D]
          and DSK.drawer.extent[DRE] and DSK.drawer.translation[DRD]
          and ((L(x,y) and C(p,q) and DRE(w1,z1)
                and DRD(w1,z1,x1,y1,u1,v1) and D(w,z,x,y,u,v)
                and w = u1 and z = v1)
               |= ((u,v) | 0 < u < {workload.room_width}
                   and 0 < v < {workload.room_height}))
    """)
    print(f"    {len(clear)} of {len(db.extent('Desk'))} desks")

    print("\n[4] Where could one more 4 x 4 desk go? Free space as a "
          "constraint:")
    # The room minus the bounding boxes of placed objects, shrunk by
    # the new desk's half-extent (2 feet): a disjunction is the honest
    # answer; here we report per-object exclusion constraints.
    result = lyric.query(db, office.PLACED_EXTENT_QUERY)
    boxes = [row.values[1].cst for row in result]
    candidate = parse_cst(
        f"((u,v) | 2 <= u <= {workload.room_width - 2} "
        f"and 2 <= v <= {workload.room_height - 2})")
    free_count = 0
    for gx in range(4, workload.room_width - 2, 6):
        for gy in range(4, workload.room_height - 2, 6):
            if not candidate.contains_point(gx, gy):
                continue
            inflated_hit = any(
                box.intersect(geometry.box(
                    box.schema, [(gx - 2, gx + 2), (gy - 2, gy + 2)])
                ).is_satisfiable()
                for box in boxes)
            if not inflated_hit:
                free_count += 1
    print(f"    {free_count} candidate grid positions keep 4 x 4 feet "
          "clear of every placed object")

    print("\n[5] Cut at the line v = 5 (the paper's 'projection of "
          "their cut' query):")
    from repro.constraints.terms import Variable
    u, v = Variable("u"), Variable("v")
    for row in list(lyric.query(db, office.PLACED_EXTENT_QUERY))[:3]:
        placed = row.values[1].cst
        section = geometry.cut(placed, v, Fraction(5), [u])
        status = "crosses" if section.is_satisfiable() else "misses"
        print(f"    {row.values[0]} {status} the v = 5 line: "
              f"{section}")

    print("\n[6] Classifying placed objects by room half (a "
          "constraint-parameterized view):")
    db.add_cst_instance(
        "Region",
        parse_cst(f"((x,y) | 0 <= x <= {workload.room_width // 2} "
                  f"and 0 <= y <= {workload.room_height})"),
        {"region_name": "west"})
    db.add_cst_instance(
        "Region",
        parse_cst(f"((x,y) | {workload.room_width // 2} <= x "
                  f"<= {workload.room_width} "
                  f"and 0 <= y <= {workload.room_height})"),
        {"region_name": "east"})
    created = lyric.view(db, """
        CREATE VIEW ByRegion AS SUBCLASS OF Object_in_Room
        SELECT ByRegion, Y
        FROM Object_in_Room Y, Region ByRegion
        WHERE Y.location[L] and Y.catalog_object[CO]
          and CO.extent[E] and CO.translation[D]
          and (((u,v) | E and D and L(x,y)) |= ByRegion(u,v))
    """)
    for class_name in created.classes:
        members = created.instances[class_name]
        print(f"    {class_name}: {len(members)} objects")


if __name__ == "__main__":
    main()

"""Temporal scheduling: time as the T in CST objects.

Run with::

    python examples/temporal_scheduling.py

Bookings, room hours and per-person availability are 1-D constraint
objects over minutes-of-day; recurring availability is a disjunction of
windows.  Conflicts, fitting and earliest-slot questions are the same
constraint predicates the spatial examples use — the paper's point that
constraints unify spatial and temporal data.
"""

from fractions import Fraction

from repro import lyric
from repro.workloads import temporal


def clock(minutes) -> str:
    total = int(minutes)
    return f"{total // 60:02d}:{total % 60:02d}"


def main() -> None:
    workload = temporal.generate(n_rooms=2, n_bookings=6, n_people=3,
                                 seed=5)
    db = workload.db
    print(f"{len(workload.rooms)} rooms, "
          f"{len(workload.bookings)} bookings, "
          f"{len(workload.people)} people")

    print("\n[1] Booking conflicts (same room, overlapping slots):")
    conflicts = lyric.query(db, temporal.CONFLICT_QUERY)
    seen = set()
    for row in conflicts:
        pair = tuple(sorted((str(row.values[0]), str(row.values[1]))))
        if pair in seen:
            continue
        seen.add(pair)
        print(f"    {pair[0]} <-> {pair[1]}")
    if not seen:
        print("    none")

    print("\n[2] Bookings inside their room's open hours (|=):")
    within = lyric.query(db, temporal.WITHIN_HOURS_QUERY)
    print(f"    {len(within)} of {len(workload.bookings)}")

    print("\n[3] Earliest feasible meeting start per (person, room):")
    earliest = lyric.query(db, temporal.EARLIEST_MEETING_QUERY)
    for row in list(earliest)[:6]:
        person, room, _region, start = row.values
        print(f"    {person} in {room}: {clock(start.value)}")

    print("\n[4] Per-person earliest availability (MIN over a "
          "disjunction of windows):")
    result = lyric.query(db, """
        SELECT P, MIN(t SUBJECT TO ((t) | W(t)))
        FROM Availability P WHERE P.windows[W]
    """)
    for row in result:
        print(f"    {row.values[0]}: {clock(row.values[1].value)}")


if __name__ == "__main__":
    main()

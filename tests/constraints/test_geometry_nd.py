"""Tests for n-dimensional vertex enumeration."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.atoms import Eq, Ge, Le
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.geometry import vertices_2d, vertices_nd
from repro.constraints.terms import variables
from repro.errors import DimensionError
from repro.workloads.random_constraints import random_polytope

x, y, z, w = variables("x y z w")


def cube3():
    return ConjunctiveConstraint.of(
        Ge(x, 0), Le(x, 1), Ge(y, 0), Le(y, 1), Ge(z, 0), Le(z, 1))


class TestKnownShapes:
    def test_unit_cube_has_eight_vertices(self):
        verts = vertices_nd(cube3(), [x, y, z])
        assert len(verts) == 8
        assert (0, 0, 0) in verts
        assert (1, 1, 1) in verts

    def test_simplex(self):
        simplex = ConjunctiveConstraint.of(
            Ge(x, 0), Ge(y, 0), Ge(z, 0), Le(x + y + z, 1))
        verts = vertices_nd(simplex, [x, y, z])
        assert set(verts) == {(0, 0, 0), (1, 0, 0), (0, 1, 0),
                              (0, 0, 1)}

    def test_tesseract(self):
        cube4 = ConjunctiveConstraint(
            [Ge(v, 0) for v in (x, y, z, w)]
            + [Le(v, 1) for v in (x, y, z, w)])
        assert len(vertices_nd(cube4, [x, y, z, w])) == 16

    def test_degenerate_face(self):
        square_on_plane = ConjunctiveConstraint.of(
            Ge(x, 0), Le(x, 1), Ge(y, 0), Le(y, 1), Eq(z, 2))
        verts = vertices_nd(square_on_plane, [x, y, z])
        assert len(verts) == 4
        assert all(v[2] == 2 for v in verts)

    def test_one_dimensional(self):
        segment = ConjunctiveConstraint.of(Ge(x, 3), Le(x, 7))
        assert vertices_nd(segment, [x]) == [(3,), (7,)]

    def test_extra_variable_rejected(self):
        with pytest.raises(DimensionError):
            vertices_nd(cube3(), [x, y])

    def test_empty_schema(self):
        assert vertices_nd(ConjunctiveConstraint.true(), []) == []


class TestConsistencyWith2D:
    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_matches_vertices_2d(self, seed):
        poly = random_polytope(2, 4, seed, variables=[x, y])
        from_2d = set(vertices_2d(poly, [x, y]))
        from_nd = set(vertices_nd(poly, [x, y]))
        assert from_2d == from_nd

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=15, deadline=None)
    def test_vertices_are_members(self, seed):
        poly = random_polytope(3, 4, seed, variables=[x, y, z])
        for vertex in vertices_nd(poly, [x, y, z]):
            assert poly.holds_at(dict(zip([x, y, z], vertex)))

"""Unit tests for CST objects (constraints as first-class objects)."""

from fractions import Fraction

import pytest

from repro.constraints.atoms import Eq, Ge, Le
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.cst_object import CSTObject
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.existential import ExistentialConjunctiveConstraint
from repro.constraints.families import Family
from repro.constraints.terms import variables
from repro.errors import DimensionError

w, z, x, y, u, v = variables("w z x y u v")


def desk_extent() -> CSTObject:
    """The paper's standard desk extent: -4<=w<=4, -2<=z<=2."""
    return CSTObject.from_atoms(
        [w, z], [Ge(w, -4), Le(w, 4), Ge(z, -2), Le(z, 2)])


class TestConstruction:
    def test_dimension(self):
        assert desk_extent().dimension == 2

    def test_schema_names(self):
        assert [v_.name for v_ in desk_extent().schema] == ["w", "z"]

    def test_extra_variables_rejected(self):
        with pytest.raises(DimensionError):
            CSTObject([w], ConjunctiveConstraint.of(Le(w + z, 1)))

    def test_duplicate_schema_rejected(self):
        with pytest.raises(DimensionError):
            CSTObject([w, w], ConjunctiveConstraint.true())

    def test_atom_coerced(self):
        obj = CSTObject([w], Le(w, 1))
        assert obj.family is Family.CONJUNCTIVE

    def test_everything_and_empty(self):
        assert CSTObject.everything([w, z]).is_satisfiable()
        assert not CSTObject.empty([w, z]).is_satisfiable()


class TestPoints:
    def test_contains_point(self):
        ext = desk_extent()
        assert ext.contains_point(0, 0)
        assert ext.contains_point(-4, 2)
        assert not ext.contains_point(5, 0)

    def test_contains_point_tuple_form(self):
        assert desk_extent().contains_point((1, 1))

    def test_wrong_arity(self):
        with pytest.raises(DimensionError):
            desk_extent().contains_point(1)

    def test_sample_point(self):
        point = desk_extent().sample_point()
        assert desk_extent().contains_point(*point)

    def test_empty_sample(self):
        assert CSTObject.empty([w]).sample_point() is None


class TestIdentity:
    def test_alpha_invariant_oid(self):
        a = CSTObject.from_atoms([w, z], [Le(w + z, 1)])
        b = CSTObject.from_atoms([x, y], [Le(x + y, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_canonical_form_identity(self):
        a = CSTObject.from_atoms([w], [Le(w, 1), Le(w, 9)])
        b = CSTObject.from_atoms([w], [Le(2 * w, 2)])
        assert a == b

    def test_different_sets_differ(self):
        a = CSTObject.from_atoms([w], [Le(w, 1)])
        b = CSTObject.from_atoms([w], [Le(w, 2)])
        assert a != b

    def test_oid_text_mentions_schema(self):
        assert "(w,z)" in desk_extent().oid_text().replace(" ", "")


class TestOperations:
    def test_rename_positional(self):
        renamed = desk_extent().rename([u, v])
        assert renamed.contains_point(4, 2)
        assert renamed.schema == (u, v)
        assert renamed == desk_extent()  # same point set, same oid

    def test_rename_arity_check(self):
        with pytest.raises(DimensionError):
            desk_extent().rename([u])

    def test_intersect_shared_names(self):
        a = CSTObject.from_atoms([w, z], [Le(w, 1)])
        b = CSTObject.from_atoms([w, z], [Ge(w, 0)])
        both = a.intersect(b)
        assert both.contains_point(0, 0)
        assert not both.contains_point(2, 0)

    def test_intersect_merges_schemas(self):
        a = CSTObject.from_atoms([w, z], [Le(w, 1)])
        b = CSTObject.from_atoms([z, x], [Ge(x, 0)])
        both = a & b
        assert [s.name for s in both.schema] == ["w", "z", "x"]

    def test_union(self):
        a = CSTObject.from_atoms([w], [Le(w, 0)])
        b = CSTObject.from_atoms([w], [Ge(w, 1)])
        either = a | b
        assert either.contains_point(-1)
        assert either.contains_point(2)
        assert not either.contains_point(Fraction(1, 2))

    def test_conjoin_atoms_extends_schema(self):
        obj = desk_extent().conjoin_atoms([Eq(u, w + 6)])
        assert u in obj.schema

    def test_project_paper_example(self):
        """Figure 2 worked example: extent + translation at (6,4)
        projected on (u,v) equals the 2<=u<=10, 2<=v<=6 box."""
        combined = desk_extent().conjoin_atoms([
            Eq(u, x + w), Eq(v, y + z), Eq(x, 6), Eq(y, 4)])
        room = combined.project([u, v])
        expected = CSTObject.from_atoms(
            [u, v], [Ge(u, 2), Le(u, 10), Ge(v, 2), Le(v, 6)])
        assert room == expected

    def test_entails(self):
        small = CSTObject.from_atoms([w], [Ge(w, 0), Le(w, 1)])
        big = CSTObject.from_atoms([w], [Ge(w, -1), Le(w, 2)])
        assert small.entails(big)
        assert not big.entails(small)

    def test_overlaps(self):
        a = CSTObject.from_atoms([w], [Ge(w, 0), Le(w, 2)])
        b = CSTObject.from_atoms([w], [Ge(w, 1), Le(w, 3)])
        c = CSTObject.from_atoms([w], [Ge(w, 5)])
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_bounding_box(self):
        assert desk_extent().bounding_box() == [(-4, 4), (-2, 2)]

    def test_bounding_box_union(self):
        a = ConjunctiveConstraint.of(Ge(w, 0), Le(w, 1))
        b = ConjunctiveConstraint.of(Ge(w, 5), Le(w, 6))
        obj = CSTObject([w], DisjunctiveConstraint([a, b]))
        assert obj.bounding_box() == [(0, 6)]

    def test_bounding_box_unbounded(self):
        obj = CSTObject.from_atoms([w], [Ge(w, 0)])
        assert obj.bounding_box() == [(0, None)]


class TestFamilies:
    def test_existential_family(self):
        ex = ExistentialConjunctiveConstraint(
            ConjunctiveConstraint.of(Ge(x, 0), Le(w - x, 0)), [x])
        obj = CSTObject([w], ex)
        assert obj.family in (Family.EXISTENTIAL_CONJUNCTIVE,
                              Family.CONJUNCTIVE)

    def test_disjunctive_family(self):
        d = DisjunctiveConstraint([
            ConjunctiveConstraint.of(Le(w, 0)),
            ConjunctiveConstraint.of(Ge(w, 1)),
        ])
        assert CSTObject([w], d).family is Family.DISJUNCTIVE

"""Unit tests for existential conjunctive and disjunctive existential
constraints."""

from fractions import Fraction

import pytest

from repro.constraints.atoms import Eq, Ge, Le, Lt, Ne
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.existential import (
    DisjunctiveExistentialConstraint,
    ExistentialConjunctiveConstraint,
)
from repro.constraints.terms import Variable, variables
from repro.errors import ConstraintFamilyError

x, y, z, w = variables("x y z w")


def conj(*atoms):
    return ConjunctiveConstraint.of(*atoms)


class TestConstruction:
    def test_quantified_restricted_to_occurring(self):
        ex = ExistentialConjunctiveConstraint(conj(Le(x, 1)), [y])
        assert ex.quantified == frozenset()

    def test_free_variables(self):
        ex = ExistentialConjunctiveConstraint(
            conj(Le(x + y, 1)), [y])
        assert ex.free_variables == {x}

    def test_variables_alias(self):
        ex = ExistentialConjunctiveConstraint(conj(Le(x + y, 1)), [y])
        assert ex.variables == {x}

    def test_type_check(self):
        with pytest.raises(TypeError):
            ExistentialConjunctiveConstraint("nope")


class TestFreshen:
    def test_no_clash_returns_self(self):
        ex = ExistentialConjunctiveConstraint(conj(Le(x + y, 1)), [y])
        assert ex.freshen(frozenset({z})) is ex

    def test_clash_renamed(self):
        ex = ExistentialConjunctiveConstraint(conj(Le(x + y, 1)), [y])
        fresh = ex.freshen(frozenset({y}))
        assert y not in fresh.quantified
        assert fresh.free_variables == {x}
        # Semantics unchanged: x <= 1 - q for some q; both satisfiable
        # with x arbitrary.
        assert fresh.is_satisfiable()


class TestConjoin:
    def test_capture_avoidance(self):
        # (exists y. x = y and y <= 0) and (y >= 5) must keep the free
        # y of the right side distinct from the quantified y.
        left = ExistentialConjunctiveConstraint(
            conj(Eq(x, y), Le(y, 0)), [y])
        right = conj(Ge(y, 5))
        combined = left.conjoin(right)
        assert y in combined.free_variables
        assert combined.is_satisfiable()
        # x must still be forced <= 0:
        assert not combined.conjoin(conj(Ge(x, 1))).is_satisfiable()

    def test_conjoin_atom(self):
        ex = ExistentialConjunctiveConstraint(conj(Le(x + y, 1)), [y])
        combined = ex.conjoin(Ge(x, 0))
        assert combined.free_variables == {x}


class TestProjection:
    def test_project_keeps_symbolic(self):
        # Projection does not force elimination when elimination would
        # grow the system; but simple cases are simplified away.
        ex = ExistentialConjunctiveConstraint.of_conjunctive(
            conj(Eq(y, x + 1), Le(y, 3)))
        projected = ex.project([x])
        assert projected.free_variables == {x}
        # equality made the elimination simplifying:
        assert projected.is_quantifier_free()
        assert projected.body.holds_at({x: 2})
        assert not projected.body.holds_at({x: 3})

    def test_project_adds_new_free_variables(self):
        ex = ExistentialConjunctiveConstraint.of_conjunctive(conj(Le(x, 1)))
        projected = ex.project([x, w])
        assert projected.free_variables == {x}

    def test_eliminate_all(self):
        ex = ExistentialConjunctiveConstraint(
            conj(Ge(y, 0), Le(y, 1), Eq(x, 2 * y)), [y])
        flat = ex.eliminate_all()
        assert flat.holds_at({x: 2})
        assert not flat.holds_at({x: 3})

    def test_eliminate_all_with_disequality_raises(self):
        # No equality on y: Fourier-Motzkin would have to eliminate a
        # variable occurring in a disequality, which leaves the family.
        ex = ExistentialConjunctiveConstraint(
            conj(Ge(y, 0), Le(y - x, 0), Ne(y, x)), [y])
        with pytest.raises(ConstraintFamilyError):
            ex.eliminate_all()

    def test_eliminate_all_disequality_removed_by_equality(self):
        # An equality witness substitutes the disequality away instead.
        ex = ExistentialConjunctiveConstraint(
            conj(Ge(y, 0), Le(y, 1), Ne(y, 0), Eq(x, y)), [y])
        flat = ex.eliminate_all()
        assert flat.holds_at({x: 1})
        assert not flat.holds_at({x: 0})

    def test_to_disjunctive_splits_disequality(self):
        ex = ExistentialConjunctiveConstraint(
            conj(Ge(y, 0), Le(y, 2), Ne(y, 1), Eq(x, y)), [y])
        d = ex.to_disjunctive()
        assert d.holds_at({x: 0})
        assert not d.holds_at({x: 1})


class TestSemantics:
    def test_holds_at_free_point(self):
        ex = ExistentialConjunctiveConstraint(
            conj(Ge(y, 0), Le(y, 1), Eq(x, y + 1)), [y])
        assert ex.holds_at({x: Fraction(3, 2)})
        assert not ex.holds_at({x: 3})

    def test_holds_at_missing_binding(self):
        ex = ExistentialConjunctiveConstraint(conj(Le(x, 1)))
        with pytest.raises(KeyError):
            ex.holds_at({})

    def test_sample_point_free_only(self):
        ex = ExistentialConjunctiveConstraint(
            conj(Ge(y, 5), Eq(x, y)), [y])
        point = ex.sample_point()
        assert set(point) == {x}
        assert point[x] >= 5

    def test_entails(self):
        narrow = ExistentialConjunctiveConstraint(
            conj(Ge(y, 0), Le(y, 1), Eq(x, y)), [y])     # x in [0,1]
        wide = ExistentialConjunctiveConstraint(
            conj(Ge(y, -1), Le(y, 2), Eq(x, y)), [y])    # x in [-1,2]
        assert narrow.entails(wide)
        assert not wide.entails(narrow)

    def test_entails_with_shared_names(self):
        # Quantified y on the left must not capture the free x of the
        # right side's witness.
        left = ExistentialConjunctiveConstraint(
            conj(Ge(x, 0), Le(x, 1)))
        right = ExistentialConjunctiveConstraint(
            conj(Eq(x, y), Ge(y, -1), Le(y, 5)), [y])
        assert left.entails(right)


class TestSimplify:
    def test_equality_witness_eliminated(self):
        ex = ExistentialConjunctiveConstraint(
            conj(Eq(y, x + 1), Le(y, 3), Ge(y, 0)), [y])
        simplified = ex.simplify()
        assert simplified.is_quantifier_free()

    def test_growth_causing_witness_kept(self):
        # y bounded below by three atoms and above by three atoms: FM
        # would produce 9 atoms from 6, so y stays symbolic.
        atoms = [
            Ge(y - x, 0), Ge(y - z, 0), Ge(y - w, 0),
            Le(y + x, 10), Le(y + z, 10), Le(y + w, 10),
        ]
        ex = ExistentialConjunctiveConstraint(conj(*atoms), [y])
        simplified = ex.simplify()
        assert y in simplified.quantified

    def test_disequality_witness_kept(self):
        ex = ExistentialConjunctiveConstraint(
            conj(Ne(y, 0), Le(y - x, 0)), [y])
        assert y in ex.simplify().quantified


class TestIdentityAlpha:
    def test_alpha_equivalent_prefixes(self):
        a = ExistentialConjunctiveConstraint(
            conj(Ge(y, 0), Eq(x, y)), [y])
        b = ExistentialConjunctiveConstraint(
            conj(Ge(z, 0), Eq(x, z)), [z])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_bodies_differ(self):
        a = ExistentialConjunctiveConstraint(conj(Ge(y, 0), Eq(x, y)), [y])
        b = ExistentialConjunctiveConstraint(conj(Ge(y, 1), Eq(x, y)), [y])
        assert a != b


class TestDisjunctiveExistential:
    def build(self):
        left = ExistentialConjunctiveConstraint(
            conj(Ge(y, 0), Le(y, 1), Eq(x, y)), [y])    # x in [0,1]
        right = ExistentialConjunctiveConstraint(
            conj(Ge(y, 4), Le(y, 5), Eq(x, y)), [y])    # x in [4,5]
        return DisjunctiveExistentialConstraint([left, right])

    def test_membership(self):
        dex = self.build()
        assert dex.holds_at({x: Fraction(1, 2)})
        assert dex.holds_at({x: 4})
        assert not dex.holds_at({x: 2})

    def test_disjoin(self):
        dex = self.build().disjoin(conj(Eq(x, 100)))
        assert dex.holds_at({x: 100})
        assert len(dex) == 3

    def test_conjoin_distributes(self):
        dex = self.build().conjoin(conj(Le(x, 4)))
        assert dex.holds_at({x: 4})
        assert not dex.holds_at({x: 5})

    def test_project_guard(self):
        dex = self.build()
        with pytest.raises(ConstraintFamilyError):
            dex.project([], allow_quantification=False)
        dex.project([x], allow_quantification=False)  # keeps all free

    def test_entails(self):
        small = self.build()
        big = DisjunctiveExistentialConstraint(
            [ExistentialConjunctiveConstraint.of_conjunctive(
                conj(Ge(x, -1), Le(x, 10)))])
        assert small.entails(big)
        assert not big.entails(small)

    def test_of_lifts_families(self):
        from repro.constraints.disjunctive import DisjunctiveConstraint
        d = DisjunctiveConstraint([conj(Le(x, 1))])
        dex = DisjunctiveExistentialConstraint.of(d)
        assert len(dex) == 1

    def test_sample_point(self):
        point = self.build().sample_point()
        assert point is not None

    def test_false_true(self):
        assert DisjunctiveExistentialConstraint.false() \
            .is_syntactically_false()
        assert DisjunctiveExistentialConstraint.true().is_true()

    def test_to_disjunctive(self):
        flat = self.build().to_disjunctive()
        assert flat.holds_at({x: 1})
        assert not flat.holds_at({x: 3})

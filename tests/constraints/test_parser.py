"""Unit tests for the constraint text parser."""

from fractions import Fraction

import pytest

from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.existential import ExistentialConjunctiveConstraint
from repro.constraints.parser import parse_constraint, parse_cst
from repro.constraints.terms import variables
from repro.errors import ConstraintSyntaxError

x, y = variables("x y")


class TestAtoms:
    def test_simple(self):
        c = parse_constraint("x + 2*y <= 5")
        assert isinstance(c, ConjunctiveConstraint)
        assert c.holds_at({x: 1, y: 2})
        assert not c.holds_at({x: 2, y: 2})

    def test_implicit_multiplication(self):
        assert parse_constraint("2x <= 4") == parse_constraint("x <= 2")

    def test_chained_comparison(self):
        c = parse_constraint("-4 <= x <= 4")
        assert len(c) == 2
        assert c.holds_at({x: 0})
        assert not c.holds_at({x: 5})

    def test_rationals(self):
        c = parse_constraint("x <= 1/2")
        assert c.holds_at({x: Fraction(1, 2)})
        assert not c.holds_at({x: Fraction(51, 100)})

    def test_decimals(self):
        c = parse_constraint("x <= 0.5")
        assert c.holds_at({x: Fraction(1, 2)})

    def test_all_relops(self):
        for text, inside, outside in [
            ("x < 1", 0, 1), ("x > 1", 2, 1), ("x >= 1", 1, 0),
            ("x = 1", 1, 0), ("x == 1", 1, 2), ("x != 1", 0, 1),
            ("x <> 1", 0, 1),
        ]:
            c = parse_constraint(text)
            assert c.holds_at({x: inside}), text
            assert not c.holds_at({x: outside}), text

    def test_parenthesized_arithmetic(self):
        c = parse_constraint("2*(x + y) <= 4")
        assert c == parse_constraint("x + y <= 2")

    def test_unary_minus(self):
        c = parse_constraint("-x <= 1")
        assert c.holds_at({x: 0})
        assert not c.holds_at({x: -2})

    def test_variable_division(self):
        assert parse_constraint("x/2 <= 1") == parse_constraint("x <= 2")

    def test_nonconstant_division_rejected(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("x / y <= 1")


class TestFormulas:
    def test_conjunction(self):
        c = parse_constraint("x >= 0 and x <= 1 and y = x")
        assert isinstance(c, ConjunctiveConstraint)
        assert len(c) == 3

    def test_disjunction(self):
        c = parse_constraint("x < 0 or x > 1")
        assert isinstance(c, DisjunctiveConstraint)
        assert c.holds_at({x: -1})
        assert not c.holds_at({x: Fraction(1, 2)})

    def test_negation(self):
        c = parse_constraint("not (0 <= x <= 1)")
        assert c.holds_at({x: 2})
        assert not c.holds_at({x: 0})

    def test_exists(self):
        c = parse_constraint("exists y . (y >= 0 and x = y + 1)")
        assert isinstance(c, ExistentialConjunctiveConstraint)
        assert c.free_variables == {x}

    def test_true_false_literals(self):
        assert parse_constraint("true").is_true()
        assert parse_constraint("false").is_syntactically_false()

    def test_parenthesized_formula(self):
        c = parse_constraint("(x <= 1 or x >= 3) and x >= 0")
        assert c.holds_at({x: 0})
        assert c.holds_at({x: 4})
        assert not c.holds_at({x: 2})

    def test_precedence_and_over_or(self):
        c = parse_constraint("x <= 0 or x >= 2 and x <= 3")
        assert c.holds_at({x: -1})
        assert c.holds_at({x: 2})
        assert not c.holds_at({x: 4})


class TestCstNotation:
    def test_projection_header(self):
        obj = parse_cst("((x,y) | -4 <= x <= 4 and -2 <= y <= 2)")
        assert obj.dimension == 2
        assert obj.contains_point(0, 0)
        assert not obj.contains_point(5, 0)

    def test_hidden_variables_quantified(self):
        obj = parse_cst("((u) | 0 <= t <= 1 and u = 2*t)")
        assert obj.dimension == 1
        assert obj.contains_point(1)
        assert not obj.contains_point(3)

    def test_paper_my_desk_location(self):
        obj = parse_cst("((x,y) | x = 6 and y = 4)")
        assert obj.contains_point(6, 4)
        assert not obj.contains_point(6, 5)

    def test_disjunctive_cst(self):
        obj = parse_cst("((x) | x < 0 or x > 1)")
        assert obj.contains_point(-1)
        assert not obj.contains_point(Fraction(1, 2))


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("x # 1")

    def test_missing_relop(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("x + 1")

    def test_dangling_tokens(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("x <= 1 1")

    def test_negating_existential_rejected(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("not exists y . (x = y and y <= 1)")

    def test_unclosed_paren(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("(x <= 1")

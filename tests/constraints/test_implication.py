"""Unit tests for entailment (the |= predicate)."""

from fractions import Fraction  # noqa: F401 (kept for interactive use)

from repro.constraints.atoms import Eq, Ge, Le, Lt, Ne
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.implication import (
    atom_redundant_in,
    conjunctive_entails_conjunctive,
    conjunctive_entails_disjunction,
    disjunction_entails_disjunction,
    equivalent,
    negated_atom_branches,
)
from repro.constraints.terms import variables

x, y = variables("x y")


def conj(*atoms):
    return ConjunctiveConstraint.of(*atoms)


class TestNegatedBranches:
    def test_le(self):
        (branch,) = negated_atom_branches(Le(x, 1))
        assert branch.holds_at({x: 2})
        assert not branch.holds_at({x: 1})

    def test_eq_splits(self):
        branches = negated_atom_branches(Eq(x, 1))
        assert len(branches) == 2

    def test_ne(self):
        (branch,) = negated_atom_branches(Ne(x, 1))
        assert branch == Eq(x, 1)


class TestConjunctiveEntailment:
    def test_interval_containment(self):
        small = conj(Ge(x, 1), Le(x, 2))
        big = conj(Ge(x, 0), Le(x, 3))
        assert conjunctive_entails_conjunctive(small, big)
        assert not conjunctive_entails_conjunctive(big, small)

    def test_self_entailment(self):
        c = conj(Ge(x, 0), Le(x + y, 1))
        assert conjunctive_entails_conjunctive(c, c)

    def test_false_entails_everything(self):
        assert conjunctive_entails_conjunctive(
            ConjunctiveConstraint.false(), conj(Le(x, -99)))

    def test_everything_entails_true(self):
        assert conjunctive_entails_conjunctive(
            conj(Le(x, 0)), ConjunctiveConstraint.true())

    def test_equality_to_inequalities(self):
        assert conjunctive_entails_conjunctive(
            conj(Eq(x, 1)), conj(Ge(x, 1), Le(x, 1)))

    def test_inequalities_to_equality(self):
        assert conjunctive_entails_conjunctive(
            conj(Ge(x, 1), Le(x, 1)), conj(Eq(x, 1)))

    def test_strict_entails_nonstrict(self):
        assert conjunctive_entails_conjunctive(
            conj(Lt(x, 1)), conj(Le(x, 1)))

    def test_nonstrict_does_not_entail_strict(self):
        assert not conjunctive_entails_conjunctive(
            conj(Le(x, 1)), conj(Lt(x, 1)))

    def test_implied_disequality(self):
        assert conjunctive_entails_conjunctive(
            conj(Ge(x, 2)), conj(Ne(x, 0)))

    def test_unimplied_disequality(self):
        assert not conjunctive_entails_conjunctive(
            conj(Ge(x, 0)), conj(Ne(x, 1)))

    def test_linear_combination(self):
        # x >= 1 and y >= 1 implies x + y >= 2.
        assert conjunctive_entails_conjunctive(
            conj(Ge(x, 1), Ge(y, 1)), conj(Ge(x + y, 2)))

    def test_paper_drawer_center_example(self):
        """Section 4.1: C(p,q) |= p = 0 for a drawer whose center line is
        p = -2 is false; for one pinned at p = 0 it is true."""
        p, q = variables("p q")
        my_desk_center = conj(Eq(p, -2), Ge(q, -2), Le(q, 0))
        centered = conj(Eq(p, 0), Ge(q, -2), Le(q, 0))
        middle = conj(Eq(p, 0))
        assert not conjunctive_entails_conjunctive(my_desk_center, middle)
        assert conjunctive_entails_conjunctive(centered, middle)


class TestDisjunctionEntailment:
    def test_split_interval(self):
        # 0<=x<=2  |=  (0<=x<=1 or 1<=x<=2)
        whole = conj(Ge(x, 0), Le(x, 2))
        left = conj(Ge(x, 0), Le(x, 1))
        right = conj(Ge(x, 1), Le(x, 2))
        assert conjunctive_entails_disjunction(whole, [left, right])

    def test_gap_not_covered(self):
        whole = conj(Ge(x, 0), Le(x, 2))
        left = conj(Ge(x, 0), Le(x, 1))
        right = conj(Ge(2 * x, 3), Le(x, 2))  # gap (1, 3/2) uncovered
        assert not conjunctive_entails_disjunction(whole, [left, right])

    def test_single_disjunct_fast_path(self):
        whole = conj(Ge(x, 0), Le(x, 1))
        assert conjunctive_entails_disjunction(
            whole, [conj(Ge(x, -1), Le(x, 2))])

    def test_empty_disjunction(self):
        assert not conjunctive_entails_disjunction(conj(Ge(x, 0)), [])
        assert conjunctive_entails_disjunction(
            ConjunctiveConstraint.false(), [])

    def test_true_disjunct_covers(self):
        assert conjunctive_entails_disjunction(
            conj(Ge(x, 0)), [ConjunctiveConstraint.true()])

    def test_two_dimensional_cover(self):
        # Unit square covered by the two triangles split on the diagonal.
        square = conj(Ge(x, 0), Le(x, 1), Ge(y, 0), Le(y, 1))
        lower = square.conjoin(Le(y - x, 0))
        upper = square.conjoin(Ge(y - x, 0))
        assert conjunctive_entails_disjunction(square, [lower, upper])

    def test_disjunction_entails_disjunction(self):
        d1 = [conj(Ge(x, 0), Le(x, 1)), conj(Ge(x, 2), Le(x, 3))]
        d2 = [conj(Ge(x, 0), Le(x, 3))]
        assert disjunction_entails_disjunction(d1, d2)
        assert not disjunction_entails_disjunction(d2, d1)


class TestHelpers:
    def test_equivalent(self):
        assert equivalent(conj(Eq(2 * x, 2)), conj(Eq(x, 1)))
        assert not equivalent(conj(Le(x, 1)), conj(Lt(x, 1)))

    def test_atom_redundant_in(self):
        context = conj(Ge(x, 1))
        assert atom_redundant_in(Ge(x, 0), context)
        assert not atom_redundant_in(Ge(x, 2), context)

"""Property-based tests (hypothesis) for the constraint engine.

These pin down the semantic invariants everything else relies on:
normalization preserves satisfaction, sampled points are members,
projection is sound and complete on rational witnesses, canonical forms
preserve meaning, entailment is a preorder compatible with conjunction.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.canonical import canonical_conjunctive, canonicalize
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.implication import (
    conjunctive_entails_conjunctive,
    negated_atom_branches,
)
from repro.constraints.projection import eliminate_variable
from repro.constraints.satisfiability import sample_point
from repro.constraints.terms import LinearExpression, Variable

VARS = [Variable(name) for name in ("x", "y", "z")]

rationals = st.fractions(
    min_value=Fraction(-50), max_value=Fraction(50),
    max_denominator=8)

small_ints = st.integers(min_value=-6, max_value=6)


@st.composite
def expressions(draw):
    coeffs = {var: Fraction(draw(small_ints)) for var in VARS
              if draw(st.booleans())}
    constant = Fraction(draw(small_ints))
    return LinearExpression(coeffs, constant)


@st.composite
def atoms(draw, relops=(Relop.LE, Relop.LT, Relop.EQ, Relop.GE,
                        Relop.GT, Relop.NE)):
    expr = draw(expressions())
    relop = draw(st.sampled_from(relops))
    bound = Fraction(draw(small_ints))
    return LinearConstraint.build(expr, relop, bound)


@st.composite
def conjunctions(draw, max_atoms=5, relops=(Relop.LE, Relop.EQ)):
    n = draw(st.integers(min_value=0, max_value=max_atoms))
    return ConjunctiveConstraint([draw(atoms(relops=relops))
                                  for _ in range(n)])


@st.composite
def points(draw):
    return {var: draw(rationals) for var in VARS}


class TestExpressionLaws:
    @given(expressions(), expressions(), points())
    def test_addition_pointwise(self, a, b, p):
        assert (a + b).evaluate(p) == a.evaluate(p) + b.evaluate(p)

    @given(expressions(), small_ints, points())
    def test_scaling_pointwise(self, a, k, p):
        assert (a * k).evaluate(p) == a.evaluate(p) * k

    @given(expressions(), points())
    def test_negation_pointwise(self, a, p):
        assert (-a).evaluate(p) == -a.evaluate(p)

    @given(expressions(), expressions(), points())
    def test_substitution_pointwise(self, a, b, p):
        x = VARS[0]
        substituted = a.substitute({x: b})
        shifted = dict(p)
        shifted[x] = b.evaluate(p)
        assert substituted.evaluate(p) == a.evaluate(shifted)

    @given(expressions())
    def test_structural_hash_consistency(self, a):
        clone = LinearExpression(a.coefficients, a.constant_term)
        assert a.structurally_equal(clone)
        assert hash(a) == hash(clone)


class TestAtomLaws:
    @given(atoms(), points())
    def test_normalization_preserves_satisfaction(self, atom, p):
        # Rebuilding from the normalized parts yields the same truth.
        rebuilt = LinearConstraint.build(
            atom.expression, atom.relop, atom.bound)
        assert atom.holds_at(p) == rebuilt.holds_at(p)

    @given(atoms(), points())
    def test_negation_complements(self, atom, p):
        assert atom.holds_at(p) != atom.negate().holds_at(p)

    @given(atoms(), points())
    def test_negated_branches_cover_complement(self, atom, p):
        branches = negated_atom_branches(atom)
        assert (not atom.holds_at(p)) \
            == any(b.holds_at(p) for b in branches)

    @given(atoms(), small_ints, points())
    def test_scaling_invariance(self, atom, k, p):
        if k <= 0:
            return
        scaled = LinearConstraint.build(
            atom.expression * k, atom.relop, atom.bound * k)
        assert scaled == atom
        assert scaled.holds_at(p) == atom.holds_at(p)

    @given(atoms())
    def test_double_negation_identity(self, atom):
        assert atom.negate().negate() == atom


class TestSatisfiability:
    @given(conjunctions(relops=(Relop.LE, Relop.LT, Relop.EQ,
                                Relop.NE)))
    @settings(max_examples=40, deadline=None)
    def test_sample_point_is_member(self, conj):
        point = sample_point(conj)
        if point is not None:
            assert conj.holds_at(point)

    @given(conjunctions(), points())
    @settings(max_examples=40, deadline=None)
    def test_member_point_implies_satisfiable(self, conj, p):
        if conj.holds_at(p):
            assert conj.is_satisfiable()

    @given(conjunctions())
    @settings(max_examples=30, deadline=None)
    def test_conjunction_with_false_unsat(self, conj):
        assert not conj.conjoin(
            ConjunctiveConstraint.false()).is_satisfiable()


class TestProjection:
    @given(conjunctions(), points())
    @settings(max_examples=40, deadline=None)
    def test_soundness(self, conj, p):
        """Membership is preserved under elimination: if p satisfies
        the conjunction, its restriction satisfies the projection."""
        x = VARS[0]
        if conj.holds_at(p):
            projected = eliminate_variable(conj, x)
            assert projected.holds_at(p)

    @given(conjunctions())
    @settings(max_examples=40, deadline=None)
    def test_completeness_on_witness(self, conj):
        """Points of the projection extend to full witnesses: check via
        satisfiability of the projection exactly when the original is
        satisfiable (x is unconstrained outside conj)."""
        x = VARS[0]
        projected = eliminate_variable(conj, x)
        assert projected.is_satisfiable() == conj.is_satisfiable()


class TestCanonical:
    @given(conjunctions(), points())
    @settings(max_examples=40, deadline=None)
    def test_canonical_preserves_membership(self, conj, p):
        canonical = canonical_conjunctive(conj)
        assert conj.holds_at(p) == canonical.holds_at(p)

    @given(conjunctions())
    @settings(max_examples=40, deadline=None)
    def test_canonical_never_grows(self, conj):
        assert len(canonical_conjunctive(conj)) <= len(conj)

    @given(conjunctions())
    @settings(max_examples=30, deadline=None)
    def test_canonical_idempotent(self, conj):
        once = canonical_conjunctive(conj)
        twice = canonical_conjunctive(once)
        assert once == twice


class TestEntailment:
    @given(conjunctions())
    @settings(max_examples=30, deadline=None)
    def test_reflexive(self, conj):
        assert conjunctive_entails_conjunctive(conj, conj)

    @given(conjunctions(), conjunctions())
    @settings(max_examples=30, deadline=None)
    def test_conjunction_strengthens(self, a, b):
        assert conjunctive_entails_conjunctive(a.conjoin(b), a)
        assert conjunctive_entails_conjunctive(a.conjoin(b), b)

    @given(conjunctions(), conjunctions(), points())
    @settings(max_examples=40, deadline=None)
    def test_entailment_respects_points(self, a, b, p):
        if conjunctive_entails_conjunctive(a, b) and a.holds_at(p):
            assert b.holds_at(p)

    @given(conjunctions(), conjunctions())
    @settings(max_examples=20, deadline=None)
    def test_canonicalization_invariant(self, a, b):
        direct = conjunctive_entails_conjunctive(a, b)
        canonical = conjunctive_entails_conjunctive(
            canonical_conjunctive(a), canonical_conjunctive(b))
        assert direct == canonical


class TestDisjunctive:
    @given(st.lists(conjunctions(max_atoms=3), max_size=3), points())
    @settings(max_examples=40, deadline=None)
    def test_membership_is_any(self, parts, p):
        d = DisjunctiveConstraint(parts)
        expected = any(c.holds_at(p) for c in d.disjuncts)
        assert d.holds_at(p) == expected

    @given(st.lists(conjunctions(max_atoms=2), max_size=2), points())
    @settings(max_examples=30, deadline=None)
    def test_negation_complements(self, parts, p):
        d = DisjunctiveConstraint(parts)
        assert d.holds_at(p) != d.negate().holds_at(p)

    @given(st.lists(conjunctions(max_atoms=3), max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_canonicalize_preserves_satisfiability(self, parts):
        d = DisjunctiveConstraint(parts)
        assert canonicalize(d).is_satisfiable() == d.is_satisfiable()


class TestParserRoundtrip:
    @given(conjunctions(relops=(Relop.LE, Relop.LT, Relop.EQ,
                                Relop.NE)))
    @settings(max_examples=50, deadline=None)
    def test_str_reparses_to_equal(self, conj):
        from repro.constraints.parser import parse_constraint
        text = str(conj)
        reparsed = parse_constraint(text.lower())
        if conj.is_true():
            assert reparsed.is_true()
        elif conj.is_syntactically_false():
            assert reparsed.is_syntactically_false()
        else:
            assert reparsed == conj

"""Unit tests for the MAX/MIN SUBJECT TO operators."""

from fractions import Fraction

import pytest

from repro.constraints.atoms import Eq, Ge, Le, Lt, Ne
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.existential import ExistentialConjunctiveConstraint
from repro.constraints.lp import max_value, maximize, min_value, minimize
from repro.constraints.terms import variables
from repro.errors import ConstraintError, InfeasibleError, UnboundedError

x, y = variables("x y")


def conj(*atoms):
    return ConjunctiveConstraint.of(*atoms)


class TestMaxMin:
    def test_max(self):
        result = max_value(x + y, conj(Le(x, 2), Le(y, 3)))
        assert result.value == 5
        assert result.attained

    def test_min(self):
        result = min_value(x, conj(Ge(x, -7)))
        assert result.value == -7

    def test_max_point(self):
        result = max_value(x + y, conj(Le(x, 2), Le(y, 3)))
        assert result.point_on([x, y]) == {x: 2, y: 3}

    def test_infeasible(self):
        with pytest.raises(InfeasibleError):
            max_value(x, conj(Le(x, 0), Ge(x, 1)))

    def test_unbounded(self):
        with pytest.raises(UnboundedError):
            max_value(x, conj(Ge(x, 0)))

    def test_min_unbounded(self):
        with pytest.raises(UnboundedError):
            min_value(x, conj(Le(x, 0)))

    def test_fractional(self):
        result = max_value(x + y, conj(Le(2 * x + y, 2), Le(x + 2 * y, 2)))
        assert result.value == Fraction(4, 3)


class TestStrictness:
    def test_supremum_not_attained(self):
        result = max_value(x, conj(Lt(x, 1)))
        assert result.value == 1
        assert not result.attained

    def test_strict_elsewhere_attained(self):
        result = max_value(x, conj(Le(x, 1), Lt(y, 1)))
        assert result.value == 1
        assert result.attained
        assert result.point[y] < 1

    def test_empty_open_region(self):
        with pytest.raises(InfeasibleError):
            max_value(x, conj(Lt(x, 0), Ge(x, 0)))


class TestExistentialSystems:
    def test_quantified_witness_participates(self):
        # max x s.t. exists y: x = y, y <= 4
        ex = ExistentialConjunctiveConstraint(
            conj(Eq(x, y), Le(y, 4)), [y])
        result = max_value(x, ex)
        assert result.value == 4

    def test_atom_system(self):
        result = max_value(x, Le(x, 9))
        assert result.value == 9

    def test_bad_system_type(self):
        with pytest.raises(ConstraintError):
            max_value(x, "not a system")

    def test_disequality_rejected(self):
        with pytest.raises(ConstraintError):
            max_value(x, conj(Le(x, 1), Ne(x, 0)))


class TestRawSolvers:
    def test_maximize_status(self):
        assert maximize(x, conj(Le(x, 3))).value == 3

    def test_minimize_status(self):
        assert minimize(x, conj(Ge(x, 3))).value == 3

    def test_infeasible_status(self):
        assert maximize(x, conj(Le(x, 0), Ge(x, 1))).is_infeasible


class TestScipyBackend:
    scipy = pytest.importorskip("scipy")

    def test_matches_exact_on_integral_problem(self):
        exact = max_value(x + y, conj(Le(x, 2), Le(y, 3)))
        approx = max_value(x + y, conj(Le(x, 2), Le(y, 3)),
                           backend="scipy")
        assert float(approx.value) == pytest.approx(float(exact.value))

    def test_infeasible(self):
        with pytest.raises(InfeasibleError):
            max_value(x, conj(Le(x, 0), Ge(x, 1)), backend="scipy")

    def test_unbounded(self):
        with pytest.raises(UnboundedError):
            max_value(x, conj(Ge(x, 0)), backend="scipy")

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            max_value(x, conj(Le(x, 1)), backend="magic")

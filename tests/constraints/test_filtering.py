"""Unit tests for bounding-box prefiltering (filter-and-refine)."""

from fractions import Fraction

import pytest

from repro.constraints.atoms import Ge, Le
from repro.constraints.cst_object import CSTObject
from repro.constraints.filtering import (
    BoxIndex,
    boxes_overlap,
    interval_hull,
    overlap_join,
)
from repro.constraints.geometry import box
from repro.constraints.terms import variables
from repro.errors import DimensionError

x, y = variables("x y")


def unit_at(cx, cy):
    return box([x, y], [(cx, cx + 1), (cy, cy + 1)])


class TestBoxes:
    def test_hull(self):
        tri = CSTObject.from_atoms(
            [x, y], [Ge(x, 0), Ge(y, 0), Le(x + y, 2)])
        assert interval_hull(tri) == [(0, 2), (0, 2)]

    def test_overlap_test(self):
        assert boxes_overlap([(0, 2), (0, 2)], [(1, 3), (1, 3)])
        assert not boxes_overlap([(0, 1), (0, 1)], [(2, 3), (0, 1)])
        assert boxes_overlap([(0, 1), (0, 1)], [(1, 2), (1, 2)])  # touch

    def test_unbounded_sides_pass(self):
        assert boxes_overlap([(None, None)], [(5, 6)])
        assert boxes_overlap([(0, None)], [(100, 200)])
        assert not boxes_overlap([(None, 0)], [(1, 2)])

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            boxes_overlap([(0, 1)], [(0, 1), (0, 1)])


class TestBoxIndex:
    def test_candidates_superset_of_overlaps(self):
        index = BoxIndex(2)
        index.extend((i, unit_at(2 * i, 0)) for i in range(5))
        probe = unit_at(Fraction(1, 2), 0)
        candidates = set(index.candidates(probe))
        overlapping = set(index.overlapping(probe))
        assert overlapping <= candidates
        assert 0 in overlapping

    def test_filter_prunes_far_objects(self):
        index = BoxIndex(2)
        index.extend((i, unit_at(10 * i, 10 * i)) for i in range(6))
        probe = unit_at(0, 0)
        assert index.candidates(probe) == [0]

    def test_filter_is_conservative_for_diagonal(self):
        """Boxes overlap but the convex objects do not: the candidate
        survives the filter and is removed by the refine step."""
        index = BoxIndex(2)
        lower = CSTObject.from_atoms(
            [x, y], [Ge(x, 0), Ge(y, 0), Le(x + y, 1)])
        upper = CSTObject.from_atoms(
            [x, y], [Le(x, 2), Le(y, 2), Ge(x + y, 3)])
        index.insert("lower", lower)
        assert index.candidates(upper) == ["lower"]
        assert index.overlapping(upper) == []

    def test_dimension_checked(self):
        index = BoxIndex(2)
        with pytest.raises(DimensionError):
            index.insert("bad", box([x], [(0, 1)]))

    def test_len(self):
        index = BoxIndex(2)
        index.insert(1, unit_at(0, 0))
        assert len(index) == 1


class TestOverlapJoin:
    def items(self):
        return [(i, unit_at(3 * (i % 3), 3 * (i // 3)))
                for i in range(6)]

    def test_same_matches_with_and_without_filter(self):
        items = self.items()
        with_filter, stats_f = overlap_join(items, prefilter=True)
        without, stats_n = overlap_join(items, prefilter=False)
        assert sorted(with_filter) == sorted(without)

    def test_filter_reduces_exact_tests(self):
        items = self.items()
        _, stats_f = overlap_join(items, prefilter=True)
        _, stats_n = overlap_join(items, prefilter=False)
        assert stats_f.exact_tests < stats_n.exact_tests
        assert stats_f.pairs_considered == stats_n.pairs_considered

    def test_dense_cluster_all_match(self):
        items = [(i, unit_at(Fraction(i, 10), 0)) for i in range(4)]
        matches, stats = overlap_join(items)
        assert stats.matches == 6  # all C(4,2) pairs overlap

"""Unit tests for canonical forms and the alpha-invariant identity key."""

from repro.constraints.atoms import Eq, Ge, Le, Lt, Ne
from repro.constraints.canonical import (
    canonical_conjunctive,
    canonical_disjunctive,
    canonical_dex,
    canonical_existential,
    canonical_key,
    canonicalize,
)
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.existential import (
    DisjunctiveExistentialConstraint,
    ExistentialConjunctiveConstraint,
)
from repro.constraints.terms import variables

import pytest

x, y, z = variables("x y z")


def conj(*atoms):
    return ConjunctiveConstraint.of(*atoms)


class TestConjunctiveCanonical:
    def test_unsatisfiable_collapses(self):
        c = conj(Le(x, 0), Ge(x, 1))
        assert canonical_conjunctive(c).is_syntactically_false()

    def test_redundant_atom_removed(self):
        c = conj(Le(x, 1), Le(x, 5))
        assert canonical_conjunctive(c) == conj(Le(x, 1))

    def test_linear_combination_redundancy(self):
        # x <= 1 and y <= 1 imply x + y <= 2.
        c = conj(Le(x, 1), Le(y, 1), Le(x + y, 2))
        assert canonical_conjunctive(c) == conj(Le(x, 1), Le(y, 1))

    def test_no_redundancy_pass(self):
        c = conj(Le(x, 1), Le(x, 5))
        assert len(canonical_conjunctive(c, remove_redundant=False)) == 2

    def test_true_stays(self):
        assert canonical_conjunctive(ConjunctiveConstraint.true()).is_true()

    def test_equality_pair_kept_when_not_redundant(self):
        c = conj(Eq(x, 1), Le(y, x))
        result = canonical_conjunctive(c)
        assert result.is_satisfiable()
        assert result.holds_at({x: 1, y: 0})

    def test_strict_over_nonstrict(self):
        c = conj(Lt(x, 1), Le(x, 1))
        assert canonical_conjunctive(c) == conj(Lt(x, 1))


class TestDisjunctiveCanonical:
    def test_inconsistent_disjunct_deleted(self):
        d = DisjunctiveConstraint([
            conj(Le(x, 0), Ge(x, 1)),       # empty
            conj(Ge(x, 0), Le(x, 1)),
        ])
        assert len(canonical_disjunctive(d)) == 1

    def test_duplicates_after_canonicalization_merge(self):
        d = DisjunctiveConstraint([
            conj(Le(x, 1), Le(x, 5)),
            conj(Le(x, 1)),
        ])
        assert len(canonical_disjunctive(d)) == 1

    def test_redundant_disjuncts_not_removed(self):
        # [0,1] is contained in [0,2] but stays: disjunct-redundancy
        # detection is co-NP-complete and deliberately skipped.
        d = DisjunctiveConstraint([
            conj(Ge(x, 0), Le(x, 1)),
            conj(Ge(x, 0), Le(x, 2)),
        ])
        assert len(canonical_disjunctive(d)) == 2


class TestExistentialCanonical:
    def test_simplifies_and_canonicalizes(self):
        ex = ExistentialConjunctiveConstraint(
            conj(Eq(y, x), Le(y, 1), Le(x, 5)), [y])
        result = canonical_existential(ex)
        assert result.is_quantifier_free()
        assert result.body == conj(Le(x, 1))

    def test_dex(self):
        dex = DisjunctiveExistentialConstraint([
            ExistentialConjunctiveConstraint(
                conj(Le(x, 0), Ge(x, 1))),  # empty disjunct
            ExistentialConjunctiveConstraint(conj(Le(x, 1))),
        ])
        assert len(canonical_dex(dex)) == 1


class TestCanonicalize:
    def test_dispatch(self):
        assert canonicalize(conj(Le(x, 1))) == conj(Le(x, 1))

    def test_lowering_single_disjunct(self):
        # Canonicalization lowers a one-disjunct disjunction to its
        # conjunction so equal point sets share a logical oid.
        result = canonicalize(DisjunctiveConstraint([conj(Le(x, 1))]))
        assert isinstance(result, ConjunctiveConstraint)

    def test_genuine_disjunction_stays(self):
        result = canonicalize(DisjunctiveConstraint(
            [conj(Le(x, 0)), conj(Ge(x, 1))]))
        assert isinstance(result, DisjunctiveConstraint)

    def test_rejects_non_constraints(self):
        with pytest.raises(TypeError):
            canonicalize(42)


class TestCanonicalKey:
    def test_alpha_invariance(self):
        a = conj(Ge(x, 0), Le(x + y, 1))
        b = conj(Ge(z, 0), Le(z + y, 1))
        assert canonical_key(a, [x, y]) == canonical_key(b, [z, y])

    def test_semantic_normalization(self):
        a = conj(Le(2 * x, 2))
        b = conj(Le(x, 1), Le(x, 7))
        assert canonical_key(a, [x]) == canonical_key(b, [x])

    def test_different_regions_differ(self):
        assert canonical_key(conj(Le(x, 1)), [x]) \
            != canonical_key(conj(Le(x, 2)), [x])

    def test_schema_order_matters(self):
        # ((x,y) | x <= 0) and ((y,x) | x <= 0) denote different point
        # sets (the constrained dimension is the first vs the second).
        a = conj(Le(x, 0))
        assert canonical_key(a, [x, y]) != canonical_key(a, [y, x])

    def test_existential_key(self):
        a = ExistentialConjunctiveConstraint(
            conj(Ge(y, 0), Le(y - x, 0)), [y])
        b = ExistentialConjunctiveConstraint(
            conj(Ge(z, 0), Le(z - x, 0)), [z])
        assert canonical_key(a, [x]) == canonical_key(b, [x])

"""Tests for Allen's interval relations over 1-D CST objects."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.allen import (
    AllenRelation,
    holds,
    interval_of,
    normalize_intervals,
    relation,
)
from repro.constraints.atoms import Ge, Le
from repro.constraints.cst_object import CSTObject
from repro.constraints.parser import parse_cst
from repro.constraints.terms import variables
from repro.errors import ConstraintError, DimensionError

t, = variables("t")


def interval(lo, hi) -> CSTObject:
    return CSTObject.from_atoms([t], [Ge(t, lo), Le(t, hi)])


class TestIntervalOf:
    def test_basic(self):
        assert interval_of(interval(1, 4)) == (1, 4)

    def test_point_interval(self):
        assert interval_of(interval(2, 2)) == (2, 2)

    def test_empty_rejected(self):
        with pytest.raises(ConstraintError):
            interval_of(interval(3, 1))

    def test_unbounded_rejected(self):
        unbounded = CSTObject.from_atoms([t], [Ge(t, 0)])
        with pytest.raises(ConstraintError):
            interval_of(unbounded)

    def test_dimension_checked(self):
        u, v = variables("u v")
        square = CSTObject.from_atoms([u, v], [Ge(u, 0), Le(v, 1)])
        with pytest.raises(DimensionError):
            interval_of(square)

    def test_gapped_union_rejected(self):
        gapped = parse_cst("((t) | 0 <= t <= 1 or 3 <= t <= 4)")
        with pytest.raises(ConstraintError):
            interval_of(gapped)


class TestNormalize:
    def test_merges_overlapping(self):
        union = parse_cst("((t) | 0 <= t <= 2 or 1 <= t <= 5)")
        assert normalize_intervals(union) == [(0, 5)]

    def test_merges_touching(self):
        union = parse_cst("((t) | 0 <= t <= 2 or 2 <= t <= 4)")
        assert normalize_intervals(union) == [(0, 4)]

    def test_keeps_gaps(self):
        union = parse_cst("((t) | 0 <= t <= 1 or 3 <= t <= 4)")
        assert normalize_intervals(union) == [(0, 1), (3, 4)]

    def test_sorted_output(self):
        union = parse_cst("((t) | 5 <= t <= 6 or 0 <= t <= 1)")
        assert normalize_intervals(union) == [(0, 1), (5, 6)]

    def test_drops_empty_disjuncts(self):
        union = parse_cst(
            "((t) | (0 <= t <= 1) or (t <= 2 and t >= 3))")
        assert normalize_intervals(union) == [(0, 1)]


class TestRelations:
    CASES = [
        ((0, 1), (2, 3), AllenRelation.BEFORE),
        ((2, 3), (0, 1), AllenRelation.AFTER),
        ((0, 2), (2, 4), AllenRelation.MEETS),
        ((2, 4), (0, 2), AllenRelation.MET_BY),
        ((0, 3), (2, 5), AllenRelation.OVERLAPS),
        ((2, 5), (0, 3), AllenRelation.OVERLAPPED_BY),
        ((0, 2), (0, 5), AllenRelation.STARTS),
        ((0, 5), (0, 2), AllenRelation.STARTED_BY),
        ((2, 3), (0, 5), AllenRelation.DURING),
        ((0, 5), (2, 3), AllenRelation.CONTAINS),
        ((3, 5), (0, 5), AllenRelation.FINISHES),
        ((0, 5), (3, 5), AllenRelation.FINISHED_BY),
        ((1, 4), (1, 4), AllenRelation.EQUAL),
    ]

    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_all_thirteen(self, a, b, expected):
        assert relation(interval(*a), interval(*b)) is expected

    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_inverse_symmetry(self, a, b, expected):
        assert relation(interval(*b), interval(*a)) \
            is expected.inverse

    def test_holds(self):
        assert holds(interval(0, 1), interval(2, 3),
                     AllenRelation.BEFORE)
        assert not holds(interval(0, 1), interval(2, 3),
                         AllenRelation.MEETS)

    def test_inverse_is_involution(self):
        for rel in AllenRelation:
            assert rel.inverse.inverse is rel


class TestAlgebraProperties:
    bounds = st.tuples(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=1, max_value=10))

    @given(bounds, bounds)
    @settings(max_examples=60, deadline=None)
    def test_exactly_one_relation(self, a, b):
        """The thirteen relations partition all interval pairs: exactly
        one holds."""
        ia = interval(a[0], a[0] + a[1])
        ib = interval(b[0], b[0] + b[1])
        matching = [rel for rel in AllenRelation if holds(ia, ib, rel)]
        assert len(matching) == 1

    @given(bounds, bounds)
    @settings(max_examples=60, deadline=None)
    def test_inverse_law(self, a, b):
        ia = interval(a[0], a[0] + a[1])
        ib = interval(b[0], b[0] + b[1])
        assert relation(ia, ib).inverse is relation(ib, ia)

    @given(bounds, bounds)
    @settings(max_examples=40, deadline=None)
    def test_consistency_with_overlap(self, a, b):
        """Allen 'disjoint' relations agree with the constraint-level
        overlap test (closed intervals: meets touch counts as
        overlap)."""
        ia = interval(a[0], a[0] + a[1])
        ib = interval(b[0], b[0] + b[1])
        rel = relation(ia, ib)
        disjoint = rel in (AllenRelation.BEFORE, AllenRelation.AFTER)
        assert ia.overlaps(ib) == (not disjoint)


class TestSchedulingIntegration:
    def test_booking_relations(self):
        from repro.workloads import temporal
        workload = temporal.generate(1, 4, 1, seed=3)
        db = workload.db
        slots = [db.cst_value(b, "slot") for b in workload.bookings]
        # All pairwise relations are classifiable.
        for i, a in enumerate(slots):
            for b in slots[i + 1:]:
                assert relation(a, b) in AllenRelation

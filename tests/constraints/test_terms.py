"""Unit tests for variables and linear expressions."""

from fractions import Fraction

import pytest

from repro.constraints.terms import (
    LinearExpression,
    Variable,
    format_fraction,
    sum_expressions,
    to_fraction,
    variables,
)
from repro.errors import NonLinearError

x, y, z = variables("x y z")


class TestToFraction:
    def test_int(self):
        assert to_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(2, 7)
        assert to_fraction(f) is f

    def test_float_uses_decimal_string(self):
        assert to_fraction(0.1) == Fraction(1, 10)

    def test_string(self):
        assert to_fraction("3/4") == Fraction(3, 4)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            to_fraction(True)

    def test_other_rejected(self):
        with pytest.raises(TypeError):
            to_fraction(object())


class TestVariable:
    def test_name(self):
        assert x.name == "x"

    def test_equality_is_name_identity(self):
        assert Variable("x") == x
        assert not (Variable("x") == y)

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), y}) == 2

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_variables_helper_commas_and_spaces(self):
        a, b, c = variables("a, b c")
        assert (a.name, b.name, c.name) == ("a", "b", "c")

    def test_str(self):
        assert str(x) == "x"

    def test_comparison_with_constant_builds_atom(self):
        atom = x <= 5
        assert "x" in str(atom)


class TestArithmetic:
    def test_add_variables(self):
        expr = x + y
        assert expr.coefficient(x) == 1
        assert expr.coefficient(y) == 1

    def test_scalar_multiplication(self):
        expr = 3 * x
        assert expr.coefficient(x) == 3

    def test_right_subtraction(self):
        expr = 5 - x
        assert expr.coefficient(x) == -1
        assert expr.constant_term == 5

    def test_division(self):
        expr = (2 * x) / 4
        assert expr.coefficient(x) == Fraction(1, 2)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            (x + 1) / 0

    def test_negation(self):
        expr = -(x + 2)
        assert expr.coefficient(x) == -1
        assert expr.constant_term == -2

    def test_zero_coefficients_dropped(self):
        expr = x - x + 3
        assert expr.is_constant()
        assert expr.constant_term == 3

    def test_nonlinear_product_rejected(self):
        with pytest.raises(NonLinearError):
            (x + 1) * (y + 1)

    def test_product_with_constant_expression(self):
        expr = (x + 1) * LinearExpression.constant(2)
        assert expr.coefficient(x) == 2
        assert expr.constant_term == 2

    def test_sum_expressions(self):
        expr = sum_expressions([x, y, 3])
        assert expr.coefficient(x) == 1
        assert expr.constant_term == 3


class TestEvaluation:
    def test_evaluate(self):
        expr = 2 * x + 3 * y - 1
        assert expr.evaluate({x: 1, y: 2}) == 7

    def test_evaluate_missing_binding(self):
        with pytest.raises(KeyError):
            (x + y).evaluate({x: 1})

    def test_substitute_expression(self):
        expr = 2 * x + y
        result = expr.substitute({x: y + 1})
        assert result.coefficient(y) == 3
        assert result.constant_term == 2

    def test_substitute_constant(self):
        expr = 2 * x + y
        result = expr.substitute({x: 5})
        assert result.coefficient(y) == 1
        assert result.constant_term == 10

    def test_rename(self):
        expr = 2 * x + y
        renamed = expr.rename({x: z})
        assert renamed.coefficient(z) == 2
        assert renamed.coefficient(x) == 0

    def test_rename_merges_coefficients(self):
        expr = 2 * x + 3 * y
        merged = expr.rename({x: y})
        assert merged.coefficient(y) == 5


class TestDisplay:
    def test_format_fraction_integral(self):
        assert format_fraction(Fraction(3)) == "3"

    def test_format_fraction_proper(self):
        assert format_fraction(Fraction(1, 2)) == "1/2"

    def test_str_is_deterministic(self):
        expr = y + 2 * x - 3
        assert str(expr) == "2*x + y - 3"

    def test_str_of_constant_zero(self):
        assert str(LinearExpression.constant(0)) == "0"


class TestStructuralIdentity:
    def test_structurally_equal(self):
        assert (x + y).structurally_equal(y + x)

    def test_hash_consistency(self):
        assert hash(x + y) == hash(y + x)

    def test_equality_operator_on_identical_is_true(self):
        assert (x + y) == (y + x)

"""Unit tests for the satisfiability decision procedure (strict
inequalities, disequalities, mixed systems)."""

from fractions import Fraction

import pytest

from repro.constraints.atoms import Eq, Ge, Le, Lt, Ne
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.satisfiability import is_satisfiable, sample_point
from repro.constraints.terms import Variable, variables

x, y = variables("x y")


class TestNonStrict:
    def test_satisfiable(self):
        assert is_satisfiable(ConjunctiveConstraint.of(Le(x, 1), Ge(x, 0)))

    def test_unsatisfiable(self):
        assert not is_satisfiable(
            ConjunctiveConstraint.of(Le(x, 0), Ge(x, 1)))

    def test_equality_system(self):
        assert is_satisfiable(
            ConjunctiveConstraint.of(Eq(x + y, 2), Eq(x - y, 0)))

    def test_sample_binds_all_variables(self):
        point = sample_point(ConjunctiveConstraint.of(Le(x + y, 1)))
        assert set(point) == {x, y}


class TestStrict:
    def test_open_interval(self):
        conj = ConjunctiveConstraint.of(Lt(x, 1), Ge(x, 0))
        point = sample_point(conj)
        assert point is not None
        assert 0 <= point[x] < 1

    def test_empty_open_interval(self):
        # 0 < x < 0 has no solution even though the closure has one.
        conj = ConjunctiveConstraint.of(Lt(x, 0), Ge(x, 0))
        assert not is_satisfiable(conj)

    def test_point_region_with_strict_boundary(self):
        # x <= 1 and x >= 1 and x < 1 is unsatisfiable.
        conj = ConjunctiveConstraint.of(Le(x, 1), Ge(x, 1), Lt(x, 1))
        assert not is_satisfiable(conj)

    def test_two_sided_strict(self):
        conj = ConjunctiveConstraint.of(Lt(x, 1), Lt(-x, 0))
        point = sample_point(conj)
        assert 0 < point[x] < 1

    def test_strict_between_converging_lines(self):
        # y > x and y < x is empty.
        conj = ConjunctiveConstraint.of(Lt(x - y, 0), Lt(y - x, 0))
        assert not is_satisfiable(conj)

    def test_unbounded_strict(self):
        conj = ConjunctiveConstraint.of(Lt(-x, 0))
        point = sample_point(conj)
        assert point[x] > 0

    def test_reserved_epsilon_name_rejected(self):
        from repro.errors import ReservedVariableError
        bad = Variable("__eps__")
        conj = ConjunctiveConstraint.of(Lt(bad, 1))
        with pytest.raises(ReservedVariableError):
            is_satisfiable(conj)


class TestDisequalities:
    def test_simple(self):
        conj = ConjunctiveConstraint.of(Eq(x, 1), Ne(x, 2))
        assert is_satisfiable(conj)

    def test_contradicting(self):
        conj = ConjunctiveConstraint.of(Eq(x, 1), Ne(x, 1))
        assert not is_satisfiable(conj)

    def test_point_avoids_forbidden_value(self):
        conj = ConjunctiveConstraint.of(Ge(x, 0), Le(x, 1), Ne(2 * x, 1))
        point = sample_point(conj)
        assert point[x] != Fraction(1, 2)

    def test_interval_minus_endpoint(self):
        conj = ConjunctiveConstraint.of(Ge(x, 0), Le(x, 0), Ne(x, 0))
        assert not is_satisfiable(conj)

    def test_multiple_disequalities(self):
        conj = ConjunctiveConstraint.of(
            Ge(x, 0), Le(x, 1), Ne(x, 0), Ne(x, 1),
            Ne(2 * x, 1))
        point = sample_point(conj)
        assert point is not None
        assert conj.holds_at(point)

    def test_disequality_on_combination(self):
        conj = ConjunctiveConstraint.of(Eq(x, y), Ne(x + y, 0))
        point = sample_point(conj)
        assert point[x] == point[y]
        assert point[x] + point[y] != 0


class TestDegenerateInputs:
    def test_empty_conjunction(self):
        assert is_satisfiable(ConjunctiveConstraint.true())

    def test_syntactic_false(self):
        assert sample_point(ConjunctiveConstraint.false()) is None

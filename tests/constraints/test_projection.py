"""Unit tests for Fourier-Motzkin projection and the paper's restricted
projection operator."""

import pytest

from repro.constraints.atoms import Eq, Ge, Le, Lt, Ne
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.projection import (
    eliminate_variable,
    project_conjunctive,
    prune_syntactic,
    restricted_project,
)
from repro.constraints.terms import variables
from repro.errors import ConstraintFamilyError

x, y, z, u, v, w = variables("x y z u v w")


class TestEliminateVariable:
    def test_interval_projection(self):
        # 0 <= x <= y  projected on y: exists x -> y >= 0.
        conj = ConjunctiveConstraint.of(Ge(x, 0), Le(x - y, 0))
        result = eliminate_variable(conj, x)
        assert result.holds_at({y: 0})
        assert not result.holds_at({y: -1})

    def test_unbounded_variable_disappears(self):
        conj = ConjunctiveConstraint.of(Ge(x, 0), Le(y, 1))
        result = eliminate_variable(conj, x)
        assert result == ConjunctiveConstraint.of(Le(y, 1))

    def test_equality_substitution_path(self):
        # x = y + 1 and x <= 3  ->  y <= 2
        conj = ConjunctiveConstraint.of(Eq(x, y + 1), Le(x, 3))
        result = eliminate_variable(conj, x)
        assert result == ConjunctiveConstraint.of(Le(y, 2))

    def test_strictness_propagates(self):
        # y < x and x <= z  ->  y < z
        conj = ConjunctiveConstraint.of(Lt(y - x, 0), Le(x - z, 0))
        result = eliminate_variable(conj, x)
        assert len(result) == 1
        assert result.atoms[0].is_strict()

    def test_disequality_on_variable_rejected(self):
        conj = ConjunctiveConstraint.of(Le(x, 1), Ne(x, 0))
        with pytest.raises(ConstraintFamilyError):
            eliminate_variable(conj, x)

    def test_disequality_on_other_variable_kept(self):
        conj = ConjunctiveConstraint.of(Le(x, 1), Ne(y, 0))
        result = eliminate_variable(conj, x)
        assert Ne(y, 0) in result.atoms

    def test_infeasibility_surfaces(self):
        # x >= 1 and x <= 0 projects to the trivially-false 1 <= 0.
        conj = ConjunctiveConstraint.of(Ge(x, 1), Le(x, 0))
        result = eliminate_variable(conj, x)
        assert result.is_syntactically_false()


class TestProjectConjunctive:
    def test_paper_translation_example(self):
        """The Section 4.1 worked example: the desk extent translated to
        room coordinates with center (6,4) is 2<=u<=10, 2<=v<=6."""
        conj = ConjunctiveConstraint.of(
            Ge(w, -4), Le(w, 4), Ge(z, -2), Le(z, 2),
            Eq(u, x + w), Eq(v, y + z), Eq(x, 6), Eq(y, 4))
        result = project_conjunctive(conj, [u, v])
        expected = ConjunctiveConstraint.of(
            Ge(u, 2), Le(u, 10), Ge(v, 2), Le(v, 6))
        assert result == expected

    def test_projection_adds_no_spurious_points(self):
        conj = ConjunctiveConstraint.of(
            Ge(x, 0), Le(x, 1), Eq(y, 2 * x))
        result = project_conjunctive(conj, [y])
        assert result.holds_at({y: 2})
        assert result.holds_at({y: 0})
        assert not result.holds_at({y: 3})

    def test_project_to_nothing(self):
        # Eliminating every variable of a satisfiable system gives TRUE.
        conj = ConjunctiveConstraint.of(Ge(x, 0), Le(x, 1))
        result = project_conjunctive(conj, [])
        assert result.is_true()

    def test_project_unsat_to_nothing(self):
        conj = ConjunctiveConstraint.of(Ge(x, 1), Le(x, 0))
        result = project_conjunctive(conj, [])
        assert result.is_syntactically_false()

    def test_free_variables_can_be_new(self):
        conj = ConjunctiveConstraint.of(Le(x, 1))
        result = project_conjunctive(conj, [x, y])
        assert result == conj

    def test_diamond_projection(self):
        # |x| + |y| <= 1 as four atoms, projected on x -> -1 <= x <= 1.
        conj = ConjunctiveConstraint.of(
            Le(x + y, 1), Le(x - y, 1), Le(-x + y, 1), Le(-x - y, 1))
        result = project_conjunctive(conj, [x])
        assert result.holds_at({x: 1})
        assert result.holds_at({x: -1})
        assert not result.holds_at({x: 2})


class TestRestrictedProject:
    def test_eliminate_one_allowed(self):
        conj = ConjunctiveConstraint.of(Le(x + y + z, 1))
        restricted_project(conj, [x, y])  # eliminates z only

    def test_keep_one_allowed(self):
        conj = ConjunctiveConstraint.of(Le(x + y + z, 1))
        restricted_project(conj, [x])  # keeps x only

    def test_middle_ground_rejected(self):
        conj = ConjunctiveConstraint.of(Le(x + y + z + u, 1), Ge(x, 0))
        with pytest.raises(ConstraintFamilyError):
            restricted_project(conj, [x, y])  # eliminates 2, keeps 2

    def test_extra_free_variables_allowed(self):
        conj = ConjunctiveConstraint.of(Le(x, 1))
        result = restricted_project(conj, [x, v, w])
        assert result == conj


class TestPruneSyntactic:
    def test_keeps_tightest_bound(self):
        conj = ConjunctiveConstraint.of(Le(x, 5), Le(x, 3))
        assert prune_syntactic(conj) == ConjunctiveConstraint.of(Le(x, 3))

    def test_strict_beats_nonstrict_at_equal_bound(self):
        conj = ConjunctiveConstraint.of(Le(x, 3), Lt(x, 3))
        assert prune_syntactic(conj) == ConjunctiveConstraint.of(Lt(x, 3))

    def test_different_directions_kept(self):
        conj = ConjunctiveConstraint.of(Le(x, 3), Ge(x, 1))
        assert len(prune_syntactic(conj)) == 2

    def test_equalities_untouched(self):
        conj = ConjunctiveConstraint.of(Eq(x, 3), Le(x, 5))
        assert Eq(x, 3) in prune_syntactic(conj).atoms

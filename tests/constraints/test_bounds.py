"""Tests for the interval prefilter (repro.constraints.bounds)."""

from fractions import Fraction

import pytest

from repro.constraints import bounds
from repro.constraints.atoms import Eq, Ge, Gt, Le, Lt, Ne
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.existential import (
    ExistentialConjunctiveConstraint,
)
from repro.constraints.terms import variables
from repro.workloads.random_constraints import (
    random_infeasible,
    random_polytope,
)

x, y, z = variables("x y z")


class TestBoxOf:
    def test_simple_bounds(self):
        box = bounds.box_of(ConjunctiveConstraint.of(
            Ge(x, 2), Le(x, 10)).atoms)
        assert box[x] == (Fraction(2), False, Fraction(10), False)

    def test_strict_bounds_marked_open(self):
        box = bounds.box_of(ConjunctiveConstraint.of(
            Gt(x, 0), Lt(x, 1)).atoms)
        assert box[x] == (Fraction(0), True, Fraction(1), True)

    def test_equality_pins_both_ends(self):
        box = bounds.box_of(ConjunctiveConstraint.of(Eq(x, 3)).atoms)
        assert box[x] == (Fraction(3), False, Fraction(3), False)

    def test_negative_coefficient_flips(self):
        # -2x <= -6  <=>  x >= 3
        box = bounds.box_of(ConjunctiveConstraint.of(
            Le(-2 * x, -6)).atoms)
        lo, lo_open, hi, hi_open = box[x]
        assert lo == Fraction(3) and not lo_open and hi is None

    def test_contradictory_bounds_give_none(self):
        assert bounds.box_of(ConjunctiveConstraint.of(
            Ge(x, 5), Le(x, 1)).atoms) is None

    def test_touching_strict_bounds_give_none(self):
        # x < 1 and x >= 1 is empty.
        assert bounds.box_of(ConjunctiveConstraint.of(
            Lt(x, 1), Ge(x, 1)).atoms) is None

    def test_multivariable_atoms_ignored_for_bounds(self):
        box = bounds.box_of(ConjunctiveConstraint.of(
            Le(x + y, 1), Ge(x, 0)).atoms)
        assert y not in box
        assert box[x][0] == Fraction(0)

    def test_disequalities_ignored(self):
        box = bounds.box_of(ConjunctiveConstraint.of(
            Ne(x, 0), Ge(x, -1)).atoms)
        assert box[x] == (Fraction(-1), False, None, False)


class TestRefutes:
    def test_bound_contradiction(self):
        assert bounds.refutes(ConjunctiveConstraint.of(
            Ge(x, 5), Le(x, 1)))

    def test_multivariable_atom_over_box(self):
        # x, y in [0, 1] but x + y >= 3 is impossible on the box.
        assert bounds.refutes(ConjunctiveConstraint.of(
            Ge(x, 0), Le(x, 1), Ge(y, 0), Le(y, 1), Ge(x + y, 3)))

    def test_open_endpoint_refutation(self):
        # x < 1, y < 1 ==> x + y < 2, so x + y >= 2 cannot hold.
        assert bounds.refutes(ConjunctiveConstraint.of(
            Lt(x, 1), Lt(y, 1), Ge(x + y, 2)))
        # With closed bounds the corner attains 2 — not refutable.
        assert not bounds.refutes(ConjunctiveConstraint.of(
            Le(x, 1), Le(y, 1), Ge(x + y, 2)))

    def test_equality_outside_box(self):
        assert bounds.refutes(ConjunctiveConstraint.of(
            Ge(x, 0), Le(x, 1), Ge(y, 0), Le(y, 1), Eq(x + y, 5)))

    def test_satisfiable_not_refuted(self):
        assert not bounds.refutes(ConjunctiveConstraint.of(
            Ge(x, 0), Le(x, 1), Ge(y, 0), Le(y, 1), Le(x + y, 1)))

    def test_unbounded_direction_not_refuted(self):
        assert not bounds.refutes(ConjunctiveConstraint.of(
            Ge(x, 0), Le(x + y, -10)))

    def test_soundness_on_random_polytopes(self):
        """The prefilter must never refute a satisfiable system."""
        for seed in range(30):
            conj = random_polytope(3, 6, seed=seed)
            assert not bounds.refutes(conj)

    def test_catches_axis_infeasibility(self):
        """random_infeasible contradicts along a single axis — exactly
        the shape the box detects without simplex."""
        for seed in range(10):
            conj = random_infeasible(3, 6, seed=seed)
            assert bounds.refutes(conj)

    def test_counters_advance(self):
        bounds.reset_stats()
        bounds.refutes(ConjunctiveConstraint.of(Ge(x, 5), Le(x, 1)))
        bounds.refutes(ConjunctiveConstraint.of(Ge(x, 0)))
        stats = bounds.stats()
        assert stats["checks"] == 2
        assert stats["refutations"] == 1


class TestConstraintBox:
    def test_disjunction_hull(self):
        dis = DisjunctiveConstraint([
            ConjunctiveConstraint.of(Ge(x, 0), Le(x, 1)),
            ConjunctiveConstraint.of(Ge(x, 5), Le(x, 6)),
        ])
        box = bounds.constraint_box(dis)
        assert box[x] == (Fraction(0), False, Fraction(6), False)

    def test_disjunction_drops_empty_disjuncts(self):
        dis = DisjunctiveConstraint([
            ConjunctiveConstraint.of(Ge(x, 5), Le(x, 1)),
            ConjunctiveConstraint.of(Ge(x, 0), Le(x, 1)),
        ])
        box = bounds.constraint_box(dis)
        assert box[x] == (Fraction(0), False, Fraction(1), False)

    def test_all_empty_disjuncts_give_none(self):
        dis = DisjunctiveConstraint([
            ConjunctiveConstraint.of(Ge(x, 5), Le(x, 1)),
        ])
        assert bounds.constraint_box(dis) is None

    def test_variable_unbounded_in_one_disjunct_dropped(self):
        dis = DisjunctiveConstraint([
            ConjunctiveConstraint.of(Ge(x, 0), Le(x, 1)),
            ConjunctiveConstraint.of(Ge(y, 0)),
        ])
        box = bounds.constraint_box(dis)
        assert x not in box

    def test_existential_uses_body(self):
        ex = ExistentialConjunctiveConstraint(
            ConjunctiveConstraint.of(Ge(x, 0), Le(x, 1), Eq(y, x)),
            (y,))
        box = bounds.constraint_box(ex)
        assert box[x] == (Fraction(0), False, Fraction(1), False)

    def test_rejects_non_constraint(self):
        with pytest.raises(TypeError):
            bounds.constraint_box("not a constraint")


class TestDisjointness:
    def test_disjoint_on_shared_variable(self):
        a = bounds.constraint_box(
            ConjunctiveConstraint.of(Ge(x, 0), Le(x, 1)))
        b = bounds.constraint_box(
            ConjunctiveConstraint.of(Ge(x, 2), Le(x, 3)))
        assert bounds.boxes_disjoint(a, b)

    def test_touching_closed_intervals_not_disjoint(self):
        a = bounds.constraint_box(ConjunctiveConstraint.of(Le(x, 1)))
        b = bounds.constraint_box(ConjunctiveConstraint.of(Ge(x, 1)))
        assert not bounds.boxes_disjoint(a, b)

    def test_touching_open_interval_disjoint(self):
        a = bounds.constraint_box(ConjunctiveConstraint.of(Lt(x, 1)))
        b = bounds.constraint_box(ConjunctiveConstraint.of(Ge(x, 1)))
        assert bounds.boxes_disjoint(a, b)

    def test_different_variables_not_disjoint(self):
        a = bounds.constraint_box(ConjunctiveConstraint.of(Ge(x, 5)))
        b = bounds.constraint_box(ConjunctiveConstraint.of(Le(y, 0)))
        assert not bounds.boxes_disjoint(a, b)

    def test_empty_box_disjoint_from_everything(self):
        b = bounds.constraint_box(ConjunctiveConstraint.of(Ge(y, 0)))
        assert bounds.boxes_disjoint(None, b)
        assert bounds.boxes_disjoint(b, None)

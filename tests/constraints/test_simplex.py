"""Unit tests for the exact rational simplex."""

from fractions import Fraction

import pytest

from repro.constraints.atoms import Eq, Ge, Le
from repro.constraints.simplex import LPStatus, feasible_point, solve
from repro.constraints.terms import LinearExpression, variables
from repro.errors import ConstraintError

x, y, z = variables("x y z")


class TestBasics:
    def test_simple_max(self):
        # max x + y  s.t. x <= 2, y <= 3
        result = solve(x + y, [Le(x, 2), Le(y, 3)])
        assert result.status is LPStatus.OPTIMAL
        assert result.value == 5
        assert result.point[x] == 2
        assert result.point[y] == 3

    def test_simple_min(self):
        result = solve(x, [Ge(x, -7).weakened()], maximize=False)
        assert result.value == -7

    def test_min_via_flag(self):
        result = solve(x + y, [Ge(x, 1), Ge(y, 2)], maximize=False)
        assert result.value == 3

    def test_equality_constraints(self):
        # max y s.t. x + y = 4, x >= 1
        result = solve(
            LinearExpression.coerce(y), [Eq(x + y, 4), Ge(x, 1)])
        assert result.value == 3
        assert result.point[x] == 1

    def test_unbounded(self):
        result = solve(x, [Ge(x, 0)])
        assert result.status is LPStatus.UNBOUNDED

    def test_infeasible(self):
        result = solve(x, [Le(x, 0), Ge(x, 1)])
        assert result.status is LPStatus.INFEASIBLE

    def test_no_constraints_zero_objective(self):
        result = solve(LinearExpression.constant(0), [])
        assert result.status is LPStatus.OPTIMAL
        assert result.value == 0

    def test_no_constraints_nonzero_objective(self):
        result = solve(LinearExpression.coerce(x), [])
        assert result.status is LPStatus.UNBOUNDED

    def test_constant_objective_offset(self):
        result = solve(x + 10, [Le(x, 2), Ge(x, 0)])
        assert result.value == 12

    def test_rejects_strict_atoms(self):
        from repro.constraints.atoms import Lt
        with pytest.raises(ConstraintError):
            solve(x, [Lt(x, 1)])


class TestFreeVariables:
    def test_negative_optimum(self):
        # Variables are unrestricted: max -x s.t. x >= -5 gives 5.
        result = solve(-x, [Ge(x, -5)])
        assert result.value == 5
        assert result.point[x] == -5

    def test_mixed_sign_region(self):
        result = solve(y - x, [Ge(x, -3), Le(y, -1)])
        assert result.value == 2


class TestExactness:
    def test_fractional_optimum(self):
        # max x + y s.t. 3x + y <= 4, x + 3y <= 4 -> optimum at (1,1),
        # but with 2x + y <= 2, x + 2y <= 2 -> optimum (2/3, 2/3).
        result = solve(x + y, [Le(2 * x + y, 2), Le(x + 2 * y, 2)])
        assert result.value == Fraction(4, 3)
        assert result.point[x] == Fraction(2, 3)

    def test_tiny_coefficients(self):
        eps = Fraction(1, 10 ** 12)
        result = solve(x, [Le(eps * x, eps)])
        assert result.value == 1


class TestDegenerate:
    def test_redundant_equalities(self):
        result = solve(x, [Eq(x + y, 2), Eq(2 * x + 2 * y, 4), Le(x, 1)])
        assert result.status is LPStatus.OPTIMAL
        assert result.value == 1

    def test_implied_equality_from_inequalities(self):
        result = solve(x, [Le(x + y, 1), Ge(x + y, 1), Le(x, 0)])
        assert result.value == 0

    def test_degenerate_vertex_no_cycle(self):
        # Klee-Minty-flavoured degenerate system; Bland's rule must
        # terminate.
        atoms = [
            Le(x, 1),
            Le(4 * x + y, 8),
            Le(8 * x + 4 * y + z, 64),
            Ge(x, 0), Ge(y, 0), Ge(z, 0),
        ]
        result = solve(100 * x + 10 * y + z, atoms)
        assert result.status is LPStatus.OPTIMAL
        assert result.value > 0


class TestFeasiblePoint:
    def test_feasible(self):
        point = feasible_point([Le(x, 1), Ge(x, 0), Eq(y, x + 1)])
        assert point is not None
        assert 0 <= point[x] <= 1
        assert point[y] == point[x] + 1

    def test_infeasible(self):
        assert feasible_point([Le(x, 0), Ge(x, 2)]) is None

    def test_point_satisfies_all(self):
        atoms = [Le(x + y + z, 10), Ge(x - y, 2), Eq(z, 3)]
        point = feasible_point(atoms)
        for atom in atoms:
            assert atom.holds_at(point)

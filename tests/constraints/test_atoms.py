"""Unit tests for linear constraint atoms and their normal form."""

from fractions import Fraction

import pytest

from repro.constraints.atoms import (
    Eq,
    Ge,
    Gt,
    Le,
    LinearConstraint,
    Lt,
    Ne,
    Relop,
)
from repro.constraints.terms import variables
from repro.errors import ConstraintError

x, y = variables("x y")


class TestNormalization:
    def test_ge_flips_to_le(self):
        atom = Ge(x, 3)
        assert atom.relop is Relop.LE
        assert atom.expression.coefficient(x) == -1
        assert atom.bound == -3

    def test_gt_flips_to_lt(self):
        atom = Gt(x, 3)
        assert atom.relop is Relop.LT

    def test_constant_moved_to_bound(self):
        atom = Le(x + 5, 7)
        assert atom.bound == 2
        assert atom.expression.constant_term == 0

    def test_coefficients_scaled_to_coprime_integers(self):
        assert Le(2 * x + 4 * y, 6) == Le(x + 2 * y, 3)

    def test_fractional_coefficients_cleared(self):
        atom = Le(x / 2 + y / 3, 1)
        assert atom == Le(3 * x + 2 * y, 6)

    def test_equality_sign_canonical(self):
        assert Eq(-x + y, 1) == Eq(x - y, -1)

    def test_disequality_sign_canonical(self):
        assert Ne(-2 * x, 4) == Ne(x, -2)

    def test_inequality_sign_not_flipped(self):
        # -x <= 1 and x <= -1 are different constraints.
        assert Le(-x, 1) != Le(x, -1)


class TestOperatorOverloads:
    def test_le_operator(self):
        assert (x <= 5) == Le(x, 5)

    def test_chained_via_expression(self):
        assert (2 * x + 3 * y <= 5).relop is Relop.LE

    def test_eq_via_expression(self):
        atom = +x == 5
        assert atom.relop is Relop.EQ

    def test_eq_between_variables_via_helper(self):
        atom = Eq(x, y)
        assert atom.relop is Relop.EQ
        assert atom.expression.coefficient(x) == 1
        assert atom.expression.coefficient(y) == -1


class TestPredicates:
    def test_holds_at(self):
        atom = Le(2 * x + y, 5)
        assert atom.holds_at({x: 1, y: 3})
        assert not atom.holds_at({x: 2, y: 3})

    def test_strict_holds_at(self):
        atom = Lt(x, 1)
        assert atom.holds_at({x: Fraction(99, 100)})
        assert not atom.holds_at({x: 1})

    def test_disequality_holds_at(self):
        atom = Ne(x, 1)
        assert atom.holds_at({x: 0})
        assert not atom.holds_at({x: 1})

    def test_trivial_truth(self):
        atom = Le(x - x, 1)
        assert atom.is_trivial
        assert atom.trivial_truth()

    def test_trivial_false(self):
        atom = Le(x - x, -1)
        assert not atom.trivial_truth()

    def test_trivial_truth_raises_on_nontrivial(self):
        with pytest.raises(ConstraintError):
            Le(x, 1).trivial_truth()

    def test_bool_raises_on_nontrivial(self):
        with pytest.raises(TypeError):
            bool(Le(x, 1))

    def test_bool_on_trivial(self):
        assert bool(Le(x - x, 1))


class TestLogicalOps:
    def test_negate_le(self):
        negated = Le(x, 3).negate()
        assert negated.relop is Relop.LT
        # not(x <= 3)  ==  x > 3  ==  -x < -3
        assert negated.holds_at({x: 4})
        assert not negated.holds_at({x: 3})

    def test_negate_eq_gives_ne(self):
        assert Eq(x, 3).negate().relop is Relop.NE

    def test_negate_ne_gives_eq(self):
        assert Ne(x, 3).negate().relop is Relop.EQ

    def test_double_negation_roundtrip(self):
        atom = Lt(2 * x - y, 7)
        assert atom.negate().negate() == atom

    def test_split_disequality(self):
        below, above = Ne(x, 2).split_disequality()
        assert below.holds_at({x: 1})
        assert above.holds_at({x: 3})
        assert not below.holds_at({x: 2})
        assert not above.holds_at({x: 2})

    def test_split_requires_disequality(self):
        with pytest.raises(ConstraintError):
            Le(x, 2).split_disequality()

    def test_weakened(self):
        assert Lt(x, 2).weakened().relop is Relop.LE
        assert Le(x, 2).weakened().relop is Relop.LE


class TestSubstitution:
    def test_substitute(self):
        atom = Le(x + y, 3).substitute({x: 2 * y})
        assert atom == Le(3 * y, 3)

    def test_rename(self):
        atom = Le(x + y, 3).rename({x: y})
        assert atom == Le(2 * y, 3)

    def test_substitution_to_trivial(self):
        atom = Le(x, 3).substitute({x: 1})
        assert atom.is_trivial
        assert atom.trivial_truth()


class TestIdentity:
    def test_hash_equal_for_equal_atoms(self):
        assert hash(Le(2 * x, 4)) == hash(Le(x, 2))

    def test_sort_key_deterministic(self):
        atoms = sorted([Le(y, 1), Le(x, 1), Eq(x, 0)],
                       key=LinearConstraint.sort_key)
        assert atoms == sorted(atoms, key=LinearConstraint.sort_key)

    def test_str_renders_relop(self):
        assert "<=" in str(Le(x, 2))

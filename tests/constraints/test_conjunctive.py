"""Unit tests for conjunctive constraints."""

from fractions import Fraction

import pytest

from repro.constraints.atoms import Eq, Ge, Le, Lt, Ne
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.terms import variables
from repro.errors import ConstraintError

x, y, z = variables("x y z")


def unit_square() -> ConjunctiveConstraint:
    return ConjunctiveConstraint.of(Ge(x, 0), Le(x, 1), Ge(y, 0), Le(y, 1))


class TestConstruction:
    def test_true(self):
        assert ConjunctiveConstraint.true().is_true()

    def test_false(self):
        assert ConjunctiveConstraint.false().is_syntactically_false()

    def test_duplicate_atoms_removed(self):
        conj = ConjunctiveConstraint.of(Le(x, 1), Le(2 * x, 2))
        assert len(conj) == 1

    def test_trivially_true_atoms_dropped(self):
        conj = ConjunctiveConstraint.of(Le(x - x, 5), Le(x, 1))
        assert len(conj) == 1

    def test_trivially_false_atom_collapses(self):
        conj = ConjunctiveConstraint.of(Le(x, 1), Ge(x - x, 5))
        assert conj.is_syntactically_false()

    def test_type_checked(self):
        with pytest.raises(TypeError):
            ConjunctiveConstraint(["not an atom"])

    def test_variables(self):
        assert unit_square().variables == {x, y}


class TestClassifiers:
    def test_equalities(self):
        conj = ConjunctiveConstraint.of(Eq(x, 1), Le(y, 2), Ne(z, 0))
        assert len(conj.equalities()) == 1
        assert len(conj.inequalities()) == 1
        assert len(conj.disequalities()) == 1

    def test_strict_counts_as_inequality(self):
        conj = ConjunctiveConstraint.of(Lt(x, 1))
        assert len(conj.inequalities()) == 1


class TestOperations:
    def test_conjoin(self):
        combined = unit_square().conjoin(Le(x + y, 1))
        assert len(combined) == 5

    def test_conjoin_conjunction(self):
        other = ConjunctiveConstraint.of(Le(z, 0))
        assert len(unit_square().conjoin(other)) == 5

    def test_and_operator(self):
        assert len(unit_square() & Le(x + y, 1)) == 5

    def test_holds_at(self):
        assert unit_square().holds_at({x: Fraction(1, 2), y: 0})
        assert not unit_square().holds_at({x: 2, y: 0})

    def test_substitute(self):
        conj = unit_square().substitute({x: y})
        assert conj.variables == {y}

    def test_rename(self):
        conj = unit_square().rename({x: z})
        assert conj.variables == {z, y}


class TestSatisfiability:
    def test_satisfiable(self):
        assert unit_square().is_satisfiable()

    def test_unsatisfiable(self):
        conj = ConjunctiveConstraint.of(Le(x, 0), Ge(x, 1))
        assert not conj.is_satisfiable()

    def test_sample_point_member(self):
        conj = unit_square().conjoin(Lt(x + y, 1)).conjoin(Ne(x, y))
        point = conj.sample_point()
        assert point is not None
        assert conj.holds_at(point)

    def test_false_unsatisfiable(self):
        assert not ConjunctiveConstraint.false().is_satisfiable()


class TestEliminateEqualities:
    def test_single_equality(self):
        conj = ConjunctiveConstraint.of(Eq(x, y + 1), Le(x, 3))
        reduced = conj.eliminate_equalities()
        assert x not in reduced.variables
        # x = y + 1, x <= 3  ->  y <= 2
        assert reduced.holds_at({y: 2})
        assert not reduced.holds_at({y: 3})

    def test_keep_set_respected(self):
        conj = ConjunctiveConstraint.of(Eq(x, y + 1), Le(x, 3))
        reduced = conj.eliminate_equalities(keep=frozenset({x, y}))
        # Both variables kept: the equality only mentions keep vars.
        assert len(reduced.equalities()) == 1

    def test_chained_equalities(self):
        conj = ConjunctiveConstraint.of(Eq(x, y), Eq(y, z), Le(z, 5))
        reduced = conj.eliminate_equalities(keep=frozenset({z}))
        assert reduced.variables <= {z}

    def test_inconsistent_equalities_collapse(self):
        conj = ConjunctiveConstraint.of(Eq(x, 1), Eq(x, 2))
        reduced = conj.eliminate_equalities()
        assert reduced.is_syntactically_false()


class TestBounds:
    def test_bounds_of_square(self):
        lo, hi = unit_square().variable_bounds(x)
        assert (lo, hi) == (0, 1)

    def test_unbounded_side(self):
        conj = ConjunctiveConstraint.of(Ge(x, 2))
        lo, hi = conj.variable_bounds(x)
        assert lo == 2
        assert hi is None


class TestIdentity:
    def test_order_insensitive_equality(self):
        a = ConjunctiveConstraint.of(Le(x, 1), Le(y, 1))
        b = ConjunctiveConstraint.of(Le(y, 1), Le(x, 1))
        assert a == b
        assert hash(a) == hash(b)

    def test_str_true_false(self):
        assert str(ConjunctiveConstraint.true()) == "TRUE"
        assert str(ConjunctiveConstraint.false()) == "FALSE"

    def test_solve_for_requires_equality(self):
        from repro.constraints.conjunctive import _solve_for
        with pytest.raises(ConstraintError):
            _solve_for(Le(x, 1), x)

    def test_solve_for_requires_occurrence(self):
        from repro.constraints.conjunctive import _solve_for
        with pytest.raises(ConstraintError):
            _solve_for(Eq(x, 1), y)

"""Unit tests for the 2-D geometry helpers."""

from fractions import Fraction

import pytest

from repro.constraints.atoms import Eq, Ge, Le
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.cst_object import CSTObject
from repro.constraints.geometry import (
    area_2d,
    box,
    cut,
    polygon_area,
    scale,
    translate,
    vertices_2d,
)
from repro.constraints.terms import variables
from repro.errors import DimensionError

x, y, z = variables("x y z")


class TestBox:
    def test_membership(self):
        b = box([x, y], [(0, 2), (1, 3)])
        assert b.contains_point(1, 2)
        assert not b.contains_point(3, 2)

    def test_arity_check(self):
        with pytest.raises(DimensionError):
            box([x], [(0, 1), (0, 1)])


class TestTransforms:
    def test_translate(self):
        b = translate(box([x, y], [(0, 1), (0, 1)]), [10, 20])
        assert b.contains_point(10, 20)
        assert b.contains_point(11, 21)
        assert not b.contains_point(0, 0)

    def test_translate_arity(self):
        with pytest.raises(DimensionError):
            translate(box([x, y], [(0, 1), (0, 1)]), [1])

    def test_scale(self):
        b = scale(box([x, y], [(0, 1), (0, 1)]), 2)
        assert b.contains_point(2, 2)
        assert not b.contains_point(3, 0)

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale(box([x], [(0, 1)]), 0)


class TestVertices:
    def test_unit_square(self):
        conj = ConjunctiveConstraint.of(
            Ge(x, 0), Le(x, 1), Ge(y, 0), Le(y, 1))
        verts = vertices_2d(conj, [x, y])
        assert set(verts) == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_ccw_order(self):
        conj = ConjunctiveConstraint.of(
            Ge(x, 0), Le(x, 1), Ge(y, 0), Le(y, 1))
        verts = vertices_2d(conj, [x, y])
        assert polygon_area(verts) > 0  # CCW gives positive area

    def test_triangle(self):
        conj = ConjunctiveConstraint.of(
            Ge(x, 0), Ge(y, 0), Le(x + y, 1))
        verts = vertices_2d(conj, [x, y])
        assert set(verts) == {(0, 0), (1, 0), (0, 1)}

    def test_degenerate_segment(self):
        conj = ConjunctiveConstraint.of(Eq(y, 0), Ge(x, 0), Le(x, 1))
        verts = vertices_2d(conj, [x, y])
        assert set(verts) == {(0, 0), (1, 0)}

    def test_dimension_check(self):
        conj = ConjunctiveConstraint.of(Le(x + y + z, 1))
        with pytest.raises(DimensionError):
            vertices_2d(conj, [x, y])


class TestArea:
    def test_square_area(self):
        assert area_2d(box([x, y], [(0, 2), (0, 3)])) == 6

    def test_triangle_area(self):
        tri = CSTObject.from_atoms(
            [x, y], [Ge(x, 0), Ge(y, 0), Le(x + y, 1)])
        assert area_2d(tri) == Fraction(1, 2)

    def test_polygon_area_degenerate(self):
        assert polygon_area([(0, 0), (1, 0)]) == 0


class TestCut:
    def test_cut_of_wedge(self):
        # Wedge 0 <= z <= x <= 1 in (x, z); cut at z = 1/2 leaves
        # 1/2 <= x <= 1.
        wedge = CSTObject.from_atoms(
            [x, z], [Ge(z, 0), Le(z - x, 0), Le(x, 1)])
        section = cut(wedge, z, Fraction(1, 2), [x])
        assert section.contains_point(Fraction(3, 4))
        assert not section.contains_point(Fraction(1, 4))

    def test_paper_half_foot_cut_shape(self):
        # 3-D box cut at height 1/2 gives its 2-D footprint.
        h, = variables("h")
        solid = box([x, y, h], [(0, 4), (0, 2), (0, 3)])
        footprint = cut(solid, h, Fraction(1, 2), [x, y])
        assert footprint.contains_point(4, 2)
        assert not footprint.contains_point(5, 0)

"""Unit tests for the constraint-family lattice and closure rules."""

import pytest

from repro.constraints.atoms import Ge, Le
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.existential import (
    DisjunctiveExistentialConstraint,
    ExistentialConjunctiveConstraint,
)
from repro.constraints.families import (
    Family,
    Operation,
    classify,
    combine,
    join,
    project_family,
)
from repro.constraints.terms import variables
from repro.errors import ConstraintFamilyError

x, y = variables("x y")

CONJ = Family.CONJUNCTIVE
ECONJ = Family.EXISTENTIAL_CONJUNCTIVE
DISJ = Family.DISJUNCTIVE
DEX = Family.DISJUNCTIVE_EXISTENTIAL


class TestLattice:
    def test_reflexive(self):
        for fam in Family:
            assert fam <= fam

    def test_conjunctive_is_bottom(self):
        for fam in Family:
            assert CONJ <= fam

    def test_dex_is_top(self):
        for fam in Family:
            assert fam <= DEX

    def test_incomparable_middle(self):
        assert not (ECONJ <= DISJ)
        assert not (DISJ <= ECONJ)

    def test_strict(self):
        assert CONJ < DISJ
        assert not (DISJ < DISJ)

    def test_join(self):
        assert join(ECONJ, DISJ) is DEX
        assert join(CONJ, DISJ) is DISJ
        assert join(CONJ, CONJ) is CONJ


class TestClassify:
    def test_conjunctive(self):
        assert classify(ConjunctiveConstraint.of(Le(x, 1))) is CONJ

    def test_quantifier_free_existential_degrades(self):
        ex = ExistentialConjunctiveConstraint.of_conjunctive(
            ConjunctiveConstraint.of(Le(x, 1)))
        assert classify(ex) is CONJ

    def test_genuine_existential(self):
        ex = ExistentialConjunctiveConstraint(
            ConjunctiveConstraint.of(Le(x - y, 0), Ge(y, 0)), [y])
        assert classify(ex) is ECONJ

    def test_single_disjunct_degrades(self):
        d = DisjunctiveConstraint([ConjunctiveConstraint.of(Le(x, 1))])
        assert classify(d) is CONJ

    def test_genuine_disjunctive(self):
        d = DisjunctiveConstraint([
            ConjunctiveConstraint.of(Le(x, 0)),
            ConjunctiveConstraint.of(Ge(x, 1))])
        assert classify(d) is DISJ

    def test_dex(self):
        ex = ExistentialConjunctiveConstraint(
            ConjunctiveConstraint.of(Le(x - y, 0), Ge(y, 0)), [y])
        dex = DisjunctiveExistentialConstraint(
            [ex, ExistentialConjunctiveConstraint.of_conjunctive(
                ConjunctiveConstraint.of(Ge(x, 5)))])
        assert classify(dex) is DEX

    def test_non_constraint(self):
        with pytest.raises(TypeError):
            classify(3)


class TestCombine:
    def test_and_conjunctive(self):
        assert combine(Operation.AND, CONJ, CONJ) is CONJ

    def test_and_mixed(self):
        assert combine(Operation.AND, CONJ, DISJ) is DISJ
        assert combine(Operation.AND, ECONJ, CONJ) is ECONJ

    def test_and_dex_rejected(self):
        with pytest.raises(ConstraintFamilyError):
            combine(Operation.AND, ECONJ, DISJ)

    def test_or(self):
        assert combine(Operation.OR, CONJ, CONJ) is DISJ
        assert combine(Operation.OR, DISJ, DISJ) is DISJ
        assert combine(Operation.OR, ECONJ, CONJ) is DEX
        assert combine(Operation.OR, DEX, DISJ) is DEX

    def test_not(self):
        assert combine(Operation.NOT, CONJ) is DISJ
        assert combine(Operation.NOT, DISJ) is DISJ

    def test_not_existential_rejected(self):
        with pytest.raises(ConstraintFamilyError):
            combine(Operation.NOT, ECONJ)

    def test_binary_needs_two(self):
        with pytest.raises(ConstraintFamilyError):
            combine(Operation.AND, CONJ)


class TestProjectFamily:
    def test_restricted_stays_in_family(self):
        assert project_family(CONJ, restricted=True) is CONJ
        assert project_family(DISJ, restricted=True) is DISJ

    def test_unrestricted_conjunctive_becomes_existential(self):
        assert project_family(CONJ, restricted=False) is ECONJ

    def test_existential_stays(self):
        assert project_family(ECONJ, restricted=False) is ECONJ

    def test_dex(self):
        assert project_family(DEX, restricted=False) is DEX

"""Unit tests for the batched numeric kernel and the columnar packing
layer (verdict soundness, ε fall-through, gating, stats booking)."""

from fractions import Fraction

import pytest

from repro.constraints import kernel, matrix
from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.satisfiability import is_satisfiable
from repro.constraints.terms import LinearExpression, variables
from repro.runtime import numeric
from repro.runtime.context import ExecutionStats, QueryContext
from repro.workloads.random_constraints import (
    make_variables,
    random_infeasible,
    random_polytope,
)

x, y = variables("x y")


def interval(var, lo, hi):
    return [LinearConstraint.build(var, Relop.GE, lo),
            LinearConstraint.build(var, Relop.LE, hi)]


# ---------------------------------------------------------------------------
# Packing
# ---------------------------------------------------------------------------


class TestPacking:
    def test_pack_shapes(self):
        conj = ConjunctiveConstraint(
            interval(x, 0, 10)
            + [LinearConstraint.build(x + y, Relop.LE, 7),
               LinearConstraint.build(x - y, Relop.NE, 1)])
        ps = matrix.pack_conjunction(conj)
        assert ps is not None
        # The disequality is excluded from the rows but kept exact.
        assert ps.n_rows == 3
        assert ps.has_disequality
        assert not ps.has_equality
        assert len(ps.atoms) == 4
        assert all(s >= 1.0 for s in ps.scales)

    def test_overflowing_coefficients_are_unsupported(self):
        huge = Fraction(10) ** 400
        conj = ConjunctiveConstraint(
            [LinearConstraint.build(x, Relop.LE, huge)])
        assert matrix.pack_conjunction(conj) is None

    def test_units_cover_the_constraint_families(self):
        conj = random_polytope(2, 4, seed=1)
        disj = DisjunctiveConstraint([conj])
        atom = conj.atoms[0]
        assert matrix.pack_constraint(atom) is not None
        assert matrix.pack_constraint(conj) is not None
        assert matrix.pack_constraint(disj) is not None
        assert matrix.pack_constraint("not a constraint") is None

    def test_stacked_arrays_align_with_systems(self):
        pytest.importorskip("numpy")
        cons = [random_polytope(2, 3, seed=s) for s in range(4)]
        cm = matrix.ConstraintMatrix.from_constraints(cons)
        stacked = cm.stacked()
        assert stacked is not None
        systems = stacked["systems"]
        assert len(systems) == 4
        total = sum(ps.n_rows for ps in systems)
        assert stacked["coeffs"].shape[0] == total
        assert stacked["offsets"][-1] == total


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------


class TestClassifySystem:
    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_with_exact_on_random_polytopes(self, seed):
        conj = random_polytope(3, 8, seed=seed)
        verdict = kernel.classify_system(matrix.pack_conjunction(conj))
        if verdict != kernel.UNKNOWN:
            assert (verdict == kernel.FEASIBLE) == is_satisfiable(conj)

    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_with_exact_on_infeasible_systems(self, seed):
        conj = random_infeasible(3, 6, seed=seed)
        verdict = kernel.classify_system(matrix.pack_conjunction(conj))
        assert verdict in (kernel.INFEASIBLE, kernel.UNKNOWN)

    def test_near_boundary_falls_through(self):
        # x <= 0 and x >= 0: satisfiable only at the single point 0 —
        # the elastic optimum is exactly 0, inside the ε band, so the
        # kernel must refuse to decide rather than guess either way.
        conj = ConjunctiveConstraint(interval(x, 0, 0))
        assert kernel.classify_system(
            matrix.pack_conjunction(conj)) == kernel.UNKNOWN

    def test_tiny_infeasible_gap_is_not_accepted(self):
        # Empty by a margin far below ε: must never come back FEASIBLE.
        gap = Fraction(1, 10 ** 20)
        conj = ConjunctiveConstraint(
            [LinearConstraint.build(x, Relop.LE, 0),
             LinearConstraint.build(x, Relop.GE, gap)])
        verdict = kernel.classify_system(matrix.pack_conjunction(conj))
        assert verdict in (kernel.INFEASIBLE, kernel.UNKNOWN)
        # ... and symmetrically, a sliver that *is* nonempty must never
        # come back INFEASIBLE (accepting or falling through are both
        # sound).
        sliver = ConjunctiveConstraint(interval(x, 0, gap))
        verdict = kernel.classify_system(matrix.pack_conjunction(sliver))
        assert verdict in (kernel.FEASIBLE, kernel.UNKNOWN)

    def test_strict_atoms_accept_through_exact_verification(self):
        conj = ConjunctiveConstraint(
            [LinearConstraint.build(x, Relop.GT, 0),
             LinearConstraint.build(x, Relop.LT, 10),
             LinearConstraint.build(y, Relop.GT, 0),
             LinearConstraint.build(y, Relop.LT, 10),
             LinearConstraint.build(x + y, Relop.LT, 15)])
        verdict = kernel.classify_system(matrix.pack_conjunction(conj))
        assert verdict in (kernel.FEASIBLE, kernel.UNKNOWN)
        assert verdict == kernel.FEASIBLE  # interior is wide: decided

    def test_disequalities_checked_exactly_on_accept(self):
        # The box is wide, but every disequality must hold at the
        # witness; a reject can never come from an NE atom alone.
        conj = ConjunctiveConstraint(
            interval(x, 0, 10)
            + [LinearConstraint.build(x, Relop.NE, 5)])
        verdict = kernel.classify_system(matrix.pack_conjunction(conj))
        assert verdict in (kernel.FEASIBLE, kernel.UNKNOWN)


class TestClassifyMatrix:
    def test_combines_disjuncts(self):
        sat = random_polytope(2, 4, seed=3)
        unsat = random_infeasible(2, 4, seed=4)
        cm = matrix.ConstraintMatrix.from_constraints([
            DisjunctiveConstraint([unsat, sat]),   # some disjunct sat
            DisjunctiveConstraint([unsat]),        # all disjuncts empty
            None,                                  # not a constraint
        ])
        ctx = QueryContext(stats=ExecutionStats())
        verdicts = kernel.classify_matrix(cm, ctx)
        assert verdicts[0] == kernel.FEASIBLE
        assert verdicts[1] in (kernel.INFEASIBLE, kernel.UNKNOWN)
        assert verdicts[2] == kernel.UNKNOWN
        assert ctx.stats.numeric_accepts == 1
        assert (ctx.stats.numeric_accepts + ctx.stats.numeric_rejects
                + ctx.stats.numeric_fallbacks) == 3

    def test_screen_rejects_box_empty_systems(self):
        pytest.importorskip("numpy")
        dead = ConjunctiveConstraint(interval(x, 10, 0))
        # Normalization may collapse the contradiction syntactically;
        # build it through a coupling the screen has to evaluate.
        wide = ConjunctiveConstraint(
            interval(x, 0, 1) + interval(y, 0, 1)
            + [LinearConstraint.build(x + y, Relop.GE, 10)])
        cm = matrix.ConstraintMatrix.from_constraints([wide])
        assert kernel.classify_matrix(cm) == [kernel.INFEASIBLE]
        assert dead.is_syntactically_false() or kernel.classify_matrix(
            matrix.ConstraintMatrix.from_constraints([dead])
        ) == [kernel.INFEASIBLE]


# ---------------------------------------------------------------------------
# quick_satisfiable gating
# ---------------------------------------------------------------------------


class TestQuickSatisfiable:
    def _dense(self, seed=0):
        return random_polytope(3, 8, seed=seed)

    @pytest.mark.skipif(not numeric.numeric_available(),
                        reason="deciding needs the fast extra")
    def test_decides_dense_systems(self):
        ctx = QueryContext(stats=ExecutionStats())
        verdict = kernel.quick_satisfiable(self._dense(), ctx)
        assert verdict is True
        assert ctx.stats.numeric_accepts == 1

    def test_small_systems_stay_exact(self):
        ctx = QueryContext(stats=ExecutionStats())
        conj = ConjunctiveConstraint(interval(x, 0, 10))
        assert kernel.quick_satisfiable(conj, ctx) is None
        assert ctx.stats.numeric_fallbacks == 0  # gated, not fallen

    def test_equality_systems_stay_exact(self):
        ctx = QueryContext(stats=ExecutionStats())
        conj = self._dense().conjoin(
            LinearConstraint.build(x, Relop.EQ, 1))
        assert kernel.quick_satisfiable(conj, ctx) is None

    def test_numeric_off_context_stays_exact(self):
        ctx = QueryContext(stats=ExecutionStats(), numeric=False)
        assert kernel.quick_satisfiable(self._dense(), ctx) is None

    def test_missing_fast_extra_stays_exact(self):
        with numeric.force(False):
            ctx = QueryContext(stats=ExecutionStats())
            assert not ctx.numeric_active()
            assert kernel.quick_satisfiable(self._dense(), ctx) is None

    @pytest.mark.skipif(not numeric.numeric_available(),
                        reason="deciding needs the fast extra")
    def test_is_satisfiable_books_numeric_stats(self):
        ctx = QueryContext(stats=ExecutionStats(), cache=None)
        assert is_satisfiable(self._dense(seed=9), ctx)
        assert ctx.stats.numeric_accepts == 1
        assert ctx.stats.simplex_solves == 0

"""Unit tests for disjunctive constraints."""

from fractions import Fraction

import pytest

from repro.constraints.atoms import Eq, Ge, Le, Lt, Ne
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.terms import variables
from repro.errors import ConstraintFamilyError

x, y, z = variables("x y z")


def conj(*atoms):
    return ConjunctiveConstraint.of(*atoms)


def interval(lo, hi):
    return conj(Ge(x, lo), Le(x, hi))


class TestConstruction:
    def test_false_is_empty(self):
        assert DisjunctiveConstraint.false().is_syntactically_false()

    def test_true(self):
        assert DisjunctiveConstraint.true().is_true()

    def test_false_disjuncts_dropped(self):
        d = DisjunctiveConstraint([ConjunctiveConstraint.false(),
                                   interval(0, 1)])
        assert len(d) == 1

    def test_true_disjunct_collapses(self):
        d = DisjunctiveConstraint([interval(0, 1),
                                   ConjunctiveConstraint.true()])
        assert d.is_true()
        assert len(d) == 1

    def test_syntactic_duplicates_removed(self):
        d = DisjunctiveConstraint([interval(0, 1), interval(0, 1)])
        assert len(d) == 1

    def test_atoms_coerced(self):
        d = DisjunctiveConstraint([Le(x, 1)])
        assert len(d) == 1

    def test_type_check(self):
        with pytest.raises(TypeError):
            DisjunctiveConstraint(["nope"])


class TestLogic:
    def test_disjoin(self):
        d = DisjunctiveConstraint([interval(0, 1)]).disjoin(
            DisjunctiveConstraint([interval(2, 3)]))
        assert len(d) == 2

    def test_conjoin_distributes(self):
        d = DisjunctiveConstraint([interval(0, 1), interval(2, 3)])
        result = d.conjoin(conj(Le(x, 2)))
        assert result.holds_at({x: 1})
        assert result.holds_at({x: 2})
        assert not result.holds_at({x: 3})

    def test_conjoin_two_disjunctions(self):
        left = DisjunctiveConstraint([interval(0, 2), interval(4, 6)])
        right = DisjunctiveConstraint([interval(1, 5)])
        result = left.conjoin(right)
        assert result.holds_at({x: 1})
        assert result.holds_at({x: 5})
        assert not result.holds_at({x: 3})

    def test_negation_of_conjunctive(self):
        d = DisjunctiveConstraint.negation_of_conjunctive(interval(0, 1))
        assert d.holds_at({x: -1})
        assert d.holds_at({x: 2})
        assert not d.holds_at({x: Fraction(1, 2)})

    def test_full_negation_roundtrip_semantics(self):
        d = DisjunctiveConstraint([interval(0, 1), interval(2, 3)])
        negated = d.negate()
        for value in (-1, 0, 1, Fraction(3, 2), 2, 3, 4):
            assert d.holds_at({x: value}) != negated.holds_at({x: value})

    def test_substitute(self):
        d = DisjunctiveConstraint([interval(0, 1)])
        assert d.substitute({x: y}).variables == {y}

    def test_rename(self):
        d = DisjunctiveConstraint([interval(0, 1)])
        assert d.rename({x: z}).variables == {z}


class TestSatEntailment:
    def test_satisfiable_any_disjunct(self):
        d = DisjunctiveConstraint([conj(Le(x, 0), Ge(x, 1)),
                                   interval(0, 1)])
        assert d.is_satisfiable()

    def test_unsatisfiable(self):
        d = DisjunctiveConstraint([conj(Le(x, 0), Ge(x, 1))])
        assert not d.is_satisfiable()

    def test_sample_point(self):
        d = DisjunctiveConstraint([conj(Le(x, 0), Ge(x, 1)),
                                   interval(5, 6)])
        point = d.sample_point()
        assert 5 <= point[x] <= 6

    def test_entails(self):
        small = DisjunctiveConstraint([interval(0, 1), interval(2, 3)])
        big = DisjunctiveConstraint([interval(0, 3)])
        assert small.entails(big)
        assert not big.entails(small)

    def test_entails_conjunctive_rhs(self):
        d = DisjunctiveConstraint([interval(0, 1), interval(2, 3)])
        assert d.entails(interval(0, 3))


class TestProjection:
    def test_projection_distributes(self):
        d = DisjunctiveConstraint([
            conj(Ge(x, 0), Le(x, 1), Eq(y, x)),
            conj(Ge(x, 2), Le(x, 3), Eq(y, x + 10)),
        ])
        result = d.project([y])
        assert result.holds_at({y: Fraction(1, 2)})
        assert result.holds_at({y: 12})
        assert not result.holds_at({y: 5})

    def test_restricted_projection_guard(self):
        four = conj(Le(x + y + z, 1), Ge(x, 0))
        w, = variables("w")
        d = DisjunctiveConstraint([four.conjoin(Ge(w, 0))])
        with pytest.raises(ConstraintFamilyError):
            d.restricted_project([x, y])  # eliminates 2 of 4, keeps 2
        # keep-one is fine:
        d.restricted_project([x])

    def test_restricted_projection_eliminate_one(self):
        d = DisjunctiveConstraint([conj(Le(x + y + z, 1), Ge(z, 0))])
        result = d.restricted_project([x, y])
        assert z not in result.variables

    def test_projection_splits_disequalities(self):
        # exists x in [0,2], x != 1, y = x  ->  y in [0,1) u (1,2]
        d = DisjunctiveConstraint([
            conj(Ge(x, 0), Le(x, 2), Ne(x, 1), Eq(y, x))])
        result = d.project([y])
        assert result.holds_at({y: 0})
        assert result.holds_at({y: 2})
        assert not result.holds_at({y: 1})
        assert len(result) == 2


class TestIdentity:
    def test_order_insensitive(self):
        a = DisjunctiveConstraint([interval(0, 1), interval(2, 3)])
        b = DisjunctiveConstraint([interval(2, 3), interval(0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_str_false(self):
        assert str(DisjunctiveConstraint.false()) == "FALSE"

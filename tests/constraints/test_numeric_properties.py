"""Property tests: the numeric kernel agrees with the exact solver on
random constraint systems, adversarial near-boundary systems fall
through to the exact path, and canonical forms are byte-identical with
the fast path on and off."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import kernel, matrix
from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.cst_object import CSTObject
from repro.constraints.satisfiability import is_satisfiable
from repro.constraints.terms import LinearExpression, Variable
from repro.runtime.context import ExecutionStats, QueryContext
from repro.workloads.random_constraints import (
    make_variables,
    random_dnf,
    random_polytope,
)

VARS = make_variables(3)

_coeff = st.integers(min_value=-6, max_value=6)
_bound = st.fractions(min_value=-50, max_value=50,
                      max_denominator=12)
_relop = st.sampled_from([Relop.LE, Relop.LT, Relop.GE, Relop.GT,
                          Relop.NE])


@st.composite
def conjunctions(draw):
    n_atoms = draw(st.integers(min_value=1, max_value=10))
    atoms = []
    for _ in range(n_atoms):
        coeffs = {v: Fraction(draw(_coeff)) for v in VARS}
        if not any(coeffs.values()):
            coeffs[VARS[0]] = Fraction(1)
        atoms.append(LinearConstraint.build(
            LinearExpression(coeffs), draw(_relop), draw(_bound)))
    return ConjunctiveConstraint(atoms)


def _exact(conj) -> bool:
    return is_satisfiable(
        conj, QueryContext(stats=ExecutionStats(), cache=None,
                           numeric=False))


class TestKernelSoundness:
    @given(conj=conjunctions())
    @settings(max_examples=120, deadline=None)
    def test_verdicts_match_exact_answers(self, conj):
        """Every decided verdict equals the exact answer; UNKNOWN is
        always allowed (and handled by the fallback)."""
        if conj.is_syntactically_false():
            return
        ps = matrix.pack_conjunction(conj)
        if ps is None:
            return
        verdict = kernel.classify_system(ps)
        if verdict != kernel.UNKNOWN:
            assert (verdict == kernel.FEASIBLE) == _exact(conj)

    @given(conj=conjunctions())
    @settings(max_examples=60, deadline=None)
    def test_quick_satisfiable_matches_exact(self, conj):
        if conj.is_syntactically_false():
            return
        ctx = QueryContext(stats=ExecutionStats(), cache=None)
        verdict = kernel.quick_satisfiable(conj, ctx)
        if verdict is not None:
            assert verdict == _exact(conj)

    @given(value=_bound, width=st.fractions(
        min_value=0, max_value=Fraction(1, 10 ** 9),
        max_denominator=10 ** 12))
    @settings(max_examples=60, deadline=None)
    def test_near_boundary_slivers_fall_through(self, value, width):
        """|slack| below ε: the kernel must not *mis*decide — a
        nonempty sliver never rejects, an empty hairline never
        accepts."""
        x = VARS[0]
        sliver = ConjunctiveConstraint(
            [LinearConstraint.build(x, Relop.GE, value),
             LinearConstraint.build(x, Relop.LE, value + width)])
        verdict = kernel.classify_system(matrix.pack_conjunction(sliver))
        assert verdict != kernel.INFEASIBLE
        hairline = ConjunctiveConstraint(
            [LinearConstraint.build(x, Relop.GT, value),
             LinearConstraint.build(x, Relop.LT, value + width)])
        if not hairline.is_syntactically_false():
            verdict = kernel.classify_system(
                matrix.pack_conjunction(hairline))
            if width == 0:
                assert verdict != kernel.FEASIBLE


class TestCanonicalFormsUnaffected:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_canonical_reprs_identical_numeric_on_and_off(self, seed):
        """Canonical forms are exact-rational artifacts: bytes must not
        depend on whether the float kernel screened the disjunct
        pruning."""
        dnf = random_dnf(2, 4, 6, seed=seed, infeasible_fraction=0.5)
        vars_ = make_variables(2)
        on = QueryContext(stats=ExecutionStats(), cache=None)
        off = QueryContext(stats=ExecutionStats(), cache=None,
                           numeric=False)
        with on.activate():
            repr_on = repr(CSTObject(vars_, dnf))
        with off.activate():
            repr_off = repr(CSTObject(vars_, dnf))
        assert repr_on == repr_off

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=30, deadline=None)
    def test_is_satisfiable_identical_numeric_on_and_off(self, seed):
        conj = random_polytope(3, 9, seed=seed)
        on = QueryContext(stats=ExecutionStats(), cache=None)
        off = QueryContext(stats=ExecutionStats(), cache=None,
                           numeric=False)
        assert is_satisfiable(conj, on) == is_satisfiable(conj, off)

"""Evaluator tests for disjunctive, negated and mixed formula shapes
(the full Section 4.2 formula grammar)."""

import pytest

from repro import lyric
from repro.errors import EvaluationError
from repro.model.office import build_office_database


@pytest.fixture
def office():
    return build_office_database()


class TestDisjunctiveFormulas:
    def test_select_union_object(self, office):
        """A SELECT formula with 'or' creates a disjunctive CST oid."""
        db, _ = office
        result = lyric.query(db, """
            SELECT ((s) | s < 0 or s > 1) FROM Desk X
        """)
        cst = result.single().values[0].cst
        assert cst.contains_point(-1)
        assert cst.contains_point(2)
        assert not cst.contains_point(0)

    def test_union_of_refs(self, office):
        """Union of the desk extent and its shifted copy."""
        db, _ = office
        result = lyric.query(db, """
            SELECT ((w,z) | E or (E(a,b) and w = a + 100 and z = b))
            FROM Desk X WHERE X.extent[E]
        """)
        cst = result.single().values[0].cst
        assert cst.contains_point(0, 0)
        assert cst.contains_point(100, 0)
        assert not cst.contains_point(50, 0)

    def test_sat_with_disjunction(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT O FROM Object_in_Room O
            WHERE O.location[L]
              and SAT(L(x,y) and (x >= 100 or y <= 5))
        """)
        assert len(result) == 1  # y = 4 <= 5

    def test_entailment_into_disjunction(self, office):
        """Stored extent is covered by two half-planes."""
        db, _ = office
        result = lyric.query(db, """
            SELECT X FROM Desk X WHERE X.extent[E]
              and (E(w,z) |= (w <= 0 or w >= 0))
        """)
        assert len(result) == 1

    def test_entailment_into_disjunction_gap(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT X FROM Desk X WHERE X.extent[E]
              and (E(w,z) |= (w <= -1 or w >= 1))
        """)
        assert len(result) == 0  # extent crosses the gap (-1, 1)


class TestNegatedFormulas:
    def test_not_in_sat(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT X FROM Desk X WHERE X.extent[E]
              and SAT(E(w,z) and not (0 <= w <= 1))
        """)
        assert len(result) == 1  # part of the extent is outside [0,1]

    def test_negating_ref_conjunction(self, office):
        """not(E) of a conjunctive stored constraint is fine (it is a
        disjunction of negated atoms)."""
        db, _ = office
        result = lyric.query(db, """
            SELECT ((w,z) | not E) FROM Desk X WHERE X.extent[E]
        """)
        cst = result.single().values[0].cst
        assert cst.contains_point(5, 0)
        assert not cst.contains_point(0, 0)

    def test_double_negation(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT ((w,z) | not (not E)) FROM Desk X WHERE X.extent[E]
        """)
        cst = result.single().values[0].cst
        assert cst.contains_point(0, 0)
        assert not cst.contains_point(5, 0)


class TestFamilyErrorsSurface:
    def test_negation_of_disjunction_de_morgan(self, office):
        """Negating a disjunctive body stays in the families (the
        result is the complementary region)."""
        db, _ = office
        result = lyric.query(db, """
            SELECT ((s) | not (s < 0 or s > 1)) FROM Desk X
        """)
        cst = result.single().values[0].cst
        assert cst.contains_point(0)
        assert cst.contains_point(1)
        assert not cst.contains_point(2)

    def test_negate_guard_on_existential(self):
        """The engine-level guard: negating an existential constraint
        is undefined in the paper's families.  (Unreachable from query
        syntax — bodies are quantifier-free — but enforced for direct
        API users.)"""
        from repro.core.formulas import _negate
        from repro.constraints.conjunctive import ConjunctiveConstraint
        from repro.constraints.existential import (
            ExistentialConjunctiveConstraint)
        from repro.constraints.atoms import Le
        from repro.constraints.terms import variables
        a, b = variables("a b")
        ex = ExistentialConjunctiveConstraint(
            ConjunctiveConstraint.of(Le(a - b, 0)), [b])
        with pytest.raises(EvaluationError):
            _negate(ex)


class TestMixedShapes:
    def test_projection_of_disjunction(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT ((w) | E or (0 <= w <= 1 and z = 99))
            FROM Desk X WHERE X.extent[E]
        """)
        cst = result.single().values[0].cst
        assert cst.dimension == 1
        assert cst.contains_point(-4)  # from the extent
        assert cst.contains_point(1)   # from both

    def test_chained_everything(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT X,
                   ((u,v) | E and D and x = 0 and y = 0),
                   MAX(u SUBJECT TO ((u,v) | E and D and x = 0
                                     and y = 0))
            FROM Desk X
            WHERE X.extent[E] and X.translation[D]
              and SAT(E and D) and not X.color = 'blue'
        """)
        row = result.single()
        assert row.values[1].cst.contains_point(4, 2)
        assert row.values[2].value == 4

"""Unit tests for the fluent query builder."""

import pytest

from repro import lyric
from repro.core import ast
from repro.core.builder import QueryBuilder
from repro.errors import LyricSyntaxError
from repro.model.office import build_office_database


@pytest.fixture
def office():
    return build_office_database()


class TestBuilding:
    def test_minimal(self):
        query = QueryBuilder().select("X").from_("Desk", "X").build()
        assert isinstance(query, ast.Query)
        assert query.from_items == (ast.FromItem("Desk", "X"),)

    def test_named_items(self):
        query = (QueryBuilder()
                 .select("kind = X.name", "X")
                 .from_("Desk", "X").build())
        assert query.select[0].name == "kind"

    def test_where_conjunction(self):
        query = (QueryBuilder().select("Y").from_("Desk", "X")
                 .where("X.drawer[Y]", "X.color = 'red'").build())
        assert isinstance(query.where, ast.WAnd)
        assert len(query.where.parts) == 2

    def test_where_any(self):
        query = (QueryBuilder().select("X").from_("Desk", "X")
                 .where_any("X.color = 'red'", "X.color = 'blue'")
                 .build())
        assert isinstance(query.where, ast.WOr)

    def test_where_not(self):
        query = (QueryBuilder().select("X").from_("Desk", "X")
                 .where_not("X.color = 'red'").build())
        assert isinstance(query.where, ast.WNot)

    def test_missing_select_rejected(self):
        with pytest.raises(LyricSyntaxError):
            QueryBuilder().from_("Desk", "X").build()

    def test_missing_from_rejected(self):
        with pytest.raises(LyricSyntaxError):
            QueryBuilder().select("X").build()

    def test_fragment_syntax_error_carries_position(self):
        with pytest.raises(LyricSyntaxError):
            QueryBuilder().select("X +")

    def test_snapshots_are_independent(self):
        builder = QueryBuilder().select("X").from_("Desk", "X")
        first = builder.build()
        builder.where("X.color = 'red'")
        second = builder.build()
        assert first.where is None
        assert second.where is not None


class TestExecution:
    def test_equivalent_to_text_query(self, office):
        db, _ = office
        built = (QueryBuilder()
                 .select("CO")
                 .select_formula("u,v", "E and D and x = 6 and y = 4")
                 .from_("Office_Object", "CO")
                 .where("CO.extent[E]", "CO.translation[D]")
                 .run(db))
        text = lyric.query(db, """
            SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
            FROM Office_Object CO
            WHERE CO.extent[E] and CO.translation[D]
        """)
        assert [r.values for r in built] == [r.values for r in text]

    def test_where_sat(self, office):
        db, _ = office
        result = (QueryBuilder()
                  .select("O")
                  .from_("Object_in_Room", "O")
                  .where("O.location[L]")
                  .where_sat("L(x,y) and 0 <= x <= 10")
                  .run(db))
        assert len(result) == 1

    def test_where_entails(self, office):
        db, _ = office
        result = (QueryBuilder()
                  .select("DSK")
                  .from_("Desk", "DSK")
                  .where("DSK.drawer_center[C]")
                  .where_entails("C(p,q)", "p = -2")
                  .run(db))
        assert len(result) == 1

    def test_select_max(self, office):
        db, _ = office
        result = (QueryBuilder()
                  .select_max("u", "E and D and x = 6 and y = 4",
                              head="u,v", name="rightmost")
                  .from_("Office_Object", "CO")
                  .where("CO.extent[E]", "CO.translation[D]")
                  .run(db))
        assert result.columns == ("rightmost",)
        assert result.scalars() == [10]

    def test_select_min_point(self, office):
        db, _ = office
        result = (QueryBuilder()
                  .select_min_point("u + v",
                                    "E and D and x = 6 and y = 4",
                                    head="u,v")
                  .from_("Office_Object", "CO")
                  .where("CO.extent[E]", "CO.translation[D]")
                  .run(db))
        point = result.single().values[0].cst
        assert point.contains_point(2, 2)

    def test_oid_function(self, office):
        db, oids = office
        result = (QueryBuilder()
                  .select("X")
                  .from_("Desk", "X")
                  .oid_function_of("X", name="pick")
                  .run(db))
        from repro.model.oid import FunctionalOid
        assert result.single().oid \
            == FunctionalOid("pick", [oids.standard_desk])

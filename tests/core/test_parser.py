"""Unit tests for the LyriC parser."""

from fractions import Fraction

import pytest

from repro.core import ast
from repro.core.parser import parse, parse_query, parse_view
from repro.errors import LyricSyntaxError
from repro.model.oid import LiteralOid
from repro.model.paths import PathExpression, VarRef


class TestBasicQueries:
    def test_minimal(self):
        query = parse_query("SELECT X FROM Desk X")
        assert len(query.select) == 1
        assert query.from_items == (ast.FromItem("Desk", "X"),)
        assert query.where is None

    def test_multiple_from(self):
        query = parse_query(
            "SELECT X FROM Desk X, Office_Object Y, Drawer Z")
        assert [f.class_name for f in query.from_items] \
            == ["Desk", "Office_Object", "Drawer"]

    def test_cst_class_in_from(self):
        query = parse_query("SELECT X FROM CST(2) X")
        assert query.from_items[0].class_name == "CST(2)"

    def test_named_select_items(self):
        query = parse_query("SELECT first = X, second = Y "
                            "FROM Desk X, Desk Y")
        assert query.select[0].name == "first"
        assert query.select[1].name == "second"

    def test_oid_function_of(self):
        query = parse_query(
            "SELECT X FROM Desk X OID FUNCTION OF X")
        assert query.oid_function_of == ("X",)

    def test_case_insensitive_keywords(self):
        query = parse_query("select X from Desk X where X.color")
        assert isinstance(query.where, ast.WPath)

    def test_statement_dispatch(self):
        assert isinstance(parse("SELECT X FROM Desk X"), ast.Query)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(LyricSyntaxError):
            parse_query("SELECT X FROM Desk X extra")


class TestPathExpressions:
    def where(self, text) -> ast.Where:
        return parse_query(f"SELECT X FROM Desk X WHERE {text}").where

    def test_simple_path_predicate(self):
        node = self.where("X.drawer.color")
        assert isinstance(node, ast.WPath)
        assert str(node.path) == "X.drawer.color"

    def test_selectors(self):
        node = self.where("X.drawer[Y].color['red']")
        path = node.path
        assert path.steps[0].selector == VarRef("Y")
        assert path.steps[1].selector == LiteralOid("red")

    def test_numeric_selector(self):
        node = self.where("X.size[3]")
        assert node.path.steps[0].selector == LiteralOid(Fraction(3))

    def test_comparison_to_literal(self):
        node = self.where("X.color = 'red'")
        assert isinstance(node, ast.WCompare)
        assert node.op == "="
        assert node.right == LiteralOid("red")

    def test_comparison_normalization(self):
        assert self.where("X.a == 3").op == "="
        assert self.where("X.a <> 3").op == "!="

    def test_contains(self):
        node = self.where("X.drawers contains Y.drawers")
        assert node.op == "contains"

    def test_boolean_structure(self):
        node = self.where("X.a and (X.b or not X.c)")
        assert isinstance(node, ast.WAnd)
        assert isinstance(node.parts[1], ast.WOr)
        assert isinstance(node.parts[1].parts[1], ast.WNot)


class TestFormulas:
    def test_select_formula(self):
        query = parse_query("""
            SELECT ((u,v) | E and D and x = 6 and y = 4)
            FROM Desk X WHERE X.extent[E] and X.translation[D]
        """)
        item = query.select[0].expr
        assert isinstance(item, ast.FormulaOut)
        assert item.formula.head == ("u", "v")
        body = item.formula.body
        assert isinstance(body, ast.FAnd)
        assert isinstance(body.parts[0], ast.FRef)
        assert isinstance(body.parts[2], ast.FAtom)

    def test_ref_with_args(self):
        query = parse_query("""
            SELECT ((u,v) | E(w,z) and w = u) FROM Desk X
        """)
        ref = query.select[0].expr.formula.body.parts[0]
        assert ref.args == ("w", "z")

    def test_path_ref_in_formula(self):
        query = parse_query("""
            SELECT ((w,z) | DSK.drawer.extent(w,z) and z >= w)
            FROM Desk DSK
        """)
        ref = query.select[0].expr.formula.body.parts[0]
        assert isinstance(ref.source, PathExpression)
        assert ref.args == ("w", "z")

    def test_sat_keyword(self):
        query = parse_query(
            "SELECT X FROM Desk X WHERE SAT(E and x <= 3)")
        assert isinstance(query.where, ast.WSat)

    def test_double_paren_sat(self):
        query = parse_query(
            "SELECT X FROM Desk X WHERE ((L(x,y) and 0 <= x <= 10))")
        assert isinstance(query.where, ast.WSat)

    def test_entailment(self):
        query = parse_query(
            "SELECT X FROM Desk X WHERE (C(p,q) |= p = 0)")
        assert isinstance(query.where, ast.WEntails)

    def test_entailment_projection_operands(self):
        query = parse_query("""
            SELECT X FROM Desk X
            WHERE ((x) | E) |= ((y) | 0 <= y)
        """)
        assert isinstance(query.where, ast.WEntails)
        assert query.where.left.head == ("x",)

    def test_chained_atom(self):
        query = parse_query(
            "SELECT ((x) | 0 <= x <= 10) FROM Desk D")
        body = query.select[0].expr.formula.body
        assert isinstance(body, ast.FAnd)
        assert len(body.parts) == 2

    def test_disjunctive_formula(self):
        query = parse_query(
            "SELECT ((x) | x < 0 or x > 1) FROM Desk D")
        assert isinstance(query.select[0].expr.formula.body, ast.FOr)

    def test_arithmetic(self):
        query = parse_query(
            "SELECT ((u) | u = 2*x + 3 - y/2) FROM Desk D")
        atom = query.select[0].expr.formula.body
        assert isinstance(atom, ast.FAtom)

    def test_path_constant_in_formula(self):
        query = parse_query(
            "SELECT ((u) | u <= D.width) FROM Desk D")
        atom = query.select[0].expr.formula.body
        assert isinstance(atom.right, ast.APath)


class TestOptimize:
    def test_max(self):
        query = parse_query("""
            SELECT MAX(u SUBJECT TO ((u,v) | E)) FROM Desk D
        """)
        expr = query.select[0].expr
        assert isinstance(expr, ast.OptimizeOut)
        assert expr.kind is ast.OptimizeKind.MAX
        assert expr.formula.head == ("u", "v")

    def test_min_point(self):
        query = parse_query("""
            SELECT MIN_POINT(u + v SUBJECT TO ((u,v) | E)) FROM Desk D
        """)
        assert query.select[0].expr.kind is ast.OptimizeKind.MIN_POINT

    def test_bare_body_subject_to(self):
        query = parse_query(
            "SELECT MAX(x SUBJECT TO E and x <= 3) FROM Desk D")
        assert query.select[0].expr.formula.head is None


class TestCreateView:
    VIEW = """
        CREATE VIEW Overlap AS SUBCLASS OF Office_Object
        SELECT first = X, second = Y
        SIGNATURE first => Office_Object, second =>> Office_Object
        FROM Office_Object X, Office_Object Y
        OID FUNCTION OF X, Y
        WHERE X.extent[U] and Y.extent[V] and ((U and V))
    """

    def test_parses(self):
        view = parse_view(self.VIEW)
        assert view.name == "Overlap"
        assert view.superclass == "Office_Object"
        assert view.query.oid_function_of == ("X", "Y")

    def test_signature(self):
        view = parse_view(self.VIEW)
        assert view.signature[0] == ast.SignatureItem(
            "first", "Office_Object", False)
        assert view.signature[1].set_valued

    def test_view_oid_function_name(self):
        view = parse_view(self.VIEW)
        assert view.query.oid_function_name == "Overlap"

    def test_parse_view_rejects_query(self):
        with pytest.raises(LyricSyntaxError):
            parse_view("SELECT X FROM Desk X")

    def test_parse_query_rejects_view(self):
        with pytest.raises(LyricSyntaxError):
            parse_query(self.VIEW)


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(LyricSyntaxError):
            parse_query("SELECT X WHERE X.color")

    def test_error_carries_position(self):
        try:
            parse_query("SELECT X\nFROM Desk")
        except LyricSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")

    def test_unbalanced_formula(self):
        with pytest.raises(LyricSyntaxError):
            parse_query("SELECT ((u | E) FROM Desk D")

"""Unit tests for result sets."""

from fractions import Fraction

import pytest

from repro.constraints.atoms import Le
from repro.constraints.cst_object import CSTObject
from repro.constraints.terms import variables
from repro.core.result import ResultRow, ResultSet
from repro.model.oid import CstOid, LiteralOid, oid

x, = variables("x")


def rows():
    rs = ResultSet(("name", "size"))
    rs.add(ResultRow((LiteralOid("desk"), LiteralOid(4))))
    rs.add(ResultRow((LiteralOid("chair"), LiteralOid(2))))
    return rs


class TestBasics:
    def test_len_iter(self):
        rs = rows()
        assert len(rs) == 2
        assert [str(r[0]) for r in rs] == ["'desk'", "'chair'"]

    def test_bool(self):
        assert rows()
        assert not ResultSet(("a",))

    def test_deduplication(self):
        rs = ResultSet(("a",))
        rs.add(ResultRow((LiteralOid(1),)))
        rs.add(ResultRow((LiteralOid(1),)))
        assert len(rs) == 1

    def test_same_values_different_oid_kept(self):
        rs = ResultSet(("a",))
        rs.add(ResultRow((LiteralOid(1),), oid("r1")))
        rs.add(ResultRow((LiteralOid(1),), oid("r2")))
        assert len(rs) == 2

    def test_column(self):
        assert rows().column("size") == [LiteralOid(4), LiteralOid(2)]

    def test_row_protocol(self):
        row = rows().first()
        assert len(row) == 2
        assert list(row) == list(row.values)

    def test_first_empty(self):
        with pytest.raises(LookupError):
            ResultSet(("a",)).first()

    def test_single(self):
        rs = ResultSet(("a",))
        rs.add(ResultRow((LiteralOid(1),)))
        assert rs.single().values == (LiteralOid(1),)

    def test_single_raises(self):
        with pytest.raises(LookupError):
            rows().single()


class TestScalars:
    def test_strings_and_ints(self):
        rs = rows()
        assert rs.scalars("name") == ["desk", "chair"]
        assert rs.scalars("size") == [4, 2]

    def test_fractions_to_float(self):
        rs = ResultSet(("v",))
        rs.add(ResultRow((LiteralOid(Fraction(1, 2)),)))
        assert rs.scalars() == [0.5]

    def test_cst_unwrapped(self):
        rs = ResultSet(("v",))
        cst = CSTObject.from_atoms([x], [Le(x, 1)])
        rs.add(ResultRow((CstOid(cst),)))
        assert rs.scalars() == [cst]

    def test_other_oids_passthrough(self):
        rs = ResultSet(("v",))
        rs.add(ResultRow((oid("thing"),)))
        assert rs.scalars() == [oid("thing")]

    def test_by_index(self):
        assert rows().scalars(1) == [4, 2]


class TestPretty:
    def test_header_and_rows(self):
        text = rows().pretty()
        assert text.splitlines()[0] == "name | size"
        assert "'desk'" in text

    def test_limit(self):
        text = rows().pretty(limit=1)
        assert "1 more rows" in text

    def test_row_oid_shown(self):
        rs = ResultSet(("a",))
        rs.add(ResultRow((LiteralOid(1),), oid("r1")))
        assert "<r1>" in rs.pretty()

    def test_repr(self):
        assert "2 rows" in repr(rows())

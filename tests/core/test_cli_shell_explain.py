"""Tests for EXPLAIN support, the subsumption opt-in, and the shell."""

import io

import pytest

from repro import lyric
from repro.cli import main
from repro.constraints.canonical import remove_subsumed_disjuncts
from repro.constraints.atoms import Ge, Le
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.terms import variables
from repro.model.office import build_office_database

x, = variables("x")


def interval(lo, hi):
    return ConjunctiveConstraint.of(Ge(x, lo), Le(x, hi))


class TestSubsumption:
    def test_contained_disjunct_removed(self):
        d = DisjunctiveConstraint([interval(0, 1), interval(0, 5)])
        reduced = remove_subsumed_disjuncts(d)
        assert len(reduced) == 1
        assert reduced.disjuncts[0] == interval(0, 5)

    def test_split_cover_removed(self):
        """A disjunct covered only by the *union* of the others — the
        genuinely co-NP case a single-containment check misses."""
        d = DisjunctiveConstraint([
            interval(0, 3),        # covered by [0,2] u [2,5]
            interval(0, 2),
            interval(2, 5),
        ])
        reduced = remove_subsumed_disjuncts(d)
        assert len(reduced) == 2
        assert interval(0, 3) not in reduced.disjuncts

    def test_independent_disjuncts_kept(self):
        d = DisjunctiveConstraint([interval(0, 1), interval(3, 4)])
        assert len(remove_subsumed_disjuncts(d)) == 2

    def test_semantics_preserved(self):
        d = DisjunctiveConstraint([
            interval(0, 3), interval(0, 2), interval(2, 5)])
        reduced = remove_subsumed_disjuncts(d)
        for value in (0, 1, 2, 3, 4, 5, -1, 6):
            assert d.holds_at({x: value}) \
                == reduced.holds_at({x: value})


class TestExplain:
    def test_explain_renders_plan(self):
        db, _ = build_office_database()
        text = lyric.explain(db, """
            SELECT Y FROM Desk X WHERE X.drawer[Y].color['red']
        """)
        assert "Scan(class:Desk)" in text
        assert "attr:color" in text

    def test_explain_unoptimized_differs(self):
        db, _ = build_office_database()
        query = """
            SELECT X FROM Desk X
            WHERE X.drawer[Y] and X.color = 'red'
        """
        optimized = lyric.explain(db, query, use_optimizer=True)
        raw = lyric.explain(db, query, use_optimizer=False)
        assert "Scan" in optimized and "Scan" in raw

    def test_cli_explain(self, capsys):
        assert main(["query", "--office", "--explain",
                     "SELECT X FROM Desk X"]) == 0
        assert "Scan(class:Desk)" in capsys.readouterr().out


class TestShell:
    def run_shell(self, monkeypatch, capsys, script: str):
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        code = main(["shell", "--office"])
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_query_and_quit(self, monkeypatch, capsys):
        code, out, _ = self.run_shell(
            monkeypatch, capsys,
            "SELECT X FROM Desk X;\nquit;\n")
        assert code == 0
        assert "standard_desk" in out

    def test_multiline_statement(self, monkeypatch, capsys):
        code, out, _ = self.run_shell(
            monkeypatch, capsys,
            "SELECT X\nFROM Desk X;\n")
        assert "standard_desk" in out

    def test_error_recovers(self, monkeypatch, capsys):
        code, out, err = self.run_shell(
            monkeypatch, capsys,
            "SELECT nonsense;\nSELECT X FROM Desk X;\n")
        assert code == 0
        assert "error:" in err
        assert "standard_desk" in out

    def test_create_view_in_shell(self, monkeypatch, capsys):
        code, out, _ = self.run_shell(
            monkeypatch, capsys,
            "CREATE VIEW Red AS SUBCLASS OF Office_Object "
            "SELECT item = X SIGNATURE item => Office_Object "
            "FROM Office_Object X OID FUNCTION OF X "
            "WHERE X.color = 'red';\n")
        assert "Red: 1 instances" in out

    def test_eof_exits(self, monkeypatch, capsys):
        code, _, _ = self.run_shell(monkeypatch, capsys, "")
        assert code == 0

"""Tests for prepared queries (analysis reuse)."""

import pytest

from repro import lyric
from repro.model.office import build_office_database, build_office_schema
from repro.model.database import Database
from repro.errors import LyricSyntaxError


@pytest.fixture
def office():
    return build_office_database()


class TestPrepare:
    def test_run_matches_direct_query(self, office):
        db, _ = office
        text = """
            SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
            FROM Office_Object CO
            WHERE CO.extent[E] and CO.translation[D]
        """
        prepared = lyric.prepare(db, text)
        direct = lyric.query(db, text)
        assert [r.values for r in prepared.run(db)] \
            == [r.values for r in direct]

    def test_reusable_across_runs(self, office):
        db, oids = office
        prepared = lyric.prepare(db, "SELECT X FROM Desk X")
        assert len(prepared.run(db)) == 1
        db.add_object("second_desk", "Desk", {"color": "blue"})
        assert len(prepared.run(db)) == 2

    def test_equal_content_schema_is_accepted(self, office):
        # Binding is by schema *content* (fingerprint), not object
        # identity — a Store-restored database reuses the statement.
        db, _ = office
        prepared = lyric.prepare(db, "SELECT X FROM Desk X")
        other = Database(build_office_schema())
        assert len(prepared.run(other)) == 0

    def test_mutated_schema_is_rejected(self, office):
        db, _ = office
        prepared = lyric.prepare(db, "SELECT X FROM Desk X")
        other_schema = build_office_schema()
        other_schema.define("Shelf", parents=["Office_Object"])
        with pytest.raises(ValueError):
            prepared.run(Database(other_schema))

    def test_warnings_exposed(self, office):
        db, _ = office
        prepared = lyric.prepare(
            db, "SELECT X FROM Desk X WHERE X.location[L]")
        assert len(prepared.warnings) == 1

    def test_syntax_error_at_prepare_time(self, office):
        db, _ = office
        with pytest.raises(LyricSyntaxError):
            lyric.prepare(db, "SELECT FROM")

"""Unit tests for the LyriC tokenizer."""

import pytest

from repro.core.lexer import Token, tokenize
from repro.errors import LyricSyntaxError


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text) if t.kind != "eof"]


class TestTokens:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.kind == "kw" and t.value == "select"
                   for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        (token, _) = tokenize("MyDesk")
        assert token.kind == "ident"
        assert token.value == "MyDesk"

    def test_numbers(self):
        assert values("12 3.5") == ["12", "3.5"]

    def test_strings(self):
        (token, _) = tokenize("'red desk'")
        assert token.kind == "string"
        assert token.value == "red desk"

    def test_string_escapes(self):
        (token, _) = tokenize(r"'it\'s'")
        assert token.value == "it's"

    def test_symbols(self):
        assert values("|= => =>> <= >= != <> ==") \
            == ["|=", "=>", "=>>", "<=", ">=", "!=", "<>", "=="]

    def test_entailment_not_split(self):
        tokens = tokenize("A |= B")
        assert tokens[1].value == "|="

    def test_projection_bar(self):
        assert values("((x) | y)") == ["(", "(", "x", ")", "|", "y", ")"]

    def test_comments_skipped(self):
        assert values("x -- comment\n y") == ["x", "y"]

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_unknown_character(self):
        with pytest.raises(LyricSyntaxError):
            tokenize("x # y")

    def test_brackets_and_dots(self):
        assert values("X.drawer[Y]") == ["X", ".", "drawer", "[", "Y", "]"]

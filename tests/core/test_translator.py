"""Tests for the Section 5 translation to flat SQL with constraints,
differential-checked against the naive evaluator (experiment E8)."""

import pytest

from repro import lyric
from repro.core.translator import TranslationError, translate
from repro.model.office import (
    add_file_cabinet,
    build_office_database,
)


@pytest.fixture
def office():
    db, oids = build_office_database()
    cabinet = add_file_cabinet(db, location=(3, 4))
    return db, oids, cabinet


def assert_same_answers(db, text):
    naive = lyric.query(db, text)
    translated = lyric.query_translated(db, text)
    unoptimized = lyric.query_translated(db, text, use_optimizer=False)
    naive_rows = sorted(
        (tuple(map(str, r.values)), str(r.oid)) for r in naive)
    translated_rows = sorted(
        (tuple(map(str, r.values)), str(r.oid)) for r in translated)
    raw_rows = sorted(
        (tuple(map(str, r.values)), str(r.oid)) for r in unoptimized)
    assert naive_rows == translated_rows
    assert naive_rows == raw_rows
    return naive


QUERIES = [
    "SELECT X FROM Desk X",
    "SELECT X, Y FROM Desk X, File_Cabinet Y",
    "SELECT Y FROM Desk X WHERE X.drawer[Y]",
    "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]",
    "SELECT Y FROM Desk X WHERE X.drawer[Y].color['red']",
    "SELECT X FROM Office_Object X WHERE X.color = 'red'",
    "SELECT X FROM Office_Object X WHERE not X.color = 'red'",
    """SELECT X FROM Office_Object X
       WHERE X.color = 'red' or X.color = 'grey'""",
    """SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
       FROM Office_Object CO
       WHERE CO.extent[E] and CO.translation[D]""",
    """SELECT O FROM Object_in_Room O
       WHERE O.location[L] and ((L(x,y) and 0 <= x <= 10))""",
    """SELECT DSK FROM Desk DSK
       WHERE DSK.drawer_center[C] and (C(p,q) |= p = -2)""",
    """SELECT MAX(u SUBJECT TO ((u,v) | E and D and x = 6 and y = 4))
       FROM Office_Object CO
       WHERE CO.extent[E] and CO.translation[D]""",
    """SELECT X FROM Desk X OID FUNCTION OF X""",
]


class TestDifferential:
    @pytest.mark.parametrize("text", QUERIES)
    def test_same_answers(self, office, text):
        db, _, _ = office
        assert_same_answers(db, text)

    def test_nonempty_coverage(self, office):
        """The differential corpus is not vacuous: most queries return
        rows."""
        db, _, _ = office
        nonempty = sum(
            1 for text in QUERIES if len(lyric.query(db, text)) > 0)
        assert nonempty >= 10


class TestPlanShape:
    def test_translation_produces_plan(self, office):
        db, _, _ = office
        translated = translate(db, """
            SELECT Y FROM Desk X WHERE X.drawer[Y].color['red']
        """)
        text = translated.plan.explain()
        assert "Scan(class:Desk)" in text
        assert "attr:drawer" in text
        assert "attr:color" in text

    def test_where_formula_becomes_cst_predicate(self, office):
        db, _, _ = office
        translated = translate(db, """
            SELECT O FROM Object_in_Room O
            WHERE O.location[L] and ((L(x,y) and 0 <= x <= 10))
        """)
        assert "SAT" in translated.plan.explain()

    def test_oid_function_column(self, office):
        db, _, _ = office
        translated = translate(
            db, "SELECT X FROM Desk X OID FUNCTION OF X")
        assert translated.oid_column == "_rowoid"


class TestFragmentLimits:
    def test_attribute_variables_rejected(self, office):
        db, _, _ = office
        with pytest.raises(TranslationError):
            translate(db, "SELECT A FROM Drawer D WHERE D.A['red']")

    def test_path_under_or_rejected(self, office):
        db, _, _ = office
        with pytest.raises(TranslationError):
            translate(db, """
                SELECT X FROM Desk X
                WHERE X.drawer[Y] and (X.color['red'] or X.drawer[Z])
            """)

    def test_multistep_select_path_rejected(self, office):
        db, _, _ = office
        with pytest.raises(TranslationError):
            translate(db, "SELECT X.drawer.color FROM Desk X")

"""Unit tests for the FP-style constraint algebra (Section 5's
future-work sketch)."""

import pytest

from repro.constraints.geometry import box
from repro.constraints.terms import variables
from repro.core import fpalgebra as fp
from repro.model.office import add_file_cabinet, build_office_database

x, y, u, v = variables("x y u v")


def boxes():
    return [
        box([x, y], [(0, 2), (0, 2)]),
        box([x, y], [(1, 3), (1, 3)]),
        box([x, y], [(10, 12), (10, 12)]),
    ]


class TestPrimitives:
    def test_intersect(self):
        window = box([x, y], [(1, 11), (1, 11)])
        clipped = fp.intersect(window)(boxes()[0])
        assert clipped.contains_point(1, 1)
        assert not clipped.contains_point(0, 0)

    def test_union(self):
        either = fp.union_with(boxes()[2])(boxes()[0])
        assert either.contains_point(0, 0)
        assert either.contains_point(11, 11)

    def test_project(self):
        line = fp.project([x])(boxes()[0])
        assert line.dimension == 1
        assert line.contains_point(2)

    def test_rename(self):
        renamed = fp.rename([u, v])(boxes()[0])
        assert renamed.schema == (u, v)

    def test_predicates(self):
        assert fp.satisfiable()(boxes()[0])
        assert fp.overlaps(boxes()[1])(boxes()[0])
        assert not fp.overlaps(boxes()[2])(boxes()[0])
        assert fp.entails(box([x, y], [(-1, 5), (-1, 5)]))(boxes()[0])
        assert fp.contains_point(1, 1)(boxes()[0])


class TestForms:
    def test_map(self):
        window = box([x, y], [(1, 11), (1, 11)])
        result = fp.Map(fp.intersect(window))(boxes())
        assert len(result) == 3
        assert not result[0].contains_point(0, 0)

    def test_filter(self):
        probe = box([x, y], [(0, 1), (0, 1)])
        result = fp.Filter(fp.overlaps(probe))(boxes())
        assert len(result) == 2

    def test_fold_union(self):
        union = fp.Fold(lambda a, b: a.union(b))(boxes())
        assert union.contains_point(0, 0)
        assert union.contains_point(11, 11)
        assert not union.contains_point(6, 6)

    def test_fold_empty_needs_initial(self):
        with pytest.raises(ValueError):
            fp.Fold(lambda a, b: a.union(b))([])

    def test_fold_with_initial(self):
        from repro.constraints.cst_object import CSTObject
        initial = CSTObject.empty([x, y])
        union = fp.Fold(lambda a, b: a.union(b), initial)([])
        assert not union.is_satisfiable()

    def test_compose_pipeline(self):
        window = box([x, y], [(0, 4), (0, 4)])
        pipeline = (fp.Map(fp.intersect(window))
                    .then(fp.Filter(fp.satisfiable())))
        result = pipeline(boxes())
        assert len(result) == 2

    def test_compose_flattens(self):
        a = fp.Map(fp.project([x]))
        nested = fp.Compose((fp.Compose((a,)), a))
        assert len(nested.forms) == 2


class TestFusion:
    def test_map_map_fuses(self):
        window = box([x, y], [(0, 4), (0, 4)])
        pipeline = (fp.Map(fp.intersect(window))
                    .then(fp.Map(fp.project([x]))))
        optimized = fp.optimize(pipeline)
        assert isinstance(optimized, fp.Map)
        assert [r.dimension for r in optimized(boxes())] == [1, 1, 1]

    def test_filter_filter_fuses(self):
        probe = box([x, y], [(0, 1), (0, 1)])
        pipeline = (fp.Filter(fp.satisfiable())
                    .then(fp.Filter(fp.overlaps(probe))))
        optimized = fp.optimize(pipeline)
        assert isinstance(optimized, fp.Filter)
        assert len(optimized(boxes())) == 2

    def test_fusion_preserves_semantics(self):
        window = box([x, y], [(0, 4), (0, 4)])
        probe = box([x], [(0, 2)])
        pipeline = (fp.Map(fp.intersect(window))
                    .then(fp.Map(fp.project([x])))
                    .then(fp.Filter(fp.satisfiable()))
                    .then(fp.Filter(fp.overlaps(probe))))
        plain = pipeline(boxes())
        fused = fp.optimize(pipeline)(boxes())
        assert [str(o) for o in plain] == [str(o) for o in fused]
        # And the pipeline got shorter.
        assert len(fp.optimize(pipeline).forms) < len(pipeline.forms)

    def test_non_adjacent_not_fused(self):
        pipeline = (fp.Map(fp.project([x]))
                    .then(fp.Filter(fp.satisfiable()))
                    .then(fp.Map(fp.rename([y]))))
        optimized = fp.optimize(pipeline)
        assert isinstance(optimized, fp.Compose)
        assert len(optimized.forms) == 3


class TestDatabaseBridge:
    def test_collect_extents(self):
        db, _ = build_office_database()
        add_file_cabinet(db)
        extents = fp.collect(db, "Office_Object", "extent")
        assert len(extents) == 2
        assert all(e.dimension == 2 for e in extents)

    def test_collect_with_common_schema(self):
        db, _ = build_office_database()
        extents = fp.collect(db, "Office_Object", "extent",
                             schema=[u, v])
        assert extents[0].schema == (u, v)

    def test_collect_set_valued(self):
        db, _ = build_office_database()
        cabinet = add_file_cabinet(db)
        centers = fp.collect(db, "File_Cabinet", "drawer_center")
        assert len(centers) == 2

    def test_end_to_end_pipeline(self):
        """The union of all placed-object drawer centers overlapping
        the desk's drawer line."""
        db, _ = build_office_database()
        add_file_cabinet(db)
        centers = fp.collect(db, "Desk", "drawer_center")
        window = box(centers[0].schema, [(-3, 0), (-3, 0)])
        pipeline = (fp.Map(fp.intersect(window))
                    .then(fp.Filter(fp.satisfiable())))
        result = fp.optimize(pipeline)(centers)
        assert len(result) == 1

"""Tests for static warnings and EXPLAIN ANALYZE."""

import pytest

from repro import lyric
from repro.model.office import build_office_database


@pytest.fixture
def office():
    return build_office_database()


class TestWarnings:
    def test_type_error_path_warned(self, office):
        """X.location on a Desk is defined nowhere on its class: the
        XSQL 'type error, path statically empty' case."""
        db, _ = office
        warnings = lyric.warnings_for(db, """
            SELECT X FROM Desk X WHERE X.location[L]
        """)
        assert len(warnings) == 1
        assert "location" in warnings[0]
        assert "Desk" in warnings[0]

    def test_query_still_runs_empty(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT X FROM Desk X WHERE X.location[L]
        """)
        assert len(result) == 0

    def test_valid_query_no_warnings(self, office):
        db, _ = office
        assert lyric.warnings_for(db, """
            SELECT X FROM Desk X WHERE X.extent[E]
        """) == []

    def test_attribute_variable_not_warned(self, office):
        db, _ = office
        assert lyric.warnings_for(db, """
            SELECT A FROM Desk X WHERE X.A['red']
        """) == []

    def test_duplicate_warning_deduplicated(self, office):
        db, _ = office
        warnings = lyric.warnings_for(db, """
            SELECT X FROM Desk X
            WHERE X.location[L] and X.location[L2]
        """)
        assert len(warnings) == 1


class TestExplainAnalyze:
    def test_row_counts_annotated(self, office):
        db, _ = office
        text = lyric.explain(db, """
            SELECT Y FROM Desk X WHERE X.drawer[Y].color['red']
        """, analyze=True)
        assert "[1 rows]" in text
        assert "Scan(class:Desk)" in text

    def test_empty_plan_counts(self, office):
        db, _ = office
        text = lyric.explain(db, """
            SELECT X FROM Desk X WHERE X.color = 'blue'
        """, analyze=True)
        assert "[0 rows]" in text

    def test_unoptimized_analyze(self, office):
        db, _ = office
        text = lyric.explain(db, """
            SELECT X FROM Desk X WHERE X.color = 'red'
        """, analyze=True, use_optimizer=False)
        assert "rows]" in text

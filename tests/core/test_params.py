"""Parameterized queries: ``$name`` slots from token to result row.

Covers the whole stack — lexer token, AST nodes, semantic collection,
both evaluators resolving bindings from the context, and the shell's
PREPARE/EXECUTE verbs.
"""

import io

import pytest

from repro import lyric
from repro.cli import main
from repro.core import ast
from repro.core.lexer import tokenize
from repro.core.parser import parse_query
from repro.core.semantics import analyze
from repro.errors import EvaluationError, LyricSyntaxError
from repro.model.office import build_office_database
from repro.runtime.plancache import clear_global_plan_cache

PAPER_PARAM_QUERY = """
    SELECT CO, ((u,v) | E and D and x = $px and y = $py)
    FROM Office_Object CO
    WHERE CO.extent[E] and CO.translation[D]
"""

PAPER_LITERAL_QUERY = PAPER_PARAM_QUERY.replace("$px", "6") \
                                       .replace("$py", "4")


@pytest.fixture(autouse=True)
def _cold_plan_cache():
    clear_global_plan_cache()
    yield
    clear_global_plan_cache()


@pytest.fixture
def office():
    db, _ = build_office_database()
    return db


class TestLexer:
    def test_param_token_strips_dollar(self):
        token, _eof = tokenize("$limit")
        assert token.kind == "param"
        assert token.value == "limit"

    def test_param_allows_underscore_and_digits(self):
        token, _eof = tokenize("$max_width2")
        assert token.value == "max_width2"

    def test_bare_dollar_rejected(self):
        with pytest.raises(LyricSyntaxError):
            tokenize("$ 1")

    def test_dollar_digit_rejected(self):
        with pytest.raises(LyricSyntaxError):
            tokenize("$1")


class TestParser:
    def test_comparison_operand(self):
        query = parse_query(
            "SELECT X FROM Desk X WHERE X.color = $col")
        compare = query.where
        assert isinstance(compare.right, ast.Param)
        assert compare.right.name == "col"
        assert str(compare.right) == "$col"

    def test_arith_factor_in_formula(self):
        query = parse_query(PAPER_PARAM_QUERY)
        rendered = str(query)
        assert "$px" in rendered and "$py" in rendered

    def test_param_on_left_side(self):
        query = parse_query(
            "SELECT X FROM Desk X WHERE $col = X.color")
        assert isinstance(query.where.left, ast.Param)


class TestSemantics:
    def test_params_collected_in_first_occurrence_order(self, office):
        analysis = analyze(office.schema, parse_query(
            PAPER_PARAM_QUERY))
        assert analysis.params == ("px", "py")

    def test_where_params_precede_select_params(self, office):
        analysis = analyze(office.schema, parse_query("""
            SELECT CO, ((u,v) | E and u = $a)
            FROM Office_Object CO
            WHERE CO.extent[E] and CO.name = $b
        """))
        assert analysis.params == ("b", "a")

    def test_duplicate_slots_collected_once(self, office):
        analysis = analyze(office.schema, parse_query(
            "SELECT X FROM Desk X "
            "WHERE X.color = $c and X.name = $c"))
        assert analysis.params == ("c",)

    def test_literal_query_has_no_params(self, office):
        analysis = analyze(office.schema, parse_query(
            PAPER_LITERAL_QUERY))
        assert analysis.params == ()


class TestEvaluation:
    def test_naive_and_translated_agree(self, office):
        bindings = {"px": 6, "py": 4}
        naive = lyric.query(office, PAPER_PARAM_QUERY, params=bindings)
        translated = lyric.query_translated(
            office, PAPER_PARAM_QUERY, params=bindings)
        literal = lyric.query(office, PAPER_LITERAL_QUERY)
        assert len(naive) == len(literal) > 0
        assert sorted(r.values for r in naive) \
            == sorted(r.values for r in translated)

    def test_string_param_comparison(self, office):
        rows = lyric.query_translated(
            office, "SELECT X FROM Office_Object X "
                    "WHERE X.color = $col",
            params={"col": "red"})
        assert len(rows) == len(lyric.query_translated(
            office, "SELECT X FROM Office_Object X "
                    "WHERE X.color = 'red'"))

    def test_one_plan_serves_all_bindings(self, office):
        text = "SELECT X FROM Office_Object X WHERE X.color = $col"
        red = lyric.query_translated(office, text,
                                     params={"col": "red"})
        none = lyric.query_translated(office, text,
                                      params={"col": "chartreuse"})
        assert len(red) > 0
        assert len(none) == 0

    def test_unbound_param_raises(self, office):
        with pytest.raises(EvaluationError, match=r"\$col"):
            lyric.query(office, "SELECT X FROM Desk X "
                                "WHERE X.color = $col")

    def test_unbound_param_raises_translated(self, office):
        with pytest.raises(EvaluationError, match=r"\$px"):
            lyric.query_translated(office, PAPER_PARAM_QUERY,
                                   params={"py": 4})

    def test_non_numeric_binding_in_formula_raises(self, office):
        with pytest.raises(EvaluationError, match="numeric"):
            lyric.query(office, PAPER_PARAM_QUERY,
                        params={"px": "wide", "py": 4})

    def test_prepared_query_exposes_slots(self, office):
        prepared = lyric.prepare(office, PAPER_PARAM_QUERY)
        assert prepared.params == ("px", "py")
        rows = prepared.run(office, params={"px": 6, "py": 4})
        assert len(rows) == len(lyric.query(office,
                                            PAPER_LITERAL_QUERY))

    def test_prepared_query_reports_all_missing(self, office):
        prepared = lyric.prepare(office, PAPER_PARAM_QUERY)
        with pytest.raises(EvaluationError,
                           match=r"\$px.*\$py"):
            prepared.run(office)


class TestShellPrepareExecute:
    def run_shell(self, monkeypatch, capsys, script: str):
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        code = main(["shell", "--office"])
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_prepare_then_execute_positional(self, monkeypatch, capsys):
        code, out, _ = self.run_shell(
            monkeypatch, capsys,
            "PREPARE by_color AS SELECT X FROM Office_Object X "
            "WHERE X.color = $col;\n"
            "EXECUTE by_color('red');\n")
        assert code == 0
        assert "prepared by_color" in out
        assert "$col" in out
        assert "rows" in out or "OID" in out

    def test_execute_named_arguments(self, monkeypatch, capsys):
        _, out, err = self.run_shell(
            monkeypatch, capsys,
            "PREPARE q AS SELECT X FROM Office_Object X "
            "WHERE X.color = $col;\n"
            "EXECUTE q(col = 'red');\n"
            "EXECUTE q($col = 'red');\n")
        assert err == ""
        assert out.count("(") >= 1

    def test_execute_unknown_statement(self, monkeypatch, capsys):
        _, _, err = self.run_shell(
            monkeypatch, capsys, "EXECUTE nothing(1);\n")
        assert "nothing" in err

    def test_execute_too_many_positional(self, monkeypatch, capsys):
        _, _, err = self.run_shell(
            monkeypatch, capsys,
            "PREPARE q AS SELECT X FROM Desk X;\n"
            "EXECUTE q(1);\n")
        assert "error:" in err

    def test_execute_unknown_parameter(self, monkeypatch, capsys):
        _, _, err = self.run_shell(
            monkeypatch, capsys,
            "PREPARE q AS SELECT X FROM Office_Object X "
            "WHERE X.color = $col;\n"
            "EXECUTE q(hue = 'red');\n")
        assert "error:" in err

    def test_execute_missing_binding(self, monkeypatch, capsys):
        _, _, err = self.run_shell(
            monkeypatch, capsys,
            "PREPARE q AS SELECT X FROM Office_Object X "
            "WHERE X.color = $col;\n"
            "EXECUTE q();\n")
        assert "error:" in err

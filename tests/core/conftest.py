"""Isolation for CLI and evaluator tests.

The resource-guard CLI tests run queries in-process with tiny budgets
and expect them to trip; a constraint cache warmed by earlier tests
would answer from memory without spending any budget.  Start each test
cold.
"""

import pytest

from repro.constraints import bounds
from repro.runtime import cache


@pytest.fixture(autouse=True)
def _cold_constraint_cache():
    cache.clear_global_cache()
    bounds.reset_stats()
    yield

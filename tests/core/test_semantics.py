"""Unit tests for static analysis (name resolution, typing,
interface-renaming provenance)."""

import pytest

from repro.core.parser import parse_query
from repro.core.semantics import analyze
from repro.core import ast
from repro.errors import SemanticError
from repro.model.office import build_office_schema
from repro.model.oid import SymbolicOid
from repro.model.paths import VarRef


@pytest.fixture
def schema():
    return build_office_schema()


def analyzed(schema, text):
    return analyze(schema, parse_query(text))


class TestFromClause:
    def test_declares_object_variables(self, schema):
        analysis = analyzed(schema, "SELECT X FROM Desk X")
        info = analysis.info("X")
        assert info.kind == "object"
        assert info.class_name == "Desk"
        assert info.declared_in_from

    def test_cst_class_variable(self, schema):
        analysis = analyzed(schema, "SELECT X FROM Region X")
        assert analysis.info("X").kind == "cst"

    def test_unknown_class(self, schema):
        with pytest.raises(SemanticError):
            analyzed(schema, "SELECT X FROM Ghost X")

    def test_duplicate_variable(self, schema):
        with pytest.raises(SemanticError):
            analyzed(schema, "SELECT X FROM Desk X, Drawer X")


class TestSkeletonTyping:
    def test_cst_selector_variable(self, schema):
        analysis = analyzed(schema, """
            SELECT E FROM Desk X WHERE X.extent[E]
        """)
        info = analysis.info("E")
        assert info.kind == "cst"
        assert info.cst_spec.names == ("w", "z")
        assert info.last_edge is None

    def test_object_selector_variable(self, schema):
        analysis = analyzed(schema, """
            SELECT Y FROM Desk X WHERE X.drawer[Y]
        """)
        info = analysis.info("Y")
        assert info.class_name == "Drawer"
        assert info.last_edge.name == "drawer"

    def test_interface_edge_recorded(self, schema):
        analysis = analyzed(schema, """
            SELECT DD FROM Desk X WHERE X.drawer.translation[DD]
        """)
        info = analysis.info("DD")
        assert info.cst_spec.names == ("w", "z", "x", "y", "u", "v")
        assert info.last_edge.name == "drawer"
        assert [v.name for v in info.last_edge.interface_args] \
            == ["p", "q"]
        assert [v.name for v in info.edge_formals] == ["x", "y"]

    def test_edge_propagates_through_from_binding(self, schema):
        """DSK bound via O.catalog_object[DSK] gives its attributes the
        catalog_object edge."""
        analysis = analyzed(schema, """
            SELECT D FROM Object_in_Room O, Desk DSK
            WHERE O.catalog_object[DSK] and DSK.translation[D]
        """)
        info = analysis.info("D")
        assert info.last_edge.name == "catalog_object"

    def test_ground_head_resolved_to_oid(self, schema):
        analysis = analyzed(schema, """
            SELECT Y FROM Desk X WHERE standard_desk.drawer[Y]
        """)
        path = analysis.skeleton[0]
        assert path.head == SymbolicOid("standard_desk")

    def test_attribute_variable_detected(self, schema):
        analysis = analyzed(schema, """
            SELECT X FROM Desk X WHERE X.A[Y]
        """)
        path = analysis.skeleton[0]
        assert path.steps[0].attribute == VarRef("A")

    def test_known_attribute_stays_name(self, schema):
        analysis = analyzed(schema, """
            SELECT X FROM Desk X WHERE X.extent[E]
        """)
        assert analysis.skeleton[0].steps[0].attribute == "extent"

    def test_attribute_of_other_class_stays_name(self, schema):
        # location is no Desk attribute but exists on Object_in_Room:
        # it stays an attribute name (and the path is statically empty).
        analysis = analyzed(schema, """
            SELECT X FROM Desk X WHERE X.location[L]
        """)
        assert analysis.skeleton[0].steps[0].attribute == "location"


class TestRefResolution:
    def test_variable_ref(self, schema):
        analysis = analyzed(schema, """
            SELECT ((u,v) | E) FROM Desk X WHERE X.extent[E]
        """)
        select = analysis.query.select[0].expr
        ref = select.formula.body
        info = analysis.ref_info[ref]
        assert info.spec.names == ("w", "z")

    def test_path_ref(self, schema):
        analysis = analyzed(schema, """
            SELECT ((w,z) | DSK.drawer.extent(w,z)) FROM Desk DSK
        """)
        ref = analysis.query.select[0].expr.formula.body
        info = analysis.ref_info[ref]
        assert info.spec.names == ("w", "z")
        assert info.last_edge.name == "drawer"

    def test_unbound_ref_rejected(self, schema):
        with pytest.raises(SemanticError):
            analyzed(schema, "SELECT ((u) | E) FROM Desk X")

    def test_from_bound_cst_ref(self, schema):
        # A bare variable in parens reads as a path predicate; the
        # satisfiability reading needs the explicit SAT(...) form.
        analysis = analyzed(schema, """
            SELECT X FROM Region X WHERE SAT(X)
        """)
        assert isinstance(analysis.query.where, ast.WSat)
        ref = analysis.query.where.formula.body
        assert analysis.ref_info[ref].spec is None


class TestSafety:
    def test_unknown_head_becomes_ground_oid(self, schema):
        # An undeclared path head is a ground oid, not an error: the
        # comparison is simply empty-valued at run time.
        analysis = analyzed(schema, """
            SELECT X FROM Desk X WHERE X.color = some_desk.color
        """)
        assert analysis.query.where.right.head == SymbolicOid("some_desk")

    def test_unbound_selector_in_comparison(self, schema):
        with pytest.raises(SemanticError):
            analyzed(schema, """
                SELECT X FROM Desk X WHERE X.drawer[Z].color = 'red'
            """)

    def test_oid_function_unbound(self, schema):
        with pytest.raises(SemanticError):
            analyzed(schema, """
                SELECT X FROM Desk X OID FUNCTION OF Z
            """)

    def test_or_does_not_bind(self, schema):
        analysis = analyzed(schema, """
            SELECT X FROM Desk X
            WHERE X.drawer[Y] and (X.color['red'] or X.color['blue'])
        """)
        assert len(analysis.skeleton) == 1

"""Unit tests for the naive evaluator beyond the paper's golden
queries (covered in tests/integration/test_paper_examples.py)."""

from fractions import Fraction

import pytest

from repro import lyric
from repro.errors import EvaluationError
from repro.model.office import add_file_cabinet, build_office_database
from repro.model.oid import FunctionalOid, LiteralOid


@pytest.fixture
def office():
    return build_office_database()


@pytest.fixture
def office_with_cabinet():
    db, oids = build_office_database()
    cabinet = add_file_cabinet(db)
    return db, oids, cabinet


class TestFromAndSelect:
    def test_extent_enumeration(self, office_with_cabinet):
        db, oids, cabinet = office_with_cabinet
        result = lyric.query(db, "SELECT X FROM Office_Object X")
        values = {row.values[0] for row in result}
        assert values == {oids.standard_desk, cabinet}

    def test_cross_product(self, office_with_cabinet):
        db, _, _ = office_with_cabinet
        result = lyric.query(db,
                             "SELECT X, Y FROM Desk X, File_Cabinet Y")
        assert len(result) == 1

    def test_column_names(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT kind = X.name, X FROM Desk X
        """)
        assert result.columns == ("kind", "X")

    def test_select_path_value(self, office):
        db, _ = office
        result = lyric.query(db, "SELECT X.drawer.color FROM Desk X")
        assert result.single().values == (LiteralOid("red"),)

    def test_select_missing_path_drops_row(self, office):
        db, _ = office
        # Drawers have no drawer attribute: no rows, not an error.
        result = lyric.query(db, "SELECT X.drawer FROM Drawer X")
        assert len(result) == 0

    def test_select_nonscalar_path_rejected(self, office_with_cabinet):
        db, _, _ = office_with_cabinet
        with pytest.raises(EvaluationError):
            lyric.query(db,
                        "SELECT X.drawer_center FROM File_Cabinet X")

    def test_deduplication(self, office):
        db, _ = office
        # Two FROM variables over the same singleton class, projecting
        # one column: one row after dedup.
        result = lyric.query(db, "SELECT X FROM Desk X, Desk Y")
        assert len(result) == 1


class TestWhere:
    def test_ground_head_path(self, office):
        db, oids = office
        result = lyric.query(db, """
            SELECT Y FROM Drawer Y WHERE standard_desk.drawer[Y]
        """)
        assert result.single().values == (oids.standard_drawer,)

    def test_negation(self, office_with_cabinet):
        db, oids, cabinet = office_with_cabinet
        result = lyric.query(db, """
            SELECT X FROM Office_Object X WHERE not X.color = 'red'
        """)
        assert result.single().values == (cabinet,)

    def test_disjunction(self, office_with_cabinet):
        db, _, _ = office_with_cabinet
        result = lyric.query(db, """
            SELECT X FROM Office_Object X
            WHERE X.color = 'red' or X.color = 'grey'
        """)
        assert len(result) == 2

    def test_comparison_between_paths(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT X FROM Desk X WHERE X.color = X.drawer.color
        """)
        assert len(result) == 1

    def test_numeric_comparison(self, office):
        db, _ = office
        db.add_object("d2", "Drawer", {"color": "blue"})
        result = lyric.query(db, """
            SELECT MAX(u SUBJECT TO ((u) | 0 <= u <= 3))
            FROM Desk X WHERE 1 < 2
        """)
        assert result.single().values == (LiteralOid(3),)

    def test_numeric_comparison_nonnumeric_rejected(self, office):
        db, _ = office
        with pytest.raises(EvaluationError):
            lyric.query(db, """
                SELECT X FROM Desk X WHERE X.color < 3
            """)

    def test_contains(self, office_with_cabinet):
        db, _, cabinet = office_with_cabinet
        result = lyric.query(db, """
            SELECT C FROM File_Cabinet C
            WHERE C.drawer_center contains C.drawer_center
        """)
        assert len(result) == 1


class TestAttributeVariables:
    def test_enumerates_attributes(self, office):
        """The paper's higher-order variables: find which attribute of
        the drawer holds the value 'red'."""
        db, _ = office
        result = lyric.query(db, """
            SELECT A FROM Drawer D WHERE D.A['red']
        """)
        names = {str(row.values[0]) for row in result}
        assert names == {"@color"}

    def test_attribute_variable_fanout(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT A, V FROM Drawer D WHERE D.A[V]
        """)
        # color, extent, translation on the single drawer.
        assert len(result) == 3


class TestOidFunction:
    def test_mints_functional_oids(self, office):
        db, oids = office
        result = lyric.query(db, """
            SELECT name = X.name, drawer = W
            FROM Office_Object X
            OID FUNCTION OF X, W
            WHERE X.drawer[W]
        """)
        row = result.single()
        assert row.oid == FunctionalOid(
            "result", [oids.standard_desk, oids.standard_drawer])

    def test_oids_are_deterministic(self, office):
        db, _ = office
        text = """
            SELECT X FROM Desk X OID FUNCTION OF X
        """
        first = lyric.query(db, text).single().oid
        second = lyric.query(db, text).single().oid
        assert first == second


class TestPseudoLinearPaths:
    def test_path_constant_in_formula(self, office):
        """A path expression inside a formula instantiates to a number."""
        db, oids = office
        db.object(oids.standard_desk).set("cat_number", "CAT-17")
        db.add_object("measured", "Drawer", {"color": "blue"})
        db.object(oids.my_desk).set("inv_number", "22-354")
        # Use a numeric attribute:
        schema = db.schema
        from repro.model.schema import AttributeDef
        schema.class_def("Drawer").attributes["width"] = \
            AttributeDef("width", "real")
        db.object(oids.standard_drawer).set("width", 2)
        result = lyric.query(db, """
            SELECT ((u) | 0 <= u <= D.width)
            FROM Drawer D WHERE D.color = 'red'
        """)
        (value,) = result.single().values
        assert value.cst.contains_point(2)
        assert not value.cst.contains_point(3)

    def test_nonnumeric_path_rejected(self, office):
        db, _ = office
        with pytest.raises(EvaluationError):
            lyric.query(db, """
                SELECT ((u) | u <= D.color) FROM Drawer D
            """)


class TestResultSet:
    def test_pretty(self, office):
        db, _ = office
        result = lyric.query(db, "SELECT X FROM Desk X")
        assert "X" in result.pretty()

    def test_scalars(self, office):
        db, _ = office
        result = lyric.query(db, "SELECT X.color FROM Desk X")
        assert result.scalars() == ["red"]

    def test_single_raises_on_many(self, office_with_cabinet):
        db, _, _ = office_with_cabinet
        result = lyric.query(db, "SELECT X FROM Office_Object X")
        with pytest.raises(LookupError):
            result.single()

"""The staged compile pipeline and its per-phase trace."""

import pytest

from repro.core.pipeline import CompiledQuery, Pipeline, render_trace
from repro.model.office import build_office_database
from repro.runtime.context import ExecutionStats, QueryContext
from repro.runtime.plancache import clear_global_plan_cache
from repro.sqlc.optimizer import LOGICAL_RULES, PHYSICAL_RULES

QUERY = """
    SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
    FROM Office_Object CO
    WHERE CO.extent[E] and CO.translation[D]
"""


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    # Phase-trace assertions assume a cold compile; a warm global plan
    # cache would replay a single "plan-cache" phase instead.
    clear_global_plan_cache()
    yield
    clear_global_plan_cache()


@pytest.fixture
def office():
    db, _ = build_office_database()
    return db


def _phase_names(ctx):
    return [record.name for record in ctx.stats.phases]


class TestCompilePhases:
    def test_compile_records_staged_phases_in_order(self, office):
        pipe = Pipeline(office)
        compiled = pipe.compile(QUERY)
        names = _phase_names(pipe.ctx)
        rewrites = [n for n in names if n.startswith("rewrite:")]
        assert names[:3] == ["parse", "translate", "logical-plan"]
        assert names[-1] == "physical-plan"
        assert names[3:-1] == rewrites
        assert isinstance(compiled, CompiledQuery)
        assert compiled.optimized

    def test_every_configured_rule_is_recorded(self, office):
        pipe = Pipeline(office)
        pipe.compile(QUERY)
        recorded = [n.removeprefix("rewrite:")
                    for n in _phase_names(pipe.ctx)
                    if n.startswith("rewrite:")]
        expected = [r.name for r in LOGICAL_RULES + PHYSICAL_RULES]
        assert recorded == expected
        # The acceptance floor: at least three *named* rewrite rules.
        assert len(set(recorded)) >= 3

    def test_rewrite_records_carry_plan_snapshots(self, office):
        pipe = Pipeline(office)
        pipe.compile(QUERY)
        rewrites = [r for r in pipe.ctx.stats.phases
                    if r.name.startswith("rewrite:")]
        for record in rewrites:
            assert record.plan_before
            assert record.plan_after
            assert record.detail in ("changed", "unchanged")

    def test_unoptimized_compile_skips_rewrite_phases(self, office):
        ctx = QueryContext(use_optimizer=False)
        pipe = Pipeline(office, ctx)
        compiled = pipe.compile(QUERY)
        names = _phase_names(pipe.ctx)
        assert names == ["parse", "translate", "logical-plan"]
        assert not compiled.optimized


class TestRunPhases:
    def test_run_appends_execute_phase(self, office):
        pipe = Pipeline(office)
        result = pipe.run(QUERY)
        names = _phase_names(pipe.ctx)
        assert names[-1] == "execute"
        assert names.count("execute") == 1
        assert len(result) > 0
        assert pipe.ctx.stats.optimized

    def test_run_matches_compile_then_execute(self, office):
        whole = Pipeline(office).run(QUERY)
        pipe = Pipeline(office)
        relation = pipe.execute(pipe.compile(QUERY))
        assert len(whole) == len(relation)

    def test_two_pipelines_have_isolated_traces(self, office):
        a, b = Pipeline(office), Pipeline(office)
        a.run(QUERY)
        assert _phase_names(b.ctx) == []
        b.compile(QUERY)
        assert "execute" in _phase_names(a.ctx)
        assert "execute" not in _phase_names(b.ctx)

    def test_phase_timings_are_nonnegative(self, office):
        pipe = Pipeline(office)
        pipe.run(QUERY)
        assert all(r.seconds >= 0.0 for r in pipe.ctx.stats.phases)


class TestRunTranslatedIntegration:
    def test_stats_parameter_receives_phase_trace(self, office):
        from repro.core.translator import run_translated
        stats = ExecutionStats()
        run_translated(office, QUERY, stats=stats)
        names = [r.name for r in stats.phases]
        assert "parse" in names and "execute" in names
        assert stats.optimized


class TestRenderTrace:
    def test_render_lists_each_phase(self, office):
        pipe = Pipeline(office)
        pipe.run(QUERY)
        text = render_trace(pipe.ctx.stats)
        assert text.startswith("phase trace:")
        for name in _phase_names(pipe.ctx):
            assert name in text
        assert " ms" in text

    def test_render_empty_trace(self):
        text = render_trace(ExecutionStats())
        assert "(no phases recorded)" in text

"""Unit tests for CST formula instantiation (implicit equalities,
anchoring, entailment matching)."""

import pytest

from repro.core import ast, formulas
from repro.core.parser import parse_query
from repro.core.semantics import analyze
from repro.core.evaluator import environments
from repro.errors import EvaluationError
from repro.model.office import build_office_database


@pytest.fixture
def office():
    return build_office_database()


def prepared(db, text):
    """Analyze a query and produce its first binding environment."""
    analysis = analyze(db.schema, parse_query(text))
    env = next(environments(db, analysis), None)
    assert env is not None, "query has no binding environments"
    return analysis, env


def first_sat(analysis):
    node = analysis.query.where
    found = []

    def walk(n):
        if isinstance(n, ast.WSat):
            found.append(n)
        elif isinstance(n, (ast.WAnd, ast.WOr)):
            for p in n.parts:
                walk(p)
        elif isinstance(n, ast.WNot):
            walk(n.part)

    walk(node)
    return found[0]


class TestSchemaCopying:
    def test_default_variables_from_spec(self, office):
        """An unrenamed reference uses the attribute's declared
        variable names ('simply copied from the schema')."""
        db, _ = office
        analysis, env = prepared(db, """
            SELECT X FROM Desk X
            WHERE X.extent[E] and SAT(E and w = 0)
        """)
        sat = first_sat(analysis)
        constraint = formulas.instantiate_formula(
            db, analysis, sat.formula, env)
        # w pinned to 0 inside the extent: satisfiable.
        assert constraint.is_satisfiable()

    def test_renamed_variables(self, office):
        db, _ = office
        analysis, env = prepared(db, """
            SELECT X FROM Desk X
            WHERE X.extent[E] and SAT(E(a,b) and a = 0 and w = 99)
        """)
        sat = first_sat(analysis)
        constraint = formulas.instantiate_formula(
            db, analysis, sat.formula, env)
        # w is now a free unconstrained variable; a,b carry the extent.
        assert constraint.is_satisfiable()

    def test_dimension_mismatch(self, office):
        db, _ = office
        analysis, env = prepared(db, """
            SELECT X FROM Desk X
            WHERE X.extent[E] and SAT(E(a) and a = 0)
        """)
        sat = first_sat(analysis)
        with pytest.raises(EvaluationError):
            formulas.instantiate_formula(db, analysis, sat.formula, env)


class TestImplicitEqualities:
    def test_drawer_edge_equality(self, office):
        """p = x1 via the drawer edge: the drawer-center line pins the
        drawer translation's center coordinates."""
        db, _ = office
        analysis, env = prepared(db, """
            SELECT DSK FROM Desk DSK
            WHERE DSK.drawer_center[DC]
              and DSK.drawer.translation[DD]
              and SAT(DC(p,q) and DD(w1,z1,x1,y1,u1,v1) and x1 = -2)
        """)
        sat = first_sat(analysis)
        constraint = formulas.instantiate_formula(
            db, analysis, sat.formula, env)
        # drawer_center has p = -2, so x1 = -2 must be consistent.
        assert constraint.is_satisfiable()

    def test_drawer_edge_equality_contradiction(self, office):
        db, _ = office
        analysis, env = prepared(db, """
            SELECT DSK FROM Desk DSK
            WHERE DSK.drawer_center[DC]
              and DSK.drawer.translation[DD]
              and SAT(DC(p,q) and DD(w1,z1,x1,y1,u1,v1) and x1 = 5)
        """)
        sat = first_sat(analysis)
        constraint = formulas.instantiate_formula(
            db, analysis, sat.formula, env)
        # p = -2 and p = x1 = 5 contradict.
        assert not constraint.is_satisfiable()

    def test_vacuous_equality_dropped(self, office):
        """Without the drawer_center anchor, x1 stays unconstrained."""
        db, _ = office
        analysis, env = prepared(db, """
            SELECT DSK FROM Desk DSK
            WHERE DSK.drawer.translation[DD]
              and SAT(DD(w1,z1,x1,y1,u1,v1) and x1 = 5)
        """)
        sat = first_sat(analysis)
        constraint = formulas.instantiate_formula(
            db, analysis, sat.formula, env)
        assert constraint.is_satisfiable()

    def test_two_parents_do_not_clash(self, office):
        """Two catalog_object traversals in one formula must not
        identify the two parents' coordinate frames."""
        from repro.model.office import add_file_cabinet
        db, _ = office
        add_file_cabinet(db, location=(3, 4))
        analysis = analyze(db.schema, parse_query("""
            SELECT X, Y
            FROM Object_in_Room OX, Object_in_Room OY,
                 Office_Object X, Office_Object Y
            WHERE OX.catalog_object[X] and OY.catalog_object[Y]
              and OX.location[LX] and OY.location[LY]
              and X.translation[DX] and Y.translation[DY]
              and SAT(DX(w,z,x,y,u,v) and LX(x,y)
                      and DY(w2,z2,x2,y2,u,v) and LY(x2,y2))
        """))
        hits = 0
        for env in environments(db, analysis):
            if env["OX"] != env["OY"]:
                sat = first_sat(analysis)
                if formulas.satisfiable(db, analysis, sat.formula, env):
                    hits += 1
        # Desk [2,10]x[2,6] and cabinet [2,4]x[2,6] overlap: both
        # ordered pairs must be satisfiable.
        assert hits == 2


class TestEntailmentMatching:
    def test_name_based(self, office):
        """Shared names across |= sides are identified (C(p,q) |= p=-2
        matches via the name p)."""
        db, _ = office
        analysis, env = prepared(db, """
            SELECT X FROM Desk X
            WHERE X.drawer_center[C] and (C(p,q) |= p = -2)
        """)
        node = analysis.query.where.parts[1]
        assert isinstance(node, ast.WEntails)
        assert formulas.entails(db, analysis, node.left, node.right, env)

    def test_name_based_failure(self, office):
        db, _ = office
        analysis, env = prepared(db, """
            SELECT X FROM Desk X
            WHERE X.drawer_center[C] and (C(p,q) |= q = -2)
        """)
        node = analysis.query.where.parts[1]
        # q ranges over [-2,0]: not always -2.
        assert not formulas.entails(db, analysis, node.left,
                                    node.right, env)

    def test_positional_fallback(self, office):
        """Two bare refs with disjoint schemas of equal dimension are
        matched positionally (the Region |= case)."""
        from repro.model.office import add_regions
        db, _ = office
        add_regions(db)
        from repro import lyric
        # drawer extent (w,z) ⊑ region (x,y): positional match.
        result = lyric.query(db, """
            SELECT R FROM Desk D, Region R
            WHERE D.drawer.extent[E] and (E |= R)
        """)
        # Drawer extent is [-1,1]x[-1,1]; no quarter region contains it
        # (quarters live in [0,20]x[0,10]).
        assert len(result) == 0

    def test_positional_fallback_hit(self, office):
        db, _ = office
        from repro.constraints.parser import parse_cst
        db.add_cst_instance(
            "Region", parse_cst("((x,y) | -5 <= x <= 5 and -5 <= y <= 5)"),
            {"region_name": "origin_box"})
        from repro import lyric
        result = lyric.query(db, """
            SELECT R FROM Desk D, Region R
            WHERE D.drawer.extent[E] and (E |= R)
        """)
        assert len(result) == 1


class TestOptimizeOverDisjunctions:
    def test_min_over_union(self, office):
        """MIN over a disjunctive system is the best branch optimum
        (an extension over the paper's existential-conjunctive
        typing)."""
        db, _ = office
        from repro import lyric
        result = lyric.query(db, """
            SELECT MIN(x SUBJECT TO ((x) | 1 <= x <= 2 or 5 <= x <= 6))
            FROM Desk D
        """)
        assert result.single().values[0].value == 1

    def test_max_over_union(self, office):
        db, _ = office
        from repro import lyric
        result = lyric.query(db, """
            SELECT MAX(x SUBJECT TO ((x) | 1 <= x <= 2 or 5 <= x <= 6))
            FROM Desk D
        """)
        assert result.single().values[0].value == 6

    def test_unbounded_branch_still_raises(self, office):
        db, _ = office
        from repro import lyric
        from repro.errors import UnboundedError
        with pytest.raises(UnboundedError):
            lyric.query(db, """
                SELECT MAX(x SUBJECT TO ((x) | x <= 1 or x >= 5))
                FROM Desk D
            """)

    def test_all_branches_empty(self, office):
        db, _ = office
        from repro import lyric
        from repro.errors import InfeasibleError
        with pytest.raises(InfeasibleError):
            lyric.query(db, """
                SELECT MAX(x SUBJECT TO
                           ((x) | (x <= 1 and x >= 2)
                            or (x <= 5 and x >= 6)))
                FROM Desk D
            """)

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "office database" in out
        assert "u <= 10" in out


class TestDumpAndQuery:
    def test_dump_office(self, tmp_path, capsys):
        path = str(tmp_path / "office.json")
        assert main(["dump-office", path]) == 0
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["version"] == 1

    def test_query_from_file(self, tmp_path, capsys):
        path = str(tmp_path / "office.json")
        main(["dump-office", path])
        capsys.readouterr()
        assert main(["query", path, "SELECT X FROM Desk X"]) == 0
        out = capsys.readouterr().out
        assert "standard_desk" in out
        assert "(1 rows)" in out

    def test_query_builtin_office(self, capsys):
        assert main(["query", "--office",
                     "SELECT X FROM Desk X"]) == 0
        assert "standard_desk" in capsys.readouterr().out

    def test_query_translated(self, capsys):
        assert main(["query", "--office", "--translated",
                     "SELECT X FROM Desk X"]) == 0
        assert "standard_desk" in capsys.readouterr().out

    def test_query_limit(self, capsys):
        assert main(["query", "--office", "--limit", "1",
                     "SELECT R FROM Region R"]) == 0
        assert "more rows" in capsys.readouterr().out

    def test_syntax_error_reported(self, capsys):
        assert main(["query", "--office", "SELECT FROM"]) == 2
        assert "syntax error:" in capsys.readouterr().err

    def test_missing_database(self, capsys):
        with pytest.raises(SystemExit):
            main(["query", "SELECT X FROM Desk X"])


class TestResourceGuards:
    QUERY = ("SELECT CO, ((u,v) | E and D and x = 6 and y = 4) "
             "FROM Office_Object CO "
             "WHERE CO.extent[E] and CO.translation[D]")

    def test_exhaustion_exit_code(self, capsys):
        code = main(["query", "--office", "--max-pivots", "1",
                     self.QUERY])
        assert code == 3
        err = capsys.readouterr().err
        assert "resource limit:" in err
        assert "budget=pivots" in err

    def test_degrade_returns_partial(self, capsys):
        code = main(["query", "--office", "--max-pivots", "1",
                     "--on-exhaustion", "degrade", self.QUERY])
        assert code == 0
        out = capsys.readouterr().out
        assert "warning: partial result" in out

    def test_timeout_flag_accepted(self, capsys):
        assert main(["query", "--office", "--timeout", "3600",
                     "SELECT X FROM Desk X"]) == 0
        assert "standard_desk" in capsys.readouterr().out

    def test_no_flags_means_no_guard(self, capsys):
        # Without limits the query runs exactly as before.
        assert main(["query", "--office", self.QUERY]) == 0
        out = capsys.readouterr().out
        assert "warning" not in out

    def test_exit_codes_distinct(self, capsys):
        syntax = main(["query", "--office", "SELECT FROM"])
        resource = main(["query", "--office", "--max-pivots", "1",
                         self.QUERY])
        capsys.readouterr()
        assert syntax == 2
        assert resource == 3
        assert syntax != resource


class TestViewAndSchema:
    VIEW = ("CREATE VIEW Red AS SUBCLASS OF Office_Object "
            "SELECT item = X SIGNATURE item => Office_Object "
            "FROM Office_Object X OID FUNCTION OF X "
            "WHERE X.color = 'red'")

    def test_view(self, capsys):
        assert main(["view", "--office", self.VIEW]) == 0
        out = capsys.readouterr().out
        assert "Red: 1 instances" in out

    def test_view_save(self, tmp_path, capsys):
        path = str(tmp_path / "out.json")
        assert main(["view", "--office", self.VIEW,
                     "--save", path]) == 0
        from repro.model.serialize import read_database
        db = read_database(path)
        assert db.schema.has_class("Red")

    def test_schema(self, capsys):
        assert main(["schema", "--office"]) == 0
        out = capsys.readouterr().out
        assert "Desk IS-A Office_Object" in out


class TestAnalyzeTrace:
    QUERY = ("SELECT CO, ((u,v) | E and D and x = 6 and y = 4) "
             "FROM Office_Object CO "
             "WHERE CO.extent[E] and CO.translation[D]")

    def test_analyze_prints_phase_trace(self, capsys):
        assert main(["query", "--office", "--explain", "--analyze",
                     self.QUERY]) == 0
        out = capsys.readouterr().out
        assert "phase trace:" in out
        for phase in ("parse", "translate", "logical-plan",
                      "rewrite:push-selections", "rewrite:reorder-joins",
                      "physical-plan", "execute"):
            assert phase in out
        assert "cache:" in out and "prefilter:" in out \
            and "index:" in out

    def test_plain_explain_has_no_trace(self, capsys):
        assert main(["query", "--office", "--explain",
                     self.QUERY]) == 0
        assert "phase trace:" not in capsys.readouterr().out

"""Unit tests for the persistent worker pool: the picklable-predicate
filter transport, the task-level scatter API, cross-process
cancellation, warm-up, and salvage after a mid-run pool death."""

import pytest

from repro.errors import PivotBudgetExceeded, QueryCancelled
from repro.runtime import parallel
from repro.runtime.faults import FaultPlan
from repro.runtime.guard import ExecutionGuard, current_guard, guarded
from repro.runtime.parallel import (
    filter_rows,
    get_pool,
    parallelism,
    shutdown_pool,
)

ROWS = [(i,) for i in range(200)]


@pytest.fixture(autouse=True)
def _fresh_pool_state():
    parallel.reset_stats()
    shutdown_pool()
    yield
    shutdown_pool()


# Module-level predicates pickle by reference — the pool transport.


def _thirds(row):
    return row["a"] % 3 == 0


def _ticking(row):
    current_guard().tick_pivots(1)
    return True


def _serial_filter(rows, predicate=_thirds):
    return [row for row in rows if predicate({"a": row[0]})]


def _skip_unless_parallel():
    if parallel.stats()["fallbacks"]:
        pytest.skip("process pool unavailable")


class TestTransportSelection:
    def test_picklable_predicate_takes_the_pool(self):
        with parallelism(3):
            kept = filter_rows(("a",), ROWS, _thirds)
        _skip_unless_parallel()
        assert kept == _serial_filter(ROWS)
        stats = parallel.stats()
        assert stats["pool_dispatches"] == 3
        assert stats["pool_cold_starts"] == 1
        assert stats["runs"] == 1

    def test_closure_takes_the_legacy_transport(self):
        bound = 3

        def closure(row):
            return row["a"] % bound == 0

        with parallelism(3):
            kept = filter_rows(("a",), ROWS, closure)
        _skip_unless_parallel()
        assert kept == _serial_filter(ROWS)
        stats = parallel.stats()
        assert stats["pool_dispatches"] == 0
        assert stats["pool_cold_starts"] == 0
        assert stats["runs"] == 1


class TestWarmReuse:
    def test_second_dispatch_reuses_the_pool(self):
        with parallelism(3):
            filter_rows(("a",), ROWS, _thirds)
            _skip_unless_parallel()
            filter_rows(("a",), ROWS, _thirds)
        stats = parallel.stats()
        assert stats["pool_cold_starts"] == 1
        assert stats["pool_dispatches"] == 6

    def test_growing_replaces_the_pool(self):
        with parallelism(2):
            filter_rows(("a",), ROWS, _thirds)
        _skip_unless_parallel()
        with parallelism(4):
            filter_rows(("a",), ROWS, _thirds)
        assert parallel.stats()["pool_cold_starts"] == 2

    def test_smaller_request_keeps_the_bigger_pool(self):
        pool, cold = get_pool(4)
        assert cold
        again, cold = get_pool(2)
        assert again is pool and not cold

    def test_context_stats_record_warm_and_cold(self):
        from repro.runtime import context as context_mod
        from repro.runtime.context import ExecutionStats
        ctx = context_mod.current_context().derive(
            parallelism=3, stats=ExecutionStats())
        with ctx.activate():
            filter_rows(("a",), ROWS, _thirds)
            _skip_unless_parallel()
            filter_rows(("a",), ROWS, _thirds)
        assert ctx.stats.pool_cold_starts == 1
        assert ctx.stats.pool_dispatches == 6


class TestPoolDeath:
    def test_dead_pool_falls_back_and_recovers(self):
        with parallelism(2):
            kept = filter_rows(("a",), ROWS, _thirds)
            _skip_unless_parallel()
            assert kept == _serial_filter(ROWS)
            # Kill every warm worker behind the pool's back.
            pool, cold = get_pool(2)
            assert not cold
            for proc in list(pool._executor._processes.values()):
                proc.terminate()
                proc.join()
            # The broken pool is detected, discarded, and the filter
            # falls back to the legacy transport — same rows out.
            kept = filter_rows(("a",), ROWS, _thirds)
            assert kept == _serial_filter(ROWS)
            # The next dispatch cold-starts a fresh pool.
            kept = filter_rows(("a",), ROWS, _thirds)
            assert kept == _serial_filter(ROWS)
        assert parallel.stats()["pool_cold_starts"] >= 2


class TestPoolBudgets:
    def test_guard_spend_absorbed_through_the_pool(self):
        guard = ExecutionGuard(max_pivots=10_000)
        with guarded(guard), parallelism(2):
            kept = filter_rows(("a",), ROWS, _ticking)
        _skip_unless_parallel()
        assert parallel.stats()["pool_dispatches"] == 2
        assert len(kept) == len(ROWS)
        assert guard.pivots == len(ROWS)
        assert guard.checkpoints >= 1

    def test_budget_trip_rebuilds_exception(self):
        guard = ExecutionGuard(max_pivots=10)
        with guarded(guard), parallelism(2):
            with pytest.raises(PivotBudgetExceeded) as exc:
                filter_rows(("a",), ROWS, _ticking)
        _skip_unless_parallel()
        assert parallel.stats()["pool_dispatches"] == 2
        assert exc.value.budget == "pivots"
        assert guard.exhausted == "pivots"
        assert str(exc.value).count("[budget=") == 1

    def test_exhausted_parent_budget_falls_back_serial(self):
        guard = ExecutionGuard(max_pivots=5)
        guard.absorb_spend({"pivots": 5})
        with guarded(guard), parallelism(2):
            kept = filter_rows(("a",), ROWS, _thirds)
        assert kept == _serial_filter(ROWS)
        stats = parallel.stats()
        assert stats["fallbacks"] == 1
        assert stats["pool_dispatches"] == 0


def _pool_available() -> bool:
    """Probe once whether real pool dispatch works on this runner,
    then reset the counters the probe touched."""
    with parallelism(2):
        filter_rows(("a",), ROWS[:8], _thirds)
    available = not parallel.stats()["fallbacks"]
    parallel.reset_stats()
    return available


class TestSalvage:
    """Satellite regression: a mid-run pool death must absorb each
    completed chunk's counters exactly once and recompute only the
    lost chunks (the old path re-dispatched the whole set, which
    double-counted the finished workers' spend)."""

    def test_partial_death_absorbs_each_chunk_once(self, monkeypatch):
        if not _pool_available():
            pytest.skip("process pool unavailable")
        real_gather = parallel._gather

        def partial_gather(futures, guard, slot):
            outcomes, broken = real_gather(futures, guard, slot)
            # Pretend the pool died after two of three chunks landed.
            outcomes[1] = None
            return outcomes, True

        monkeypatch.setattr(parallel, "_gather", partial_gather)
        guard = ExecutionGuard(max_pivots=10_000)
        with guarded(guard), parallelism(3):
            kept = filter_rows(("a",), ROWS, _ticking)
        assert len(kept) == len(ROWS)
        # Exactly one tick per row: completed chunks absorbed once,
        # the lost chunk recomputed under the parent guard.
        assert guard.pivots == len(ROWS)
        stats = parallel.stats()
        assert stats["salvaged_chunks"] == 2
        assert stats["pool_dispatches"] == 2
        assert stats["fallbacks"] == 1

    def test_total_death_absorbs_nothing_then_recovers(
            self, monkeypatch):
        if not _pool_available():
            pytest.skip("process pool unavailable")

        def dead_gather(futures, guard, slot):
            for future in futures:
                future.cancel()
            return [None] * len(futures), True

        monkeypatch.setattr(parallel, "_gather", dead_gather)
        guard = ExecutionGuard(max_pivots=10_000)
        with guarded(guard), parallelism(3):
            kept = filter_rows(("a",), ROWS, _ticking)
        # Whole-set legacy fallback: still one tick per row, because
        # nothing was absorbed before the fallback re-ran everything.
        assert len(kept) == len(ROWS)
        assert guard.pivots == len(ROWS)
        assert parallel.stats()["salvaged_chunks"] == 0


def _square(x):
    current_guard().tick_pivots(1)
    return x * x


def _checkpointing(x):
    current_guard().checkpoint("scatter-test")
    return x


class TestScatterTasks:
    def test_values_in_task_order_spend_absorbed(self):
        if not _pool_available():
            pytest.skip("process pool unavailable")
        guard = ExecutionGuard(max_pivots=10_000)
        with guarded(guard), parallelism(3):
            values = parallel.scatter_tasks(
                _square, [(i,) for i in range(7)])
        assert values == [i * i for i in range(7)]
        assert guard.pivots == 7
        stats = parallel.stats()
        assert stats["scatters"] == 1
        assert stats["pool_dispatches"] == 7
        assert stats["max_workers"] == 3

    def test_no_headroom_falls_back_serial(self):
        guard = ExecutionGuard(max_pivots=5)
        guard.absorb_spend({"pivots": 5})
        with guarded(guard), parallelism(3):
            # The serial fallback runs under the parent guard, so the
            # budget trips exactly where a serial run would trip it.
            with pytest.raises(PivotBudgetExceeded):
                parallel.scatter_tasks(
                    _square, [(i,) for i in range(4)])
        stats = parallel.stats()
        assert stats["fallbacks"] == 1
        assert stats["scatters"] == 0

    def test_cancel_propagates_through_the_board(self):
        if not _pool_available():
            pytest.skip("process pool unavailable")
        guard = ExecutionGuard()
        guard.cancel()
        with guarded(guard), parallelism(2):
            with pytest.raises(QueryCancelled):
                parallel.scatter_tasks(
                    _checkpointing, [(i,) for i in range(4)])

    def test_should_scatter_gates(self):
        from repro.runtime import context as context_mod
        ctx = context_mod.current_context().derive(parallelism=4)
        with ctx.activate():
            assert not parallel.should_scatter(1)
            faulted = ctx.derive(
                guard=ExecutionGuard(faults=FaultPlan()))
            with faulted.activate():
                assert not parallel.should_scatter(4)
        serial_ctx = context_mod.current_context().derive(
            parallelism=1)
        with serial_ctx.activate():
            assert not parallel.should_scatter(4)
            # The explicit workers annotation overrides the context.
            if parallel._fork_available():
                assert parallel.should_scatter(4, workers=4)

    def test_salvages_lost_tasks_in_process(self, monkeypatch):
        if not _pool_available():
            pytest.skip("process pool unavailable")
        real_gather = parallel._gather

        def partial_gather(futures, guard, slot):
            outcomes, broken = real_gather(futures, guard, slot)
            outcomes[2] = None
            return outcomes, True

        monkeypatch.setattr(parallel, "_gather", partial_gather)
        guard = ExecutionGuard(max_pivots=10_000)
        with guarded(guard), parallelism(3):
            values = parallel.scatter_tasks(
                _square, [(i,) for i in range(5)])
        assert values == [i * i for i in range(5)]
        # 4 absorbed worker ticks + 1 in-process re-run tick.
        assert guard.pivots == 5
        stats = parallel.stats()
        assert stats["salvaged_chunks"] == 4
        assert stats["fallbacks"] == 1


class TestWarm:
    def test_warm_preforks_workers(self):
        if not _pool_available():
            pytest.skip("process pool unavailable")
        answered = parallel.warm(2)
        assert answered >= 1
        assert parallel.stats()["pool_cold_starts"] == 1
        # A dispatch after warm-up reuses the warmed pool.
        with parallelism(2):
            filter_rows(("a",), ROWS, _thirds)
        assert parallel.stats()["pool_cold_starts"] == 1

"""Unit tests for the persistent worker pool (the picklable-predicate
transport of :mod:`repro.runtime.parallel`)."""

import pytest

from repro.errors import PivotBudgetExceeded
from repro.runtime import parallel
from repro.runtime.guard import ExecutionGuard, current_guard, guarded
from repro.runtime.parallel import (
    filter_rows,
    get_pool,
    parallelism,
    shutdown_pool,
)

ROWS = [(i,) for i in range(200)]


@pytest.fixture(autouse=True)
def _fresh_pool_state():
    parallel.reset_stats()
    shutdown_pool()
    yield
    shutdown_pool()


# Module-level predicates pickle by reference — the pool transport.


def _thirds(row):
    return row["a"] % 3 == 0


def _ticking(row):
    current_guard().tick_pivots(1)
    return True


def _serial_filter(rows, predicate=_thirds):
    return [row for row in rows if predicate({"a": row[0]})]


def _skip_unless_parallel():
    if parallel.stats()["fallbacks"]:
        pytest.skip("process pool unavailable")


class TestTransportSelection:
    def test_picklable_predicate_takes_the_pool(self):
        with parallelism(3):
            kept = filter_rows(("a",), ROWS, _thirds)
        _skip_unless_parallel()
        assert kept == _serial_filter(ROWS)
        stats = parallel.stats()
        assert stats["pool_dispatches"] == 3
        assert stats["pool_cold_starts"] == 1
        assert stats["runs"] == 1

    def test_closure_takes_the_legacy_transport(self):
        bound = 3

        def closure(row):
            return row["a"] % bound == 0

        with parallelism(3):
            kept = filter_rows(("a",), ROWS, closure)
        _skip_unless_parallel()
        assert kept == _serial_filter(ROWS)
        stats = parallel.stats()
        assert stats["pool_dispatches"] == 0
        assert stats["pool_cold_starts"] == 0
        assert stats["runs"] == 1


class TestWarmReuse:
    def test_second_dispatch_reuses_the_pool(self):
        with parallelism(3):
            filter_rows(("a",), ROWS, _thirds)
            _skip_unless_parallel()
            filter_rows(("a",), ROWS, _thirds)
        stats = parallel.stats()
        assert stats["pool_cold_starts"] == 1
        assert stats["pool_dispatches"] == 6

    def test_growing_replaces_the_pool(self):
        with parallelism(2):
            filter_rows(("a",), ROWS, _thirds)
        _skip_unless_parallel()
        with parallelism(4):
            filter_rows(("a",), ROWS, _thirds)
        assert parallel.stats()["pool_cold_starts"] == 2

    def test_smaller_request_keeps_the_bigger_pool(self):
        pool, cold = get_pool(4)
        assert cold
        again, cold = get_pool(2)
        assert again is pool and not cold

    def test_context_stats_record_warm_and_cold(self):
        from repro.runtime import context as context_mod
        from repro.runtime.context import ExecutionStats
        ctx = context_mod.current_context().derive(
            parallelism=3, stats=ExecutionStats())
        with ctx.activate():
            filter_rows(("a",), ROWS, _thirds)
            _skip_unless_parallel()
            filter_rows(("a",), ROWS, _thirds)
        assert ctx.stats.pool_cold_starts == 1
        assert ctx.stats.pool_dispatches == 6


class TestPoolDeath:
    def test_dead_pool_falls_back_and_recovers(self):
        with parallelism(2):
            kept = filter_rows(("a",), ROWS, _thirds)
            _skip_unless_parallel()
            assert kept == _serial_filter(ROWS)
            # Kill every warm worker behind the pool's back.
            pool, cold = get_pool(2)
            assert not cold
            for proc in list(pool._executor._processes.values()):
                proc.terminate()
                proc.join()
            # The broken pool is detected, discarded, and the filter
            # falls back to the legacy transport — same rows out.
            kept = filter_rows(("a",), ROWS, _thirds)
            assert kept == _serial_filter(ROWS)
            # The next dispatch cold-starts a fresh pool.
            kept = filter_rows(("a",), ROWS, _thirds)
            assert kept == _serial_filter(ROWS)
        assert parallel.stats()["pool_cold_starts"] >= 2


class TestPoolBudgets:
    def test_guard_spend_absorbed_through_the_pool(self):
        guard = ExecutionGuard(max_pivots=10_000)
        with guarded(guard), parallelism(2):
            kept = filter_rows(("a",), ROWS, _ticking)
        _skip_unless_parallel()
        assert parallel.stats()["pool_dispatches"] == 2
        assert len(kept) == len(ROWS)
        assert guard.pivots == len(ROWS)
        assert guard.checkpoints >= 1

    def test_budget_trip_rebuilds_exception(self):
        guard = ExecutionGuard(max_pivots=10)
        with guarded(guard), parallelism(2):
            with pytest.raises(PivotBudgetExceeded) as exc:
                filter_rows(("a",), ROWS, _ticking)
        _skip_unless_parallel()
        assert parallel.stats()["pool_dispatches"] == 2
        assert exc.value.budget == "pivots"
        assert guard.exhausted == "pivots"
        assert str(exc.value).count("[budget=") == 1

    def test_exhausted_parent_budget_falls_back_serial(self):
        guard = ExecutionGuard(max_pivots=5)
        guard.absorb_spend({"pivots": 5})
        with guarded(guard), parallelism(2):
            kept = filter_rows(("a",), ROWS, _thirds)
        assert kept == _serial_filter(ROWS)
        stats = parallel.stats()
        assert stats["fallbacks"] == 1
        assert stats["pool_dispatches"] == 0

"""Isolation for guard and fault tests.

These tests assert exact budget spends (pivot counts, branch counts)
and budget trips, which a warm process-global constraint cache would
silently satisfy from memory.  Every test in this directory starts
with a cold cache and fresh prefilter counters.
"""

import pytest

from repro.constraints import bounds
from repro.runtime import cache


@pytest.fixture(autouse=True)
def _cold_constraint_cache():
    cache.clear_global_cache()
    bounds.reset_stats()
    yield

"""Tests for the constraint-level memoization layer."""

import pytest

from repro import errors
from repro.constraints import simplex
from repro.constraints.atoms import Ge, Le
from repro.constraints.canonical import (
    canonical_conjunctive,
    canonical_key,
)
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.implication import atom_redundant_in
from repro.constraints.terms import Variable, variables
from repro.runtime import ExecutionGuard, FaultPlan, guarded
from repro.runtime.cache import (
    ConstraintCache,
    active_cache,
    caching,
    get_global_cache,
    memoized,
    prefilter,
    prefilter_active,
)

x, y = variables("x y")


def interval(lo, hi):
    return ConjunctiveConstraint.of(Ge(x, lo), Le(x, hi))


class TestLRU:
    def test_hit_returns_stored_value(self):
        cache = ConstraintCache(maxsize=4)
        cache.store("k", "v", cost=3)
        hit, value = cache.lookup("k")
        assert hit and value == "v"
        assert cache.hits == 1
        assert cache.simplex_saved == 3

    def test_miss_counted(self):
        cache = ConstraintCache(maxsize=4)
        hit, value = cache.lookup("absent")
        assert not hit and value is None
        assert cache.misses == 1

    def test_eviction_is_lru(self):
        cache = ConstraintCache(maxsize=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.lookup("a")          # refresh a; b is now oldest
        cache.store("c", 3)
        assert cache.evictions == 1
        assert cache.lookup("b") == (False, None)
        assert cache.lookup("a") == (True, 1)

    def test_size_bounded(self):
        cache = ConstraintCache(maxsize=8)
        for i in range(100):
            cache.store(i, i)
        assert len(cache) == 8
        assert cache.evictions == 92

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            ConstraintCache(maxsize=0)

    def test_clear_resets_counters(self):
        cache = ConstraintCache()
        cache.store("k", 1)
        cache.lookup("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.counters() == {
            "hits": 0, "misses": 0, "evictions": 0,
            "simplex_saved": 0, "entries": 0}


class TestContextSelection:
    def test_global_by_default(self):
        assert active_cache() is get_global_cache()

    def test_caching_none_disables(self):
        with caching(None):
            assert active_cache() is None
        assert active_cache() is get_global_cache()

    def test_scoped_cache_wins(self):
        scoped = ConstraintCache(maxsize=16)
        with caching(scoped):
            assert active_cache() is scoped

    def test_fault_plan_bypasses_cache(self):
        guard = ExecutionGuard(faults=FaultPlan())
        with guarded(guard):
            assert active_cache() is None
            assert not prefilter_active()

    def test_prefilter_context(self):
        assert prefilter_active()
        with prefilter(False):
            assert not prefilter_active()
        assert prefilter_active()


class TestMemoizedSemantics:
    def test_computes_once(self):
        calls = []
        with caching(ConstraintCache()):
            for _ in range(3):
                value = memoized("k", lambda: calls.append(1) or 42)
            assert value == 42
        assert len(calls) == 1

    def test_disabled_computes_every_time(self):
        calls = []
        with caching(None):
            for _ in range(3):
                memoized("k", lambda: calls.append(1) or 42)
        assert len(calls) == 3

    def test_simplex_cost_recorded(self):
        cache = ConstraintCache()
        conj = interval(0, 10)
        with caching(cache):
            conj.is_satisfiable()
            before = simplex.call_count()
            assert ConjunctiveConstraint(conj.atoms).is_satisfiable()
        assert simplex.call_count() == before   # second check: no LP
        assert cache.hits == 1
        assert cache.simplex_saved >= 1

    def test_exceptions_not_cached(self):
        cache = ConstraintCache()
        attempts = []

        def compute():
            attempts.append(1)
            if len(attempts) == 1:
                raise errors.PivotBudgetExceeded(
                    "boom", budget="pivots", limit=1, spent=2)
            return "ok"

        with caching(cache):
            with pytest.raises(errors.PivotBudgetExceeded):
                memoized("k", compute)
            assert memoized("k", compute) == "ok"
        assert len(attempts) == 2


class TestGuardInteraction:
    def test_hit_spends_no_budget(self):
        conj = interval(0, 10)
        conj.is_satisfiable()    # warm the global cache
        guard = ExecutionGuard(max_pivots=1, max_branches=1)
        with guarded(guard):
            assert ConjunctiveConstraint(conj.atoms).is_satisfiable()
        assert guard.pivots == 0
        assert guard.branches == 0

    def test_hit_still_observes_cancellation(self):
        conj = interval(0, 10)
        conj.is_satisfiable()
        guard = ExecutionGuard()
        guard.cancel()
        with guarded(guard):
            with pytest.raises(errors.QueryCancelled):
                ConjunctiveConstraint(conj.atoms).is_satisfiable()
        assert guard.exhausted == "cancellation"

    def test_fault_injection_unaffected_by_warm_cache(self):
        """The fault test contract: a FaultPlan-injected run does the
        real work even when the answer is cached."""
        conj = interval(0, 10)
        conj.is_satisfiable()    # warm
        guard = ExecutionGuard(
            faults=FaultPlan(fail_simplex_at=1))
        with guarded(guard):
            with pytest.raises(errors.InjectedFaultError):
                ConjunctiveConstraint(conj.atoms).is_satisfiable()


class TestCachedDecisions:
    def test_satisfiability_cached_across_equal_instances(self):
        cache = ConstraintCache()
        with caching(cache):
            assert interval(0, 10).is_satisfiable()
            assert interval(0, 10).is_satisfiable()
        assert cache.hits == 1

    def test_canonical_conjunctive_cached(self):
        cache = ConstraintCache()
        conj = ConjunctiveConstraint.of(Le(x, 1), Le(x, 2), Le(y, 3))
        with caching(cache):
            first = canonical_conjunctive(conj)
            second = canonical_conjunctive(
                ConjunctiveConstraint(conj.atoms))
        assert first == second
        assert Le(x, 2) not in first.atoms
        assert cache.hits >= 1

    def test_atom_redundant_cached(self):
        cache = ConstraintCache()
        context = ConjunctiveConstraint.of(Le(x, 1))
        with caching(cache):
            assert atom_redundant_in(Le(x, 2), context)
            assert atom_redundant_in(Le(x, 2), context)
        assert cache.hits >= 1

    def test_canonical_key_cached_and_alpha_invariant(self):
        cache = ConstraintCache()
        a, b = Variable("a"), Variable("b")
        with caching(cache):
            key1 = canonical_key(interval(0, 10), (x, y))
            key2 = canonical_key(interval(0, 10), (x, y))
            renamed = ConjunctiveConstraint.of(Ge(a, 0), Le(a, 10))
            key3 = canonical_key(renamed, (a, b))
        assert key1 == key2 == key3
        assert cache.hits >= 1

    def test_cached_answer_matches_uncached(self):
        conj = interval(0, 10)
        bad = ConjunctiveConstraint.of(Ge(x, 5), Le(x, 1))
        with caching(None), prefilter(False):
            plain_good = conj.is_satisfiable()
            plain_bad = bad.is_satisfiable()
        with caching(ConstraintCache()):
            assert ConjunctiveConstraint(
                conj.atoms).is_satisfiable() == plain_good
            assert ConjunctiveConstraint(
                bad.atoms).is_satisfiable() == plain_bad

"""Thread-safety of the process-wide singletons concurrent sessions
share: the constraint cache, the compiled-plan cache, and the worker
pool accessor.

Before the serving layer these objects were only ever touched from one
thread; the query server executes requests on a thread pool, so every
one of them is hammered from many threads here.  The assertions are
about *structural* integrity (no lost entries past the bound, no
corrupted ``OrderedDict``, exactly one surviving pool) — individual
counter interleavings are allowed to race benignly.
"""

from __future__ import annotations

import threading

import pytest

from repro.model.office import build_office_database
from repro.runtime import parallel
from repro.runtime.cache import ConstraintCache
from repro.runtime.plancache import PlanCache
from repro.core.parser import parse_query

THREADS = 8
OPS = 400


def _hammer(worker, threads=THREADS):
    """Run ``worker(thread_index)`` on many threads, re-raising the
    first worker exception (a corrupted dict raises KeyError/RuntimeError
    mid-operation)."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(threads)

    def run(i):
        try:
            barrier.wait()
            worker(i)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    pool = [threading.Thread(target=run, args=(i,))
            for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    if errors:
        raise errors[0]


class TestConstraintCacheThreadSafety:
    def test_concurrent_lookup_store_evict(self):
        cache = ConstraintCache(maxsize=64)

        def worker(i):
            for n in range(OPS):
                key = ("k", (i * OPS + n) % 96)
                hit, value = cache.lookup(key)
                if hit:
                    assert value == key
                else:
                    cache.store(key, key, cost=1)

        _hammer(worker)
        counters = cache.counters()
        assert counters["entries"] <= 64
        assert counters["hits"] + counters["misses"] == THREADS * OPS
        # Every surviving entry still maps key -> key.
        for n in range(96):
            hit, value = cache.lookup(("k", n))
            if hit:
                assert value == ("k", n)

    def test_concurrent_absorb_and_clear(self):
        cache = ConstraintCache(maxsize=32)

        def worker(i):
            for n in range(OPS):
                if i == 0 and n % 50 == 0:
                    cache.clear()
                elif n % 3 == 0:
                    cache.absorb({"hits": 1, "misses": 2})
                else:
                    cache.store((i, n), n)

        _hammer(worker)
        assert len(cache) <= 32


class TestPlanCacheThreadSafety:
    def test_concurrent_lookup_store_evict(self):
        cache = PlanCache(maxsize=64)

        def worker(i):
            for n in range(OPS):
                key = (("q", (i * OPS + n) % 96), b"fp", ())
                hit, compiled, _saved = cache.lookup(key)
                if hit:
                    assert compiled == key
                else:
                    cache.store(key, key, seconds=0.001)

        _hammer(worker)
        counters = cache.counters()
        assert counters["entries"] <= 64
        assert counters["hits"] + counters["misses"] == THREADS * OPS

    def test_concurrent_ast_memo(self):
        cache = PlanCache(maxsize=16)
        texts = [f"SELECT X FROM Desk X WHERE X.color = 'c{n}'"
                 for n in range(24)]
        parsed: dict[str, object] = {}

        def worker(i):
            for n in range(OPS // 4):
                text = texts[(i + n) % len(texts)]
                ast = cache.ast_for(text, parse_query)
                # Structural equality: frozen AST dataclasses compare
                # by value, so a racing double-parse is benign.
                assert ast == parsed.setdefault(text, ast)

        _hammer(worker)

    def test_concurrent_note_schema_and_lookup(self):
        db, _ = build_office_database()
        cache = PlanCache(maxsize=64)

        def worker(i):
            for n in range(OPS // 4):
                fp = cache.note_schema(db.schema)
                key = (("q", n % 8), fp, ())
                hit, compiled, _saved = cache.lookup(key)
                if not hit:
                    cache.store(key, ("plan", n % 8), seconds=0.0)

        _hammer(worker)
        assert cache.counters()["invalidations"] == 0


class TestWorkerPoolThreadSafety:
    def test_concurrent_get_pool_single_survivor(self):
        parallel.shutdown_pool()
        seen: list[parallel.WorkerPool] = []
        lock = threading.Lock()

        def worker(i):
            for size in (2, 3, 2, 4, 2):
                pool, _cold = parallel.get_pool(size)
                assert pool.workers >= size
                with lock:
                    seen.append(pool)

        try:
            _hammer(worker, threads=6)
            final, cold = parallel.get_pool(2)
            assert not cold
            assert final.workers >= 4
            # Every pool handed out after the largest request is the
            # surviving pool object (no parallel replacement leaked).
            assert seen.count(final) > 0
        finally:
            parallel.shutdown_pool()

    @pytest.mark.skipif(not parallel._fork_available(),
                        reason="fork start method unavailable")
    def test_pool_usable_after_concurrent_growth(self):
        parallel.shutdown_pool()
        try:
            _hammer(lambda i: parallel.get_pool(2 + i % 3),
                    threads=4)
            pool, _cold = parallel.get_pool(2)
            assert pool.submit(len, (1, 2, 3)).result(timeout=30) == 3
        finally:
            parallel.shutdown_pool()

"""The compiled-plan cache: LRU protocol, keying, invalidation, and
its integration with the staged pipeline.

The unit half drives :class:`repro.runtime.plancache.PlanCache`
directly with toy keys; the integration half compiles real queries and
asserts the acceptance criterion — a hit replays **zero** translate /
optimize phases.
"""

import pytest

from repro import lyric
from repro.core.pipeline import Pipeline
from repro.model.database import Database
from repro.model.office import build_office_database, build_office_schema
from repro.runtime.context import ExecutionStats, QueryContext
from repro.runtime.faults import FaultPlan
from repro.runtime.guard import ExecutionGuard
from repro.runtime.plancache import (
    PlanCache,
    clear_global_plan_cache,
    get_global_plan_cache,
    plan_key,
    plan_options_key,
)

QUERY = """
    SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
    FROM Office_Object CO
    WHERE CO.extent[E] and CO.translation[D]
"""


@pytest.fixture(autouse=True)
def _cold_plan_cache():
    clear_global_plan_cache()
    yield
    clear_global_plan_cache()


@pytest.fixture
def office():
    db, _ = build_office_database()
    return db


class TestLruProtocol:
    def test_miss_then_hit(self):
        cache = PlanCache(maxsize=4)
        key = ("q", b"f", ())
        hit, value, saved = cache.lookup(key)
        assert (hit, value) == (False, None)
        cache.store(key, "plan", 0.25)
        hit, value, saved = cache.lookup(key)
        assert (hit, value, saved) == (True, "plan", 0.25)
        assert cache.counters()["hits"] == 1
        assert cache.counters()["misses"] == 1
        assert cache.compile_saved == 0.25

    def test_lru_eviction_order(self):
        cache = PlanCache(maxsize=2)
        cache.store("a", 1, 0.0)
        cache.store("b", 2, 0.0)
        cache.lookup("a")  # refresh: "b" is now least recent
        cache.store("c", 3, 0.0)
        assert cache.lookup("b")[0] is False
        assert cache.lookup("a")[0] is True
        assert cache.lookup("c")[0] is True
        assert cache.evictions == 1

    def test_restore_does_not_grow(self):
        cache = PlanCache(maxsize=2)
        cache.store("a", 1, 0.0)
        cache.store("a", 1, 0.0)
        assert len(cache) == 1
        assert cache.evictions == 0

    def test_nonpositive_maxsize_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_clear_resets_counters(self):
        cache = PlanCache()
        cache.store("a", 1, 0.5)
        cache.lookup("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.counters() == {
            "hits": 0, "misses": 0, "evictions": 0,
            "invalidations": 0, "compile_saved": 0.0, "entries": 0}


class TestSchemaInvalidation:
    def test_mutation_evicts_stale_entries(self):
        cache = PlanCache()
        schema = build_office_schema()
        fp1 = cache.note_schema(schema)
        cache.store(("q", fp1, ()), "plan", 0.0)
        schema.define("Shelf", parents=["Office_Object"])
        fp2 = cache.note_schema(schema)
        assert fp1 != fp2
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_unrelated_schema_entries_survive(self):
        cache = PlanCache()
        mutating, stable = build_office_schema(), build_office_schema()
        fp_mut = cache.note_schema(mutating)
        fp_stable = cache.note_schema(stable)
        assert fp_mut == fp_stable  # equal content, equal fingerprint
        cache.store(("q", fp_mut, ()), "plan", 0.0)
        mutating.define("Shelf", parents=["Office_Object"])
        cache.note_schema(mutating)
        # The entry was keyed by the shared fingerprint; the mutating
        # schema's DDL rightfully evicts it (it was compiled against
        # that fingerprint) but the stable schema just re-misses.
        assert cache.invalidations == 1

    def test_equal_content_schemas_share_fingerprint(self):
        cache = PlanCache()
        assert cache.note_schema(build_office_schema()) \
            == cache.note_schema(build_office_schema())


class TestOptionsKeying:
    def test_plan_options_partition_the_cache(self):
        base = QueryContext()
        assert plan_options_key(base) \
            != plan_options_key(base.derive(indexing=False))
        assert plan_options_key(base) \
            != plan_options_key(base.derive(numeric=not base.numeric))
        assert plan_options_key(base) \
            != plan_options_key(base.derive(use_optimizer=False))
        assert plan_options_key(base) \
            != plan_options_key(base.derive(parallelism=4))

    def test_execution_only_options_do_not_partition(self):
        base = QueryContext()
        assert plan_options_key(base) \
            == plan_options_key(base.derive(prefilter=not base.prefilter))
        assert plan_options_key(base) \
            == plan_options_key(base.derive(cache=None))

    def test_plan_key_carries_fingerprint(self):
        ctx = QueryContext()
        key = plan_key("ast", b"fp", ctx)
        assert key == ("ast", b"fp", plan_options_key(ctx))


class TestPipelineIntegration:
    def test_hit_skips_all_compile_phases(self, office):
        ctx1 = QueryContext(stats=ExecutionStats())
        Pipeline(office, ctx1).run(QUERY)
        assert ctx1.stats.plan_cache_misses == 1
        ctx2 = QueryContext(stats=ExecutionStats())
        Pipeline(office, ctx2).run(QUERY)
        names = [r.name for r in ctx2.stats.phases]
        # The acceptance criterion: zero translate/optimize records.
        assert names == ["plan-cache", "bind", "execute"]
        assert ctx2.stats.plan_cache_hits == 1
        assert ctx2.stats.plan_compile_saved > 0.0

    def test_hit_and_miss_results_identical(self, office):
        miss = Pipeline(office).run(QUERY)
        hit = Pipeline(office).run(QUERY)
        assert [r.values for r in miss] == [r.values for r in hit]
        assert get_global_plan_cache().hits == 1

    def test_whitespace_variants_share_an_entry(self, office):
        Pipeline(office).run(QUERY)
        Pipeline(office).run("  " + QUERY.replace("\n", " \n "))
        cache = get_global_plan_cache()
        assert (cache.hits, cache.misses) == (1, 1)

    def test_options_get_separate_entries(self, office):
        Pipeline(office).run(QUERY)
        ctx = QueryContext(stats=ExecutionStats(), indexing=False)
        Pipeline(office, ctx).run(QUERY)
        assert ctx.stats.plan_cache_misses == 1
        assert get_global_plan_cache().hits == 0

    def test_schema_mutation_invalidates(self, office):
        Pipeline(office).run("SELECT X FROM Desk X")
        office.schema.define("Shelf", parents=["Office_Object"])
        ctx = QueryContext(stats=ExecutionStats())
        Pipeline(office, ctx).run("SELECT X FROM Desk X")
        assert ctx.stats.plan_cache_invalidations == 1
        assert ctx.stats.plan_cache_misses == 1
        assert ctx.stats.plan_cache_hits == 0

    def test_equal_content_databases_share_plans(self):
        db1, _ = build_office_database()
        db2, _ = build_office_database()
        Pipeline(db1).run("SELECT X FROM Desk X")
        ctx = QueryContext(stats=ExecutionStats())
        result = Pipeline(db2, ctx).run("SELECT X FROM Desk X")
        assert ctx.stats.plan_cache_hits == 1
        assert len(result) == 1  # rows come from db2's bind, not db1's

    def test_disabled_cache_always_compiles(self, office):
        ctx = QueryContext(stats=ExecutionStats(), plan_cache=None)
        pipe = Pipeline(office, ctx)
        pipe.run(QUERY)
        pipe.run(QUERY)
        assert ctx.stats.plan_cache_hits == 0
        assert ctx.stats.plan_cache_misses == 0
        assert len(get_global_plan_cache()) == 0

    def test_fault_plan_bypasses_cache(self, office):
        Pipeline(office).run(QUERY)
        guard = ExecutionGuard(faults=FaultPlan())
        ctx = QueryContext(stats=ExecutionStats(), guard=guard)
        assert ctx.active_plan_cache() is None
        Pipeline(office, ctx).run(QUERY)
        assert ctx.stats.plan_cache_hits == 0
        names = [r.name for r in ctx.stats.phases]
        assert "translate" in names

    def test_private_cache_isolated_from_global(self, office):
        private = PlanCache(maxsize=8)
        ctx = QueryContext(stats=ExecutionStats(), plan_cache=private)
        Pipeline(office, ctx).run(QUERY)
        assert len(private) == 1
        assert len(get_global_plan_cache()) == 0


class TestPreparedQueryBinding:
    def test_store_restored_equivalent_database_accepted(self):
        db, _ = build_office_database()
        prepared = lyric.prepare(db, "SELECT X FROM Desk X")
        restored = Database(build_office_schema())
        assert len(prepared.run(restored)) == 0

    def test_store_round_trip_database_accepted(self, tmp_path):
        from repro.storage import Store

        db, _ = build_office_database()
        prepared = lyric.prepare(db, "SELECT X FROM Desk X")
        expected = len(prepared.run(db))
        path = str(tmp_path / "office.store")
        Store.create(path, db).close()
        with Store.open(path) as store:
            # The restored schema is content-equal, so the statement
            # (fingerprint-bound, not identity-bound) runs against it.
            assert len(prepared.run(store.db)) == expected

    def test_repeat_runs_reuse_compiled_plan(self):
        db, _ = build_office_database()
        prepared = lyric.prepare(db, "SELECT X FROM Desk X")
        clear_global_plan_cache()
        ctx1 = QueryContext(stats=ExecutionStats())
        prepared.run(db, ctx=ctx1)
        ctx2 = QueryContext(stats=ExecutionStats())
        prepared.run(db, ctx=ctx2)
        # The statement memoizes its own CompiledQuery per options key:
        # the second run recompiles nothing (no compile phases at all).
        names = [r.name for r in ctx2.stats.phases]
        assert "translate" not in names and "plan-cache" not in names

"""ExecutionGuard: budgets trip on real engine workloads.

Each guarded hot path — simplex pivots, disequality branching,
disjunct products, canonicalisation — is driven to its budget with a
small genuine input (no fault injection here; see test_faults.py for
the injected variants).
"""

from fractions import Fraction

import pytest

from repro import errors
from repro.constraints import simplex
from repro.constraints.atoms import Eq, Le, Lt, Ne
from repro.constraints.canonical import (
    canonical_conjunctive,
    remove_subsumed_disjuncts,
)
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.existential import DisjunctiveExistentialConstraint
from repro.constraints.terms import variables
from repro.runtime import ExecutionGuard, current_guard, guarded

x, y, z = variables("x y z")


class FakeClock:
    """A deterministic clock: every read advances one second."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestConstruction:
    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            ExecutionGuard(on_exhaustion="panic")

    def test_rejects_non_positive_limits(self):
        with pytest.raises(ValueError):
            ExecutionGuard(max_pivots=0)
        with pytest.raises(ValueError):
            ExecutionGuard(deadline=-1)

    def test_repr_names_limits(self):
        guard = ExecutionGuard(max_pivots=7, deadline=2.0)
        assert "max_pivots=7" in repr(guard)
        assert "deadline=2.0" in repr(guard)


class TestAmbientActivation:
    def test_no_guard_by_default(self):
        assert current_guard() is None

    def test_guarded_activates_and_restores(self):
        guard = ExecutionGuard(max_pivots=10)
        with guarded(guard) as active:
            assert active is guard
            assert current_guard() is guard
        assert current_guard() is None

    def test_guarded_none_is_noop(self):
        with guarded(None) as active:
            assert active is None
            assert current_guard() is None

    def test_guards_nest(self):
        outer = ExecutionGuard(max_pivots=10)
        inner = ExecutionGuard(max_pivots=5)
        with guarded(outer):
            with guarded(inner):
                assert current_guard() is inner
            assert current_guard() is outer


class TestPivotBudget:
    def test_simplex_counts_pivots(self):
        guard = ExecutionGuard()
        with guarded(guard):
            result = simplex.solve(x + y, [Le(x, 1), Le(y, 1)])
        assert result.is_optimal
        assert guard.pivots > 0
        assert guard.simplex_calls == 1

    def test_pivot_budget_trips(self):
        guard = ExecutionGuard(max_pivots=1)
        with guarded(guard):
            with pytest.raises(errors.PivotBudgetExceeded) as info:
                simplex.solve(x + y, [Le(x, 1), Le(y, 1), Le(x + y, 3)])
        assert info.value.budget == "pivots"
        assert info.value.limit == 1
        assert info.value.spent > 1

    def test_satisfiability_spends_pivots(self):
        conj = ConjunctiveConstraint.of(Le(x, 1), Le(-x, 0), Lt(y, 5))
        guard = ExecutionGuard(max_pivots=1)
        with guarded(guard):
            with pytest.raises(errors.PivotBudgetExceeded):
                conj.is_satisfiable()


class TestBranchBudget:
    def test_disequality_branching_trips(self):
        # Unsatisfiable: x = 0 and x != 0; the extra disequalities on y
        # force the worklist to enumerate every leaf before concluding.
        conj = ConjunctiveConstraint.of(
            Eq(x, 0), Ne(x, 0), Ne(y, 1), Ne(y, 2), Ne(y, 3))
        guard = ExecutionGuard(max_branches=4)
        with guarded(guard):
            with pytest.raises(errors.BranchBudgetExceeded) as info:
                conj.is_satisfiable()
        assert info.value.budget == "branches"
        assert info.value.spent == 5

    def test_branches_counted_without_limit(self):
        conj = ConjunctiveConstraint.of(Eq(x, 0), Ne(x, 1))
        guard = ExecutionGuard()
        with guarded(guard):
            assert conj.is_satisfiable()
        assert guard.branches >= 1

    def test_many_disequalities_do_not_recurse(self):
        # 3000 pending disequalities would overflow the recursive DFS;
        # the iterative worklist finds the satisfiable first leaf fast.
        atoms = [Ne(x, i) for i in range(3000)]
        conj = ConjunctiveConstraint(atoms + [Eq(y, 0)])
        assert conj.is_satisfiable()


class TestDisjunctBudget:
    def test_conjoin_product_trips(self):
        left = DisjunctiveConstraint(
            ConjunctiveConstraint.of(Eq(x, i)) for i in range(3))
        right = DisjunctiveConstraint(
            ConjunctiveConstraint.of(Eq(y, i)) for i in range(3))
        guard = ExecutionGuard(max_disjuncts=5)
        with guarded(guard):
            with pytest.raises(errors.DisjunctBudgetExceeded) as info:
                left.conjoin(right)
        assert info.value.budget == "disjuncts"
        assert info.value.spent == 9

    def test_peak_disjuncts_recorded(self):
        guard = ExecutionGuard()
        with guarded(guard):
            DisjunctiveConstraint(
                ConjunctiveConstraint.of(Eq(x, i)) for i in range(4))
        assert guard.peak_disjuncts == 4

    def test_dex_family_also_capped(self):
        guard = ExecutionGuard(max_disjuncts=2)
        with guarded(guard):
            with pytest.raises(errors.DisjunctBudgetExceeded):
                DisjunctiveExistentialConstraint.of(
                    DisjunctiveConstraint(
                        ConjunctiveConstraint.of(Eq(x, i))
                        for i in range(3)))


class TestCanonicalBudget:
    def test_redundancy_removal_trips(self):
        conj = ConjunctiveConstraint.of(
            Le(x, 1), Le(x, 2), Le(x, 3), Le(y, 1), Le(y, 2))
        guard = ExecutionGuard(max_canonical=2)
        with guarded(guard):
            with pytest.raises(
                    errors.CanonicalizationBudgetExceeded) as info:
                canonical_conjunctive(conj)
        assert info.value.budget == "canonical"

    def test_subsumption_removal_trips(self):
        dis = DisjunctiveConstraint(
            ConjunctiveConstraint.of(Le(x, i)) for i in range(1, 5))
        guard = ExecutionGuard(max_canonical=1)
        with guarded(guard):
            with pytest.raises(errors.CanonicalizationBudgetExceeded):
                remove_subsumed_disjuncts(dis)


class TestDeadline:
    def test_deadline_trips_deterministically(self):
        clock = FakeClock()
        guard = ExecutionGuard(deadline=3, clock=clock)
        guard.start()
        guard.checkpoint("warm")  # elapsed grows 1s per clock read
        with pytest.raises(errors.DeadlineExceeded) as info:
            for _ in range(10):
                guard.checkpoint("loop")
        assert info.value.budget == "deadline"
        assert info.value.limit == 3
        assert info.value.spent > 3

    def test_deadline_checked_inside_simplex(self):
        clock = FakeClock()
        guard = ExecutionGuard(deadline=2, clock=clock)
        with guarded(guard):
            with pytest.raises(errors.DeadlineExceeded):
                # Each pivot tick reads the clock once → trips mid-solve.
                simplex.solve(x + y + z,
                              [Le(x, 1), Le(y, 1), Le(z, 1),
                               Le(x + y + z, 2)])

    def test_elapsed_zero_before_start(self):
        guard = ExecutionGuard(deadline=1)
        assert guard.elapsed() == 0.0


class TestCancellation:
    def test_cancel_observed_at_checkpoint(self):
        guard = ExecutionGuard()
        guard.checkpoint("fine")
        guard.cancel()
        with pytest.raises(errors.QueryCancelled) as info:
            guard.checkpoint("evaluator")
        assert info.value.budget == "cancellation"
        assert guard.cancelled

    def test_cancel_stops_engine_work(self):
        conj = ConjunctiveConstraint.of(Le(x, 1))
        guard = ExecutionGuard()
        guard.cancel()
        with guarded(guard):
            with pytest.raises(errors.QueryCancelled):
                conj.is_satisfiable()


class TestDiagnostics:
    def test_exception_hierarchy(self):
        for leaf in (errors.DeadlineExceeded, errors.PivotBudgetExceeded,
                     errors.BranchBudgetExceeded,
                     errors.DisjunctBudgetExceeded,
                     errors.CanonicalizationBudgetExceeded,
                     errors.QueryCancelled):
            assert issubclass(leaf, errors.ResourceExhausted)
            assert issubclass(leaf, errors.ReproError)

    def test_message_carries_structure(self):
        exc = errors.PivotBudgetExceeded(
            "pivots budget exhausted", budget="pivots", limit=10,
            spent=11, fragment="simplex")
        assert exc.budget == "pivots"
        assert exc.limit == 10
        assert exc.spent == 11
        assert exc.fragment == "simplex"
        assert "budget=pivots" in str(exc)
        assert "limit=10" in str(exc)
        assert "in simplex" in str(exc)

    def test_spend_summary(self):
        guard = ExecutionGuard()
        conj = ConjunctiveConstraint.of(Le(x, 1), Ne(x, 5))
        with guarded(guard):
            assert conj.is_satisfiable()
        spend = guard.spend()
        assert spend["pivots"] > 0
        assert spend["branches"] >= 1
        assert spend["simplex_calls"] >= 1


class TestUnguardedBehaviour:
    def test_results_identical_without_guard(self):
        conj = ConjunctiveConstraint.of(
            Le(x, 10), Le(-x, 0), Ne(x, 5), Lt(y, 3))
        unguarded_point = conj.sample_point()
        guard = ExecutionGuard(max_pivots=10_000, max_branches=1_000)
        with guarded(guard):
            guarded_point = conj.sample_point()
        assert unguarded_point == guarded_point
        assert unguarded_point[x] >= 0
        assert unguarded_point[x] != Fraction(5)

"""Fault injection: every degradation path, deterministically.

The FaultPlan forces budget exhaustion, simplex failure, and
cancellation without pathological inputs, so the degrade/fail policies
of both query engines are covered by fast tests.
"""

import pytest

from repro import errors, lyric
from repro.constraints import simplex
from repro.constraints.atoms import Eq, Le, Ne
from repro.constraints.canonical import canonical_conjunctive
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.terms import variables
from repro.core.translator import translate
from repro.model.office import (
    add_file_cabinet,
    add_regions,
    build_office_database,
)
from repro.model.relations import flatten
from repro.runtime import ExecutionGuard, FaultPlan, guarded
from repro.sqlc import engine

x, y = variables("x y")

#: The paper's worked example — exercises simplex/satisfiability on
#: both evaluation paths.
PAPER_QUERY = """
    SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
    FROM Office_Object CO
    WHERE CO.extent[E] and CO.translation[D]
"""


@pytest.fixture(scope="module")
def db():
    database, _ = build_office_database()
    add_file_cabinet(database)
    add_regions(database)
    return database


class TestFaultPlanValidation:
    def test_unknown_budget_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(exhaust_budget="quantum")

    def test_default_plan_injects_nothing(self):
        plan = FaultPlan()
        assert not plan.exhausts("pivots", 10 ** 6)
        assert not plan.simplex_should_fail(1)
        assert not plan.cancels_at(1)


class TestForcedExhaustion:
    """Each budget trips on demand, with no configured limit at all."""

    def test_pivots(self):
        guard = ExecutionGuard(
            faults=FaultPlan(exhaust_budget="pivots", exhaust_after=1))
        with guarded(guard):
            with pytest.raises(errors.PivotBudgetExceeded) as info:
                simplex.solve(x + y, [Le(x, 1), Le(y, 1)])
        assert info.value.fragment == "fault-injection"

    def test_branches(self):
        conj = ConjunctiveConstraint.of(Le(x, 1), Ne(x, 0))
        guard = ExecutionGuard(
            faults=FaultPlan(exhaust_budget="branches"))
        with guarded(guard):
            with pytest.raises(errors.BranchBudgetExceeded) as info:
                conj.is_satisfiable()
        assert info.value.fragment == "fault-injection"

    def test_disjuncts(self):
        guard = ExecutionGuard(
            faults=FaultPlan(exhaust_budget="disjuncts", exhaust_after=2))
        with guarded(guard):
            with pytest.raises(errors.DisjunctBudgetExceeded):
                DisjunctiveConstraint(
                    ConjunctiveConstraint.of(Eq(x, i)) for i in range(3))

    def test_canonical(self):
        conj = ConjunctiveConstraint.of(Le(x, 1), Le(x, 2), Le(y, 3))
        guard = ExecutionGuard(
            faults=FaultPlan(exhaust_budget="canonical", exhaust_after=1))
        with guarded(guard):
            with pytest.raises(errors.CanonicalizationBudgetExceeded):
                canonical_conjunctive(conj)

    def test_deadline(self):
        guard = ExecutionGuard(
            faults=FaultPlan(exhaust_budget="deadline", exhaust_after=2))
        guard.start()
        guard.checkpoint()
        guard.checkpoint()
        with pytest.raises(errors.DeadlineExceeded) as info:
            guard.checkpoint()
        assert info.value.fragment == "fault-injection"


class TestInjectedSimplexFailure:
    def test_fails_on_exact_call(self):
        guard = ExecutionGuard(faults=FaultPlan(fail_simplex_at=2))
        with guarded(guard):
            first = simplex.solve(x, [Le(x, 1)])
            assert first.is_optimal
            with pytest.raises(errors.InjectedFaultError):
                simplex.solve(x, [Le(x, 1)])

    def test_error_is_catchable_as_repro_error(self):
        guard = ExecutionGuard(faults=FaultPlan(fail_simplex_at=1))
        with guarded(guard):
            with pytest.raises(errors.ReproError):
                ConjunctiveConstraint.of(Le(x, 1)).is_satisfiable()


class TestInjectedCancellation:
    def test_cancels_at_nth_checkpoint(self):
        guard = ExecutionGuard(faults=FaultPlan(cancel_at_checkpoint=3))
        guard.start()
        guard.checkpoint()
        guard.checkpoint()
        with pytest.raises(errors.QueryCancelled):
            guard.checkpoint()

    def test_cancellation_reaches_query(self, db):
        guard = ExecutionGuard(faults=FaultPlan(cancel_at_checkpoint=1))
        with pytest.raises(errors.QueryCancelled):
            lyric.query(db, PAPER_QUERY, guard=guard)


class TestEvaluatorDegrade:
    def test_fail_policy_raises(self, db):
        guard = ExecutionGuard(
            faults=FaultPlan(exhaust_budget="pivots", exhaust_after=5))
        with pytest.raises(errors.PivotBudgetExceeded):
            lyric.query(db, PAPER_QUERY, guard=guard)

    def test_degrade_returns_partial_with_warning(self, db):
        full = lyric.query(db, PAPER_QUERY)
        assert not full.is_partial

        # Cancel midway through the full run's checkpoint count so at
        # least one binding environment completes and at least one
        # does not.
        probe = ExecutionGuard()
        lyric.query(db, PAPER_QUERY, guard=probe)
        midway = max(2, probe.checkpoints // 2)

        guard = ExecutionGuard(
            on_exhaustion="degrade",
            faults=FaultPlan(cancel_at_checkpoint=midway))
        partial = lyric.query(db, PAPER_QUERY, guard=guard)
        assert partial.is_partial
        assert len(partial) < len(full)
        assert any("partial result" in w for w in partial.warnings)
        assert "cancel" in partial.warnings[0]

    def test_degrade_warning_carries_budget(self, db):
        probe = ExecutionGuard()
        lyric.query(db, PAPER_QUERY, guard=probe)
        guard = ExecutionGuard(
            on_exhaustion="degrade",
            faults=FaultPlan(exhaust_budget="pivots",
                             exhaust_after=probe.pivots // 2))
        partial = lyric.query(db, PAPER_QUERY, guard=guard)
        assert partial.is_partial
        assert "budget=pivots" in partial.warnings[0]

    def test_pretty_prints_warning(self, db):
        guard = ExecutionGuard(
            on_exhaustion="degrade",
            faults=FaultPlan(cancel_at_checkpoint=2))
        partial = lyric.query(db, PAPER_QUERY, guard=guard)
        assert "warning:" in partial.pretty()


class TestEngineDegrade:
    def test_stats_capture_spend(self, db):
        translated = translate(db, PAPER_QUERY)
        catalog = flatten(db)
        stats = engine.ExecutionStats()
        guard = ExecutionGuard()
        relation = engine.execute(translated.plan, catalog,
                                  stats=stats, guard=guard)
        assert len(relation) > 0
        assert stats.pivots > 0
        assert stats.simplex_calls >= 1
        assert stats.checkpoints >= 1
        assert stats.exhausted is None
        assert stats.warnings == []

    def test_degrade_returns_empty_with_warning(self, db):
        translated = translate(db, PAPER_QUERY)
        catalog = flatten(db)
        stats = engine.ExecutionStats()
        guard = ExecutionGuard(
            on_exhaustion="degrade",
            faults=FaultPlan(exhaust_budget="pivots", exhaust_after=1))
        relation = engine.execute(translated.plan, catalog,
                                  stats=stats, guard=guard)
        assert len(relation) == 0
        assert relation.columns == translated.plan.columns
        assert stats.exhausted == "pivots"
        assert any("partial result" in w for w in stats.warnings)

    def test_fail_policy_raises(self, db):
        translated = translate(db, PAPER_QUERY)
        catalog = flatten(db)
        guard = ExecutionGuard(
            faults=FaultPlan(exhaust_budget="pivots", exhaust_after=1))
        with pytest.raises(errors.PivotBudgetExceeded):
            engine.execute(translated.plan, catalog, guard=guard)

    def test_query_translated_propagates_warning(self, db):
        guard = ExecutionGuard(
            on_exhaustion="degrade",
            faults=FaultPlan(exhaust_budget="pivots", exhaust_after=1))
        result = lyric.query_translated(db, PAPER_QUERY, guard=guard)
        assert result.is_partial
        assert any("partial result" in w for w in result.warnings)


class TestZeroOverheadDefault:
    def test_unguarded_query_identical(self, db):
        baseline = lyric.query(db, PAPER_QUERY)
        permissive = lyric.query(
            db, PAPER_QUERY,
            guard=ExecutionGuard(max_pivots=10 ** 9,
                                 max_branches=10 ** 9,
                                 max_disjuncts=10 ** 9,
                                 max_canonical=10 ** 9,
                                 deadline=3600))
        assert baseline.rows == permissive.rows
        assert not baseline.is_partial
        assert not permissive.is_partial

"""QueryContext: the one object owning per-query execution state."""

import dataclasses

import pytest

from repro.constraints.atoms import Ge, Le
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.terms import variables
from repro.errors import ResourceExhausted
from repro.runtime import context as context_mod
from repro.runtime.cache import ConstraintCache, get_global_cache
from repro.runtime.context import (
    ExecutionStats,
    PhaseRecord,
    QueryContext,
    current_context,
)
from repro.runtime.faults import FaultPlan
from repro.runtime.guard import ExecutionGuard, current_guard

x, y = variables("x y")


def interval(lo, hi):
    return ConjunctiveConstraint.of(Ge(x, lo), Le(x, hi))


class TestConstruction:
    def test_defaults(self):
        ctx = QueryContext()
        assert ctx.guard is None
        assert ctx.cache is get_global_cache()
        assert ctx.prefilter and ctx.indexing
        assert ctx.parallelism == 1
        assert ctx.use_optimizer
        assert isinstance(ctx.stats, ExecutionStats)

    def test_explicit_none_cache_disables(self):
        assert QueryContext(cache=None).active_cache() is None

    def test_parallelism_validated(self):
        with pytest.raises(ValueError):
            QueryContext(parallelism=0)

    def test_on_exhaustion_comes_from_guard(self):
        assert QueryContext().on_exhaustion == "fail"
        guard = ExecutionGuard(on_exhaustion="degrade")
        assert QueryContext(guard=guard).on_exhaustion == "degrade"

    def test_faults_owned_through_guard(self):
        plan = FaultPlan(exhaust_budget="pivots", exhaust_after=1)
        guard = ExecutionGuard(faults=plan)
        assert QueryContext(guard=guard).faults is plan
        assert QueryContext().faults is None


class TestDerive:
    def test_derive_shares_stats(self):
        parent = QueryContext()
        child = parent.derive(parallelism=3)
        assert child.stats is parent.stats
        assert child.parallelism == 3
        assert parent.parallelism == 1

    def test_derive_honours_explicit_none(self):
        parent = QueryContext(guard=ExecutionGuard())
        assert parent.derive(guard=None).guard is None
        assert parent.derive(cache=None).active_cache() is None

    def test_derive_rejects_unknown_attributes(self):
        with pytest.raises(TypeError):
            QueryContext().derive(nonsense=1)

    def test_derived_stats_override(self):
        fresh = ExecutionStats()
        child = QueryContext().derive(stats=fresh)
        assert child.stats is fresh


class TestActivation:
    def test_activate_makes_context_ambient(self):
        ctx = QueryContext(guard=ExecutionGuard(max_pivots=5))
        assert current_context() is not ctx
        with ctx.activate():
            assert current_context() is ctx
            assert current_guard() is ctx.guard
        assert current_context() is not ctx
        assert current_guard() is None

    def test_activations_nest(self):
        outer, inner = QueryContext(), QueryContext()
        with outer.activate():
            with inner.activate():
                assert current_context() is inner
            assert current_context() is outer

    def test_activate_starts_guard_clock(self):
        guard = ExecutionGuard(deadline=60.0)
        with QueryContext(guard=guard).activate():
            assert guard.elapsed() >= 0.0

    def test_resolve_prefers_explicit(self):
        explicit = QueryContext()
        assert context_mod.resolve(explicit) is explicit
        assert context_mod.resolve(None) is current_context()


class TestFaultGating:
    def test_faults_disable_cache_and_prefilter(self):
        guard = ExecutionGuard(faults=FaultPlan())
        ctx = QueryContext(guard=guard)
        assert ctx.active_cache() is None
        assert not ctx.prefilter_active()

    def test_no_faults_keeps_both(self):
        ctx = QueryContext(guard=ExecutionGuard())
        assert ctx.active_cache() is ctx.cache
        assert ctx.prefilter_active()


class TestMemoized:
    def test_hit_and_miss_book_into_context_stats(self):
        ctx = QueryContext(cache=ConstraintCache(maxsize=8))
        calls = []
        ctx.memoized("k", lambda: calls.append(1) or "v")
        assert ctx.memoized("k", lambda: calls.append(1) or "v") == "v"
        assert len(calls) == 1
        assert ctx.stats.cache_misses == 1
        assert ctx.stats.cache_hits == 1

    def test_hit_checkpoints_guard(self):
        guard = ExecutionGuard()
        ctx = QueryContext(guard=guard,
                           cache=ConstraintCache(maxsize=8))
        ctx.memoized("k", lambda: 1)
        guard.cancel()
        with pytest.raises(ResourceExhausted) as info:
            ctx.memoized("k", lambda: 1)
        assert info.value.budget == "cancellation"

    def test_disabled_cache_always_computes(self):
        ctx = QueryContext(cache=None)
        calls = []
        ctx.memoized("k", lambda: calls.append(1) or "v")
        ctx.memoized("k", lambda: calls.append(1) or "v")
        assert len(calls) == 2
        assert ctx.stats.cache_hits == 0


def _synthetic_value(stats, f):
    """A distinct non-default value for any stats field, by type."""
    current = getattr(stats, f.name)
    if isinstance(current, bool):
        return True
    if isinstance(current, float):
        return 1.5
    if isinstance(current, int):
        return 7
    if isinstance(current, list):
        if f.name == "phases":
            return [PhaseRecord("synthetic", 0.1)]
        return ["synthetic"]
    return "synthetic"


class TestStatsMergeRegression:
    """Satellite guarantee: EVERY ExecutionStats counter — including
    ones added after this test was written — survives a worker
    round-trip (snapshot in the child, merge in the parent).

    The test iterates ``dataclasses.fields`` so a newly added counter
    is covered automatically; a field may only opt out by declaring
    ``merge: skip`` in its metadata (engine-assigned summary fields).
    """

    def test_every_field_survives_snapshot_merge(self):
        worker = ExecutionStats()
        expected = {}
        for f in dataclasses.fields(worker):
            how = f.metadata.get("merge", "sum")
            if how == "skip":
                continue
            value = _synthetic_value(worker, f)
            setattr(worker, f.name, value)
            expected[f.name] = value

        parent = ExecutionStats()
        parent.merge(worker.snapshot())

        for name, value in expected.items():
            merged = getattr(parent, name)
            assert merged == value, (
                f"counter {name!r} was lost in the worker round-trip: "
                f"sent {value!r}, parent has {merged!r}")

    def test_sum_fields_accumulate(self):
        a, b = ExecutionStats(), ExecutionStats()
        a.pivots = 3
        b.pivots = 4
        a.merge(b)
        assert a.pivots == 7

    def test_max_fields_take_peak(self):
        a, b = ExecutionStats(), ExecutionStats()
        a.workers = 4
        b.workers = 2
        a.merge(b)
        assert a.workers == 4

    def test_first_fields_keep_existing(self):
        a, b = ExecutionStats(), ExecutionStats()
        a.exhausted = "pivots"
        b.exhausted = "branches"
        a.merge(b)
        assert a.exhausted == "pivots"

    def test_skip_fields_untouched(self):
        a, b = ExecutionStats(), ExecutionStats()
        a.output_rows = 10
        b.output_rows = 99
        b.optimized = True
        a.merge(b)
        assert a.output_rows == 10
        assert a.optimized is False

    def test_snapshot_is_plain_data(self):
        import pickle
        stats = ExecutionStats()
        stats.phases.append(PhaseRecord("parse", 0.01))
        snap = stats.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_reset_zeroes_every_field(self):
        stats = ExecutionStats()
        for f in dataclasses.fields(stats):
            setattr(stats, f.name, _synthetic_value(stats, f))
        stats.reset()
        fresh = ExecutionStats()
        for f in dataclasses.fields(stats):
            assert getattr(stats, f.name) == getattr(fresh, f.name)

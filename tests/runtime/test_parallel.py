"""Unit tests for the partitioned parallel evaluator."""

import pytest

from repro.constraints import bounds
from repro.constraints.terms import Variable
from repro.errors import PivotBudgetExceeded, QueryCancelled
from repro.runtime import parallel
from repro.runtime.faults import FaultPlan
from repro.runtime.guard import ExecutionGuard, current_guard, guarded
from repro.runtime.parallel import (
    PARTITION_THRESHOLD,
    _chunk_bounds,
    filter_rows,
    parallelism,
    should_partition,
)

ROWS = [(i,) for i in range(200)]


@pytest.fixture(autouse=True)
def _fresh_parallel_stats():
    parallel.reset_stats()
    yield


def _thirds(row):
    return row["a"] % 3 == 0


def _serial_filter(rows, predicate=_thirds):
    return [row for row in rows if predicate({"a": row[0]})]


class TestChunkBounds:
    def test_partitions_cover_and_balance(self):
        for n, chunks in [(200, 3), (64, 2), (7, 7), (65, 8)]:
            spans = _chunk_bounds(n, chunks)
            assert spans[0][0] == 0 and spans[-1][1] == n
            assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))
            sizes = [stop - start for start, stop in spans]
            assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_rows(self):
        spans = _chunk_bounds(3, 8)
        assert spans == [(0, 1), (1, 2), (2, 3)]


class TestGating:
    def test_parallelism_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            with parallelism(0):
                pass

    def test_serial_without_context(self):
        assert not should_partition(len(ROWS))
        assert filter_rows(("a",), ROWS, _thirds) == _serial_filter(ROWS)
        assert parallel.stats()["runs"] == 0

    def test_serial_below_threshold(self):
        small = ROWS[:PARTITION_THRESHOLD - 1]
        with parallelism(2):
            assert not should_partition(len(small))
            assert filter_rows(("a",), small, _thirds) \
                == _serial_filter(small)
        assert parallel.stats()["runs"] == 0

    def test_fault_plan_forces_serial(self):
        guard = ExecutionGuard(faults=FaultPlan())
        with guarded(guard), parallelism(2):
            assert not should_partition(len(ROWS))
            assert filter_rows(("a",), ROWS, _thirds) \
                == _serial_filter(ROWS)
        assert parallel.stats()["runs"] == 0

    def test_nested_partitioning_suppressed(self):
        parallel._IN_WORKER = True
        try:
            with parallelism(2):
                assert not should_partition(len(ROWS))
        finally:
            parallel._IN_WORKER = False


class TestParallelFilter:
    def test_matches_serial_in_order(self):
        with parallelism(3):
            kept = filter_rows(("a",), ROWS, _thirds)
        assert kept == _serial_filter(ROWS)
        stats = parallel.stats()
        if stats["fallbacks"]:  # pool unavailable in this sandbox
            pytest.skip("process pool unavailable")
        assert stats["runs"] == 1
        assert stats["partitions"] == 3
        assert stats["max_workers"] == 3

    def test_guard_spend_absorbed(self):
        def ticking(row):
            current_guard().tick_pivots(1)
            return True

        guard = ExecutionGuard(max_pivots=10_000)
        with guarded(guard), parallelism(2):
            kept = filter_rows(("a",), ROWS, ticking)
        if parallel.stats()["fallbacks"]:
            pytest.skip("process pool unavailable")
        assert len(kept) == len(ROWS)
        assert guard.pivots == len(ROWS)
        assert guard.checkpoints >= 1  # the parallel-merge checkpoint

    def test_bounds_counters_absorbed(self):
        v = Variable("x")
        near = {v: (0, False, 1, False)}
        far = {v: (50, False, 60, False)}

        def boxing(row):
            return not bounds.boxes_disjoint(
                near, near if row["a"] % 2 else far)

        before = bounds.stats()["checks"]
        with parallelism(2):
            kept = filter_rows(("a",), ROWS, boxing)
        if parallel.stats()["fallbacks"]:
            pytest.skip("process pool unavailable")
        assert kept == [row for row in ROWS if row[0] % 2]
        assert bounds.stats()["checks"] - before == len(ROWS)

    def test_worker_budget_trip_rebuilds_exception(self):
        def ticking(row):
            current_guard().tick_pivots(1)
            return True

        guard = ExecutionGuard(max_pivots=10)
        with guarded(guard), parallelism(2):
            with pytest.raises(PivotBudgetExceeded) as exc:
                filter_rows(("a",), ROWS, ticking)
        if parallel.stats()["fallbacks"]:
            pytest.skip("process pool unavailable")
        assert exc.value.budget == "pivots"
        assert guard.exhausted == "pivots"
        # Reconstruction must not double the diagnostics suffix.
        assert str(exc.value).count("[budget=") == 1

    def test_exhausted_parent_budget_falls_back_serial(self):
        guard = ExecutionGuard(max_pivots=5)
        guard.absorb_spend({"pivots": 5})  # no headroom left to split
        with guarded(guard), parallelism(2):
            kept = filter_rows(("a",), ROWS, _thirds)
        assert kept == _serial_filter(ROWS)
        stats = parallel.stats()
        assert stats["fallbacks"] == 1
        assert stats["runs"] == 0

    def test_cancellation_observed_at_merge(self):
        guard = ExecutionGuard()
        guard.cancel()
        with guarded(guard), parallelism(2):
            with pytest.raises(QueryCancelled):
                filter_rows(("a",), ROWS, _thirds)
        if parallel.stats()["fallbacks"]:
            pytest.skip("process pool unavailable")
        assert guard.exhausted == "cancellation"

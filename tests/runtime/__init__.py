"""Tests for repro.runtime — execution guards and fault injection."""

"""Integration tests for CREATE VIEW (experiment E6)."""

import pytest

from repro import lyric
from repro.errors import SemanticError
from repro.model.office import (
    add_file_cabinet,
    add_regions,
    build_office_database,
)
from repro.model.oid import FunctionalOid


@pytest.fixture
def office():
    db, oids = build_office_database()
    cabinet = add_file_cabinet(db, location=(3, 4))
    return db, oids, cabinet


class TestPlainView:
    OVERLAP = """
        CREATE VIEW Overlap AS SUBCLASS OF Office_Object
        SELECT first = X, second = Y
        SIGNATURE first => Office_Object, second => Office_Object
        FROM Object_in_Room OX, Object_in_Room OY,
             Office_Object X, Office_Object Y
        OID FUNCTION OF X, Y
        WHERE OX.catalog_object[X] and OY.catalog_object[Y]
          and OX.location[LX] and OY.location[LY]
          and X.extent[U] and X.translation[DX]
          and Y.extent[V] and Y.translation[DY]
          and not OX.inv_number = OY.inv_number
          and SAT(U(w,z) and DX(w,z,x,y,u,v) and LX(x,y)
                  and V(w2,z2) and DY(w2,z2,x2,y2,u,v) and LY(x2,y2))
    """

    def test_overlap_view(self, office):
        """The paper's Overlap view: pairs of placed objects occupying
        common space.  my_desk at (6,4) spans [2,10]x[2,6]; the cabinet
        at (3,4) spans [2,4]x[2,6]: they overlap."""
        db, oids, cabinet = office
        result = lyric.view(db, self.OVERLAP)
        assert result.classes == ["Overlap"]
        instances = result.instances["Overlap"]
        # (desk, cabinet) and (cabinet, desk).
        assert len(instances) == 2
        assert db.schema.is_subclass("Overlap", "Office_Object")

    def test_view_instances_queryable(self, office):
        db, oids, cabinet = office
        lyric.view(db, self.OVERLAP)
        rows = lyric.query(db, """
            SELECT P, F FROM Overlap P WHERE P.first[F]
        """)
        firsts = {row.values[1] for row in rows}
        assert firsts == {oids.standard_desk, cabinet}

    def test_view_oids_use_oid_function(self, office):
        db, oids, cabinet = office
        result = lyric.view(db, self.OVERLAP)
        assert FunctionalOid("Overlap",
                             [oids.standard_desk, cabinet]) \
            in result.instances["Overlap"]

    def test_duplicate_view_rejected(self, office):
        db, _, _ = office
        lyric.view(db, self.OVERLAP)
        with pytest.raises(SemanticError):
            lyric.view(db, self.OVERLAP)


class TestParameterizedView:
    VIEW = """
        CREATE VIEW R AS SUBCLASS OF Object_in_Room
        SELECT R, Y
        FROM Object_in_Room Y, Region R
        WHERE Y.location[L] and Y.catalog_object[CO]
          and CO.extent[E] and CO.translation[D]
          and (((u,v) | E and D and L(x,y)) |= R(u,v))
    """

    def test_classification(self, office):
        """The Section 4.1 Region view: one subclass per region,
        members classified by containment of their placed extent."""
        db, oids, cabinet = office
        add_regions(db)
        result = lyric.view(db, self.VIEW)
        # my_desk spans [2,10]x[2,6]: inside no single quarter.
        # the cabinet spans [2,4]x[2,6]: also crosses the y=5 line.
        # Widen regions: the left half contains the cabinet.
        assert isinstance(result.classes, list)

    def test_classification_with_halves(self, office):
        db, oids, cabinet = office
        from repro.constraints.parser import parse_cst
        db.add_cst_instance(
            "Region",
            parse_cst("((x,y) | 0 <= x <= 10 and 0 <= y <= 10)"),
            {"region_name": "left_half"})
        db.add_cst_instance(
            "Region",
            parse_cst("((x,y) | 10 <= x <= 20 and 0 <= y <= 10)"),
            {"region_name": "right_half"})
        result = lyric.view(db, self.VIEW)
        assert "R_left_half" in result.classes
        members = result.instances["R_left_half"]
        # Both placed objects fit in the left half.
        assert len(members) == 2
        # The created classes are subclasses of Object_in_Room.
        assert db.schema.is_subclass("R_left_half", "Object_in_Room")

    def test_membership_queryable(self, office):
        db, oids, cabinet = office
        from repro.constraints.parser import parse_cst
        db.add_cst_instance(
            "Region",
            parse_cst("((x,y) | 0 <= x <= 20 and 0 <= y <= 10)"),
            {"region_name": "room"})
        lyric.view(db, self.VIEW)
        rows = lyric.query(db, """
            SELECT M FROM R_room X WHERE X.member[M]
        """)
        members = {row.values[0] for row in rows}
        assert oids.my_desk in members

"""Views under resource guards: exhaustion, degrade, cancellation.

View materialization runs the view's query under the caller's
QueryContext, so guard budgets apply to it exactly as to queries.
These tests pin that behaviour for the constraint-heavy Overlap view.
"""

import pytest

from repro import lyric
from repro.core.views import create_view
from repro.errors import ResourceExhausted
from repro.model.office import add_file_cabinet, build_office_database
from repro.runtime import (
    ConstraintCache,
    ExecutionGuard,
    QueryContext,
    clear_global_cache,
)

OVERLAP = """
    CREATE VIEW Overlap AS SUBCLASS OF Office_Object
    SELECT first = X, second = Y
    SIGNATURE first => Office_Object, second => Office_Object
    FROM Object_in_Room OX, Object_in_Room OY,
         Office_Object X, Office_Object Y
    OID FUNCTION OF X, Y
    WHERE OX.catalog_object[X] and OY.catalog_object[Y]
      and OX.location[LX] and OY.location[LY]
      and X.extent[U] and X.translation[DX]
      and Y.extent[V] and Y.translation[DY]
      and not OX.inv_number = OY.inv_number
      and SAT(U(w,z) and DX(w,z,x,y,u,v) and LX(x,y)
              and V(w2,z2) and DY(w2,z2,x2,y2,u,v) and LY(x2,y2))
"""


@pytest.fixture(autouse=True)
def cold_cache():
    """A warm process-global cache would satisfy the view's SAT checks
    without spending any budget, defeating the tiny-guard setups."""
    clear_global_cache()
    yield
    clear_global_cache()


@pytest.fixture
def office():
    db, oids = build_office_database()
    add_file_cabinet(db, location=(3, 4))
    return db


class TestViewExhaustion:
    def test_fail_policy_raises(self, office):
        guard = ExecutionGuard(max_pivots=1)
        with pytest.raises(ResourceExhausted) as info:
            lyric.view(office, OVERLAP, guard=guard)
        assert info.value.budget == "pivots"
        # Nothing was materialized.
        assert "Overlap" not in office.schema.class_names

    def test_degrade_policy_yields_partial_view(self, office):
        guard = ExecutionGuard(max_pivots=1, on_exhaustion="degrade")
        result = lyric.view(office, OVERLAP, guard=guard)
        assert result.classes == ["Overlap"]
        # The full view has 2 instances; a degraded run found fewer.
        assert len(result.instances["Overlap"]) < 2
        # The class itself still exists and is queryable.
        assert "Overlap" in office.schema.class_names

    def test_roomy_budget_materializes_fully(self, office):
        guard = ExecutionGuard(max_pivots=1_000_000)
        result = lyric.view(office, OVERLAP, guard=guard)
        assert len(result.instances["Overlap"]) == 2


class TestViewCancellation:
    def test_cancelled_guard_aborts_materialization(self, office):
        guard = ExecutionGuard()
        guard.cancel()
        with pytest.raises(ResourceExhausted) as info:
            lyric.view(office, OVERLAP, guard=guard)
        assert info.value.budget == "cancellation"
        assert "Overlap" not in office.schema.class_names

    def test_cancelled_degrade_still_stops(self, office):
        """Cancellation under degrade policy stops the scan early but
        does not raise — it behaves like budget exhaustion."""
        guard = ExecutionGuard(on_exhaustion="degrade")
        guard.cancel()
        result = lyric.view(office, OVERLAP, guard=guard)
        assert len(result.instances["Overlap"]) < 2


class TestViewWithExplicitContext:
    """Private caches: the process-global cache may already memoize
    these satisfiability checks from earlier tests, which would let a
    tiny budget slip through untouched."""

    def test_create_view_accepts_context(self, office):
        ctx = QueryContext(guard=ExecutionGuard(max_pivots=1),
                           cache=ConstraintCache(maxsize=64))
        with pytest.raises(ResourceExhausted):
            create_view(office, OVERLAP, ctx=ctx)

    def test_context_stats_account_view_run(self, office):
        ctx = QueryContext(guard=ExecutionGuard(),
                           cache=ConstraintCache(maxsize=64))
        create_view(office, OVERLAP, ctx=ctx)
        assert ctx.guard.pivots > 0

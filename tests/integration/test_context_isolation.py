"""Isolation property: two QueryContexts never bleed state.

The tentpole guarantee of the context refactor — two engines with
different caches, budgets, and options can run interleaved in one
process while keeping fully separate accounts: stats, cache contents,
and guard spend.  These tests interleave constraint-heavy executions
across two contexts and assert nothing crosses over.
"""

import pytest

from repro import lyric
from repro.model.office import build_office_database
from repro.runtime import context as context_mod
from repro.runtime.cache import ConstraintCache
from repro.runtime.context import QueryContext
from repro.runtime.guard import ExecutionGuard

#: Spends pivots/branches: each row runs exact satisfiability checks.
QUERY = """
    SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
    FROM Office_Object CO
    WHERE CO.extent[E] and CO.translation[D]
"""


@pytest.fixture
def office():
    db, _ = build_office_database()
    return db


def _context(cache_size, **guard_limits):
    return QueryContext(
        guard=ExecutionGuard(**guard_limits) if guard_limits else None,
        cache=ConstraintCache(maxsize=cache_size))


class TestInterleavedIsolation:
    def test_stats_accounts_stay_separate(self, office):
        ctx_a = _context(cache_size=4, max_pivots=100_000)
        ctx_b = _context(cache_size=512, max_pivots=100_000)

        # Interleave: A, B, A, B — counters for A must only move
        # during A's executions.
        lyric.query_translated(office, QUERY, ctx=ctx_a)
        a_after_first = ctx_a.stats.snapshot()

        lyric.query_translated(office, QUERY, ctx=ctx_b)
        assert ctx_a.stats.snapshot() == a_after_first, \
            "B's execution mutated A's stats account"
        assert ctx_b.stats.pivots > 0

        lyric.query_translated(office, QUERY, ctx=ctx_a)
        assert ctx_a.stats.pivots >= a_after_first["pivots"]

    def test_caches_stay_separate(self, office):
        ctx_a = _context(cache_size=4)
        ctx_b = _context(cache_size=512)

        lyric.query_translated(office, QUERY, ctx=ctx_a)
        b_entries_before = len(ctx_b.cache)
        a_entries_after_a = len(ctx_a.cache)
        assert a_entries_after_a > 0
        assert b_entries_before == 0, \
            "A's execution populated B's cache"

        lyric.query_translated(office, QUERY, ctx=ctx_b)
        assert len(ctx_b.cache) > 0
        assert len(ctx_a.cache) == a_entries_after_a, \
            "B's execution populated A's cache"
        # The tiny cache actually evicted; the big one never had to.
        assert len(ctx_a.cache) <= 4
        assert ctx_b.cache.evictions == 0

    def test_guard_spend_stays_separate(self, office):
        ctx_a = _context(cache_size=64, max_pivots=100_000)
        ctx_b = _context(cache_size=64, max_pivots=100_000)

        lyric.query_translated(office, QUERY, ctx=ctx_a)
        spent_a = ctx_a.guard.pivots
        assert spent_a > 0
        assert ctx_b.guard.pivots == 0

        lyric.query_translated(office, QUERY, ctx=ctx_b)
        assert ctx_a.guard.pivots == spent_a

    def test_exhaustion_in_one_leaves_other_healthy(self, office):
        tight = QueryContext(
            guard=ExecutionGuard(max_pivots=1,
                                 on_exhaustion="degrade"),
            cache=ConstraintCache(maxsize=64))
        roomy = _context(cache_size=64, max_pivots=100_000)

        degraded = lyric.query_translated(office, QUERY, ctx=tight)
        assert degraded.warnings
        assert tight.stats.exhausted == "pivots"

        healthy = lyric.query_translated(office, QUERY, ctx=roomy)
        assert not healthy.warnings
        assert roomy.stats.exhausted is None
        assert len(healthy) > 0

    def test_nested_activation_routes_to_explicit_context(self, office):
        """An explicit ctx wins over the ambient one: running B's query
        inside A's activation must account to B."""
        ctx_a = _context(cache_size=64)
        ctx_b = _context(cache_size=64)
        with ctx_a.activate():
            lyric.query_translated(office, QUERY, ctx=ctx_b)
        assert ctx_b.stats.cache_misses > 0
        assert len(ctx_b.cache) > 0
        assert ctx_a.stats.cache_misses == 0
        assert len(ctx_a.cache) == 0

    def test_default_context_untouched(self, office):
        """Facade calls with explicit contexts must not grow the
        process-default account."""
        default_stats = context_mod.default_context().stats.snapshot()
        lyric.query_translated(office, QUERY,
                               ctx=_context(cache_size=64))
        lyric.query(office, QUERY, ctx=_context(cache_size=64))
        assert context_mod.default_context().stats.snapshot() \
            == default_stats

    def test_options_differ_per_context(self, office):
        """Indexing/parallelism/optimizer toggles are per-context, and
        both contexts still compute the same rows."""
        plain = QueryContext(cache=ConstraintCache(maxsize=64),
                             indexing=False, use_optimizer=False)
        tuned = QueryContext(cache=ConstraintCache(maxsize=64))
        a = lyric.query_translated(office, QUERY,
                                   use_optimizer=False, ctx=plain)
        b = lyric.query_translated(office, QUERY, ctx=tuned)
        assert sorted(map(str, a)) == sorted(map(str, b))

"""Cached and cache-disabled runs must be indistinguishable.

The ISSUE-2 property: for randomized workloads, satisfiability
decisions, canonical forms, canonical keys, and full query results are
identical with the cache+prefilter on and off — including under a
``degrade`` guard.  The prefilter is refutation-only and the cache is
keyed on structural content, so any divergence is a bug.
"""

import contextlib

import pytest

from repro import lyric
from repro.constraints.canonical import (
    canonical_conjunctive,
    canonical_key,
)
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.core.translator import translate
from repro.model.office import (
    add_file_cabinet,
    add_regions,
    build_office_database,
)
from repro.model.relations import flatten
from repro.runtime import ExecutionGuard
from repro.runtime.cache import ConstraintCache, caching, prefilter
from repro.sqlc import engine
from repro.workloads.random_constraints import (
    make_variables,
    random_dnf,
    random_infeasible,
    random_polytope,
    redundant_conjunction,
)

QUERIES = [
    "SELECT X FROM Desk X",
    "SELECT R FROM Region R",
    ("SELECT CO, ((u,v) | E and D and x = 6 and y = 4) "
     "FROM Office_Object CO "
     "WHERE CO.extent[E] and CO.translation[D]"),
]


@pytest.fixture(scope="module")
def db():
    database, _ = build_office_database()
    add_file_cabinet(database)
    add_regions(database)
    return database


def cached():
    return caching(ConstraintCache())


def uncached():
    stack = contextlib.ExitStack()
    stack.enter_context(caching(None))
    stack.enter_context(prefilter(False))
    return stack


class TestConstraintLevelEquivalence:
    def test_satisfiability_identical(self):
        cases = [random_polytope(3, 6, seed=s) for s in range(20)]
        cases += [random_infeasible(3, 6, seed=s) for s in range(20)]
        with uncached():
            plain = [c.is_satisfiable() for c in cases]
        with cached():
            memo = [ConjunctiveConstraint(c.atoms).is_satisfiable()
                    for c in cases]
        assert plain == memo

    def test_canonical_forms_identical(self):
        cases = [redundant_conjunction(3, 5, 4, seed=s)
                 for s in range(10)]
        with uncached():
            plain = [canonical_conjunctive(c) for c in cases]
        with cached():
            memo = [canonical_conjunctive(
                ConjunctiveConstraint(c.atoms)) for c in cases]
        assert plain == memo

    def test_canonical_keys_identical(self):
        schema = tuple(make_variables(3))
        cases = [random_dnf(3, 3, 4, seed=s, infeasible_fraction=0.4)
                 for s in range(8)]
        with uncached():
            plain = [canonical_key(c, schema) for c in cases]
        with cached():
            memo = [canonical_key(c, schema) for c in cases]
        assert plain == memo


class TestQueryLevelEquivalence:
    @pytest.mark.parametrize("query", QUERIES)
    def test_evaluator_rows_identical(self, db, query):
        with uncached():
            plain = lyric.query(db, query)
        with cached():
            memo = lyric.query(db, query)
        assert plain.rows == memo.rows
        assert len(plain) == len(memo)

    @pytest.mark.parametrize("query", QUERIES)
    def test_flat_engine_identical(self, db, query):
        translated = translate(db, query)
        catalog = flatten(db)
        with uncached():
            plain = engine.execute(translated.plan, catalog)
        with cached():
            memo = engine.execute(translated.plan, catalog)
        assert plain.columns == memo.columns
        assert len(plain) == len(memo)
        assert set(map(repr, plain)) == set(map(repr, memo))

    def test_degrade_guard_identical(self, db):
        """Under a generous degrade guard neither mode exhausts, and
        the results (and the non-exhaustion) must agree."""
        query = QUERIES[2]
        with uncached():
            g1 = ExecutionGuard(max_pivots=10 ** 9,
                                max_branches=10 ** 9,
                                on_exhaustion="degrade")
            plain = lyric.query(db, query, guard=g1)
        with cached():
            g2 = ExecutionGuard(max_pivots=10 ** 9,
                                max_branches=10 ** 9,
                                on_exhaustion="degrade")
            memo = lyric.query(db, query, guard=g2)
        assert not plain.is_partial
        assert not memo.is_partial
        assert plain.rows == memo.rows
        # The cached run must not spend more than the uncached one.
        assert g2.pivots <= g1.pivots

    def test_warm_cache_skips_simplex_entirely(self, db):
        query = QUERIES[2]
        shared = ConstraintCache()
        with caching(shared):
            first = lyric.query(db, query)
            g = ExecutionGuard()
            second = lyric.query(db, query, guard=g)
        assert first.rows == second.rows
        assert shared.hits > 0

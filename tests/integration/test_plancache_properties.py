"""Property suite for the compiled-plan cache (satellite of E20).

The invariant under test: serving a cached plan is *observationally
invisible*.  For random generated databases, random queries (with and
without parameter slots), random bindings, and every plan-relevant
option combination, the rows produced by a cache hit are byte-identical
to a fresh compile — including immediately after schema mutation, when
a stale plan must not be served.
"""

from hypothesis import given, settings, strategies as st

from repro import lyric
from repro.runtime.context import ExecutionStats, QueryContext
from repro.runtime.plancache import PlanCache
from repro.workloads import office

#: Queries mixing plain, CST-heavy, and parameterized shapes.  Each
#: entry is (text, binding names); bound values come from the strategy.
QUERIES = [
    ("SELECT X FROM Office_Object X WHERE X.color = 'red'", ()),
    (office.PLACED_EXTENT_QUERY, ()),
    ("SELECT X FROM Office_Object X WHERE X.color = $col", ("col",)),
    ("""
        SELECT CO, ((u,v) | E and D and x = $px and y = $py)
        FROM Office_Object CO
        WHERE CO.extent[E] and CO.translation[D]
     """, ("px", "py")),
]

colors = st.sampled_from(["red", "blue", "grey", "chartreuse"])
coords = st.integers(min_value=-4, max_value=10)


def bindings_for(names, color, px, py):
    pool = {"col": color, "px": px, "py": py}
    return {name: pool[name] for name in names} or None


def rows_bytes(result):
    """A canonical byte serialization of a result set — the comparison
    the acceptance criterion is stated in."""
    return "\n".join(
        sorted(f"{r.oid!r}|{r.values!r}" for r in result)
    ).encode()


def run_once(db, text, params, cache, **options):
    ctx = QueryContext(stats=ExecutionStats(), plan_cache=cache,
                       **options)
    result = lyric.query_translated(db, text, ctx=ctx, params=params)
    return rows_bytes(result), ctx.stats


class TestCachedEqualsFresh:
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=4),
           st.integers(min_value=0, max_value=len(QUERIES) - 1),
           colors, coords, coords,
           st.booleans(), st.booleans(), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_hit_is_byte_identical_to_fresh_compile(
            self, n, seed, query_index, color, px, py,
            numeric, indexing, parallel):
        db = office.generate(n, seed=seed).db
        text, names = QUERIES[query_index]
        params = bindings_for(names, color, px, py)
        options = dict(numeric=numeric, indexing=indexing,
                       parallelism=2 if parallel else 1)

        fresh, _ = run_once(db, text, params, None, **options)
        cache = PlanCache()
        first, stats1 = run_once(db, text, params, cache, **options)
        second, stats2 = run_once(db, text, params, cache, **options)

        assert stats1.plan_cache_misses == 1
        assert stats2.plan_cache_hits == 1
        assert first == fresh
        assert second == fresh

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=3),
           colors, colors)
    @settings(max_examples=15, deadline=None)
    def test_rebinding_reuses_the_plan_correctly(
            self, n, seed, color_a, color_b):
        db = office.generate(n, seed=seed).db
        text, names = QUERIES[2]
        cache = PlanCache()
        for color in (color_a, color_b, color_a):
            params = bindings_for(names, color, 0, 0)
            cached, _ = run_once(db, text, params, cache)
            fresh, _ = run_once(db, text, params, None)
            assert cached == fresh
        assert cache.misses == 1  # one plan served every binding

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=len(QUERIES) - 1),
           colors)
    @settings(max_examples=15, deadline=None)
    def test_schema_mutation_never_serves_stale_plan(
            self, n, seed, query_index, color):
        db = office.generate(n, seed=seed).db
        text, names = QUERIES[query_index]
        params = bindings_for(names, color, 6, 4)
        cache = PlanCache()
        run_once(db, text, params, cache)  # warm the cache

        db.schema.define(f"Annex_{n}_{seed}",
                         parents=["Office_Object"])
        cached, stats = run_once(db, text, params, cache)
        fresh, _ = run_once(db, text, params, None)

        assert stats.plan_cache_hits == 0  # the warm entry is dead
        assert stats.plan_cache_invalidations >= 1
        assert cached == fresh

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_option_combinations_partition_entries(self, n, seed):
        db = office.generate(n, seed=seed).db
        text, _ = QUERIES[0]
        cache = PlanCache()
        fresh, _ = run_once(db, text, None, None)
        combos = [dict(numeric=num, indexing=idx)
                  for num in (False, True) for idx in (False, True)]
        for options in combos:
            cached, _ = run_once(db, text, None, cache, **options)
            assert cached == fresh
        assert cache.misses == len(combos)
        assert cache.hits == 0

"""Smoke tests: every example script runs to completion and prints its
headline results.  (office_design is the slow one and is marked.)"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / f"{name}.py")],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart")
        assert "u <= 10" in out
        assert "rightmost room coordinate reached: 10" in out

    def test_submarine_mda(self):
        out = run_example("submarine_mda")
        assert "Compatible maneuver/goal pairs" in out
        assert "min speed" in out

    def test_manufacturing_lp(self):
        out = run_example("manufacturing_lp")
        assert "Cheapest way to fill each order" in out
        assert "profit" in out

    def test_temporal_scheduling(self):
        out = run_example("temporal_scheduling")
        assert "Booking conflicts" in out
        assert "earliest availability" in out

    def test_room_packing(self):
        out = run_example("room_packing")
        assert "Joint placement space: 64 disjuncts" in out
        assert "Largest empty square" in out

    @pytest.mark.slow
    def test_office_design(self):
        out = run_example("office_design")
        assert "Placed extents" in out
        assert "Classifying placed objects" in out

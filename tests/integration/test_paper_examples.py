"""Golden tests: every worked example of Sections 2-4 of the paper,
evaluated end-to-end on the Figure 1/2 database (experiments E1-E5)."""

from fractions import Fraction

import pytest

from repro import lyric
from repro.constraints.parser import parse_cst
from repro.model.office import (
    add_file_cabinet,
    build_office_database,
)
from repro.model.oid import CstOid, LiteralOid


@pytest.fixture
def office():
    return build_office_database()


class TestE1InstanceLoads:
    def test_database_validates(self, office):
        db, _ = office
        db.validate()

    def test_my_desk_values(self, office):
        db, oids = office
        assert db.attribute_values(oids.my_desk, "inv_number") \
            == (LiteralOid("22-354"),)
        location = db.cst_value(oids.my_desk, "location")
        assert location.contains_point(6, 4)
        assert not location.contains_point(6, 5)


class TestE2OidQueries:
    def test_retrieve_drawer_extents(self, office):
        """Section 4.1 first query: SELECT Y FROM Desk X WHERE
        X.drawer.extent[Y] returns the drawer-extent logical oid."""
        db, _ = office
        result = lyric.query(db, """
            SELECT Y FROM Desk X WHERE X.drawer.extent[Y]
        """)
        assert len(result) == 1
        (value,) = result.single().values
        expected = parse_cst("((w,z) | -1 <= w <= 1 and -1 <= z <= 1)")
        assert value == CstOid(expected)

    def test_xsql_red_drawer_query(self, office):
        """Section 2.2: SELECT Y FROM Desk X WHERE
        X.drawer[Y].color['red']."""
        db, oids = office
        result = lyric.query(db, """
            SELECT Y FROM Desk X WHERE X.drawer[Y].color['red']
        """)
        assert result.single().values == (oids.standard_drawer,)

    def test_color_comparison(self, office):
        db, oids = office
        result = lyric.query(db, """
            SELECT X FROM Desk X WHERE X.color = 'red'
        """)
        assert result.single().values == (oids.standard_desk,)
        empty = lyric.query(db, """
            SELECT X FROM Desk X WHERE X.color = 'blue'
        """)
        assert len(empty) == 0


class TestE3ExtentInRoomCoordinates:
    """The paper's central worked example: the extent of the standard
    desk in room coordinates with center (6,4) is
    ((u,v) | 2 <= u <= 10 and 2 <= v <= 6)."""

    EXPECTED = parse_cst("((u,v) | 2 <= u <= 10 and 2 <= v <= 6)")

    def test_explicit_variables(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT CO,
                   ((u,v) | E(w,z) and D(w,z,x,y,u,v) and x = 6 and y = 4)
            FROM Office_Object CO
            WHERE CO.extent[E] and CO.translation[D]
        """)
        co, extent = result.single().values
        assert extent == CstOid(self.EXPECTED)

    def test_implicit_schema_variables(self, office):
        """The paper's shorter form: variables copied from the schema."""
        db, _ = office
        result = lyric.query(db, """
            SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
            FROM Office_Object CO
            WHERE CO.extent[E] and CO.translation[D]
        """)
        _, extent = result.single().values
        assert extent == CstOid(self.EXPECTED)

    def test_membership_of_result(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT ((u,v) | E and D and x = 6 and y = 4)
            FROM Office_Object CO
            WHERE CO.extent[E] and CO.translation[D]
        """)
        (value,) = result.single().values
        cst = value.cst
        assert cst.contains_point(2, 2)
        assert cst.contains_point(10, 6)
        assert not cst.contains_point(1, 4)
        assert not cst.contains_point(6, 7)


class TestE4DrawerSweep:
    """Section 4.1 third query: the area the drawer of a desk whose
    center may appear in the left upper quarter can occupy, with the
    implicit interface equalities p = x1 and q = y1."""

    QUERY = """
        SELECT O,
          ((u,v) | D(w,z,x,y,u,v) and DD(w1,z1,x1,y1,u1,v1)
                   and w = u1 and z = v1
                   and DC(p,q) and DE(w1,z1) and L(x,y))
        FROM Object_in_Room O, Desk DSK
        WHERE O.location[L] and O.catalog_object[DSK]
          and ((L(x,y) and 0 <= x <= 10 and 0 <= y <= 10))
          and DSK.translation[D] and DSK.drawer_center[DC]
          and DSK.drawer.translation[DD] and DSK.drawer.extent[DE]
    """

    def test_sweep_region(self, office):
        db, _ = office
        result = lyric.query(db, self.QUERY)
        _, sweep = result.single().values
        cst = sweep.cst
        # my_desk at (6,4); drawer center line p=-2, q in [-2,0] in desk
        # coords; drawer extent +-1 around its center.  The swept area in
        # room coordinates is [3,5] x [1,5]:
        #   u in 6 + (-2) + [-1,1] = [3,5]
        #   v in 4 + [-2,0] + [-1,1] = [1,5]
        assert cst.contains_point(3, 1)
        assert cst.contains_point(5, 5)
        assert cst.contains_point(4, 3)
        assert not cst.contains_point(2, 3)
        assert not cst.contains_point(4, 6)
        expected = parse_cst("((u,v) | 3 <= u <= 5 and 1 <= v <= 5)")
        assert sweep == CstOid(expected)

    def test_location_filter(self, office):
        """The left-upper-quarter condition filters the desk out when
        its location is outside the region."""
        db, _ = office
        filtered = lyric.query(db, self.QUERY.replace(
            "0 <= x <= 10 and 0 <= y <= 10",
            "0 <= x <= 5 and 5 <= y <= 10"))
        assert len(filtered) == 0


class TestE5Predicates:
    def test_entailment_predicate_paper_query(self, office):
        """Section 4.1: desks with the drawer in the middle —
        C(p,q) |= p = 0.  The standard desk's drawer line is p = -2, so
        the answer is empty."""
        db, _ = office
        result = lyric.query(db, """
            SELECT DSK FROM Desk DSK
            WHERE DSK.color = 'red' and DSK.drawer_center[C]
              and (C(p,q) |= p = 0)
        """)
        assert len(result) == 0

    def test_entailment_predicate_holds(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT DSK FROM Desk DSK
            WHERE DSK.drawer_center[C] and (C(p,q) |= p = -2)
        """)
        assert len(result) == 1

    def test_satisfiability_predicate(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT O FROM Object_in_Room O
            WHERE O.location[L] and ((L(x,y) and 0 <= x <= 10))
        """)
        assert len(result) == 1
        empty = lyric.query(db, """
            SELECT O FROM Object_in_Room O
            WHERE O.location[L] and ((L(x,y) and x >= 7))
        """)
        assert len(empty) == 0

    def test_wall_clearance_query(self, office):
        """Section 4.1 last flat query: desks whose drawer never touches
        the walls of the 20 x 10 room."""
        db, _ = office
        result = lyric.query(db, """
            SELECT DSK
            FROM Object_in_Room O, Desk DSK
            WHERE O.catalog_object[DSK] and O.location[L]
              and DSK.drawer_center[C] and DSK.translation[D]
              and DSK.drawer.extent[DRE] and DSK.drawer.translation[DRD]
              and ((L(x,y) and C(p,q) and DRE(w1,z1)
                    and DRD(w1,z1,x1,y1,u1,v1) and D(w,z,x,y,u,v)
                    and w = u1 and z = v1)
                   |= ((u,v) | 0 < u < 20 and 0 < v < 10))
        """)
        # Sweep region [3,5] x [1,5] is strictly inside the room.
        assert len(result) == 1

    def test_wall_clearance_violated(self, office):
        """Same query against a smaller room: the sweep [3,5]x[1,5]
        touches a 5-high room's walls boundary set."""
        db, _ = office
        result = lyric.query(db, """
            SELECT DSK
            FROM Object_in_Room O, Desk DSK
            WHERE O.catalog_object[DSK] and O.location[L]
              and DSK.drawer_center[C] and DSK.translation[D]
              and DSK.drawer.extent[DRE] and DSK.drawer.translation[DRD]
              and ((L(x,y) and C(p,q) and DRE(w1,z1)
                    and DRD(w1,z1,x1,y1,u1,v1) and D(w,z,x,y,u,v)
                    and w = u1 and z = v1)
                   |= ((u,v) | 0 < u < 20 and 0 < v < 5))
        """)
        assert len(result) == 0


class TestSetValuedQueries:
    def test_cabinet_drawer_positions(self, office):
        db, _ = office
        add_file_cabinet(db)
        result = lyric.query(db, """
            SELECT C, DC FROM File_Cabinet C WHERE C.drawer_center[DC]
        """)
        assert len(result) == 2


class TestOptimization:
    def test_max_extent_width(self, office):
        """MAX over a stored constraint: the rightmost room coordinate
        the desk reaches when centered at (6,4)."""
        db, _ = office
        result = lyric.query(db, """
            SELECT MAX(u SUBJECT TO
                       ((u,v) | E and D and x = 6 and y = 4))
            FROM Office_Object CO
            WHERE CO.extent[E] and CO.translation[D]
        """)
        (value,) = result.single().values
        assert value == LiteralOid(10)

    def test_min_point(self, office):
        db, _ = office
        result = lyric.query(db, """
            SELECT MIN_POINT(u + v SUBJECT TO
                             ((u,v) | E and D and x = 6 and y = 4))
            FROM Office_Object CO
            WHERE CO.extent[E] and CO.translation[D]
        """)
        (point,) = result.single().values
        assert point.cst.contains_point(2, 2)
        assert point.cst.dimension == 2

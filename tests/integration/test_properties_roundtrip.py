"""Cross-cutting property tests: serialization round trips, existential
constraint laws, and binding-order equivalence over generated data."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import lyric
from repro.constraints.atoms import Eq, Ge, Le
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.existential import ExistentialConjunctiveConstraint
from repro.constraints.terms import Variable
from repro.core.evaluator import evaluate
from repro.model.serialize import dump_database, load_database
from repro.workloads import office, temporal
from repro.workloads.random_constraints import random_polytope

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestSerializationRoundtrip:
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=10))
    @settings(max_examples=8, deadline=None)
    def test_office_roundtrip(self, n, seed):
        workload = office.generate(n, seed=seed)
        clone = load_database(dump_database(workload.db))
        query = "SELECT O, CO FROM Object_in_Room O, Office_Object CO" \
                " WHERE O.catalog_object[CO]"
        original = sorted(str(r.values)
                          for r in lyric.query(workload.db, query))
        restored = sorted(str(r.values)
                          for r in lyric.query(clone, query))
        assert original == restored

    @given(st.integers(min_value=0, max_value=10))
    @settings(max_examples=6, deadline=None)
    def test_temporal_roundtrip_preserves_disjunctions(self, seed):
        workload = temporal.generate(1, 2, 2, seed=seed)
        clone = load_database(dump_database(workload.db))
        for person in workload.people:
            original = workload.db.cst_value(person, "windows")
            restored = clone.cst_value(person, "windows")
            assert original == restored  # canonical (semantic) equality


class TestExistentialLaws:
    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=25, deadline=None)
    def test_freshen_preserves_satisfiability(self, seed):
        poly = random_polytope(3, 4, seed,
                               variables=[x, y, z])
        ex = ExistentialConjunctiveConstraint(poly, [z])
        fresh = ex.freshen(frozenset({z, y}))
        assert fresh.is_satisfiable() == ex.is_satisfiable()
        assert fresh.free_variables == ex.free_variables

    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=25, deadline=None)
    def test_projection_preserves_satisfiability(self, seed):
        poly = random_polytope(3, 4, seed, variables=[x, y, z])
        ex = ExistentialConjunctiveConstraint.of_conjunctive(poly)
        projected = ex.project([x])
        assert projected.is_satisfiable() == poly.is_satisfiable()

    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=20, deadline=None)
    def test_eliminate_all_equisatisfiable(self, seed):
        poly = random_polytope(3, 4, seed, variables=[x, y, z])
        ex = ExistentialConjunctiveConstraint(poly, [y, z])
        flat = ex.eliminate_all()
        assert flat.is_satisfiable() == ex.is_satisfiable()

    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=15, deadline=None)
    def test_conjoin_commutes_on_satisfiability(self, seed):
        a = ExistentialConjunctiveConstraint(
            random_polytope(2, 3, seed, variables=[x, y]), [y])
        b = ExistentialConjunctiveConstraint(
            random_polytope(2, 3, seed + 100, variables=[x, z]), [z])
        assert a.conjoin(b).is_satisfiable() \
            == b.conjoin(a).is_satisfiable()


class TestBindingOrderEquivalence:
    QUERIES = [
        office.PLACED_EXTENT_QUERY,
        "SELECT O, DSK FROM Object_in_Room O, Desk DSK "
        "WHERE O.catalog_object[DSK]",
        "SELECT X, Y FROM Desk X, Drawer Y WHERE X.drawer[Y]",
    ]

    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=2))
    @settings(max_examples=8, deadline=None)
    def test_interleaved_equals_product_first(self, n, seed, qi):
        workload = office.generate(n, seed=seed)
        text = self.QUERIES[qi]
        fast = evaluate(workload.db, text, interleave=True)
        slow = evaluate(workload.db, text, interleave=False)
        assert sorted(str(r.values) for r in fast) \
            == sorted(str(r.values) for r in slow)

"""System-level property tests: LP optimality certificates, geometry
invariants, parser robustness (fuzz), and the naive-vs-translated
differential over generated databases."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro import lyric
from repro.constraints import lp
from repro.constraints.geometry import (
    area_2d,
    box,
    polygon_area,
    translate,
    vertices_2d,
)
from repro.constraints.terms import LinearExpression, Variable
from repro.errors import ReproError
from repro.workloads import office
from repro.workloads.random_constraints import (
    make_variables,
    random_polytope,
)

x, y = Variable("x"), Variable("y")

small = st.integers(min_value=-8, max_value=8)


class TestLPCertificates:
    @given(st.integers(min_value=0, max_value=30),
           st.integers(min_value=2, max_value=4),
           st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_optimum_is_feasible_and_maximal(self, seed, dim, atoms):
        poly = random_polytope(dim, atoms, seed)
        vars_ = make_variables(dim)
        objective = LinearExpression(
            {v: i + 1 for i, v in enumerate(vars_)})
        result = lp.max_value(objective, poly)
        # The optimum point is feasible ...
        assert poly.holds_at(result.point)
        # ... attains the reported value ...
        assert objective.evaluate(result.point) == result.value
        # ... and no sampled feasible point beats it.
        sample = poly.sample_point()
        assert objective.evaluate(sample) <= result.value

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=15, deadline=None)
    def test_min_leq_max(self, seed):
        poly = random_polytope(3, 5, seed)
        vars_ = make_variables(3)
        objective = LinearExpression({vars_[0]: 1, vars_[1]: -1})
        low = lp.min_value(objective, poly)
        high = lp.max_value(objective, poly)
        assert low.value <= high.value

    @pytest.mark.skipif(
        pytest.importorskip("scipy") is None, reason="scipy missing")
    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_exact_vs_scipy(self, seed):
        poly = random_polytope(3, 6, seed)
        vars_ = make_variables(3)
        objective = LinearExpression(
            {v: i + 1 for i, v in enumerate(vars_)})
        exact = lp.max_value(objective, poly, backend="exact")
        approx = lp.max_value(objective, poly, backend="scipy")
        assert float(approx.value) == pytest.approx(
            float(exact.value), rel=1e-6, abs=1e-6)


class TestGeometryInvariants:
    @given(small, small, st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_box_area(self, x0, y0, w, h):
        b = box([x, y], [(x0, x0 + w), (y0, y0 + h)])
        assert area_2d(b) == w * h

    @given(small, small, st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=6), small, small)
    @settings(max_examples=30, deadline=None)
    def test_translation_preserves_area(self, x0, y0, w, h, dx, dy):
        b = box([x, y], [(x0, x0 + w), (y0, y0 + h)])
        moved = translate(b, [dx, dy])
        assert area_2d(moved) == area_2d(b)
        assert moved.contains_point(x0 + dx, y0 + dy)

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_vertices_are_members_and_ccw(self, seed):
        poly = random_polytope(2, 4, seed,
                               variables=[x, y])
        verts = vertices_2d(poly, [x, y])
        for vx, vy in verts:
            assert poly.holds_at({x: vx, y: vy})
        if len(verts) >= 3:
            assert polygon_area(verts) >= 0


class TestParserFuzz:
    @given(st.text(
        alphabet=st.sampled_from(
            list("SELECTFROMWHERE XYZabc.,[]()|=<>+-*/'0123 \n")),
        max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_parser_never_crashes_unexpectedly(self, text):
        """Arbitrary input either parses or raises a library error —
        never an uncontrolled exception."""
        from repro.core.parser import parse
        try:
            parse(text)
        except ReproError:
            pass

    @given(st.text(alphabet=st.sampled_from(
        list("xyz0123456789 +-*/<>=(),.|")), max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_constraint_parser_never_crashes(self, text):
        from repro.constraints.parser import parse_constraint
        from repro.errors import ConstraintError
        try:
            parse_constraint(text)
        except (ConstraintError, ZeroDivisionError):
            # Division by a literal zero is reported as such.
            pass


class TestDifferentialProperty:
    """The two evaluation paths agree on every translatable query over
    generated databases of random sizes/seeds."""

    QUERIES = [
        office.PLACED_EXTENT_QUERY,
        office.RED_LEFT_DRAWER_QUERY,
        "SELECT X FROM Office_Object X WHERE X.color = 'red'",
        "SELECT Y FROM Desk X WHERE X.drawer[Y].color['red']",
    ]

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_agreement(self, n, seed, query_index):
        workload = office.generate(n, seed=seed)
        text = self.QUERIES[query_index]
        naive = lyric.query(workload.db, text)
        translated = lyric.query_translated(workload.db, text)
        assert sorted(str(r.values) for r in naive) \
            == sorted(str(r.values) for r in translated)

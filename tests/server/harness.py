"""Shared plumbing for the server test suite.

Every end-to-end test runs server and client inside a *single* event
loop (one ``asyncio.run`` per test) — ``LyricServer`` binds port 0 so
tests never collide on an address, and the executor threads the
service owns are torn down by ``server.shutdown()`` on the way out.
"""

from __future__ import annotations

import contextlib

from repro.client import connect
from repro.server import LyricServer, QueryService, ServerLimits
from repro.workloads import office

__all__ = ["SLOW_QUERY", "ServerLimits", "client_for", "office_db",
           "rows_bytes", "serving"]

#: A query whose cost scales quadratically with the database: every
#: object pair drags a four-way constraint conjunction through the
#: solver.  At ``office_db(30)`` it runs for ~1s — long enough that
#: cancellation and shutdown deterministically land mid-stream.
SLOW_QUERY = """
    SELECT A, B, ((u,v) | EA and DA and EB and DB)
    FROM Office_Object A, Office_Object B
    WHERE A.extent[EA] and A.translation[DA]
      and B.extent[EB] and B.translation[DB]
"""


def office_db(n: int = 6, seed: int = 0):
    return office.generate(n, seed=seed).db


def rows_bytes(result) -> bytes:
    """The canonical byte serialization results are compared in (same
    as the plan-cache property suite)."""
    return "\n".join(
        sorted(f"{r.oid!r}|{r.values!r}" for r in result)
    ).encode()


@contextlib.asynccontextmanager
async def serving(db=None, *, limits=None, store=None,
                  max_sessions: int = 64,
                  drain_timeout: float = 10.0,
                  executor_threads: int = 4,
                  executor: str = "thread"):
    service = QueryService(db if db is not None else office_db(),
                           store=store, limits=limits,
                           executor_threads=executor_threads,
                           executor=executor)
    server = LyricServer(service, port=0, max_sessions=max_sessions,
                         drain_timeout=drain_timeout)
    await server.start()
    try:
        yield server
    finally:
        await server.shutdown()


@contextlib.asynccontextmanager
async def client_for(server):
    client = await connect(port=server.port)
    try:
        yield client
    finally:
        await client.close()

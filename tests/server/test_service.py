"""The service layer without sockets: dedup, jobs, the read/write
gate, and the aggregate statistics account."""

import asyncio
import dataclasses

import pytest

from repro import lyric
from repro.errors import EvaluationError
from repro.runtime import ExecutionGuard
from repro.runtime.context import ExecutionStats, PhaseRecord
from repro.server.service import (
    QueryService,
    ServiceStats,
    _Job,
    _ReadWriteGate,
)

from tests.server.harness import SLOW_QUERY, office_db


async def drain(subscription):
    """All of a subscription's events, terminal included."""
    return [event async for event in subscription.events()]


def row_events(events):
    return [e for e in events if e[0] == "rows"]


def terminal(events):
    return events[-1]


class TestDedup:
    def test_identical_concurrent_queries_share_one_execution(self):
        async def main():
            service = QueryService(office_db(12), executor_threads=2)
            try:
                query_ast = service.parse(SLOW_QUERY)
                first = await service.submit(query_ast)
                second = await service.submit(query_ast)
                assert first.deduped is False
                assert second.deduped is True
                a, b = await asyncio.gather(drain(first), drain(second))
                # Byte-identical: the same buffered event objects.
                assert row_events(a) == row_events(b)
                assert terminal(a)[0] == "done"
                assert terminal(a)[1]["rows"] == 144
                assert terminal(b)[1] == terminal(a)[1]
                assert service.stats.dedup_hits == 1
                assert service.stats.dedup_misses == 1
                # One execution was recorded, not two.
                assert service.stats.requests == 1
            finally:
                service.close()
        asyncio.run(main())

    def test_different_params_do_not_join(self):
        async def main():
            service = QueryService(office_db(4), executor_threads=2)
            try:
                from repro.model.oid import as_oid
                text = ("SELECT X FROM Office_Object X "
                        "WHERE X.color = $col")
                query_ast = service.parse(text)
                first = await service.submit(
                    query_ast, params={"col": as_oid("red")})
                second = await service.submit(
                    query_ast, params={"col": as_oid("blue")})
                assert second.deduped is False
                await asyncio.gather(drain(first), drain(second))
                assert service.stats.dedup_hits == 0
            finally:
                service.close()
        asyncio.run(main())

    def test_mutation_bumps_version_and_splits_the_key(self):
        async def main():
            service = QueryService(office_db(4), executor_threads=2)
            try:
                query_ast = service.parse(
                    "SELECT X FROM Office_Object X")
                await drain(await service.submit(query_ast))
                assert service.db_version == 0
                await service.run_view(
                    "CREATE VIEW Tall AS SUBCLASS OF Office_Object "
                    "SELECT CO FROM Office_Object CO")
                assert service.db_version == 1
                assert service.stats.mutations == 1
                # The same AST resubmitted must not join any
                # pre-mutation job (both submissions are misses).
                after = await service.submit(query_ast)
                assert after.deduped is False
                await drain(after)
                assert service.stats.dedup_hits == 0
            finally:
                service.close()
        asyncio.run(main())


class TestJob:
    def test_late_subscriber_replays_the_buffered_prefix(self):
        async def main():
            job = _Job(("key",), ExecutionGuard())
            job.publish(("rows", [(["a"], None)]))
            job.publish(("warning", "partial result: pivots"))
            early = job.attach(deduped=True)
            job.publish(("done", {"rows": 1}))
            late = job.attach(deduped=True)
            assert await drain(early) == await drain(late) == [
                ("rows", [(["a"], None)]),
                ("warning", "partial result: pivots"),
                ("done", {"rows": 1}),
            ]
        asyncio.run(main())

    def test_last_detach_cancels_the_shared_guard(self):
        async def main():
            guard = ExecutionGuard()
            job = _Job(("key",), guard)
            first = job.attach(deduped=False)
            second = job.attach(deduped=True)
            first.cancel()
            assert not guard.cancelled  # second still listening
            second.cancel()
            assert guard.cancelled
            # A cancelled subscriber's stream ends with the local
            # cancelled error, regardless of the shared job.
            assert terminal(await drain(first)) == \
                ("error", "cancelled", "query cancelled by client")
        asyncio.run(main())

    def test_cancel_is_idempotent(self):
        async def main():
            job = _Job(("key",), ExecutionGuard())
            subscription = job.attach(deduped=False)
            subscription.cancel()
            subscription.cancel()
            events = await drain(subscription)
            assert len(events) == 1  # exactly one cancelled terminal
        asyncio.run(main())


class TestReadWriteGate:
    def test_writer_waits_for_readers_and_blocks_new_ones(self):
        async def main():
            gate = _ReadWriteGate()
            order = []

            await gate.acquire_read()

            async def writer():
                await gate.acquire_write()
                order.append("write")
                await gate.release_write()

            async def late_reader():
                await gate.acquire_read()
                order.append("read")
                await gate.release_read()

            writer_task = asyncio.ensure_future(writer())
            await asyncio.sleep(0)       # writer now waiting
            reader_task = asyncio.ensure_future(late_reader())
            await asyncio.sleep(0.01)
            # Neither ran: the writer waits on us, the late reader
            # queues behind the waiting writer (writer-greedy).
            assert order == []
            await gate.release_read()
            await asyncio.gather(writer_task, reader_task)
            assert order == ["write", "read"]
        asyncio.run(main())

    def test_mutation_serializes_against_inflight_reads(self):
        async def main():
            service = QueryService(office_db(12), executor_threads=2)
            try:
                slow = await service.submit(service.parse(SLOW_QUERY))
                view = asyncio.ensure_future(service.run_view(
                    "CREATE VIEW Tall AS SUBCLASS OF Office_Object "
                    "SELECT CO FROM Office_Object CO"))
                events = await drain(slow)
                # The read ran to completion — the writer waited
                # instead of mutating under it.
                assert terminal(events)[0] == "done"
                summary = await view
                assert "Tall" in summary["classes"]
            finally:
                service.close()
        asyncio.run(main())


class TestServiceStats:
    def test_every_execution_field_survives_into_the_snapshot(self):
        """Mirror of the runtime field-survival regression: ANY
        non-skip ExecutionStats counter — including ones added after
        this test was written — must survive ``record_request`` into
        ``snapshot()["execution"]``, except the unbounded transcript
        fields (phases, warnings), which are deliberately stripped."""
        worker = ExecutionStats()
        expected = {}
        for f in dataclasses.fields(worker):
            how = f.metadata.get("merge", "sum")
            if how == "skip":
                continue
            if isinstance(getattr(worker, f.name), bool):
                value = True
            elif isinstance(getattr(worker, f.name), float):
                value = 1.5
            elif isinstance(getattr(worker, f.name), int):
                value = 7
            elif isinstance(getattr(worker, f.name), list):
                value = [PhaseRecord("synthetic", 0.1)] \
                    if f.name == "phases" else ["synthetic"]
            else:
                value = "synthetic"
            setattr(worker, f.name, value)
            if f.name not in ("phases", "warnings"):
                expected[f.name] = value

        stats = ServiceStats()
        stats.record_request(worker, rows=3, outcome="ok")
        execution = stats.snapshot()["execution"]

        assert "phases" not in execution
        assert "warnings" not in execution
        for name, value in expected.items():
            assert execution[name] == value, (
                f"counter {name!r} was lost in the aggregate: "
                f"sent {value!r}, snapshot has {execution.get(name)!r}")

    def test_outcomes_and_counters(self):
        stats = ServiceStats()
        stats.record_request(ExecutionStats(), rows=5, outcome="ok")
        stats.record_request(None, outcome="error")
        stats.record_request(None, outcome="cancelled")
        stats.note_dedup(True)
        stats.note_dedup(False)
        stats.note_mutation()
        stats.note_session(opened=True)
        stats.note_session(opened=False)
        snap = stats.snapshot()
        assert snap["requests"] == 3
        assert snap["failures"] == 1
        assert snap["cancellations"] == 1
        assert snap["rows_streamed"] == 5
        assert snap["dedup_hits"] == 1
        assert snap["dedup_misses"] == 1
        assert snap["mutations"] == 1
        assert snap["sessions_opened"] == 1
        assert snap["sessions_closed"] == 1

    def test_snapshot_is_json_able(self):
        import json
        stats = ServiceStats()
        worker = ExecutionStats()
        worker.pivots = 3
        stats.record_request(worker, rows=1)
        json.dumps(stats.snapshot())

    def test_aggregate_sums_across_requests(self):
        stats = ServiceStats()
        for _ in range(3):
            worker = ExecutionStats()
            worker.pivots = 10
            stats.record_request(worker, rows=2)
        snap = stats.snapshot()
        assert snap["execution"]["pivots"] == 30
        assert snap["rows_streamed"] == 6


class TestPrepared:
    def test_analyze_reports_parameter_slots(self):
        async def main():
            service = QueryService(office_db(4), executor_threads=2)
            try:
                _ast, params, _warnings = service.analyze_prepared(
                    "SELECT X FROM Office_Object X "
                    "WHERE X.color = $col")
                assert params == ("col",)
            finally:
                service.close()
        asyncio.run(main())

    def test_check_params_names_every_missing_slot(self):
        with pytest.raises(EvaluationError) as excinfo:
            QueryService.check_params(("px", "py"), {})
        assert "$px" in str(excinfo.value)
        assert "$py" in str(excinfo.value)
        QueryService.check_params((), None)  # nothing required: fine


class TestErrorPath:
    def test_worker_error_becomes_an_error_event(self):
        async def main():
            service = QueryService(office_db(4), executor_threads=2)
            try:
                # Semantically invalid: unknown class only detected at
                # execution time (parse succeeds).
                query_ast = service.parse("SELECT X FROM Nonexistent X")
                events = await drain(await service.submit(query_ast))
                kind, code, message = terminal(events)
                assert kind == "error"
                assert code == "semantic"
                assert "Nonexistent" in message
                assert service.stats.failures == 1
            finally:
                service.close()
        asyncio.run(main())

"""The wire format in isolation: framing, error taxonomy, stats
transport, and the server-side budget caps."""

import asyncio
import json

import pytest

from repro.core.translator import TranslationError
from repro.errors import (
    ConstraintSyntaxError,
    EvaluationError,
    LyricSyntaxError,
    QueryCancelled,
    ReproError,
    ResourceExhausted,
    SemanticError,
)
from repro.runtime import ExecutionGuard
from repro.runtime.context import ExecutionStats, PhaseRecord
from repro.server import protocol
from repro.server.service import BUDGET_FIELDS, ServerLimits
from repro.server.session import _decode_params


def read_from(data: bytes, prefix: bytes = b""):
    """Feed raw bytes through a StreamReader into read_frame."""
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await protocol.read_frame(reader, prefix)
    return asyncio.run(main())


class TestFraming:
    def test_round_trip(self):
        payload = {"op": "query", "id": 7, "text": "SELECT X FROM D X",
                   "params": {"col": "réd"}}
        assert read_from(protocol.encode_frame(payload)) == payload

    def test_mode_detection_prefix_is_logically_prepended(self):
        frame = protocol.encode_frame({"op": "hello"})
        # The session reads one byte to detect framed mode, then hands
        # it back via ``prefix``.
        assert frame[0] == 0  # what makes the detection sound
        assert read_from(frame[1:], prefix=frame[:1]) == {"op": "hello"}

    def test_clean_eof_is_none(self):
        assert read_from(b"") is None

    def test_eof_mid_header_raises(self):
        with pytest.raises(protocol.ProtocolError):
            read_from(b"\x00\x00")

    def test_eof_mid_body_raises(self):
        frame = protocol.encode_frame({"op": "hello"})
        with pytest.raises(protocol.ProtocolError):
            read_from(frame[:-3])

    def test_oversized_length_rejected_before_allocation(self):
        header = (protocol.MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(protocol.ProtocolError):
            read_from(header)

    def test_undecodable_body_raises(self):
        body = b"not json"
        data = len(body).to_bytes(4, "big") + body
        with pytest.raises(protocol.ProtocolError):
            read_from(data)

    def test_non_object_payload_raises(self):
        body = json.dumps([1, 2]).encode()
        data = len(body).to_bytes(4, "big") + body
        with pytest.raises(protocol.ProtocolError):
            read_from(data)

    def test_encode_rejects_oversized_frame(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_frame({"blob": "x" * (protocol.MAX_FRAME + 1)})


class TestErrorTaxonomy:
    CASES = [
        (QueryCancelled("stop"), "cancelled"),
        (ResourceExhausted("over", budget="pivots", limit=1, spent=2),
         "resource"),
        (LyricSyntaxError("bad"), "syntax"),
        (ConstraintSyntaxError("bad cst"), "syntax"),
        (SemanticError("unknown class"), "semantic"),
        (TranslationError("outside the fragment"), "untranslatable"),
        (EvaluationError("unbound"), "evaluation"),
        (protocol.ProtocolError("garbage"), "bad_request"),
        (ReproError("other"), "error"),
        (RuntimeError("boom"), "internal"),
    ]

    def test_every_exception_maps_to_its_code(self):
        for exc, code in self.CASES:
            assert protocol.error_code(exc) == code, type(exc).__name__

    def test_cancelled_wins_over_resource(self):
        # QueryCancelled subclasses ResourceExhausted; the more
        # specific code must win.
        assert isinstance(QueryCancelled("x"), ResourceExhausted)
        assert protocol.error_code(QueryCancelled("x")) == "cancelled"


class TestStatsPayload:
    def test_payload_is_json_able_and_flattens_phases(self):
        stats = ExecutionStats()
        stats.pivots = 12
        stats.warnings.append("partial result: pivots")
        stats.phases.append(PhaseRecord("solve", 0.25, detail="3 boxes"))
        payload = protocol.stats_payload(stats)
        json.dumps(payload)  # must not raise
        assert payload["pivots"] == 12
        assert payload["warnings"] == ["partial result: pivots"]
        assert payload["phases"] == [
            {"name": "solve", "seconds": 0.25, "detail": "3 boxes"}]

    def test_payload_copies_lists(self):
        stats = ExecutionStats()
        payload = protocol.stats_payload(stats)
        payload["warnings"].append("mutated")
        assert stats.warnings == []


class TestServerLimits:
    def test_effective_budget_is_the_minimum(self):
        limits = ServerLimits(max_pivots=100, deadline=2.0)
        guard = limits.effective_guard(
            {"max_pivots": 500, "deadline": 0.5})
        assert guard.max_pivots == 100   # server cap wins
        assert guard.deadline == 0.5     # client ask wins

    def test_cap_alone_applies_to_silent_clients(self):
        guard = ServerLimits(max_branches=7).effective_guard(None)
        assert guard.max_branches == 7

    def test_uncapped_axis_passes_the_ask_through(self):
        guard = ServerLimits().effective_guard({"max_disjuncts": 9})
        assert guard.max_disjuncts == 9

    def test_always_a_real_guard(self):
        # Even with no budgets anywhere: the guard is the cancel
        # channel, and CANCEL must work on every query.
        guard = ServerLimits().effective_guard(None)
        assert isinstance(guard, ExecutionGuard)
        guard.cancel()
        assert guard.cancelled

    def test_unknown_field_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            ServerLimits().effective_guard({"max_rows": 10})

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            ServerLimits().effective_guard({"max_pivots": 0})

    def test_bad_policy_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            ServerLimits().effective_guard({"on_exhaustion": "explode"})

    def test_budget_key_identifies_effective_budgets(self):
        limits = ServerLimits(max_pivots=100)
        # Asking for more than the cap lands on the cap: same key.
        assert limits.budget_key({"max_pivots": 500}) \
            == limits.budget_key({"max_pivots": 100})
        assert limits.budget_key({"max_pivots": 50}) \
            != limits.budget_key({"max_pivots": 100})
        assert limits.budget_key({"on_exhaustion": "degrade"}) \
            != limits.budget_key(None)
        assert len(limits.budget_key(None)) == len(BUDGET_FIELDS) + 1


class TestParamDecoding:
    def test_scalars_coerce_like_the_in_process_api(self):
        from repro.model.oid import as_oid
        decoded = _decode_params({"col": "red", "px": 6})
        assert decoded == {"col": as_oid("red"), "px": as_oid(6)}

    def test_tagged_terms_round_trip(self):
        from repro.model.serialize import dump_oid, load_oid
        from repro.model.oid import as_oid
        term = dump_oid(as_oid("standard_desk"))
        decoded = _decode_params({"d": term})
        assert decoded == {"d": load_oid(term)}

    def test_none_stays_none(self):
        assert _decode_params(None) is None

    def test_non_object_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            _decode_params(["positional"])

"""Property suite for the query server (acceptance criterion of E22).

The invariant: the server is *observationally invisible*.  For random
generated databases, random queries (with and without parameters),
both engines, and every option combination — including budgets that
degrade mid-stream — a result obtained over the wire is byte-identical
to one computed in-process, warning for warning.  Deduplicated
concurrent requests and cancelled-then-reused sessions preserve it.
"""

import asyncio

from hypothesis import given, settings, strategies as st

from repro import lyric
from repro.errors import QueryCancelled
from repro.runtime import ExecutionGuard
from repro.runtime.cache import clear_global_cache
from repro.workloads import office

from tests.server.harness import (
    SLOW_QUERY,
    client_for,
    rows_bytes,
    serving,
)

#: Queries mixing plain, CST-heavy, and parameterized shapes — the
#: same pool the plan-cache property suite draws from.  Each entry is
#: (text, binding names).
QUERIES = [
    ("SELECT X FROM Office_Object X WHERE X.color = 'red'", ()),
    (office.PLACED_EXTENT_QUERY, ()),
    ("SELECT X FROM Office_Object X WHERE X.color = $col", ("col",)),
    ("""
        SELECT CO, ((u,v) | E and D and x = $px and y = $py)
        FROM Office_Object CO
        WHERE CO.extent[E] and CO.translation[D]
     """, ("px", "py")),
]

colors = st.sampled_from(["red", "blue", "grey", "chartreuse"])
coords = st.integers(min_value=-4, max_value=10)


def bindings_for(names, color, px, py):
    pool = {"col": color, "px": px, "py": py}
    return {name: pool[name] for name in names} or None


def fingerprint(result):
    return (rows_bytes(result), tuple(result.columns),
            tuple(result.warnings))


def run_local(db, text, params, *, translated, use_optimizer=True,
              guard=None):
    if translated:
        return lyric.query_translated(db, text, params=params,
                                      use_optimizer=use_optimizer,
                                      guard=guard)
    return lyric.query(db, text, params=params, guard=guard)


def run_remote(db, text, params, *, translated, use_optimizer=True,
               guard_spec=None):
    async def main():
        async with serving(db, executor_threads=2) as server, \
                client_for(server) as client:
            return await client.query(
                text, params=params, translated=translated,
                use_optimizer=use_optimizer, guard=guard_spec)
    return asyncio.run(main())


class TestServerEqualsInProcess:
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=4),
           st.integers(min_value=0, max_value=len(QUERIES) - 1),
           colors, coords, coords,
           st.booleans(), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_wire_result_is_byte_identical(
            self, n, seed, query_index, color, px, py,
            translated, use_optimizer):
        db = office.generate(n, seed=seed).db
        text, names = QUERIES[query_index]
        params = bindings_for(names, color, px, py)

        local = run_local(db, text, params, translated=translated,
                          use_optimizer=use_optimizer)
        remote = run_remote(db, text, params, translated=translated,
                            use_optimizer=use_optimizer)
        assert fingerprint(remote) == fingerprint(local)

    @given(st.integers(min_value=4, max_value=8),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=40, max_value=400))
    @settings(max_examples=8, deadline=None)
    def test_degrading_budgets_degrade_identically(
            self, n, seed, max_pivots):
        """Whether or not the budget trips, and wherever it trips,
        the partial result and its warnings match in-process.

        Each side gets its own freshly generated (deterministic) db:
        CSTObject memoizes satisfiability per *instance* (``_sat``),
        which clear_global_cache() can't reach, so a second run over
        the same objects spends fewer pivots and keeps more rows
        before the budget trips — warm-vs-cold, not server-vs-local.
        """
        text = office.PLACED_EXTENT_QUERY

        clear_global_cache()
        local = run_local(
            office.generate(n, seed=seed).db, text, None,
            translated=False,
            guard=ExecutionGuard(on_exhaustion="degrade",
                                 max_pivots=max_pivots))
        clear_global_cache()
        remote = run_remote(
            office.generate(n, seed=seed).db, text, None,
            translated=False,
            guard_spec={"max_pivots": max_pivots,
                        "on_exhaustion": "degrade"})
        assert fingerprint(remote) == fingerprint(local)


class TestDedupPreservesResults:
    @given(st.integers(min_value=8, max_value=14),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=2, max_value=4))
    @settings(max_examples=6, deadline=None)
    def test_concurrent_identical_queries_all_match(
            self, n, seed, fanout):
        db = office.generate(n, seed=seed).db
        local = run_local(db, SLOW_QUERY, None, translated=False)

        async def main():
            async with serving(db, executor_threads=2) as server, \
                    client_for(server) as client:
                results = await asyncio.gather(*[
                    client.query(SLOW_QUERY, translated=False)
                    for _ in range(fanout)])
                stats = await client.stats()
                return results, stats
        results, stats = asyncio.run(main())
        expected = fingerprint(local)
        for result in results:
            assert fingerprint(result) == expected
        # However the races fell, every request was accounted for.
        assert stats["dedup_hits"] + stats["dedup_misses"] == fanout

    def test_slow_fanout_actually_dedups(self):
        """Non-property anchor: with a genuinely slow query the later
        requests must join the first execution."""
        db = office.generate(20, seed=0).db

        async def main():
            async with serving(db, executor_threads=2) as server, \
                    client_for(server) as client:
                results = await asyncio.gather(*[
                    client.query(SLOW_QUERY, translated=False)
                    for _ in range(4)])
                stats = await client.stats()
                return results, stats
        results, stats = asyncio.run(main())
        assert stats["dedup_hits"] == 3
        assert stats["requests"] == 1
        assert len({fingerprint(r) for r in results}) == 1


class TestCancelLeavesSessionUsable:
    @given(st.integers(min_value=0, max_value=3),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_cancel_then_requery(self, seed, cancel_after):
        db = office.generate(18, seed=seed).db
        follow_up, names = QUERIES[2]
        params = bindings_for(names, "red", 0, 0)
        local = run_local(db, follow_up, params, translated=True)

        async def main():
            async with serving(db, executor_threads=2) as server, \
                    client_for(server) as client:
                stream = await client.stream(SLOW_QUERY,
                                             translated=False)
                seen = 0
                try:
                    async for _row in stream:
                        seen += 1
                        if seen >= cancel_after:
                            await stream.cancel()
                except QueryCancelled:
                    pass
                return await client.query(follow_up, params=params)
        remote = asyncio.run(main())
        assert fingerprint(remote) == fingerprint(local)

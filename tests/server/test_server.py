"""End-to-end server tests: framed protocol, line mode, admission,
cancellation, and graceful shutdown — server and client in one loop."""

import asyncio
import os
import signal
import subprocess
import sys

import pytest

from repro import lyric
from repro.client import ServerError, connect
from repro.errors import (
    EvaluationError,
    LyricSyntaxError,
    QueryCancelled,
)
from repro.runtime import ExecutionGuard
from repro.runtime.cache import clear_global_cache
from repro.storage.store import Store

from tests.server.harness import (
    SLOW_QUERY,
    client_for,
    office_db,
    rows_bytes,
    serving,
)


class TestEquivalence:
    """Acceptance criterion: server responses are byte-identical to
    in-process execution."""

    def test_translated_query_matches_in_process(self):
        db = office_db(6, seed=3)
        text = "SELECT X FROM Office_Object X WHERE X.color = 'red'"
        local = lyric.query_translated(db, text)

        async def main():
            async with serving(db) as server, \
                    client_for(server) as client:
                return await client.query(text)
        remote = asyncio.run(main())
        assert rows_bytes(remote) == rows_bytes(local)
        assert remote.columns == local.columns
        assert tuple(remote.warnings) == tuple(local.warnings)

    def test_naive_engine_matches_in_process(self):
        db = office_db(5, seed=1)
        text = "SELECT X, X.color FROM Office_Object X"
        local = lyric.query(db, text)

        async def main():
            async with serving(db) as server, \
                    client_for(server) as client:
                stream = await client.stream(text, translated=False)
                result = await stream.result()
                return result, stream.done
        remote, done = asyncio.run(main())
        assert rows_bytes(remote) == rows_bytes(local)
        assert done["engine"] == "naive"
        assert done["rows"] == len(local.rows)

    def test_untranslatable_query_falls_back_to_naive(self):
        db = office_db(4)
        text = "SELECT X.color FROM Desk X"  # outside the fragment
        local = lyric.query(db, text)

        async def main():
            async with serving(db) as server, \
                    client_for(server) as client:
                stream = await client.stream(text)  # translated=True
                result = await stream.result()
                return result, stream.done
        remote, done = asyncio.run(main())
        assert done["engine"] == "naive"
        assert rows_bytes(remote) == rows_bytes(local)

    def test_params_round_trip(self):
        db = office_db(6, seed=2)
        text = "SELECT X FROM Office_Object X WHERE X.color = $col"
        local = lyric.query_translated(db, text,
                                       params={"col": "red"})

        async def main():
            async with serving(db) as server, \
                    client_for(server) as client:
                return await client.query(text,
                                          params={"col": "red"})
        remote = asyncio.run(main())
        assert rows_bytes(remote) == rows_bytes(local)

    def test_degrade_is_byte_identical_including_partials(self):
        db = office_db(10, seed=4)
        guard_spec = {"max_pivots": 60, "on_exhaustion": "degrade"}

        clear_global_cache()
        local = lyric.query(
            db, SLOW_QUERY,
            guard=ExecutionGuard(on_exhaustion="degrade",
                                 max_pivots=60))
        assert local.warnings, "budget must trip for this test"

        async def main():
            clear_global_cache()
            async with serving(db) as server, \
                    client_for(server) as client:
                stream = await client.stream(SLOW_QUERY,
                                             translated=False,
                                             guard=guard_spec)
                result = await stream.result()
                return result, stream.done
        remote, done = asyncio.run(main())
        assert done["partial"] is True
        assert rows_bytes(remote) == rows_bytes(local)
        assert tuple(remote.warnings) == tuple(local.warnings)


class TestErrors:
    def test_syntax_error_raises_the_library_exception(self):
        async def main():
            async with serving() as server, \
                    client_for(server) as client:
                with pytest.raises(LyricSyntaxError):
                    await client.query("SELECT FROM WHERE")
                # The session survives a failed request.
                result = await client.query(
                    "SELECT X FROM Office_Object X")
                assert len(result.rows) > 0
        asyncio.run(main())

    def test_guard_fail_policy_raises_resource(self):
        from repro.errors import ResourceExhausted
        db = office_db(10, seed=4)

        async def main():
            clear_global_cache()
            async with serving(db) as server, \
                    client_for(server) as client:
                with pytest.raises(ResourceExhausted):
                    await client.query(
                        SLOW_QUERY, translated=False,
                        guard={"max_pivots": 60})
        asyncio.run(main())


class TestPreparedStatements:
    TEXT = "SELECT X FROM Office_Object X WHERE X.color = $col"

    def test_prepare_execute_matches_in_process(self):
        db = office_db(6, seed=5)
        local = lyric.query_translated(db, self.TEXT,
                                       params={"col": "red"})

        async def main():
            async with serving(db) as server, \
                    client_for(server) as client:
                reply = await client.prepare("by_color", self.TEXT)
                assert reply["params"] == ["col"]
                return await client.execute("by_color",
                                            params={"col": "red"})
        remote = asyncio.run(main())
        assert rows_bytes(remote) == rows_bytes(local)

    def test_unbound_parameter_is_an_evaluation_error(self):
        async def main():
            async with serving() as server, \
                    client_for(server) as client:
                await client.prepare("by_color", self.TEXT)
                with pytest.raises(EvaluationError) as excinfo:
                    await client.execute("by_color")
                assert "$col" in str(excinfo.value)
        asyncio.run(main())

    def test_unknown_name_is_a_bad_request(self):
        async def main():
            async with serving() as server, \
                    client_for(server) as client:
                with pytest.raises(ServerError) as excinfo:
                    await client.execute("never_prepared")
                assert excinfo.value.code == "bad_request"
        asyncio.run(main())


class TestCancellation:
    def test_cancel_mid_stream_leaves_the_session_usable(self):
        db = office_db(30, seed=0)

        async def main():
            async with serving(db) as server, \
                    client_for(server) as client:
                stream = await client.stream(SLOW_QUERY,
                                             translated=False)
                rows_seen = 0
                with pytest.raises(QueryCancelled):
                    async for _row in stream:
                        rows_seen += 1
                        if rows_seen == 3:
                            await stream.cancel()
                assert 0 < rows_seen < 900  # genuinely mid-stream
                # Same connection, next query: fine.
                result = await client.query(
                    "SELECT X FROM Desk X")
                assert len(result.rows) > 0
                stats = await client.stats()
                assert stats["cancellations"] >= 1
        asyncio.run(main())

    def test_cancel_unknown_request_reports_not_found(self):
        async def main():
            async with serving() as server, \
                    client_for(server) as client:
                reply = await client.cancel(99999)
                assert reply["found"] is False
        asyncio.run(main())


class TestDedupOverTheWire:
    def test_concurrent_identical_queries_share_and_match(self):
        db = office_db(16, seed=0)

        async def main():
            async with serving(db) as server, \
                    client_for(server) as client:
                s1 = await client.stream(SLOW_QUERY,
                                         translated=False)
                s2 = await client.stream(SLOW_QUERY,
                                         translated=False)
                r1, r2 = await asyncio.gather(s1.result(),
                                              s2.result())
                assert rows_bytes(r1) == rows_bytes(r2)
                assert s1.done["dedup"] is False
                assert s2.done["dedup"] is True
                stats = await client.stats()
                assert stats["dedup_hits"] == 1
                # One shared execution was recorded.
                assert stats["requests"] == 1
        asyncio.run(main())


class TestMutations:
    def test_create_view_then_query_the_new_class(self):
        db = office_db(5, seed=1)

        async def main():
            async with serving(db) as server, \
                    client_for(server) as client:
                summary = await client.view(
                    "CREATE VIEW Everything AS SUBCLASS OF "
                    "Office_Object SELECT CO FROM Office_Object CO")
                assert "Everything" in summary["classes"]
                result = await client.query(
                    "SELECT X FROM Everything X")
                assert len(result.rows) \
                    == summary["instances"]["Everything"]
                stats = await client.stats()
                assert stats["mutations"] == 1
        asyncio.run(main())


class TestAdmission:
    def test_session_limit_rejects_with_a_code(self):
        async def main():
            async with serving(max_sessions=1) as server:
                async with client_for(server) as _client:
                    with pytest.raises(ServerError) as excinfo:
                        await connect(port=server.port)
                    assert excinfo.value.code == "max_sessions"
                # The slot frees up once the first session closes.
                await asyncio.sleep(0.05)
                async with client_for(server) as client:
                    assert (await client.handshake() or
                            client.hello)["server"] == "lyric"
        asyncio.run(main())


class TestLineMode:
    async def _chat(self, port, lines, until):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", port)
        for line in lines:
            writer.write(line.encode() + b"\n")
        await writer.drain()
        out = []
        while True:
            raw = await reader.readline()
            if not raw:
                break
            out.append(raw.decode().rstrip("\n"))
            if out[-1].startswith(until):
                break
        writer.close()
        return out

    def test_full_command_set(self):
        db = office_db(4, seed=0)

        async def main():
            async with serving(db) as server:
                port = server.port
                hello = await self._chat(port, ["hello"], "ok")
                assert hello[0].startswith("ok lyric v1 session=")

                out = await self._chat(
                    port,
                    ["query SELECT X FROM Office_Object X"],
                    "done")
                assert any(line.startswith("row ") for line in out)
                assert out[-1].endswith("rows via translated")

                out = await self._chat(
                    port,
                    ["prepare p as SELECT X FROM Office_Object X "
                     "WHERE X.color = $col",
                     "execute p ('red')"],
                    "done")
                assert out[0] == "prepared p ($col)"

                out = await self._chat(port, ["cancel 1"], "error")
                assert "line mode is sequential" in out[0]

                out = await self._chat(port, ["stats"], "stats")
                assert '"requests":' in out[0]

                out = await self._chat(port, ["close"], "bye")
                assert out[-1] == "bye"
        asyncio.run(main())

    def test_line_errors_keep_the_session_alive(self):
        async def main():
            async with serving() as server:
                out = await self._chat(
                    server.port,
                    ["query SELECT FROM", "hello"],
                    "ok")
                assert out[0].startswith("error syntax:")
                assert out[1].startswith("ok lyric")
        asyncio.run(main())


class TestGracefulShutdown:
    def test_drain_finishes_inflight_and_rejects_new_work(self):
        db = office_db(30, seed=0)

        async def main():
            async with serving(db, drain_timeout=30.0) as server:
                async with client_for(server) as streaming, \
                        client_for(server) as bystander:
                    stream = await streaming.stream(
                        SLOW_QUERY, translated=False)
                    rows = streaming_rows = []
                    async for row in stream:
                        streaming_rows.append(row)
                        break  # the query is definitely running
                    shutdown = asyncio.ensure_future(
                        server.shutdown())
                    await asyncio.sleep(0.05)

                    # A brand-new connection is turned away with the
                    # shutting_down code...
                    with pytest.raises(ServerError) as excinfo:
                        await connect(port=server.port)
                    assert excinfo.value.code == "shutting_down"

                    # ...an existing session's new request likewise...
                    with pytest.raises(ServerError) as excinfo:
                        await bystander.query(
                            "SELECT X FROM Desk X")
                    assert excinfo.value.code == "shutting_down"

                    # ...but the in-flight stream drains completely.
                    async for row in stream:
                        rows.append(row)
                    assert stream.done is not None
                    assert stream.done["rows"] == 900
                    assert len(rows) == 900
                    await shutdown
        asyncio.run(main())

    def test_past_deadline_stragglers_are_cancelled(self):
        db = office_db(30, seed=0)

        async def main():
            async with serving(db, drain_timeout=0.05) as server:
                async with client_for(server) as client:
                    stream = await client.stream(SLOW_QUERY,
                                                 translated=False)
                    async for _row in stream:
                        break
                    shutdown = asyncio.ensure_future(
                        server.shutdown())
                    # The tiny drain window expires with the query
                    # still running; the force-cancel sweep reaches
                    # it and the client sees the cancelled code.
                    with pytest.raises(QueryCancelled):
                        async for _row in stream:
                            pass
                    await shutdown
        asyncio.run(main())

    def test_shutdown_flushes_the_store(self, tmp_path):
        db = office_db(3)
        store = Store.create(str(tmp_path / "srv.store"), db)
        flushes = []
        real_flush = store.flush
        store.flush = lambda: (flushes.append(1), real_flush())[1]

        async def main():
            async with serving(db, store=store):
                pass  # no traffic: the shutdown path alone flushes
        asyncio.run(main())
        assert flushes
        store.close()


class TestServeCli:
    def test_serve_smoke_with_sigint_and_stats_dump(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--office",
             "--port", "0", "--dump-stats-on-exit"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=os.path.dirname(
                os.path.dirname(os.path.dirname(
                    os.path.abspath(__file__)))))
        try:
            line = proc.stdout.readline()
            assert line.startswith("listening on "), line
            port = int(line.rsplit(":", 1)[1])

            async def main():
                client = await connect(port=port)
                try:
                    result = await client.query(
                        "SELECT X FROM Desk X")
                    assert len(result.rows) == 1
                finally:
                    await client.close()
            asyncio.run(main())

            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=20)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        assert '"requests": 1' in out

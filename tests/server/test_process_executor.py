"""The process executor end to end: pool-worker execution publishes
the exact frames the thread path would (stats timing aside), CANCEL
crosses the cancel board into a busy worker, every fallback path
(unpicklable, stale fork, saturated slots) still serves correct rows
through the threads, and warm-up/STATS surface the pool account."""

import asyncio

import pytest

from repro.errors import QueryCancelled
from repro.runtime import parallel
from repro.runtime.cache import clear_global_cache
from repro.server import QueryService, procexec

from tests.server.harness import (
    SLOW_QUERY,
    client_for,
    office_db,
    rows_bytes,
    serving,
)

pytestmark = pytest.mark.skipif(
    not parallel._fork_available(),
    reason="process executor needs a fork platform")


@pytest.fixture(autouse=True)
def _fresh_pool_state():
    parallel.reset_stats()
    parallel.shutdown_pool()
    yield
    parallel.shutdown_pool()


async def drain(subscription):
    return [event async for event in subscription.events()]


def frames(events):
    """Everything but the stats frame — the one frame where the two
    executors legitimately differ (timing, cache warmth, pool
    bookkeeping).  Rows, warnings, and the terminal must match byte
    for byte."""
    return [e for e in events if e[0] != "stats"]


async def _run_once(db, text, executor, *, guard_spec=None,
                    translated=True):
    service = QueryService(db, executor_threads=2, executor=executor)
    try:
        subscription = await service.submit(
            service.parse(text), guard_spec=guard_spec,
            translated=translated)
        events = await drain(subscription)
        return events, service.stats.snapshot()
    finally:
        service.close()


class TestFrameEquivalence:
    def test_process_frames_match_thread_frames(self):
        db = office_db(6, seed=3)
        text = "SELECT X, X.color FROM Office_Object X"

        async def main():
            thread_events, thread_snap = await _run_once(
                db, text, "thread")
            process_events, process_snap = await _run_once(
                db, text, "process")
            return (thread_events, thread_snap,
                    process_events, process_snap)
        thread_events, thread_snap, process_events, process_snap = \
            asyncio.run(main())
        assert frames(process_events) == frames(thread_events)
        assert thread_snap["executor"] == "thread"
        assert thread_snap["process_requests"] == 0
        assert process_snap["executor"] == "process"
        assert process_snap["process_requests"] == 1
        assert process_snap["process_fallbacks"] == 0

    def test_degrade_partial_frames_match(self):
        # The partial prefix depends on where the budget trips, which
        # depends on constraint-cache warmth — equalize by clearing
        # before each run (the pool forks after the clear, so workers
        # inherit the same cold cache the thread run started from).
        db = office_db(10, seed=4)
        spec = {"max_pivots": 60, "on_exhaustion": "degrade"}

        async def main():
            clear_global_cache()
            thread_events, _ = await _run_once(
                db, SLOW_QUERY, "thread", guard_spec=spec,
                translated=False)
            clear_global_cache()
            process_events, snap = await _run_once(
                db, SLOW_QUERY, "process", guard_spec=spec,
                translated=False)
            return thread_events, process_events, snap
        thread_events, process_events, snap = asyncio.run(main())
        assert process_events[-1][0] == "done"
        assert process_events[-1][1]["partial"] is True
        assert frames(process_events) == frames(thread_events)
        assert snap["process_requests"] == 1


class TestCancellation:
    def test_cancel_crosses_the_board_into_the_worker(self):
        db = office_db(30)

        async def main():
            service = QueryService(db, executor_threads=2,
                                   executor="process")
            try:
                subscription = await service.submit(
                    service.parse(SLOW_QUERY))
                await asyncio.sleep(0.3)  # worker is mid-solve
                subscription.cancel()
                events = await drain(subscription)
                assert events[-1][:2] == ("error", "cancelled")
                # The worker observes the board at its next checkpoint
                # and ships a clean cancelled reply — wait for the
                # request to drain rather than hang in the pool.
                for _ in range(200):
                    if service.stats.snapshot()["cancellations"]:
                        break
                    await asyncio.sleep(0.05)
                snap = service.stats.snapshot()
                assert snap["cancellations"] == 1
                assert snap["process_requests"] == 1
            finally:
                service.close()
        asyncio.run(main())

    def test_cancel_mid_stream_over_the_wire(self):
        db = office_db(30, seed=0)

        async def main():
            async with serving(db, executor="process") as server, \
                    client_for(server) as client:
                stream = await client.stream(SLOW_QUERY,
                                             translated=False)
                await asyncio.sleep(0.3)
                await stream.cancel()
                with pytest.raises(QueryCancelled):
                    async for _row in stream:
                        pass
                # Same connection, next query: fine.
                result = await client.query("SELECT X FROM Desk X")
                assert len(result.rows) > 0
                # The worker only observes the cancel board at its
                # next checkpoint, so the cancelled request drains
                # asynchronously — poll for its accounting.
                stats = await client.stats()
                for _ in range(200):
                    if stats["cancellations"]:
                        break
                    await asyncio.sleep(0.05)
                    stats = await client.stats()
                assert stats["cancellations"] >= 1
                assert stats["executor"] == "process"
        asyncio.run(main())


class TestFallbacks:
    def test_unpicklable_request_takes_the_thread_path(
            self, monkeypatch):
        db = office_db(5, seed=1)
        text = "SELECT X, X.color FROM Office_Object X"

        async def main():
            baseline_events, _ = await _run_once(db, text, "thread")
            monkeypatch.setattr(parallel, "transportable",
                                lambda payload: False)
            fallback_events, snap = await _run_once(
                db, text, "process")
            return baseline_events, fallback_events, snap
        baseline_events, fallback_events, snap = asyncio.run(main())
        assert frames(fallback_events) == frames(baseline_events)
        assert snap["process_requests"] == 0
        assert snap["process_fallbacks"] == 1

    def test_stale_fork_falls_back_silently(self):
        db = office_db(5, seed=2)
        text = "SELECT X FROM Office_Object X"

        async def main():
            baseline_events, _ = await _run_once(db, text, "thread")
            service = QueryService(db, executor_threads=2,
                                   executor="process")
            try:
                # Sabotage: the pool will fork inheriting a version
                # the service never serves, so the worker reports
                # stale and the threads answer instead.
                procexec.publish(999, db)
                events = await drain(await service.submit(
                    service.parse(text)))
                snap = service.stats.snapshot()
            finally:
                service.close()
            return baseline_events, events, snap
        baseline_events, events, snap = asyncio.run(main())
        assert frames(events) == frames(baseline_events)
        assert snap["process_requests"] == 0
        assert snap["process_fallbacks"] == 1

    def test_mutation_republishes_to_fresh_workers(self):
        async def main():
            service = QueryService(office_db(4), executor_threads=2,
                                   executor="process")
            try:
                await drain(await service.submit(
                    service.parse("SELECT X FROM Office_Object X")))
                await service.run_view(
                    "CREATE VIEW Tall AS SUBCLASS OF Office_Object "
                    "SELECT CO FROM Office_Object CO")
                events = await drain(await service.submit(
                    service.parse("SELECT T FROM Tall T")))
                assert events[-1][0] == "done"
                assert events[-1][1]["rows"] > 0
                snap = service.stats.snapshot()
                # Both queries ran in workers: the post-mutation pool
                # forked fresh and inherited the new database.
                assert snap["process_requests"] == 2
                assert snap["process_fallbacks"] == 0
            finally:
                service.close()
        asyncio.run(main())


class TestWarmAndStats:
    def test_warm_pool_preforks_and_stats_expose_the_account(self):
        async def main():
            service = QueryService(office_db(4), executor_threads=2,
                                   executor="process")
            try:
                assert service.warm_pool() >= 1
                snap = service.stats.snapshot()
                assert snap["pool"]["pool_cold_starts"] == 1
                await drain(await service.submit(
                    service.parse("SELECT X FROM Office_Object X")))
                snap = service.stats.snapshot()
                # The warmed pool served the query — no second fork.
                assert snap["pool"]["pool_cold_starts"] == 1
                assert snap["process_requests"] == 1
            finally:
                service.close()
        asyncio.run(main())

    def test_thread_mode_has_no_pool_to_warm(self):
        service = QueryService(office_db(2), executor_threads=2,
                               executor="thread")
        try:
            assert service.warm_pool() == 0
        finally:
            service.close()

    def test_stats_verb_reports_executor_over_the_wire(self):
        async def main():
            async with serving(executor="process") as server, \
                    client_for(server) as client:
                await client.query("SELECT X FROM Office_Object X")
                stats = await client.stats()
                assert stats["executor"] == "process"
                assert stats["process_requests"] == 1
                assert "pool_cold_starts" in stats["pool"]
        asyncio.run(main())

"""Unit tests for the object store and integrity checking."""

import pytest

from repro.constraints.parser import parse_cst
from repro.errors import IntegrityError, UnknownObjectError
from repro.model.database import Database
from repro.model.office import (
    add_file_cabinet,
    add_regions,
    build_office_database,
    build_office_schema,
)
from repro.model.oid import CstOid, LiteralOid, SymbolicOid, oid


@pytest.fixture
def office():
    return build_office_database()


class TestPopulation:
    def test_paper_instance_loads(self, office):
        db, oids = office
        assert len(db) == 3
        assert oids.my_desk in db

    def test_duplicate_oid_rejected(self, office):
        db, _ = office
        with pytest.raises(IntegrityError):
            db.add_object("my_desk", "Object_in_Room")

    def test_unknown_class_rejected(self):
        db = Database(build_office_schema())
        with pytest.raises(Exception):
            db.add_object("o", "Ghost")

    def test_string_oid_coerced(self):
        db = Database(build_office_schema())
        obj = db.add_object("thing", "Drawer")
        assert obj.oid == SymbolicOid("thing")


class TestExtents:
    def test_direct_extent(self, office):
        db, oids = office
        assert db.direct_extent("Desk") == (oids.standard_desk,)

    def test_extent_includes_subclasses(self, office):
        db, oids = office
        assert oids.standard_desk in db.extent("Office_Object")

    def test_extent_after_adding_cabinet(self, office):
        db, _ = office
        cabinet = add_file_cabinet(db)
        assert cabinet in db.extent("Office_Object")
        assert cabinet not in db.extent("Desk")

    def test_is_instance(self, office):
        db, oids = office
        assert db.is_instance(oids.standard_desk, "Office_Object")
        assert not db.is_instance(oids.standard_desk, "Drawer")
        assert not db.is_instance(oid("ghost"), "Desk")


class TestAttributeValues:
    def test_scalar(self, office):
        db, oids = office
        values = db.attribute_values(oids.standard_desk, "color")
        assert values == (LiteralOid("red"),)

    def test_missing_attribute_empty(self, office):
        db, oids = office
        assert db.attribute_values(oids.standard_desk, "wheels") == ()

    def test_missing_object_empty(self, office):
        db, _ = office
        assert db.attribute_values(oid("ghost"), "color") == ()

    def test_set_valued(self, office):
        db, _ = office
        cabinet = add_file_cabinet(db)
        centers = db.attribute_values(cabinet, "drawer_center")
        assert len(centers) == 2
        assert all(isinstance(c, CstOid) for c in centers)

    def test_cst_value_helper(self, office):
        db, oids = office
        extent = db.cst_value(oids.standard_desk, "extent")
        assert extent.contains_point(4, 2)
        assert db.cst_value(oids.standard_desk, "color") is None

    def test_object_lookup(self, office):
        db, oids = office
        assert db.object(oids.my_desk).class_name == "Object_in_Room"
        with pytest.raises(UnknownObjectError):
            db.object(oid("ghost"))


class TestCstInstances:
    def test_regions(self, office):
        db, _ = office
        regions = add_regions(db)
        assert len(regions) == 4
        assert all(r in db for r in regions)
        assert len(db.extent("Region")) == 4
        # Regions are instances of the CST(2) superclass too.
        assert len(db.extent("CST(2)")) == 4

    def test_region_attributes(self, office):
        db, _ = office
        regions = add_regions(db)
        names = {db.attribute_values(r, "region_name")[0].value
                 for r in regions}
        assert names == {"left_lower", "left_upper",
                         "right_lower", "right_upper"}

    def test_dimension_checked(self, office):
        db, _ = office
        with pytest.raises(IntegrityError):
            db.add_cst_instance("Region", parse_cst("((x) | x <= 1)"))

    def test_non_cst_class_rejected(self, office):
        db, _ = office
        with pytest.raises(IntegrityError):
            db.add_cst_instance("Desk", parse_cst("((x,y) | x <= 1)"))


class TestIntegrity:
    def test_paper_instance_valid(self, office):
        db, _ = office
        db.validate()

    def test_undeclared_attribute(self, office):
        db, _ = office
        db.add_object("rogue", "Drawer", {"wheels": 4})
        with pytest.raises(IntegrityError):
            db.validate()

    def test_scalar_shape(self, office):
        db, _ = office
        db.add_object("rogue", "Drawer", {"color": ["red", "blue"]})
        with pytest.raises(IntegrityError):
            db.validate()

    def test_cst_dimension_mismatch(self, office):
        db, _ = office
        db.add_object("rogue", "Drawer", {
            "extent": parse_cst("((w) | w <= 1)")})
        with pytest.raises(IntegrityError):
            db.validate()

    def test_dangling_reference(self, office):
        db, _ = office
        db.add_object("rogue", "Object_in_Room",
                      {"catalog_object": oid("ghost")})
        with pytest.raises(IntegrityError):
            db.validate()

    def test_wrong_class_reference(self, office):
        db, oids = office
        db.add_object("rogue", "Object_in_Room",
                      {"catalog_object": oids.my_desk})
        with pytest.raises(IntegrityError):
            db.validate()

    def test_literal_in_class_attribute(self, office):
        db, _ = office
        db.add_object("rogue", "Object_in_Room",
                      {"catalog_object": "not an object"})
        with pytest.raises(IntegrityError):
            db.validate()

    def test_non_cst_value_in_cst_attribute(self, office):
        db, _ = office
        db.add_object("rogue", "Drawer", {"extent": "red"})
        with pytest.raises(IntegrityError):
            db.validate()

"""Unit tests for logical oids."""

from fractions import Fraction

import pytest

from repro.constraints.atoms import Le
from repro.constraints.cst_object import CSTObject
from repro.constraints.terms import variables
from repro.model.oid import (
    AttributeNameOid,
    ClassNameOid,
    CstOid,
    FunctionalOid,
    LiteralOid,
    SymbolicOid,
    as_oid,
    oid,
)

x, y = variables("x y")


class TestLiteralOid:
    def test_int_normalized_to_fraction(self):
        assert LiteralOid(3).value == Fraction(3)

    def test_string(self):
        assert LiteralOid("red").value == "red"

    def test_equal_numbers(self):
        assert LiteralOid(3) == LiteralOid(Fraction(3))
        assert hash(LiteralOid(3)) == hash(LiteralOid(Fraction(3)))

    def test_string_and_number_differ(self):
        assert LiteralOid("3") != LiteralOid(3)

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError):
            LiteralOid(object())

    def test_str_quotes_strings(self):
        assert str(LiteralOid("red")) == "'red'"
        assert str(LiteralOid(Fraction(1, 2))) == "1/2"


class TestSymbolicOid:
    def test_identity(self):
        assert oid("desk123") == SymbolicOid("desk123")
        assert oid("a") != oid("b")

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            SymbolicOid("")

    def test_hashable(self):
        assert len({oid("a"), oid("a"), oid("b")}) == 2


class TestFunctionalOid:
    def test_identity_by_function_and_args(self):
        a = FunctionalOid("f", [oid("x"), LiteralOid(1)])
        b = FunctionalOid("f", [oid("x"), LiteralOid(1)])
        c = FunctionalOid("g", [oid("x"), LiteralOid(1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_args_typed(self):
        with pytest.raises(TypeError):
            FunctionalOid("f", ["raw string"])

    def test_str(self):
        assert str(FunctionalOid("f", [oid("a")])) == "f(a)"


class TestCstOid:
    def test_canonical_identity(self):
        a = CstOid(CSTObject.from_atoms([x], [Le(x, 1), Le(x, 5)]))
        b = CstOid(CSTObject.from_atoms([y], [Le(2 * y, 2)]))
        assert a == b
        assert hash(a) == hash(b)

    def test_typed(self):
        with pytest.raises(TypeError):
            CstOid("not a cst")


class TestMetaOids:
    def test_attribute_name(self):
        assert AttributeNameOid("color") == AttributeNameOid("color")
        assert AttributeNameOid("color") != AttributeNameOid("extent")

    def test_class_name(self):
        assert ClassNameOid("Desk") == ClassNameOid("Desk")

    def test_attribute_and_class_with_same_name_differ(self):
        assert AttributeNameOid("X") != ClassNameOid("X")


class TestAsOid:
    def test_passthrough(self):
        o = oid("a")
        assert as_oid(o) is o

    def test_number(self):
        assert as_oid(7) == LiteralOid(7)

    def test_cst(self):
        cst = CSTObject.from_atoms([x], [Le(x, 1)])
        assert as_oid(cst) == CstOid(cst)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            as_oid(True)

"""Unit tests for schema definitions and resolution."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError, UnknownClassError
from repro.model.office import build_office_schema
from repro.model.schema import AttributeDef, CSTSpec, ClassDef, Schema


class TestCSTSpec:
    def test_dimension(self):
        assert CSTSpec(["w", "z"]).dimension == 2

    def test_names(self):
        assert CSTSpec(["w", "z"]).names == ("w", "z")

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            CSTSpec(["w", "w"])

    def test_str(self):
        assert str(CSTSpec(["w", "z"])) == "CST(w,z)"


class TestAttributeDef:
    def test_cst_attribute(self):
        attr = AttributeDef("extent", CSTSpec(["w", "z"]))
        assert attr.is_cst

    def test_interface_args_on_cst_rejected(self):
        with pytest.raises(SchemaError):
            AttributeDef("extent", CSTSpec(["w"]), interface_args=("p",))

    def test_unnamed_rejected(self):
        with pytest.raises(SchemaError):
            AttributeDef("", "string")

    def test_str_set_valued(self):
        attr = AttributeDef("drawer_center", CSTSpec(["p1", "q1"]),
                            set_valued=True)
        assert "*" in str(attr)


class TestSchemaBasics:
    def test_builtins_present(self):
        schema = Schema()
        for name in ("string", "real", "integer", "boolean"):
            assert schema.has_class(name)

    def test_duplicate_class_rejected(self):
        schema = Schema()
        schema.define("A")
        with pytest.raises(SchemaError):
            schema.define("A")

    def test_unknown_class(self):
        with pytest.raises(UnknownClassError):
            Schema().class_def("Nope")

    def test_cst_class_on_demand(self):
        schema = Schema()
        cls = schema.ensure_cst_class(3)
        assert cls.cst_dimension == 3
        assert schema.has_class("CST(3)")


class TestHierarchy:
    def build(self) -> Schema:
        schema = Schema()
        schema.define("A")
        schema.define("B", parents=("A",))
        schema.define("C", parents=("B",))
        schema.define("D", parents=("A",))
        return schema

    def test_superclasses(self):
        schema = self.build()
        assert schema.superclasses("C") == ("C", "B", "A")

    def test_subclasses(self):
        schema = self.build()
        assert set(schema.subclasses("A")) == {"A", "B", "C", "D"}

    def test_is_subclass(self):
        schema = self.build()
        assert schema.is_subclass("C", "A")
        assert not schema.is_subclass("A", "C")
        assert schema.is_subclass("A", "A")

    def test_cycle_detected(self):
        schema = Schema()
        schema.add_class(ClassDef("X", parents=("Y",)))
        schema.add_class(ClassDef("Y", parents=("X",)))
        with pytest.raises(SchemaError):
            schema.validate()

    def test_unknown_parent_detected(self):
        schema = Schema()
        schema.define("X", parents=("Ghost",))
        with pytest.raises(SchemaError):
            schema.validate()


class TestAttributes:
    def test_inheritance(self):
        schema = build_office_schema()
        attrs = schema.attributes_of("Desk")
        # Inherited from Office_Object:
        assert "extent" in attrs
        # Own:
        assert "drawer_center" in attrs

    def test_resolve_unknown(self):
        schema = build_office_schema()
        with pytest.raises(UnknownAttributeError):
            schema.resolve_attribute("Desk", "wheels")

    def test_interface_of_inherited(self):
        schema = build_office_schema()
        assert [v.name for v in schema.interface_of("Desk")] == ["x", "y"]

    def test_interface_arity_validated(self):
        schema = Schema()
        schema.define("Part", interface=("a", "b"))
        schema.define("Whole", attributes=[
            AttributeDef("part", "Part", interface_args=("p",))])
        with pytest.raises(SchemaError):
            schema.validate()

    def test_unknown_attribute_target(self):
        schema = Schema()
        schema.define("X", attributes=[AttributeDef("bad", "Ghost")])
        with pytest.raises(SchemaError):
            schema.validate()


class TestOfficeSchema:
    def test_validates(self):
        build_office_schema().validate()

    def test_figure_one_classes(self):
        schema = build_office_schema()
        for name in ("Object_in_Room", "Office_Object", "Desk",
                     "Drawer", "File_Cabinet", "Region"):
            assert schema.has_class(name)

    def test_desk_is_office_object(self):
        schema = build_office_schema()
        assert schema.is_subclass("Desk", "Office_Object")
        assert schema.is_subclass("File_Cabinet", "Office_Object")

    def test_cabinet_drawer_center_set_valued(self):
        schema = build_office_schema()
        attr = schema.resolve_attribute("File_Cabinet", "drawer_center")
        assert attr.set_valued
        assert attr.target.names == ("p1", "q1")

    def test_drawer_renaming(self):
        schema = build_office_schema()
        attr = schema.resolve_attribute("Desk", "drawer")
        assert [v.name for v in attr.interface_args] == ["p", "q"]

    def test_region_is_cst_class(self):
        schema = build_office_schema()
        assert schema.class_def("Region").cst_dimension == 2
        assert schema.is_subclass("Region", "CST(2)")

    def test_str_rendering(self):
        schema = build_office_schema()
        text = str(schema)
        assert "Desk IS-A Office_Object" in text

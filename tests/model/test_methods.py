"""Tests for stored methods (Section 2.1: attributes are 0-ary
methods; methods provide computation outside the complexity analysis)."""

from fractions import Fraction

import pytest

from repro import lyric
from repro.constraints.geometry import area_2d
from repro.errors import IntegrityError, SchemaError
from repro.model.office import build_office_database, build_office_schema
from repro.model.oid import LiteralOid
from repro.model.schema import AttributeDef, MethodDef


def area_method(db, oid):
    extent = db.cst_value(oid, "extent")
    return area_2d(extent)


def scaled_area(db, oid, factor):
    return area_method(db, oid) * factor.value


def corner_colors(db, oid):
    return ["red", "green"]


@pytest.fixture
def office_with_methods():
    db, oids = build_office_database()
    db.schema.add_method(
        "Office_Object",
        MethodDef("area", area_method, result="real"))
    db.schema.add_method(
        "Office_Object",
        MethodDef("scaled_area", scaled_area, result="real", arity=1))
    db.schema.add_method(
        "Drawer",
        MethodDef("corner_colors", corner_colors, result="string",
                  set_valued=True))
    return db, oids


class TestMethodDef:
    def test_validation(self):
        with pytest.raises(SchemaError):
            MethodDef("", lambda db, o: 1)
        with pytest.raises(SchemaError):
            MethodDef("m", "not callable")
        with pytest.raises(SchemaError):
            MethodDef("m", lambda db, o: 1, arity=-1)

    def test_str(self):
        m = MethodDef("area", lambda db, o: 1, result="real")
        assert "area()" in str(m)

    def test_name_clash_with_attribute_detected(self):
        schema = build_office_schema()
        schema.add_method("Office_Object",
                          MethodDef("color", lambda db, o: "red"))
        with pytest.raises(SchemaError):
            schema.validate()


class TestInvocation:
    def test_direct_invoke(self, office_with_methods):
        db, oids = office_with_methods
        (value,) = db.invoke_method(oids.standard_desk, "area")
        assert value == LiteralOid(32)  # 8 x 4 desk

    def test_invoke_with_args(self, office_with_methods):
        db, oids = office_with_methods
        (value,) = db.invoke_method(oids.standard_desk, "scaled_area",
                                    LiteralOid(2))
        assert value == LiteralOid(64)

    def test_arity_checked(self, office_with_methods):
        db, oids = office_with_methods
        with pytest.raises(IntegrityError):
            db.invoke_method(oids.standard_desk, "area", LiteralOid(1))

    def test_unknown_method(self, office_with_methods):
        db, oids = office_with_methods
        with pytest.raises(IntegrityError):
            db.invoke_method(oids.standard_desk, "levitate")

    def test_set_valued(self, office_with_methods):
        db, oids = office_with_methods
        values = db.invoke_method(oids.standard_drawer, "corner_colors")
        assert len(values) == 2

    def test_inheritance(self, office_with_methods):
        db, oids = office_with_methods
        # area is declared on Office_Object, invoked on a Desk.
        (value,) = db.invoke_method(oids.standard_desk, "area")
        assert value == LiteralOid(32)


class TestMethodsInPaths:
    def test_zero_ary_method_as_path_step(self, office_with_methods):
        """Paths treat 0-ary methods as attributes."""
        db, _ = office_with_methods
        result = lyric.query(db, """
            SELECT X.area FROM Desk X
        """)
        assert result.scalars() == [32]

    def test_method_in_where(self, office_with_methods):
        db, _ = office_with_methods
        result = lyric.query(db, """
            SELECT X FROM Office_Object X WHERE X.area = 32
        """)
        assert len(result) == 1
        empty = lyric.query(db, """
            SELECT X FROM Office_Object X WHERE X.area = 31
        """)
        assert len(empty) == 0

    def test_method_as_pseudo_linear_constant(self, office_with_methods):
        """The paper's pseudo-linear formulas: path expressions that
        instantiate to constants — including computed ones."""
        db, _ = office_with_methods
        result = lyric.query(db, """
            SELECT ((a) | 0 <= a <= X.area) FROM Desk X
        """)
        cst = result.single().values[0].cst
        assert cst.contains_point(32)
        assert not cst.contains_point(33)

    def test_stored_value_shadows_method(self, office_with_methods):
        """A stored attribute value wins over a method of the same
        name (methods only fill gaps)."""
        db, oids = office_with_methods
        # No clash in the schema; simulate by checking precedence with
        # an unset attribute vs the method: the method fires only when
        # nothing is stored.
        values = db.attribute_values(oids.standard_desk, "area")
        assert values == (LiteralOid(32),)

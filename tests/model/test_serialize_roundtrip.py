"""Property tests: serialization round trips over *random* schemas and
databases (satellite of the durable-storage PR — the WAL and snapshots
reuse this format, so its round trip must be exact for every oid
variant, huge and negative Fractions, strict/EQ/NE atoms, empty
interface renamings, and set-valued attributes)."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.constraints.atoms import Eq, Ge, Gt, Le, Lt, Ne
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.cst_object import CSTObject
from repro.constraints.terms import Variable
from repro.model.database import Database
from repro.model.oid import (
    AttributeNameOid,
    ClassNameOid,
    CstOid,
    FunctionalOid,
    LiteralOid,
    SymbolicOid,
)
from repro.model.schema import AttributeDef, CSTSpec, Schema
from repro.model.serialize import (
    dump_database,
    dump_oid,
    dump_schema,
    load_database,
    load_oid,
    load_schema,
)

X, Y = Variable("x"), Variable("y")

#: Rationals stressing the textual round trip: huge numerators,
#: negative values, denominators that do not divide powers of ten.
fractions = st.builds(
    Fraction,
    st.integers(min_value=-10**30, max_value=10**30),
    st.integers(min_value=1, max_value=10**15))

names = st.text(alphabet="abcdefghij_", min_size=1, max_size=8)


@st.composite
def atoms(draw):
    """One random linear atom over (x, y), any relop, any sign."""
    cx = draw(fractions)
    cy = draw(fractions)
    bound = draw(fractions)
    relop = draw(st.sampled_from([Eq, Ne, Le, Lt, Ge, Gt]))
    return relop(cx * X + cy * Y, bound)


@st.composite
def cst_objects(draw):
    body = ConjunctiveConstraint(
        draw(st.lists(atoms(), min_size=1, max_size=3)))
    return CSTObject((X, Y), body)


@st.composite
def oids(draw, depth=1):
    branches = [
        st.builds(SymbolicOid, names),
        st.builds(LiteralOid, fractions),
        st.builds(LiteralOid,
                  st.text(alphabet="abc xyz0189'!", max_size=12)),
        st.builds(AttributeNameOid, names),
        st.builds(ClassNameOid, names),
        st.builds(CstOid, cst_objects()),
    ]
    if depth > 0:
        branches.append(st.builds(
            FunctionalOid, names,
            st.lists(oids(depth=depth - 1), min_size=1, max_size=2)))
    return draw(st.one_of(branches))


class TestOidRoundtrip:
    @given(oids(depth=2))
    @settings(max_examples=80, deadline=None)
    def test_every_oid_variant_round_trips(self, oid):
        clone = load_oid(dump_oid(oid))
        assert clone == oid
        assert type(clone) is type(oid)
        # The dump itself is a fixed point (stable on-disk bytes).
        assert dump_oid(clone) == dump_oid(oid)

    @given(fractions)
    @settings(max_examples=50, deadline=None)
    def test_extreme_fractions_survive_exactly(self, value):
        clone = load_oid(dump_oid(LiteralOid(value)))
        assert clone.value == value

    @given(cst_objects())
    @settings(max_examples=30, deadline=None)
    def test_cst_text_round_trip_is_semantic_identity(self, cst):
        clone = load_oid(dump_oid(CstOid(cst)))
        assert clone == CstOid(cst)  # canonical-form equality
        assert clone.cst.dimension == cst.dimension


@st.composite
def schemas(draw):
    """A random schema: a base class with an interface, a subclass,
    scalar/set-valued/CST/class-valued attributes, and optionally an
    *empty* interface renaming (the regression the truthiness bug ate).
    """
    schema = Schema()
    base_attrs = [AttributeDef("ext", CSTSpec(("x", "y"))),
                  AttributeDef("label", "string")]
    schema.define("Base", interface=("x", "y"), attributes=base_attrs)
    schema.define("Plain")  # no interface at all
    sub_attrs = [AttributeDef("nums", "real", set_valued=True)]
    if draw(st.booleans()):
        sub_attrs.append(AttributeDef("friend", "Base",
                                      interface_args=("p", "q")))
    if draw(st.booleans()):
        # Empty renaming: meaningful, distinct from "no renaming".
        sub_attrs.append(AttributeDef("other", "Plain",
                                      interface_args=()))
    if draw(st.booleans()):
        sub_attrs.append(AttributeDef("region", "Shape"))
        schema.ensure_cst_class(2)
        schema.define("Shape", parents=("CST(2)",),
                      cst_dimension=2)
    schema.define("Sub", parents=("Base",), attributes=sub_attrs)
    schema.validate()
    return schema


class TestSchemaRoundtrip:
    @given(schemas())
    @settings(max_examples=25, deadline=None)
    def test_schema_dump_is_fixed_point(self, schema):
        payload = dump_schema(schema)
        clone = load_schema(payload)
        assert dump_schema(clone) == payload
        assert set(clone.class_names) == set(schema.class_names)
        for name in schema.class_names:
            ours, theirs = schema.class_def(name), clone.class_def(name)
            assert ours.parents == theirs.parents
            assert ours.interface == theirs.interface
            for attr_name, attr in ours.attributes.items():
                other = theirs.attributes[attr_name]
                assert attr.set_valued == other.set_valued
                assert attr.interface_args == other.interface_args

    def test_empty_interface_args_survive(self):
        """Regression: ``interface_args=()`` must not collapse to
        ``None`` (truthiness vs ``is not None``)."""
        schema = Schema()
        schema.define("Plain")
        schema.define("Holder", attributes=[
            AttributeDef("p", "Plain", interface_args=())])
        clone = load_schema(dump_schema(schema))
        attr = clone.class_def("Holder").attributes["p"]
        assert attr.interface_args == ()
        assert attr.interface_args is not None


@st.composite
def databases(draw):
    schema = draw(schemas())
    db = Database(schema)
    count = draw(st.integers(min_value=0, max_value=4))
    created = []
    for i in range(count):
        values = {}
        if draw(st.booleans()):
            values["ext"] = draw(cst_objects())
        if draw(st.booleans()):
            values["label"] = draw(
                st.text(alphabet="abc xyz", max_size=6))
        cls = draw(st.sampled_from(["Base", "Sub"]))
        if cls == "Sub" and draw(st.booleans()):
            values["nums"] = frozenset(
                LiteralOid(f) for f in draw(
                    st.lists(fractions, max_size=3)))
        if cls == "Sub" and created and draw(st.booleans()) \
                and "friend" in schema.attributes_of("Sub"):
            values["friend"] = draw(st.sampled_from(created))
        obj = db.add_object(f"o{i}", cls, values)
        created.append(obj.oid)
    db.validate()
    return db


class TestDatabaseRoundtrip:
    @given(databases())
    @settings(max_examples=25, deadline=None)
    def test_database_dump_is_fixed_point(self, db):
        payload = dump_database(db)
        clone = load_database(payload)
        assert dump_database(clone) == payload
        assert len(clone) == len(db)
        for obj in db.objects():
            other = clone.object(obj.oid)
            assert other.class_name == obj.class_name
            for name in obj.attribute_names:
                assert other.get(name) == obj.get(name)

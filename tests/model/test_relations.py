"""Unit tests for the flat-relation encoding (Section 5)."""

import pytest

from repro.model.office import add_file_cabinet, build_office_database
from repro.model.oid import LiteralOid
from repro.model.relations import (
    attribute_relation_name,
    extent_relation_name,
    flatten,
)


@pytest.fixture
def office():
    return build_office_database()


class TestFlatten:
    def test_extent_relations_exist(self, office):
        db, _ = office
        catalog = flatten(db)
        for cls in ("Desk", "Office_Object", "Drawer", "Object_in_Room"):
            assert extent_relation_name(cls) in catalog

    def test_extent_includes_subclasses(self, office):
        db, oids = office
        catalog = flatten(db)
        rel = catalog[extent_relation_name("Office_Object")]
        members = {row[0] for row in rel}
        assert oids.standard_desk in members

    def test_attribute_relations(self, office):
        db, oids = office
        catalog = flatten(db)
        rel = catalog[attribute_relation_name("color")]
        pairs = {(row[0], row[1]) for row in rel}
        assert (oids.standard_desk, LiteralOid("red")) in pairs
        assert (oids.standard_drawer, LiteralOid("red")) in pairs

    def test_set_valued_unnested(self, office):
        db, _ = office
        cabinet = add_file_cabinet(db)
        catalog = flatten(db)
        rel = catalog[attribute_relation_name("drawer_center")]
        cabinet_rows = [row for row in rel if row[0] == cabinet]
        assert len(cabinet_rows) == 2

    def test_empty_class_has_empty_extent(self, office):
        db, _ = office
        catalog = flatten(db)
        assert len(catalog[extent_relation_name("Region")]) == 0

    def test_builtins_not_flattened(self, office):
        db, _ = office
        catalog = flatten(db)
        assert extent_relation_name("string") not in catalog

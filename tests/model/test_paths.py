"""Unit tests for path expressions (Section 2.2 semantics)."""

import pytest

from repro.model.office import add_file_cabinet, build_office_database
from repro.model.oid import AttributeNameOid, LiteralOid
from repro.model.paths import (
    PathExpression,
    Step,
    VarRef,
    enumerate_paths,
    path_values,
)


@pytest.fixture
def office():
    return build_office_database()


class TestGroundPaths:
    def test_desk123_drawer_color(self, office):
        """The paper's example (1): desk123.drawer.color."""
        db, oids = office
        path = PathExpression(oids.standard_desk,
                              (Step("drawer"), Step("color")))
        assert path_values(db, path, {}) == {LiteralOid("red")}

    def test_missing_head_is_empty(self, office):
        """The paper: if desk123 is not an object of the database, the
        set of paths described is empty."""
        db, _ = office
        from repro.model.oid import oid
        path = PathExpression(oid("ghost"), (Step("drawer"),))
        assert path_values(db, path, {}) == set()

    def test_trivial_path_is_selector(self, office):
        db, oids = office
        path = PathExpression(oids.my_desk)
        assert path_values(db, path, {}) == {oids.my_desk}

    def test_ground_selector_filters(self, office):
        db, oids = office
        path = PathExpression(
            oids.standard_desk,
            (Step("drawer", oids.standard_drawer),))
        assert path_values(db, path, {}) == {oids.standard_drawer}

    def test_ground_selector_mismatch(self, office):
        db, oids = office
        path = PathExpression(
            oids.standard_desk, (Step("drawer", oids.my_desk),))
        assert path_values(db, path, {}) == set()

    def test_literal_tail_selector(self, office):
        """X.drawer[Y].color['red'] filtering on a literal."""
        db, oids = office
        path = PathExpression(
            oids.standard_desk,
            (Step("drawer"), Step("color", LiteralOid("red"))))
        assert len(path_values(db, path, {})) == 1


class TestVariableBinding:
    def test_selector_variable_bound(self, office):
        db, oids = office
        path = PathExpression(
            oids.standard_desk, (Step("drawer", VarRef("Y")),))
        results = list(enumerate_paths(db, path, {}))
        assert len(results) == 1
        env, tail = results[0]
        assert env["Y"] == oids.standard_drawer
        assert tail == oids.standard_drawer

    def test_bound_variable_filters(self, office):
        db, oids = office
        path = PathExpression(
            oids.standard_desk, (Step("drawer", VarRef("Y")),))
        hit = list(enumerate_paths(db, path,
                                   {"Y": oids.standard_drawer}))
        miss = list(enumerate_paths(db, path, {"Y": oids.my_desk}))
        assert len(hit) == 1
        assert not miss

    def test_variable_head(self, office):
        db, oids = office
        path = PathExpression(VarRef("X"), (Step("drawer"),))
        results = list(enumerate_paths(db, path, {}))
        # Only the desk has a drawer among stored objects.
        heads = {env["X"] for env, _ in results}
        assert oids.standard_desk in heads

    def test_bound_head(self, office):
        db, oids = office
        path = PathExpression(VarRef("X"), (Step("color"),))
        results = list(
            enumerate_paths(db, path, {"X": oids.standard_desk}))
        assert len(results) == 1

    def test_set_valued_fanout(self, office):
        db, _ = office
        cabinet = add_file_cabinet(db)
        path = PathExpression(cabinet, (Step("drawer_center",
                                             VarRef("C")),))
        results = list(enumerate_paths(db, path, {}))
        assert len(results) == 2
        assert len({env["C"] for env, _ in results}) == 2


class TestAttributeVariables:
    def test_attribute_variable_enumerates(self, office):
        """Higher-order variables range over attribute names."""
        db, oids = office
        path = PathExpression(oids.standard_drawer,
                              (Step(VarRef("A")),))
        results = list(enumerate_paths(db, path, {}))
        attrs = {env["A"] for env, _ in results}
        assert AttributeNameOid("color") in attrs
        assert AttributeNameOid("extent") in attrs

    def test_bound_attribute_variable(self, office):
        db, oids = office
        path = PathExpression(oids.standard_drawer, (Step(VarRef("A")),))
        results = list(enumerate_paths(
            db, path, {"A": AttributeNameOid("color")}))
        assert len(results) == 1
        assert results[0][1] == LiteralOid("red")

    def test_non_attribute_binding_filters_out(self, office):
        db, oids = office
        path = PathExpression(oids.standard_drawer, (Step(VarRef("A")),))
        results = list(enumerate_paths(db, path,
                                       {"A": oids.standard_desk}))
        assert not results


class TestExpressionStructure:
    def test_variables_in_order(self):
        path = PathExpression(
            VarRef("X"), (Step("drawer", VarRef("Y")),
                          Step(VarRef("A"), VarRef("Y"))))
        assert path.variables == ("X", "Y", "A")

    def test_is_ground(self, office):
        _, oids = office
        assert PathExpression(oids.my_desk, (Step("location"),)).is_ground()
        assert not PathExpression(VarRef("X")).is_ground()

    def test_str(self, office):
        _, oids = office
        path = PathExpression(
            VarRef("X"), (Step("drawer", VarRef("Y")), Step("color")))
        assert str(path) == "X.drawer[Y].color"

"""Stateful property test: a Database under random add / update /
remove operations always validates and keeps extents consistent."""

from fractions import Fraction

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.constraints.parser import parse_cst
from repro.errors import IntegrityError
from repro.model.database import Database
from repro.model.office import build_office_schema
from repro.model.oid import SymbolicOid


class DatabaseMachine(RuleBasedStateMachine):
    """Random walks over the mutation API."""

    drawers = Bundle("drawers")
    desks = Bundle("desks")

    def __init__(self):
        super().__init__()
        self.db = Database(build_office_schema())
        self.counter = 0

    def fresh_name(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}_{self.counter}"

    @rule(target=drawers,
          color=st.sampled_from(["red", "grey", "blue"]))
    def add_drawer(self, color):
        obj = self.db.add_object(self.fresh_name("drawer"), "Drawer", {
            "color": color,
            "extent": parse_cst(
                "((w,z) | -1 <= w <= 1 and -1 <= z <= 1)"),
        })
        return obj.oid

    @rule(target=desks, drawer=drawers,
          half=st.integers(min_value=1, max_value=5))
    def add_desk(self, drawer, half):
        if drawer not in self.db:
            return None
        obj = self.db.add_object(self.fresh_name("desk"), "Desk", {
            "color": "red",
            "extent": parse_cst(
                f"((w,z) | -{half} <= w <= {half} and -2 <= z <= 2)"),
            "drawer": drawer,
        })
        return obj.oid

    @rule(drawer=drawers,
          color=st.sampled_from(["green", "black"]))
    def recolor_drawer(self, drawer, color):
        if drawer in self.db:
            self.db.update_attribute(drawer, "color", color)

    @rule(drawer=drawers)
    def try_bad_update(self, drawer):
        """Invalid updates must fail atomically."""
        if drawer not in self.db:
            return
        before = self.db.attribute_values(drawer, "extent")
        try:
            self.db.update_attribute(drawer, "extent",
                                     parse_cst("((w) | w <= 1)"))
            raise AssertionError("dimension mismatch not caught")
        except IntegrityError:
            pass
        assert self.db.attribute_values(drawer, "extent") == before

    @rule(desk=desks)
    def remove_desk(self, desk):
        if desk is not None and desk in self.db:
            self.db.remove_object(desk)

    @rule(drawer=drawers)
    def remove_drawer_guarded(self, drawer):
        """Removing a referenced drawer must be refused."""
        if drawer not in self.db:
            return
        referenced = any(
            drawer in self.db.attribute_values(d, "drawer")
            for d in self.db.extent("Desk"))
        try:
            self.db.remove_object(drawer)
            assert not referenced
        except IntegrityError:
            assert referenced

    @invariant()
    def database_validates(self):
        self.db.validate()

    @invariant()
    def extents_consistent(self):
        desks = set(self.db.extent("Desk"))
        office_objects = set(self.db.extent("Office_Object"))
        assert desks <= office_objects
        for oid in desks:
            assert self.db.is_instance(oid, "Office_Object")

    @invariant()
    def no_dangling_drawers(self):
        for desk in self.db.extent("Desk"):
            for drawer in self.db.attribute_values(desk, "drawer"):
                assert drawer in self.db


TestDatabaseMachine = DatabaseMachine.TestCase
TestDatabaseMachine.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None)

"""Tests for attribute updates and database serialization."""

from fractions import Fraction

import pytest

from repro import lyric
from repro.constraints.parser import parse_cst
from repro.errors import IntegrityError, ModelError
from repro.model.office import add_file_cabinet, build_office_database
from repro.model.oid import CstOid, LiteralOid, oid
from repro.model.serialize import (
    dump_database,
    dump_oid,
    load_database,
    load_oid,
    read_database,
    save_database,
)


@pytest.fixture
def office():
    return build_office_database()


class TestUpdates:
    def test_move_desk(self, office):
        """'There is no reason that moving a desk would be limited in
        any way': relocating changes subsequent query answers."""
        db, oids = office
        before = lyric.query(db, """
            SELECT ((u,v) | E and D and L(x,y))
            FROM Object_in_Room O, Office_Object CO
            WHERE O.catalog_object[CO] and O.location[L]
              and CO.extent[E] and CO.translation[D]
        """).single().values[0]
        db.update_attribute(
            oids.my_desk, "location",
            parse_cst("((x,y) | x = 100 and y = 50)"))
        after = lyric.query(db, """
            SELECT ((u,v) | E and D and L(x,y))
            FROM Object_in_Room O, Office_Object CO
            WHERE O.catalog_object[CO] and O.location[L]
              and CO.extent[E] and CO.translation[D]
        """).single().values[0]
        assert before != after
        assert after.cst.contains_point(100, 50)

    def test_update_scalar(self, office):
        db, oids = office
        db.update_attribute(oids.standard_desk, "color", "blue")
        assert db.attribute_values(oids.standard_desk, "color") \
            == (LiteralOid("blue"),)

    def test_invalid_update_rolls_back(self, office):
        db, oids = office
        with pytest.raises(IntegrityError):
            db.update_attribute(oids.standard_desk, "extent",
                                parse_cst("((w) | w <= 1)"))
        # Old value intact:
        assert db.cst_value(oids.standard_desk,
                            "extent").contains_point(4, 2)

    def test_undeclared_attribute_rejected(self, office):
        db, oids = office
        with pytest.raises(IntegrityError):
            db.update_attribute(oids.standard_desk, "wheels", 4)

    def test_update_previously_unset(self, office):
        db, oids = office
        db.update_attribute(oids.standard_drawer, "color", "green")
        with pytest.raises(IntegrityError):
            db.update_attribute(oids.standard_drawer, "extent", "bad")

    def test_remove_object_guard(self, office):
        db, oids = office
        with pytest.raises(IntegrityError):
            db.remove_object(oids.standard_drawer)

    def test_remove_object_forced(self, office):
        db, oids = office
        db.remove_object(oids.standard_drawer, force=True)
        assert oids.standard_drawer not in db
        assert db.extent("Drawer") == ()
        # The dangling reference now fails validation:
        with pytest.raises(IntegrityError):
            db.validate()

    def test_remove_unreferenced(self, office):
        db, oids = office
        db.remove_object(oids.my_desk)
        assert oids.my_desk not in db
        db.validate()


class TestOidRoundtrip:
    CASES = None  # filled below

    def test_roundtrip(self, office):
        _, oids = office
        from repro.model.oid import (AttributeNameOid, ClassNameOid,
                                     FunctionalOid)
        cases = [
            oid("desk123"),
            LiteralOid("red"),
            LiteralOid(Fraction(22, 7)),
            CstOid(parse_cst("((x,y) | x + y <= 1)")),
            FunctionalOid("f", [oid("a"), LiteralOid(1)]),
            AttributeNameOid("color"),
            ClassNameOid("Desk"),
        ]
        for case in cases:
            assert load_oid(dump_oid(case)) == case

    def test_unknown_tag(self):
        with pytest.raises(ModelError):
            load_oid({"t": "mystery"})


class TestDatabaseRoundtrip:
    def test_roundtrip_preserves_query_answers(self, office):
        db, _ = office
        add_file_cabinet(db)
        clone = load_database(dump_database(db))
        query = """
            SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
            FROM Office_Object CO
            WHERE CO.extent[E] and CO.translation[D]
        """
        original = sorted(str(r.values) for r in lyric.query(db, query))
        restored = sorted(str(r.values)
                          for r in lyric.query(clone, query))
        assert original == restored

    def test_roundtrip_preserves_extents(self, office):
        db, _ = office
        add_file_cabinet(db)
        clone = load_database(dump_database(db))
        for cls in ("Desk", "File_Cabinet", "Office_Object", "Drawer"):
            assert len(clone.extent(cls)) == len(db.extent(cls))

    def test_roundtrip_set_valued(self, office):
        db, _ = office
        cabinet = add_file_cabinet(db)
        clone = load_database(dump_database(db))
        assert len(clone.attribute_values(cabinet, "drawer_center")) == 2

    def test_schema_interfaces_survive(self, office):
        db, _ = office
        clone = load_database(dump_database(db))
        attr = clone.schema.resolve_attribute("Desk", "drawer")
        assert [v.name for v in attr.interface_args] == ["p", "q"]

    def test_file_roundtrip(self, office, tmp_path):
        db, _ = office
        path = str(tmp_path / "office.json")
        save_database(db, path)
        clone = read_database(path)
        assert len(clone) == len(db)

    def test_version_checked(self, office):
        db, _ = office
        payload = dump_database(db)
        payload["version"] = 99
        with pytest.raises(ModelError):
            load_database(payload)

    def test_json_compatible(self, office):
        import json
        db, _ = office
        text = json.dumps(dump_database(db))
        assert "standard_desk" in text

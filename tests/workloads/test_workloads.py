"""Tests for the workload generators and their standard queries."""

import pytest

from repro import lyric
from repro.workloads import manufacturing, mda, office, random_constraints


class TestOfficeWorkload:
    def test_generation_is_deterministic(self):
        a = office.generate(6, seed=42)
        b = office.generate(6, seed=42)
        assert [str(o) for o in a.placed] == [str(o) for o in b.placed]

    def test_database_validates(self):
        workload = office.generate(8, seed=1)
        workload.db.validate()
        assert len(workload.placed) == 8

    def test_mixes_desks_and_cabinets(self):
        workload = office.generate(6, seed=1)
        desks = workload.db.extent("Desk")
        cabinets = workload.db.extent("File_Cabinet")
        assert len(desks) == 3
        assert len(cabinets) == 3

    def test_placed_extent_query(self):
        workload = office.generate(4, seed=2)
        result = lyric.query(workload.db, office.PLACED_EXTENT_QUERY)
        assert len(result) == 4
        for row in result:
            cst = row.values[1].cst
            assert cst.dimension == 2
            assert cst.is_satisfiable()

    def test_red_left_drawer_query(self):
        workload = office.generate(10, seed=3)
        result = lyric.query(workload.db, office.RED_LEFT_DRAWER_QUERY)
        # All generated desk drawer lines have p < 0: every red desk
        # qualifies.
        red_desks = [
            d for d in workload.db.extent("Desk")
            if str(workload.db.attribute_values(d, "color")[0]) == "'red'"]
        assert len(result) == len(red_desks)

    def test_overlap_query_runs(self):
        workload = office.generate(4, seed=4)
        result = lyric.query(workload.db, office.OVERLAP_QUERY)
        # Grid placement is collision-free by construction; just check
        # the query executes and is symmetric.
        pairs = {(str(r.values[0]), str(r.values[1])) for r in result}
        for a, b in pairs:
            assert (b, a) in pairs


class TestMdaWorkload:
    def test_generation(self):
        workload = mda.generate(5, 4, seed=0)
        workload.db.validate()
        assert len(workload.goals) == 5
        assert len(workload.maneuvers) == 4

    def test_compatible_query(self):
        workload = mda.generate(4, 3, seed=1)
        result = lyric.query(workload.db, mda.COMPATIBLE_QUERY)
        # Sanity: compatibility is a subset of all pairs.
        assert len(result) <= 12

    def test_within_implies_compatible(self):
        workload = mda.generate(4, 4, seed=2)
        compatible = {
            (str(r.values[0]), str(r.values[1]))
            for r in lyric.query(workload.db, mda.COMPATIBLE_QUERY)}
        within = {
            (str(r.values[0]), str(r.values[1]))
            for r in lyric.query(workload.db, mda.WITHIN_QUERY)}
        assert within <= compatible

    def test_best_speed_query(self):
        workload = mda.generate(3, 3, seed=3)
        result = lyric.query(workload.db, mda.BEST_SPEED_QUERY)
        for row in result:
            region = row.values[2].cst
            assert region.dimension == 4
            assert region.is_satisfiable()


class TestManufacturingWorkload:
    def test_generation(self):
        workload = manufacturing.generate(3, seed=0)
        workload.db.validate()
        assert len(workload.processes) == 6

    def test_material_connection(self):
        workload = manufacturing.generate(2, n_orders=2, seed=1)
        result = lyric.query(workload.db,
                             manufacturing.MATERIAL_CONNECTION_QUERY)
        assert len(result) == 4  # 2 orders x 2 candidate processes
        for row in result:
            connection = row.values[2].cst
            assert connection.dimension == 3

    def test_cheapest_fill(self):
        workload = manufacturing.generate(2, n_orders=2, seed=2)
        result = lyric.query(workload.db,
                             manufacturing.CHEAPEST_FILL_QUERY)
        for row in result:
            cost = row.values[2]
            assert cost.value >= 0

    def test_max_output(self):
        workload = manufacturing.generate(2, seed=3)
        result = lyric.query(workload.db,
                             manufacturing.MAX_OUTPUT_QUERY)
        assert len(result) == len(workload.processes)


class TestRandomConstraints:
    def test_polytope_satisfiable(self):
        for seed in range(5):
            poly = random_constraints.random_polytope(3, 6, seed)
            assert poly.is_satisfiable()

    def test_infeasible(self):
        for seed in range(5):
            bad = random_constraints.random_infeasible(3, 4, seed)
            assert not bad.is_satisfiable()

    def test_dnf_fraction(self):
        dnf = random_constraints.random_dnf(
            2, 10, 3, seed=7, infeasible_fraction=1.0)
        assert not dnf.is_satisfiable()
        good = random_constraints.random_dnf(
            2, 10, 3, seed=7, infeasible_fraction=0.0)
        assert good.is_satisfiable()

    def test_deterministic(self):
        a = random_constraints.random_polytope(4, 8, seed=5)
        b = random_constraints.random_polytope(4, 8, seed=5)
        assert a == b

    def test_chained_projection_system(self):
        system = random_constraints.chained_projection_system(5, seed=1)
        assert system.is_satisfiable()

    def test_redundant_conjunction_canonical_shrinks(self):
        from repro.constraints.canonical import canonical_conjunctive
        conj = random_constraints.redundant_conjunction(
            3, 5, 4, seed=2)
        canonical = canonical_conjunctive(conj)
        assert len(canonical) < len(conj)
        assert canonical.is_satisfiable()

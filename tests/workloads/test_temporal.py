"""Tests for the temporal scheduling workload."""

import pytest

from repro import lyric
from repro.workloads import temporal


@pytest.fixture(scope="module")
def workload():
    return temporal.generate(n_rooms=2, n_bookings=6, n_people=3,
                             seed=5)


class TestGeneration:
    def test_validates(self, workload):
        workload.db.validate()
        assert len(workload.rooms) == 2
        assert len(workload.bookings) == 6
        assert len(workload.people) == 3

    def test_availability_is_disjunctive(self, workload):
        windows = workload.db.cst_value(workload.people[0], "windows")
        from repro.constraints.families import Family
        assert windows.family is Family.DISJUNCTIVE

    def test_deterministic(self):
        a = temporal.generate(1, 2, 1, seed=9)
        b = temporal.generate(1, 2, 1, seed=9)
        assert [str(x) for x in a.bookings] \
            == [str(x) for x in b.bookings]


class TestQueries:
    def test_conflicts_symmetric(self, workload):
        result = lyric.query(workload.db, temporal.CONFLICT_QUERY)
        pairs = {(str(r.values[0]), str(r.values[1])) for r in result}
        for a, b in pairs:
            assert (b, a) in pairs

    def test_conflicts_share_room(self, workload):
        db = workload.db
        result = lyric.query(db, temporal.CONFLICT_QUERY)
        for row in result:
            room_a = db.attribute_values(row.values[0], "room")
            room_b = db.attribute_values(row.values[1], "room")
            assert room_a == room_b

    def test_within_hours(self, workload):
        result = lyric.query(workload.db, temporal.WITHIN_HOURS_QUERY)
        db = workload.db
        for row in result:
            booking = row.values[0]
            slot = db.cst_value(booking, "slot")
            room = db.attribute_values(booking, "room")[0]
            hours = db.cst_value(room, "open_hours")
            assert slot.entails(hours)

    def test_earliest_meeting(self, workload):
        result = lyric.query(workload.db,
                             temporal.EARLIEST_MEETING_QUERY)
        assert len(result) >= 1
        for row in result:
            feasible = row.values[2].cst
            earliest = row.values[3].value
            assert feasible.is_satisfiable()
            # The reported earliest time is a member of the person's
            # windows intersected with the room's hours.
            assert earliest >= temporal.DAY_START

    def test_min_over_disjunctive_windows(self, workload):
        """The MIN in the earliest-meeting query runs over a
        disjunctive system (two availability windows)."""
        db = workload.db
        result = lyric.query(db, """
            SELECT P, MIN(t SUBJECT TO ((t) | W(t)))
            FROM Availability P WHERE P.windows[W]
        """)
        assert len(result) == 3
        for row in result:
            person = row.values[0]
            windows = db.cst_value(person, "windows")
            assert windows.contains_point(row.values[1].value)

"""Unit tests: sharded relations, envelope pruning, scatter-gather
joins, and the optimizer's sharded-join selection."""

import pytest

from repro.constraints.cst_object import CSTObject
from repro.constraints.parser import parse_cst
from repro.errors import EvaluationError
from repro.model.oid import LiteralOid, oid
from repro.runtime.context import QueryContext
from repro.sqlc import index
from repro.sqlc.algebra import (
    CstPredicate,
    IndexJoin,
    Rename,
    Scan,
    ShardedIndexJoin,
)
from repro.sqlc.optimizer import select_sharded_joins
from repro.sqlc.relation import ConstraintRelation
from repro.sqlc.shard import (
    SEAL_MIN,
    ShardedConstraintRelation,
    scatter_pairs,
)
from repro.workloads.random_constraints import (
    make_variables,
    scattered_boxes,
)


@pytest.fixture(autouse=True)
def _fresh_index_state():
    index.reset_stats()
    index.clear_index_cache()
    yield


def _sat_intersection(a, b):
    return a.cst.intersect(b.cst).is_satisfiable()


def _predicate():
    return CstPredicate(
        ("e", "f"), _sat_intersection, "SAT",
        (("e", index.cst_cell_box), ("f", index.cst_cell_box)))


def _box_rows(count, seed=0, spread=100, size=5, prefix="r"):
    vars_ = make_variables(1)
    return [(oid(f"{prefix}{i}"), CSTObject(vars_, c))
            for i, c in enumerate(
                scattered_boxes(count, seed=seed, spread=spread,
                                size=size))]


class TestShardedRelation:
    def test_rejects_fewer_than_two_shards(self):
        with pytest.raises(EvaluationError):
            ShardedConstraintRelation("r", ("a",), shards=1)

    def test_rejects_unknown_partition_column(self):
        with pytest.raises(EvaluationError):
            ShardedConstraintRelation("r", ("a",), shards=2,
                                      partition_by="nope")

    def test_global_rows_match_plain_relation(self):
        rows = _box_rows(30)
        plain = ConstraintRelation("r", ("id", "c"), rows)
        sharded = ShardedConstraintRelation(
            "r", ("id", "c"), rows, shards=4, partition_by="c")
        assert list(sharded) == list(plain)
        assert sharded.columns == plain.columns
        assert len(sharded) == len(plain)

    def test_shards_partition_the_positions(self):
        rows = _box_rows(100)
        sharded = ShardedConstraintRelation(
            "r", ("id", "c"), rows, shards=4, partition_by="c")
        tables = sharded.shard_tables()
        seen = sorted(p for _, positions in tables
                      for p in positions)
        assert seen == list(range(100))
        stored = list(sharded)
        for rel, positions in tables:
            assert [stored[p] for p in positions] == list(rel)

    def test_rename_preserves_the_shard_layout(self):
        rows = _box_rows(100)
        sharded = ShardedConstraintRelation(
            "r", ("id", "c"), rows, shards=4, partition_by="c")
        before = sharded.shard_tables()
        renamed = sharded.rename({"id": "key", "c": "cst"})
        assert isinstance(renamed, ShardedConstraintRelation)
        assert renamed.columns == ("key", "cst")
        assert renamed.partition_by == "cst"
        assert list(renamed) == list(sharded)
        after = renamed.shard_tables()
        for (rel_b, pos_b), (rel_a, pos_a) in zip(before, after):
            assert pos_a == pos_b
            assert list(rel_a) == list(rel_b)
            assert rel_a.columns == ("key", "cst")

    def test_range_partitioning_waits_for_seal_min(self):
        sharded = ShardedConstraintRelation(
            "r", ("id", "c"), shards=2, partition_by="c")
        for row in _box_rows(SEAL_MIN - 1):
            sharded.add_row(row)
        assert not sharded.sealed
        sharded.add_row(_box_rows(1, seed=99, prefix="x")[0])
        assert sharded.sealed
        assert sum(sharded.shard_sizes()) == SEAL_MIN

    def test_first_shard_access_seals_a_young_relation(self):
        sharded = ShardedConstraintRelation(
            "r", ("id", "c"), _box_rows(5), shards=2,
            partition_by="c")
        assert not sharded.sealed
        sharded.shard_tables()
        assert sharded.sealed

    def test_round_robin_routes_by_position(self):
        rows = _box_rows(10)
        sharded = ShardedConstraintRelation(
            "r", ("id", "c"), rows, shards=2)
        assert sharded.sealed
        tables = sharded.shard_tables()
        assert tables[0][1] == [0, 2, 4, 6, 8]
        assert tables[1][1] == [1, 3, 5, 7, 9]

    def test_range_routing_is_deterministic(self):
        rows = _box_rows(200, seed=3)
        a = ShardedConstraintRelation(
            "r", ("id", "c"), rows, shards=4, partition_by="c")
        b = ShardedConstraintRelation(
            "r", ("id", "c"), rows, shards=4, partition_by="c")
        assert [p for _, ps in a.shard_tables() for p in ps] \
            == [p for _, ps in b.shard_tables() for p in ps]

    def test_keyless_cells_hash_route(self):
        rows = [(oid(f"o{i}"), LiteralOid(f"text{i}"))
                for i in range(SEAL_MIN + 10)]
        sharded = ShardedConstraintRelation(
            "r", ("id", "c"), rows, shards=3, partition_by="c")
        assert sum(sharded.shard_sizes()) == len(rows)

    def test_operators_degrade_to_plain_relations(self):
        sharded = ShardedConstraintRelation(
            "r", ("id", "c"), _box_rows(10), shards=2,
            partition_by="c")
        projected = sharded.project(["id"])
        assert type(projected) is ConstraintRelation
        assert len(projected) == 10


class TestAddRowsBatching:
    def test_add_rows_appends_and_bumps_version(self):
        rel = ConstraintRelation("r", ("a",))
        appended = rel.add_rows([(LiteralOid(i),) for i in range(5)])
        assert appended == 5
        assert len(rel) == 5

    def test_batch_observer_fires_once_per_batch(self):
        rel = ConstraintRelation("r", ("a",))
        single, batches = [], []
        rel.set_observer(lambda r, row: single.append(row),
                         lambda r, rows: batches.append(rows))
        rel.add_rows([(LiteralOid(i),) for i in range(5)])
        rel.add_row((LiteralOid(99),))
        assert len(batches) == 1 and len(batches[0]) == 5
        assert len(single) == 1

    def test_batchless_observer_gets_each_row(self):
        rel = ConstraintRelation("r", ("a",))
        single = []
        rel.set_observer(lambda r, row: single.append(row))
        rel.add_rows([(LiteralOid(i),) for i in range(5)])
        assert len(single) == 5

    def test_empty_batch_is_a_no_op(self):
        rel = ConstraintRelation("r", ("a",))
        fired = []
        rel.set_observer(None, lambda r, rows: fired.append(rows))
        assert rel.add_rows([]) == 0
        assert not fired

    def test_incremental_index_maintenance_after_batch(self):
        sharded = ShardedConstraintRelation(
            "r", ("id", "c"), _box_rows(100), shards=4,
            partition_by="c")
        sharded.register_index("c", index.cst_cell_box)
        built = [index.index_for(rel, "c", index.cst_cell_box)
                 for rel, _ in sharded.shard_tables()]
        sharded.add_rows(_box_rows(40, seed=5, prefix="n"))
        after = [index.index_for(rel, "c", index.cst_cell_box)
                 for rel, _ in sharded.shard_tables()]
        assert sum(ix.n_rows for ix in after) == 140
        # Untouched shards keep their object; touched shards extended.
        assert all(b.n_rows <= a.n_rows
                   for b, a in zip(built, after))


class TestEnvelopes:
    def test_envelope_hulls_bounded_rows(self):
        rel = ConstraintRelation("r", ("id", "c"), [
            (oid("a"), parse_cst("((x) | 0 <= x <= 4)")),
            (oid("b"), parse_cst("((x) | 10 <= x <= 12)")),
        ])
        env = index.BoxIndex(rel, "c", index.cst_cell_box).envelope()
        (var,) = env
        lo, hi = env[var]
        assert float(lo) == 0 and float(hi) == 12

    def test_empty_index_envelope_is_none(self):
        rel = ConstraintRelation("r", ("id", "c"), [
            (oid("a"), parse_cst("((x) | x <= 0 and x >= 1)")),
        ])
        assert index.BoxIndex(rel, "c",
                              index.cst_cell_box).envelope() is None

    def test_half_bounded_row_widens_to_infinity(self):
        # A row bounded only below keeps the variable with an +inf
        # hull endpoint — still sound (never prunes along that side)
        # and tighter than dropping the variable entirely.
        import math
        rel = ConstraintRelation("r", ("id", "c"), [
            (oid("a"), parse_cst("((x) | 0 <= x <= 4)")),
            (oid("b"), parse_cst("((x) | x >= 10)")),
        ])
        env = index.BoxIndex(rel, "c", index.cst_cell_box).envelope()
        (var,) = env
        lo, hi = env[var]
        assert float(lo) == 0 and hi == math.inf

    def test_envelopes_disjoint(self):
        rel_a = ConstraintRelation("a", ("id", "c"), [
            (oid("a"), parse_cst("((x) | 0 <= x <= 4)"))])
        rel_b = ConstraintRelation("b", ("id", "c"), [
            (oid("b"), parse_cst("((x) | 10 <= x <= 12)"))])
        env_a = index.BoxIndex(rel_a, "c",
                               index.cst_cell_box).envelope()
        env_b = index.BoxIndex(rel_b, "c",
                               index.cst_cell_box).envelope()
        assert index.envelopes_disjoint(env_a, env_b)
        assert index.envelopes_disjoint(env_a, None)
        assert not index.envelopes_disjoint(env_a, {})
        assert not index.envelopes_disjoint(env_a, env_a)


def _sharded_catalog(n_left=80, n_right=60, shards=4, spread=300,
                     seed=1):
    left_rows = _box_rows(n_left, seed=seed, spread=spread,
                          prefix="l")
    right_rows = _box_rows(n_right, seed=seed + 7919, spread=spread,
                           prefix="r")
    plain = {
        "L": ConstraintRelation("L", ("lid", "e"), left_rows),
        "R": ConstraintRelation("R", ("rid", "f"), right_rows),
    }
    sharded = {
        "L": ShardedConstraintRelation(
            "L", ("lid", "e"), left_rows, shards=shards,
            partition_by="e"),
        "R": ShardedConstraintRelation(
            "R", ("rid", "f"), right_rows, shards=shards,
            partition_by="f"),
    }
    return plain, sharded


def _index_join():
    return IndexJoin(Scan("L", ("lid", "e")), Scan("R", ("rid", "f")),
                     "e", "f", index.cst_cell_box,
                     index.cst_cell_box, _predicate())


def _sharded_join():
    return ShardedIndexJoin(
        Scan("L", ("lid", "e")), Scan("R", ("rid", "f")),
        "e", "f", index.cst_cell_box, index.cst_cell_box,
        _predicate())


class TestScatterGather:
    def test_scatter_pairs_match_monolithic_candidates(self):
        plain, sharded = _sharded_catalog()
        ctx = QueryContext()
        mono = index.candidate_pairs(
            index.index_for(plain["L"], "e", index.cst_cell_box),
            index.index_for(plain["R"], "f", index.cst_cell_box),
            ctx=ctx)
        pairs, info = scatter_pairs(
            sharded["L"], sharded["R"], "e", "f",
            index.cst_cell_box, index.cst_cell_box, ctx=ctx)
        assert pairs == mono
        assert info["shard_pairs_pruned"] \
            + info["shard_pairs_probed"] == 16

    def test_join_results_byte_identical(self):
        plain, sharded = _sharded_catalog()
        ctx1 = QueryContext()
        ctx2 = QueryContext()
        baseline = _index_join().evaluate(plain, ctx1)
        result = _sharded_join().evaluate(sharded, ctx2)
        assert baseline.columns == result.columns
        assert list(baseline) == list(result)

    def test_envelope_pruning_is_counted(self):
        _, sharded = _sharded_catalog(spread=2000)
        ctx = QueryContext()
        _sharded_join().evaluate(sharded, ctx)
        assert ctx.stats.shard_joins == 1
        assert ctx.stats.shard_pairs_pruned > 0
        assert ctx.stats.shard_pairs_probed \
            + ctx.stats.shard_pairs_pruned == 16

    def test_sharded_node_degrades_on_plain_relations(self):
        plain, _ = _sharded_catalog()
        ctx = QueryContext()
        result = _sharded_join().evaluate(plain, ctx)
        baseline = _index_join().evaluate(plain,
                                          QueryContext())
        assert list(result) == list(baseline)
        assert ctx.stats.shard_joins == 0

    def test_indexing_off_falls_back_to_all_pairs(self):
        _, sharded = _sharded_catalog(n_left=10, n_right=8)
        ctx = QueryContext().derive(indexing=False)
        result = _sharded_join().evaluate(sharded, ctx)
        baseline = _index_join().evaluate(
            sharded, QueryContext().derive(
                indexing=False))
        assert list(result) == list(baseline)
        assert ctx.stats.shard_joins == 0

    def test_explain_record_carries_shard_counts(self):
        _, sharded = _sharded_catalog()
        node = _sharded_join()
        node.evaluate(sharded, QueryContext())
        assert node._last["shards"] == (4, 4)
        assert node._last["shard_pairs_pruned"] \
            + node._last["shard_pairs_probed"] == 16


class TestOptimizerSelection:
    def test_upgrades_index_join_over_sharded_scans(self):
        _, sharded = _sharded_catalog()
        plan = select_sharded_joins(_index_join(), sharded)
        assert isinstance(plan, ShardedIndexJoin)

    def test_keeps_plain_index_join_over_plain_scans(self):
        plain, _ = _sharded_catalog()
        plan = select_sharded_joins(_index_join(), plain)
        assert isinstance(plan, IndexJoin)
        assert not isinstance(plan, ShardedIndexJoin)

    def test_upgrades_through_rename_wrappers(self):
        # The translator aliases scans under Rename; renaming is
        # shard-preserving, so the optimizer sees through it.
        left_rows = _box_rows(80, seed=1, spread=300, prefix="l")
        right_rows = _box_rows(60, seed=7920, spread=300, prefix="r")
        plain = {
            "L": ConstraintRelation("L", ("lid", "raw"), left_rows),
            "R": ConstraintRelation("R", ("rid", "raw"), right_rows),
        }
        sharded = {
            "L": ShardedConstraintRelation(
                "L", ("lid", "raw"), left_rows, shards=4,
                partition_by="raw"),
            "R": ShardedConstraintRelation(
                "R", ("rid", "raw"), right_rows, shards=4,
                partition_by="raw"),
        }
        renamed_join = IndexJoin(
            Rename(Scan("L", ("lid", "raw")), (("raw", "e"),)),
            Rename(Scan("R", ("rid", "raw")), (("raw", "f"),)),
            "e", "f", index.cst_cell_box, index.cst_cell_box,
            _predicate())
        plan = select_sharded_joins(renamed_join, sharded)
        assert isinstance(plan, ShardedIndexJoin)
        assert not isinstance(
            select_sharded_joins(renamed_join, plain),
            ShardedIndexJoin)

        ctx = QueryContext()
        baseline = renamed_join.evaluate(plain, QueryContext())
        result = plan.evaluate(sharded, ctx)
        assert [tuple(map(repr, r)) for r in result] \
            == [tuple(map(repr, r)) for r in baseline]
        assert ctx.stats.shard_joins == 1
        assert ctx.stats.shard_pairs_probed > 0

    def test_mixed_sides_stay_monolithic(self):
        plain, sharded = _sharded_catalog()
        catalog = {"L": sharded["L"], "R": plain["R"]}
        plan = select_sharded_joins(_index_join(), catalog)
        assert not isinstance(plan, ShardedIndexJoin)

    def test_full_pipeline_uses_sharded_join(self):
        from repro.model.office import build_office_database
        from repro import lyric
        text = """
            SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
            FROM Office_Object CO
            WHERE CO.extent[E] and CO.translation[D]
        """
        db, _ = build_office_database()
        plain_ctx = QueryContext()
        shard_ctx = QueryContext(shards=2)
        baseline = lyric.query(db, text, ctx=plain_ctx)
        result = lyric.query(db, text, ctx=shard_ctx)
        assert [tuple(map(repr, r)) for r in baseline.rows] \
            == [tuple(map(repr, r)) for r in result.rows]


class TestSequenceUnits:
    def test_units_served_from_shard_matrices(self):
        rows = _box_rows(40)
        sharded = ShardedConstraintRelation(
            "r", ("id", "c"), rows, shards=3, partition_by="c")
        cells = [row[1] for row in sharded]
        units = sharded.sequence_units("c", cells)
        assert len(units) == len(cells)
        assert all(unit is not None for unit in units)

    def test_foreign_cells_fall_back_to_none(self):
        sharded = ShardedConstraintRelation(
            "r", ("id", "c"), _box_rows(10), shards=2,
            partition_by="c")
        foreign = _box_rows(1, seed=77, prefix="z")[0][1]
        assert sharded.sequence_units("c", [foreign]) == [None]

"""Unit tests for flat constraint relations."""

import pytest

from repro.errors import EvaluationError
from repro.model.oid import LiteralOid, oid
from repro.sqlc.relation import ConstraintRelation


def people() -> ConstraintRelation:
    return ConstraintRelation("people", ("person", "city"), [
        (oid("ann"), oid("paris")),
        (oid("bob"), oid("rome")),
        (oid("cat"), oid("paris")),
    ])


def cities() -> ConstraintRelation:
    return ConstraintRelation("cities", ("city", "country"), [
        (oid("paris"), oid("france")),
        (oid("rome"), oid("italy")),
    ])


class TestBasics:
    def test_len_and_arity(self):
        rel = people()
        assert len(rel) == 3
        assert rel.arity == 2

    def test_duplicate_columns_rejected(self):
        with pytest.raises(EvaluationError):
            ConstraintRelation("bad", ("a", "a"))

    def test_row_arity_checked(self):
        rel = people()
        with pytest.raises(EvaluationError):
            rel.add_row((oid("solo"),))

    def test_values_coerced_to_oids(self):
        rel = ConstraintRelation("lits", ("v",), [("red",), (3,)])
        assert list(rel)[0][0] == LiteralOid("red")

    def test_unknown_column(self):
        with pytest.raises(EvaluationError):
            people().column_index("nope")

    def test_cell_and_row_dict(self):
        rel = people()
        row = next(iter(rel))
        assert rel.cell(row, "person") == oid("ann")
        assert rel.row_dict(row)["city"] == oid("paris")


class TestOperators:
    def test_project(self):
        rel = people().project(["city"])
        assert rel.columns == ("city",)
        assert len(rel) == 3

    def test_project_reorders(self):
        rel = people().project(["city", "person"])
        assert rel.columns == ("city", "person")

    def test_distinct(self):
        rel = people().project(["city"]).distinct()
        assert len(rel) == 2

    def test_select(self):
        rel = people().select(lambda r: r["city"] == oid("paris"))
        assert len(rel) == 2

    def test_rename(self):
        rel = people().rename({"person": "p"})
        assert rel.columns == ("p", "city")

    def test_union(self):
        rel = people().union(people())
        assert len(rel) == 6

    def test_union_incompatible(self):
        with pytest.raises(EvaluationError):
            people().union(cities())

    def test_natural_join(self):
        joined = people().natural_join(cities())
        assert joined.columns == ("person", "city", "country")
        assert len(joined) == 3
        countries = {joined.cell(r, "country") for r in joined}
        assert countries == {oid("france"), oid("italy")}

    def test_join_no_shared_columns_is_product(self):
        left = ConstraintRelation("l", ("a",), [(oid("x"),), (oid("y"),)])
        right = ConstraintRelation("r", ("b",), [(oid("1"),), (oid("2"),)])
        assert len(left.natural_join(right)) == 4

    def test_join_empty(self):
        empty = ConstraintRelation("e", ("city",))
        assert len(people().natural_join(empty)) == 0

    def test_pretty_limits(self):
        text = people().pretty(limit=1)
        assert "more rows" in text

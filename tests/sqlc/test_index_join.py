"""Unit tests: box indexes, IndexJoin, optimizer selection, stats."""

import pytest

from repro.constraints.parser import parse_cst
from repro.errors import EvaluationError
from repro.model.oid import LiteralOid, oid
from repro.runtime.cache import caching
from repro.runtime.faults import FaultPlan
from repro.runtime.guard import ExecutionGuard, guarded
from repro.sqlc import index
from repro.sqlc.algebra import (
    CstPredicate,
    IndexJoin,
    NaturalJoin,
    Scan,
    Select,
)
from repro.sqlc.engine import ExecutionStats, execute, explain_analyze
from repro.sqlc.optimizer import optimize, select_index_joins
from repro.sqlc.relation import ConstraintRelation


@pytest.fixture(autouse=True)
def _fresh_index_state():
    index.reset_stats()
    index.clear_index_cache()
    yield


def _sat_intersection(a, b):
    return a.cst.intersect(b.cst).is_satisfiable()


def cst_predicate():
    return CstPredicate(
        ("e", "f"), _sat_intersection, "SAT",
        (("e", index.cst_cell_box), ("f", index.cst_cell_box)))


@pytest.fixture
def catalog():
    """Two CST relations over the shared variable x: lefts at
    [0,4], [10,12], [3,5]; rights at [4,6], [100,101]."""
    lefts = ConstraintRelation("lefts", ("lid", "e"), [
        (oid("a"), parse_cst("((x) | 0 <= x <= 4)")),
        (oid("b"), parse_cst("((x) | 10 <= x <= 12)")),
        (oid("c"), parse_cst("((x) | 3 <= x <= 5)")),
    ])
    rights = ConstraintRelation("rights", ("rid", "f"), [
        (oid("p"), parse_cst("((x) | 4 <= x <= 6)")),
        (oid("q"), parse_cst("((x) | 100 <= x <= 101)")),
    ])
    return {"lefts": lefts, "rights": rights}


def join_plan():
    return Select(
        NaturalJoin(Scan("lefts", ("lid", "e")),
                    Scan("rights", ("rid", "f"))),
        cst_predicate())


def index_join_plan():
    return IndexJoin(Scan("lefts", ("lid", "e")),
                     Scan("rights", ("rid", "f")),
                     "e", "f", index.cst_cell_box, index.cst_cell_box,
                     cst_predicate())


class TestBoxIndex:
    def test_structure(self, catalog):
        built = index.BoxIndex(catalog["lefts"], "e",
                               index.cst_cell_box)
        assert built.n_rows == 3
        assert built.nonempty == [0, 1, 2]
        (var,) = built.bounded
        assert var.name == "x"
        assert [(float(lo), float(hi), pos)
                for lo, hi, pos in built.bounded[var]] \
            == [(0.0, 4.0, 0), (10.0, 12.0, 1), (3.0, 5.0, 2)]
        assert built.unbounded[var] == []

    def test_non_cst_cell_is_unknown_box(self):
        rel = ConstraintRelation("r", ("c",), [(LiteralOid(7),)])
        built = index.BoxIndex(rel, "c", index.cst_cell_box)
        assert built.boxes == [{}]
        assert built.nonempty == [0]

    def test_candidate_pairs_prune_and_order(self, catalog):
        left = index.index_for(catalog["lefts"], "e",
                               index.cst_cell_box)
        right = index.index_for(catalog["rights"], "f",
                                index.cst_cell_box)
        pairs = index.candidate_pairs(left, right)
        # Only [0,4]x[4,6] and [3,5]x[4,6] overlap; sorted order.
        assert pairs == [(0, 0), (2, 0)]
        stats = index.stats()
        assert stats["candidates"] == 2
        assert stats["pruned"] == 4
        assert stats["probes"] < 6

    def test_unknown_boxes_always_candidates(self):
        lit = ConstraintRelation("lit", ("c",),
                                 [(LiteralOid(1),), (LiteralOid(2),)])
        cst = ConstraintRelation("cst", ("d",), [
            (parse_cst("((x) | 0 <= x <= 1)"),)])
        pairs = index.candidate_pairs(
            index.index_for(lit, "c", index.cst_cell_box),
            index.index_for(cst, "d", index.cst_cell_box))
        assert pairs == [(0, 0), (1, 0)]

    def test_grid_fallback_matches_sweep(self):
        # Long overlapping intervals trip the density heuristic.
        rows = [(parse_cst(f"((x) | {i} <= x <= {i + 50})"),)
                for i in range(8)]
        rel = ConstraintRelation("dense", ("c",), rows)
        built = index.index_for(rel, "c", index.cst_cell_box)
        (var,) = built.bounded
        assert index._density(built.bounded[var]) \
            > index.DENSITY_THRESHOLD
        pairs = index.candidate_pairs(built, built)
        assert pairs == [(i, j) for i in range(8) for j in range(8)]

    def test_cache_hit_and_version_invalidation(self, catalog):
        rel = catalog["lefts"]
        first = index.index_for(rel, "e", index.cst_cell_box)
        again = index.index_for(rel, "e", index.cst_cell_box)
        assert again is first
        assert index.stats()["builds"] == 1
        rel.add_row((oid("d"), parse_cst("((x) | 7 <= x <= 8)")))
        # A pure append extends the cached index (copy-on-extend)
        # instead of rebuilding; the old object stays frozen.
        extended = index.index_for(rel, "e", index.cst_cell_box)
        assert extended is not first
        assert extended.n_rows == 4
        assert first.n_rows == 3
        assert index.stats()["builds"] == 1
        assert index.stats()["extends"] == 1
        # The extended index is structurally identical to a rebuild.
        rebuilt = index.BoxIndex(rel, "e", index.cst_cell_box)
        assert extended.boxes == rebuilt.boxes
        assert extended.nonempty == rebuilt.nonempty
        assert extended.bounded == rebuilt.bounded
        assert extended.unbounded == rebuilt.unbounded


class TestIndexJoin:
    def test_matches_natural_join_select(self, catalog):
        baseline = execute(join_plan(), catalog, use_optimizer=False)
        indexed = execute(index_join_plan(), catalog,
                          use_optimizer=False)
        assert indexed.columns == baseline.columns
        assert list(indexed) == list(baseline)

    def test_disabled_indexing_same_result(self, catalog):
        with index.indexing(False):
            off = execute(index_join_plan(), catalog,
                          use_optimizer=False)
        on = execute(index_join_plan(), catalog, use_optimizer=False)
        assert list(off) == list(on)

    def test_fault_plan_disables_pruning(self, catalog):
        guard = ExecutionGuard(faults=FaultPlan())
        before = index.stats()["probes"]
        with guarded(guard):
            result = execute(index_join_plan(), catalog,
                             use_optimizer=False)
        assert index.stats()["probes"] == before
        assert len(result) == 2

    def test_optimizer_selects_index_join(self, catalog):
        optimized = optimize(join_plan(), catalog)
        assert isinstance(optimized, IndexJoin)
        assert optimized.left_column == "e"
        assert optimized.right_column == "f"

    def test_optimizer_skips_without_boxers(self, catalog):
        plan = Select(
            NaturalJoin(Scan("lefts", ("lid", "e")),
                        Scan("rights", ("rid", "f"))),
            CstPredicate(("e", "f"), _sat_intersection, "SAT"))
        assert not isinstance(optimize(plan, catalog), IndexJoin)

    def test_optimizer_gate(self, catalog):
        with index.indexing(False):
            optimized = optimize(join_plan(), catalog)
        assert not isinstance(optimized, IndexJoin)
        assert select_index_joins(join_plan()) != join_plan()

    def test_explain_renders_choice_and_counts(self, catalog):
        optimized = optimize(join_plan(), catalog)
        assert "IndexJoin(e box-overlap f" in optimized.explain()
        analyzed = explain_analyze(join_plan(), catalog)
        assert "pruned 4 of 6 pairs" in analyzed

    def test_execution_stats_counters(self, catalog):
        stats = ExecutionStats()
        execute(join_plan(), catalog, stats=stats)
        assert stats.index_probes > 0
        assert stats.candidates_pruned == 4
        assert stats.partitions == 0 and stats.workers == 0


class TestStatsReset:
    def test_reused_stats_object_resets(self, catalog):
        guard = ExecutionGuard(max_pivots=10_000)
        stats = ExecutionStats()
        with caching(None):
            execute(join_plan(), catalog, stats=stats, guard=guard)
            first = (stats.pivots, stats.simplex_calls,
                     stats.candidates_pruned)
            execute(join_plan(), catalog, stats=stats, guard=guard)
        # The guard accumulates across executions; the stats must not.
        assert (stats.pivots, stats.simplex_calls,
                stats.candidates_pruned) == first
        assert guard.simplex_calls >= 2 * stats.simplex_calls > 0

    def test_stale_warnings_cleared(self, catalog):
        stats = ExecutionStats()
        stats.warnings.append("stale")
        stats.exhausted = "pivots"
        execute(join_plan(), catalog, stats=stats)
        assert stats.warnings == []
        assert stats.exhausted is None


class TestRelationSatellites:
    def test_add_row_arity_error_names_relation(self):
        rel = ConstraintRelation("office", ("oid", "color"))
        with pytest.raises(EvaluationError) as exc:
            rel.add_row((oid("desk"),))
        message = str(exc.value)
        assert "office" in message
        assert "2 columns" in message
        assert "color" in message

    def test_select_and_identity_project_share_row_tuples(self):
        rel = ConstraintRelation("r", ("a", "b"), [
            (LiteralOid(1), LiteralOid(2)),
            (LiteralOid(3), LiteralOid(4)),
        ])
        first = next(iter(rel))
        selected = rel.select(lambda row: True)
        assert next(iter(selected)) is first
        projected = rel.project(("a", "b"))
        assert next(iter(projected)) is first
        reordered = rel.project(("b", "a"))
        assert next(iter(reordered)) == (LiteralOid(2), LiteralOid(1))

"""Property tests: IndexJoin ≡ NaturalJoin and parallel ≡ serial on
random workloads, including under ``on_exhaustion="degrade"`` and with
the constraint cache disabled."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.cst_object import CSTObject
from repro.model.oid import LiteralOid
from repro.runtime.cache import caching
from repro.runtime.guard import ExecutionGuard
from repro.runtime import parallel
from repro.sqlc import index
from repro.sqlc.algebra import (
    CstPredicate,
    IndexJoin,
    NaturalJoin,
    Scan,
    Select,
)
from repro.sqlc.engine import ExecutionStats, execute
from repro.workloads.random_constraints import (
    make_variables,
    scattered_boxes,
)

import pytest


@pytest.fixture(autouse=True)
def _fresh_index_state():
    index.reset_stats()
    index.clear_index_cache()
    parallel.reset_stats()
    yield


def _sat_intersection(a, b):
    return a.cst.intersect(b.cst).is_satisfiable()


def _predicate():
    return CstPredicate(
        ("e", "f"), _sat_intersection, "SAT",
        (("e", index.cst_cell_box), ("f", index.cst_cell_box)))


def _catalog(seed, n_left=12, n_right=10, spread=40, size=12):
    vars_ = make_variables(1)
    lefts = scattered_boxes(n_left, seed=seed, spread=spread, size=size)
    rights = scattered_boxes(n_right, seed=seed + 7919,
                             spread=spread, size=size)
    from repro.sqlc.relation import ConstraintRelation
    left = ConstraintRelation("L", ("lid", "e"), [
        (LiteralOid(i), CSTObject(vars_, c))
        for i, c in enumerate(lefts)])
    right = ConstraintRelation("R", ("rid", "f"), [
        (LiteralOid(i), CSTObject(vars_, c))
        for i, c in enumerate(rights)])
    return {"L": left, "R": right}


def _nested_loop_plan():
    return Select(NaturalJoin(Scan("L", ("lid", "e")),
                              Scan("R", ("rid", "f"))),
                  _predicate())


def _index_join_plan():
    return IndexJoin(Scan("L", ("lid", "e")), Scan("R", ("rid", "f")),
                     "e", "f", index.cst_cell_box, index.cst_cell_box,
                     _predicate())


def _same_relation(a, b):
    assert a.columns == b.columns
    assert list(a) == list(b)


class TestIndexJoinEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_index_join_matches_nested_loop(self, seed):
        catalog = _catalog(seed)
        baseline = execute(_nested_loop_plan(), catalog,
                           use_optimizer=False)
        indexed = execute(_index_join_plan(), catalog,
                          use_optimizer=False)
        _same_relation(baseline, indexed)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_equivalence_under_degrade_without_cache(self, seed):
        catalog = _catalog(seed)
        with caching(None):
            baseline = execute(
                _nested_loop_plan(), catalog, use_optimizer=False,
                guard=ExecutionGuard(max_pivots=1_000_000,
                                     on_exhaustion="degrade"))
            indexed = execute(
                _index_join_plan(), catalog, use_optimizer=False,
                guard=ExecutionGuard(max_pivots=1_000_000,
                                     on_exhaustion="degrade"))
        _same_relation(baseline, indexed)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_optimized_plan_matches_unoptimized(self, seed):
        catalog = _catalog(seed)
        plain = execute(_nested_loop_plan(), catalog,
                        use_optimizer=False)
        optimized = execute(_nested_loop_plan(), catalog)
        assert optimized.columns == plain.columns
        assert sorted(map(repr, optimized)) == sorted(map(repr, plain))


class TestParallelEquivalence:
    """Fork-backed runs are slow to spawn; a few fixed seeds keep the
    suite fast while still sweeping distinct workloads."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_parallel_select_matches_serial(self, seed):
        # A dense-overlap workload so the exact phase has >= 64 rows.
        catalog = _catalog(seed, n_left=16, n_right=16,
                           spread=10, size=10)
        serial = execute(_index_join_plan(), catalog,
                         use_optimizer=False)
        before = parallel.stats()
        with parallel.parallelism(2):
            fanned = execute(_index_join_plan(), catalog,
                             use_optimizer=False)
        after = parallel.stats()
        _same_relation(serial, fanned)
        assert after["runs"] + after["fallbacks"] \
            > before["runs"] + before["fallbacks"]

    @pytest.mark.parametrize("seed", [3, 4])
    def test_parallel_under_degrade_without_cache(self, seed):
        catalog = _catalog(seed, n_left=16, n_right=16,
                           spread=10, size=10)
        with caching(None):
            serial = execute(
                _index_join_plan(), catalog, use_optimizer=False,
                guard=ExecutionGuard(max_pivots=1_000_000,
                                     on_exhaustion="degrade"))
            with parallel.parallelism(2):
                fanned = execute(
                    _index_join_plan(), catalog, use_optimizer=False,
                    guard=ExecutionGuard(max_pivots=1_000_000,
                                         on_exhaustion="degrade"))
        _same_relation(serial, fanned)

    def test_degrade_trip_is_equivalent(self):
        """When the budget genuinely trips, both serial and parallel
        degrade to the same empty relation."""
        catalog = _catalog(5, n_left=16, n_right=16,
                           spread=10, size=10)
        with caching(None):
            serial_stats = ExecutionStats()
            serial = execute(
                _index_join_plan(), catalog, use_optimizer=False,
                stats=serial_stats,
                guard=ExecutionGuard(max_pivots=3,
                                     on_exhaustion="degrade"))
            parallel_stats = ExecutionStats()
            with parallel.parallelism(2):
                fanned = execute(
                    _index_join_plan(), catalog, use_optimizer=False,
                    stats=parallel_stats,
                    guard=ExecutionGuard(max_pivots=3,
                                         on_exhaustion="degrade"))
        assert len(serial) == len(fanned) == 0
        assert serial.columns == fanned.columns
        assert serial_stats.exhausted == "pivots"
        assert parallel_stats.exhausted == "pivots"

    def test_parallel_stats_surface(self):
        catalog = _catalog(6, n_left=16, n_right=16,
                           spread=10, size=10)
        stats = ExecutionStats()
        with parallel.parallelism(2):
            execute(_index_join_plan(), catalog, use_optimizer=False,
                    stats=stats)
        if parallel.stats()["runs"]:
            assert stats.partitions >= 2
            assert stats.workers == 2
        else:  # pool unavailable: fell back serially, still correct
            assert stats.partitions == 0

"""Property tests: sharded scatter-gather execution ≡ unsharded, byte
for byte, across random partitionings — including under degraded
budgets, with the cache off, with the numeric prefilter off, and after
a store save/restore round-trip."""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.cst_object import CSTObject
from repro.model.oid import LiteralOid
from repro.runtime.cache import caching
from repro.runtime.context import QueryContext
from repro.runtime.guard import ExecutionGuard
from repro.sqlc import index
from repro.sqlc.algebra import (
    CstPredicate,
    IndexJoin,
    Scan,
    ShardedIndexJoin,
)
from repro.sqlc.engine import execute
from repro.sqlc.relation import ConstraintRelation
from repro.sqlc.shard import ShardedConstraintRelation
from repro.workloads.random_constraints import (
    make_variables,
    scattered_boxes,
)

import pytest


@pytest.fixture(autouse=True)
def _fresh_index_state():
    index.reset_stats()
    index.clear_index_cache()
    yield


def _sat_intersection(a, b):
    return a.cst.intersect(b.cst).is_satisfiable()


def _predicate():
    return CstPredicate(
        ("e", "f"), _sat_intersection, "SAT",
        (("e", index.cst_cell_box), ("f", index.cst_cell_box)))


def _rows(count, seed, spread, size=10):
    vars_ = make_variables(1)
    return [(LiteralOid(i), CSTObject(vars_, c))
            for i, c in enumerate(
                scattered_boxes(count, seed=seed, spread=spread,
                                size=size))]


def _catalogs(seed, shards, partition_by, n_left=14, n_right=12,
              spread=60):
    """(plain, sharded) catalog pair over identical row lists.
    ``partition_by`` toggles range vs round-robin partitioning."""
    left_rows = _rows(n_left, seed, spread)
    right_rows = _rows(n_right, seed + 7919, spread)
    plain = {
        "L": ConstraintRelation("L", ("lid", "e"), left_rows),
        "R": ConstraintRelation("R", ("rid", "f"), right_rows),
    }
    sharded = {
        "L": ShardedConstraintRelation(
            "L", ("lid", "e"), left_rows, shards=shards,
            partition_by="e" if partition_by else None),
        "R": ShardedConstraintRelation(
            "R", ("rid", "f"), right_rows, shards=shards,
            partition_by="f" if partition_by else None),
    }
    return plain, sharded


def _plain_plan():
    return IndexJoin(Scan("L", ("lid", "e")), Scan("R", ("rid", "f")),
                     "e", "f", index.cst_cell_box,
                     index.cst_cell_box, _predicate())


def _sharded_plan():
    return ShardedIndexJoin(
        Scan("L", ("lid", "e")), Scan("R", ("rid", "f")),
        "e", "f", index.cst_cell_box, index.cst_cell_box,
        _predicate())


def _same_relation(a, b):
    assert a.columns == b.columns
    assert [tuple(map(repr, row)) for row in a] \
        == [tuple(map(repr, row)) for row in b]


class TestShardedEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           shards=st.integers(min_value=2, max_value=7),
           partition_by=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_matches_unsharded(self, seed, shards, partition_by):
        plain, sharded = _catalogs(seed, shards, partition_by)
        baseline = execute(_plain_plan(), plain, use_optimizer=False)
        result = execute(_sharded_plan(), sharded,
                         use_optimizer=False)
        _same_relation(baseline, result)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           shards=st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_matches_without_cache(self, seed, shards):
        plain, sharded = _catalogs(seed, shards, True)
        with caching(None):
            baseline = execute(_plain_plan(), plain,
                               use_optimizer=False)
            result = execute(_sharded_plan(), sharded,
                             use_optimizer=False)
        _same_relation(baseline, result)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           shards=st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_matches_with_numeric_off(self, seed, shards):
        plain, sharded = _catalogs(seed, shards, True)
        baseline = execute(_plain_plan(), plain, use_optimizer=False,
                           ctx=QueryContext(numeric=False))
        result = execute(_sharded_plan(), sharded,
                         use_optimizer=False,
                         ctx=QueryContext(numeric=False))
        _same_relation(baseline, result)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           shards=st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_matches_under_degrade(self, seed, shards):
        plain, sharded = _catalogs(seed, shards, True)
        baseline = execute(
            _plain_plan(), plain, use_optimizer=False,
            guard=ExecutionGuard(max_pivots=1_000_000,
                                 on_exhaustion="degrade"))
        result = execute(
            _sharded_plan(), sharded, use_optimizer=False,
            guard=ExecutionGuard(max_pivots=1_000_000,
                                 on_exhaustion="degrade"))
        _same_relation(baseline, result)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           shards=st.integers(min_value=2, max_value=4))
    @settings(max_examples=6, deadline=None)
    def test_matches_degrade_to_partial(self, seed, shards):
        # A budget tight enough to actually trip mid-join: the
        # degraded partial result must still be identical, because
        # candidate order (hence budget spend order) is identical.
        plain, sharded = _catalogs(seed, shards, True)
        with caching(None):
            baseline = execute(
                _plain_plan(), plain, use_optimizer=False,
                guard=ExecutionGuard(max_pivots=60,
                                     on_exhaustion="degrade"))
            result = execute(
                _sharded_plan(), sharded, use_optimizer=False,
                guard=ExecutionGuard(max_pivots=60,
                                     on_exhaustion="degrade"))
        _same_relation(baseline, result)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           shards=st.integers(min_value=2, max_value=4))
    @settings(max_examples=6, deadline=None)
    def test_matches_after_store_round_trip(self, seed, shards):
        from repro.storage.store import Store
        plain, sharded = _catalogs(seed, shards, True)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "s")
            with Store.create(path) as store:
                store.add_relation(sharded["L"])
                store.add_relation(sharded["R"])
            with Store.open(path) as store:
                restored = {"L": store.relation("L"),
                            "R": store.relation("R")}
                assert isinstance(restored["L"],
                                  ShardedConstraintRelation)
                baseline = execute(_plain_plan(), plain,
                                   use_optimizer=False)
                result = execute(_sharded_plan(), restored,
                                 use_optimizer=False)
                _same_relation(baseline, result)

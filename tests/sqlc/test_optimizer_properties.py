"""Property tests: optimizer rewrites preserve plan semantics on
random relations and plans."""

from hypothesis import given, settings, strategies as st

from repro.model.oid import LiteralOid, oid
from repro.sqlc.algebra import (
    And,
    ColumnEq,
    ColumnLiteral,
    NaturalJoin,
    Not,
    Or,
    Project,
    Scan,
    Select,
)
from repro.sqlc.engine import execute
from repro.sqlc.optimizer import optimize, push_selections
from repro.sqlc.relation import ConstraintRelation

COLORS = ["red", "grey", "blue"]


@st.composite
def catalogs(draw):
    n_objects = draw(st.integers(min_value=0, max_value=8))
    objects = ConstraintRelation("objects", ("oid", "color"))
    sizes = ConstraintRelation("sizes", ("oid", "size"))
    for i in range(n_objects):
        objects.add_row((oid(f"o{i}"),
                         LiteralOid(draw(st.sampled_from(COLORS)))))
        if draw(st.booleans()):
            sizes.add_row((oid(f"o{i}"),
                           LiteralOid(draw(
                               st.integers(min_value=1, max_value=4)))))
    return {"objects": objects, "sizes": sizes}


@st.composite
def predicates(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.sampled_from(["color", "size", "eq"]))
        if kind == "color":
            return ColumnLiteral("color", LiteralOid(
                draw(st.sampled_from(COLORS))))
        if kind == "size":
            return ColumnLiteral("size", LiteralOid(
                draw(st.integers(min_value=1, max_value=4))))
        return ColumnEq("oid", "oid")
    op = draw(st.sampled_from(["and", "or", "not"]))
    if op == "not":
        return Not(draw(predicates(depth=depth - 1)))
    parts = tuple(draw(predicates(depth=depth - 1))
                  for _ in range(draw(st.integers(2, 3))))
    return And(parts) if op == "and" else Or(parts)


def rows_of(relation):
    return sorted(tuple(map(str, row)) for row in relation)


class TestRewrites:
    @given(catalogs(), predicates())
    @settings(max_examples=60, deadline=None)
    def test_pushdown_preserves_semantics(self, catalog, predicate):
        plan = Select(
            NaturalJoin(Scan("objects", ("oid", "color")),
                        Scan("sizes", ("oid", "size"))),
            predicate)
        raw = execute(plan, catalog, use_optimizer=False)
        pushed = execute(push_selections(plan), catalog,
                         use_optimizer=False)
        assert rows_of(raw) == rows_of(pushed)

    @given(catalogs(), predicates())
    @settings(max_examples=60, deadline=None)
    def test_full_optimizer_preserves_semantics(self, catalog,
                                                predicate):
        plan = Project(
            Select(
                NaturalJoin(Scan("objects", ("oid", "color")),
                            Scan("sizes", ("oid", "size"))),
                predicate),
            ("oid", "size"))
        raw = execute(plan, catalog, use_optimizer=False)
        optimized = execute(plan, catalog, use_optimizer=True)
        assert rows_of(raw) == rows_of(optimized)

    @given(catalogs())
    @settings(max_examples=40, deadline=None)
    def test_join_reorder_three_way(self, catalog):
        catalog = dict(catalog)
        catalog["extra"] = ConstraintRelation(
            "extra", ("oid",),
            [(row[0],) for row in catalog["objects"]][:3])
        plan = NaturalJoin(
            NaturalJoin(Scan("objects", ("oid", "color")),
                        Scan("sizes", ("oid", "size"))),
            Scan("extra", ("oid",)))
        raw = execute(plan, catalog, use_optimizer=False)
        optimized = execute(optimize(plan, catalog), catalog,
                            use_optimizer=False)
        assert rows_of(raw) == rows_of(optimized)

"""Unit tests for plan algebra, the optimizer, and the engine."""

import pytest

from repro.constraints.parser import parse_cst
from repro.errors import EvaluationError
from repro.model.oid import CstOid, LiteralOid, oid
from repro.sqlc.algebra import (
    And,
    ColumnEq,
    ColumnLiteral,
    CstPredicate,
    Distinct,
    Extend,
    NaturalJoin,
    Not,
    Or,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.sqlc.engine import ExecutionStats, execute
from repro.sqlc.optimizer import optimize, push_selections
from repro.sqlc.relation import ConstraintRelation


@pytest.fixture
def catalog():
    objects = ConstraintRelation("objects", ("oid", "color"), [
        (oid("desk"), LiteralOid("red")),
        (oid("cabinet"), LiteralOid("grey")),
        (oid("chair"), LiteralOid("red")),
    ])
    extents = ConstraintRelation("extents", ("oid", "extent"), [
        (oid("desk"), parse_cst("((x) | 0 <= x <= 4)")),
        (oid("cabinet"), parse_cst("((x) | 10 <= x <= 12)")),
        (oid("chair"), parse_cst("((x) | 3 <= x <= 5)")),
    ])
    return {"objects": objects, "extents": extents}


def scan_objects():
    return Scan("objects", ("oid", "color"))


def scan_extents():
    return Scan("extents", ("oid", "extent"))


class TestEvaluation:
    def test_scan(self, catalog):
        assert len(execute(scan_objects(), catalog)) == 3

    def test_scan_unknown(self, catalog):
        with pytest.raises(EvaluationError):
            execute(Scan("ghost", ("oid",)), catalog)

    def test_scan_schema_mismatch(self, catalog):
        with pytest.raises(EvaluationError):
            execute(Scan("objects", ("oid",)), catalog)

    def test_select_literal(self, catalog):
        plan = Select(scan_objects(),
                      ColumnLiteral("color", LiteralOid("red")))
        assert len(execute(plan, catalog)) == 2

    def test_join(self, catalog):
        plan = NaturalJoin(scan_objects(), scan_extents())
        result = execute(plan, catalog)
        assert len(result) == 3
        assert result.columns == ("oid", "color", "extent")

    def test_project_and_distinct(self, catalog):
        plan = Distinct(Project(scan_objects(), ("color",)))
        assert len(execute(plan, catalog)) == 2

    def test_rename(self, catalog):
        plan = Rename(scan_objects(), (("oid", "o"),))
        assert execute(plan, catalog).columns == ("o", "color")

    def test_union(self, catalog):
        plan = Union(scan_objects(), scan_objects())
        assert len(execute(plan, catalog)) == 6

    def test_extend(self, catalog):
        plan = Extend(scan_objects(), "tag",
                      lambda row: LiteralOid(str(row["color"])),
                      label="tag")
        result = execute(plan, catalog)
        assert result.columns == ("oid", "color", "tag")

    def test_cst_predicate(self, catalog):
        overlap_3_5 = parse_cst("((x) | 3 <= x <= 5)")

        def overlaps(value):
            return isinstance(value, CstOid) \
                and value.cst.overlaps(overlap_3_5)

        plan = Select(scan_extents(),
                      CstPredicate(("extent",), overlaps, "overlap"))
        result = execute(plan, catalog)
        names = {result.cell(r, "oid") for r in result}
        assert names == {oid("desk"), oid("chair")}

    def test_column_eq(self, catalog):
        rel = ConstraintRelation("pairs", ("a", "b"), [
            (oid("x"), oid("x")), (oid("x"), oid("y"))])
        plan = Select(Scan("pairs", ("a", "b")), ColumnEq("a", "b"))
        assert len(execute(plan, {"pairs": rel})) == 1

    def test_boolean_connectives(self, catalog):
        red = ColumnLiteral("color", LiteralOid("red"))
        desk = ColumnLiteral("oid", oid("desk"))
        assert len(execute(Select(scan_objects(),
                                  And((red, desk))), catalog)) == 1
        assert len(execute(Select(scan_objects(),
                                  Or((red, desk))), catalog)) == 2
        assert len(execute(Select(scan_objects(),
                                  Not(red)), catalog)) == 1

    def test_stats(self, catalog):
        stats = ExecutionStats()
        execute(scan_objects(), catalog, stats=stats)
        assert stats.output_rows == 3
        assert stats.input_rows == 6


class TestOptimizer:
    def test_pushdown_through_join(self, catalog):
        red = ColumnLiteral("color", LiteralOid("red"))
        plan = Select(NaturalJoin(scan_objects(), scan_extents()), red)
        optimized = push_selections(plan)
        # The selection must now sit below the join, on the objects side.
        assert isinstance(optimized, NaturalJoin)
        assert isinstance(optimized.left, Select)
        assert execute(plan, catalog, use_optimizer=False).columns \
            == execute(optimized, catalog, use_optimizer=False).columns

    def test_pushdown_preserves_results(self, catalog):
        red = ColumnLiteral("color", LiteralOid("red"))
        plan = Select(NaturalJoin(scan_objects(), scan_extents()), red)
        raw = execute(plan, catalog, use_optimizer=False)
        opt = execute(plan, catalog, use_optimizer=True)
        assert sorted(map(str, raw)) == sorted(map(str, opt))

    def test_conjunction_split(self, catalog):
        pred = And((ColumnLiteral("color", LiteralOid("red")),
                    ColumnLiteral("oid", oid("desk"))))
        plan = Select(NaturalJoin(scan_objects(), scan_extents()), pred)
        optimized = push_selections(plan)
        raw = execute(plan, catalog, use_optimizer=False)
        opt = execute(optimized, catalog, use_optimizer=False)
        assert len(raw) == len(opt) == 1

    def test_pushdown_through_rename(self, catalog):
        plan = Select(
            Rename(scan_objects(), (("color", "paint"),)),
            ColumnLiteral("paint", LiteralOid("red")))
        optimized = push_selections(plan)
        assert isinstance(optimized, Rename)
        assert len(execute(optimized, catalog, use_optimizer=False)) == 2

    def test_join_reorder_preserves_results(self, catalog):
        plan = NaturalJoin(NaturalJoin(scan_objects(), scan_extents()),
                           scan_objects())
        raw = execute(plan, catalog, use_optimizer=False)
        opt = execute(plan, catalog, use_optimizer=True)
        assert sorted(map(str, raw)) == sorted(map(str, opt))

    def test_explain_renders_tree(self, catalog):
        plan = Select(NaturalJoin(scan_objects(), scan_extents()),
                      ColumnLiteral("color", LiteralOid("red")))
        text = plan.explain()
        assert "Scan(objects)" in text
        assert "NaturalJoin" in text

"""Property tests: shard-parallel ≡ shard-serial ≡ unsharded, byte for
byte, across random partitionings — including under degrade-to-partial
budgets, with the cache off, with the numeric prefilter off, and under
a FaultPlan (which must keep the probe phase serial).

Shard-pair probes spend no guard budget (only stats counters), so
probing surviving pairs concurrently in pool workers cannot perturb
where a budget trips: the merged candidate list sorts into the same
global nested-loop order, and every unit of spend happens downstream
in the exact phase.  These properties pin that invariant.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.cst_object import CSTObject
from repro.model.oid import LiteralOid
from repro.runtime import parallel
from repro.runtime.cache import caching
from repro.runtime.context import ExecutionStats, QueryContext
from repro.runtime.faults import FaultPlan
from repro.runtime.guard import ExecutionGuard
from repro.sqlc import index
from repro.sqlc.algebra import (
    CstPredicate,
    IndexJoin,
    Scan,
    ShardedIndexJoin,
)
from repro.sqlc.engine import execute
from repro.sqlc.relation import ConstraintRelation
from repro.sqlc.shard import ShardedConstraintRelation
from repro.workloads.random_constraints import (
    make_variables,
    scattered_boxes,
)

import pytest


@pytest.fixture(autouse=True)
def _fresh_state():
    index.reset_stats()
    index.clear_index_cache()
    parallel.reset_stats()
    yield


def _sat_intersection(a, b):
    return a.cst.intersect(b.cst).is_satisfiable()


def _predicate():
    return CstPredicate(
        ("e", "f"), _sat_intersection, "SAT",
        (("e", index.cst_cell_box), ("f", index.cst_cell_box)))


def _rows(count, seed, spread, size=10):
    vars_ = make_variables(1)
    return [(LiteralOid(i), CSTObject(vars_, c))
            for i, c in enumerate(
                scattered_boxes(count, seed=seed, spread=spread,
                                size=size))]


def _catalogs(seed, shards, partition_by, n_left=14, n_right=12,
              spread=60):
    left_rows = _rows(n_left, seed, spread)
    right_rows = _rows(n_right, seed + 7919, spread)
    plain = {
        "L": ConstraintRelation("L", ("lid", "e"), left_rows),
        "R": ConstraintRelation("R", ("rid", "f"), right_rows),
    }
    sharded = {
        "L": ShardedConstraintRelation(
            "L", ("lid", "e"), left_rows, shards=shards,
            partition_by="e" if partition_by else None),
        "R": ShardedConstraintRelation(
            "R", ("rid", "f"), right_rows, shards=shards,
            partition_by="f" if partition_by else None),
    }
    return plain, sharded


def _plain_plan():
    return IndexJoin(Scan("L", ("lid", "e")), Scan("R", ("rid", "f")),
                     "e", "f", index.cst_cell_box,
                     index.cst_cell_box, _predicate())


def _sharded_plan(workers=None):
    return ShardedIndexJoin(
        Scan("L", ("lid", "e")), Scan("R", ("rid", "f")),
        "e", "f", index.cst_cell_box, index.cst_cell_box,
        _predicate(), workers=workers)


def _same_relation(a, b):
    assert a.columns == b.columns
    assert [tuple(map(repr, row)) for row in a] \
        == [tuple(map(repr, row)) for row in b]


class TestShardParallelEquivalence:
    """Hypothesis sweep: whatever the partitioning, the three
    execution layouts agree byte for byte.  The equivalence asserts
    hold whether or not the pool actually dispatched (no fork → the
    concurrent path falls back serial with the same merge), so none of
    these need gating."""

    @given(seed=st.integers(min_value=0, max_value=10_000),
           shards=st.integers(min_value=2, max_value=7),
           partition_by=st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_three_way_agreement(self, seed, shards, partition_by):
        plain, sharded = _catalogs(seed, shards, partition_by)
        baseline = execute(_plain_plan(), plain, use_optimizer=False)
        serial = execute(_sharded_plan(), sharded,
                         use_optimizer=False)
        fanned = execute(_sharded_plan(workers=3), sharded,
                         use_optimizer=False)
        _same_relation(baseline, serial)
        _same_relation(serial, fanned)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           shards=st.integers(min_value=2, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_agreement_without_cache(self, seed, shards):
        plain, sharded = _catalogs(seed, shards, True)
        with caching(None):
            baseline = execute(_plain_plan(), plain,
                               use_optimizer=False)
            fanned = execute(_sharded_plan(workers=3), sharded,
                             use_optimizer=False)
        _same_relation(baseline, fanned)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           shards=st.integers(min_value=2, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_agreement_with_numeric_off(self, seed, shards):
        plain, sharded = _catalogs(seed, shards, True)
        baseline = execute(_plain_plan(), plain, use_optimizer=False,
                           ctx=QueryContext(numeric=False))
        fanned = execute(_sharded_plan(workers=3), sharded,
                         use_optimizer=False,
                         ctx=QueryContext(numeric=False))
        _same_relation(baseline, fanned)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           shards=st.integers(min_value=2, max_value=4))
    @settings(max_examples=5, deadline=None)
    def test_degrade_to_partial_agreement(self, seed, shards):
        # A budget tight enough to trip mid-join: probes spend no
        # budget, so serial and concurrent probing leave the exact
        # phase identical spend headroom — identical partial rows.
        plain, sharded = _catalogs(seed, shards, True)
        with caching(None):
            baseline = execute(
                _plain_plan(), plain, use_optimizer=False,
                guard=ExecutionGuard(max_pivots=60,
                                     on_exhaustion="degrade"))
            fanned = execute(
                _sharded_plan(workers=3), sharded,
                use_optimizer=False,
                guard=ExecutionGuard(max_pivots=60,
                                     on_exhaustion="degrade"))
        _same_relation(baseline, fanned)


class TestShardParallelGates:
    def test_fault_plan_keeps_probes_serial(self):
        plain, sharded = _catalogs(11, 3, True)
        faults_a = ExecutionGuard(faults=FaultPlan())
        faults_b = ExecutionGuard(faults=FaultPlan())
        stats = ExecutionStats()
        baseline = execute(_plain_plan(), plain, use_optimizer=False,
                           guard=faults_a)
        fanned = execute(_sharded_plan(workers=3), sharded,
                         use_optimizer=False, guard=faults_b,
                         stats=stats)
        _same_relation(baseline, fanned)
        assert stats.shard_pairs_parallel == 0
        assert parallel.stats()["scatters"] == 0

    def test_parallel_probe_stats_surface(self):
        _, sharded = _catalogs(12, 4, True)
        serial_stats = ExecutionStats()
        serial = execute(_sharded_plan(), sharded,
                         use_optimizer=False, stats=serial_stats)
        assert serial_stats.shard_pairs_parallel == 0
        fanned_stats = ExecutionStats()
        fanned = execute(_sharded_plan(workers=3), sharded,
                         use_optimizer=False, stats=fanned_stats)
        _same_relation(serial, fanned)
        if parallel.stats()["scatters"]:
            # The pool really ran: every surviving pair probed in a
            # worker, and the probe work merged back into the account.
            assert fanned_stats.shard_pairs_parallel \
                == fanned_stats.shard_pairs_probed > 0
            assert fanned_stats.index_probes \
                == serial_stats.index_probes
        else:  # no fork / unpicklable: serial fallback, still correct
            assert fanned_stats.shard_pairs_parallel == 0

"""Batch-evaluation layer: kernel-backed filters must be row-for-row
identical to the row-wise evaluator, preserve ``And`` semantics and
error behaviour, surface numeric counters through the engine, and
merge them across parallel workers."""

import pytest

from repro.constraints import matrix
from repro.constraints.cst_object import CSTObject
from repro.constraints.satisfiability import is_satisfiable
from repro.model.oid import LiteralOid
from repro.runtime import numeric, parallel
from repro.runtime.cache import caching
from repro.runtime.context import ExecutionStats, QueryContext
from repro.sqlc import batch, index
from repro.sqlc.algebra import (
    And,
    ColumnLiteral,
    CstPredicate,
    IndexJoin,
    NaturalJoin,
    Scan,
    Select,
)
from repro.sqlc.engine import execute
from repro.sqlc.relation import ConstraintRelation
from repro.workloads.random_constraints import (
    make_variables,
    overlapping_polytopes,
)

VARS = make_variables(2)


def _relation(name="T", count=24, seed=5):
    cons = overlapping_polytopes(count, 2, 6, seed=seed,
                                 spread=80, size=50)
    return ConstraintRelation(name, ("rid", "c"), [
        (LiteralOid(i), CSTObject(VARS, c))
        for i, c in enumerate(cons)])


def _cell_sat(cell):
    return cell.cst.is_satisfiable()


def _cell_predicate():
    return CstPredicate(("c",), _cell_sat, "SAT", (),
                        matrix.cell_constraint)


def _pair_catalog(n=14, seed=2):
    lefts = overlapping_polytopes(n, 2, 6, seed=seed,
                                  spread=80, size=50)
    rights = overlapping_polytopes(n, 2, 6, seed=seed + 99,
                                   spread=80, size=50)
    return {
        "L": ConstraintRelation("L", ("lid", "e"), [
            (LiteralOid(i), CSTObject(VARS, c))
            for i, c in enumerate(lefts)]),
        "R": ConstraintRelation("R", ("rid", "f"), [
            (LiteralOid(i), CSTObject(VARS, c))
            for i, c in enumerate(rights)]),
    }


def _sat_intersection(a, b):
    return is_satisfiable(a.cst.constraint.conjoin(b.cst.constraint))


def _conjoined(a, b):
    return a.cst.constraint.conjoin(b.cst.constraint)


def _pair_predicate():
    return CstPredicate(
        ("e", "f"), _sat_intersection, "SAT",
        (("e", index.cst_cell_box), ("f", index.cst_cell_box)),
        _conjoined)


def _same_relation(a, b):
    assert a.columns == b.columns
    assert list(map(repr, a)) == list(map(repr, b))


class TestFilterEquivalence:
    def test_select_rows_identical_numeric_on_and_off(self):
        catalog = {"T": _relation()}
        plan = Select(Scan("T", ("rid", "c")), _cell_predicate())
        with caching(None):
            with numeric.numeric_mode(False):
                baseline = execute(plan, catalog, use_optimizer=False)
            with numeric.numeric_mode(True):
                fast = execute(plan, catalog, use_optimizer=False)
        _same_relation(baseline, fast)

    def test_join_rows_identical_numeric_on_and_off(self):
        catalog = _pair_catalog()
        plan = Select(NaturalJoin(Scan("L", ("lid", "e")),
                                  Scan("R", ("rid", "f"))),
                      _pair_predicate())
        with caching(None):
            with numeric.numeric_mode(False):
                baseline = execute(plan, catalog, use_optimizer=False)
            with numeric.numeric_mode(True):
                fast = execute(plan, catalog, use_optimizer=False)
        _same_relation(baseline, fast)

    def test_index_join_rows_identical_numeric_on_and_off(self):
        catalog = _pair_catalog(seed=4)
        plan = IndexJoin(Scan("L", ("lid", "e")),
                         Scan("R", ("rid", "f")),
                         "e", "f", index.cst_cell_box,
                         index.cst_cell_box, _pair_predicate())
        with caching(None):
            index.clear_index_cache()
            with numeric.numeric_mode(False):
                baseline = execute(plan, catalog, use_optimizer=False)
            index.clear_index_cache()
            with numeric.numeric_mode(True):
                fast = execute(plan, catalog, use_optimizer=False)
        _same_relation(baseline, fast)

    def test_and_pre_and_post_parts_preserved(self):
        relation = _relation()
        keep_id = relation.column_index("rid")
        some_rid = list(relation)[3][keep_id]
        predicate = And((ColumnLiteral("rid", some_rid),
                         _cell_predicate()))
        plan = Select(Scan("T", ("rid", "c")), predicate)
        catalog = {"T": relation}
        with caching(None):
            with numeric.numeric_mode(False):
                baseline = execute(plan, catalog, use_optimizer=False)
            with numeric.numeric_mode(True):
                fast = execute(plan, catalog, use_optimizer=False)
        _same_relation(baseline, fast)
        # ... and with the constraint conjunct first.
        flipped = And((_cell_predicate(),
                       ColumnLiteral("rid", some_rid)))
        plan = Select(Scan("T", ("rid", "c")), flipped)
        with caching(None), numeric.numeric_mode(True):
            fast = execute(plan, catalog, use_optimizer=False)
        _same_relation(baseline, fast)

    def test_small_inputs_delegate_to_row_wise(self):
        relation = _relation(count=4)
        ctx = QueryContext(stats=ExecutionStats(), cache=None)
        rows = list(relation)
        kept = batch.filter_rows(relation.columns, rows,
                                 _cell_predicate(), ctx=ctx,
                                 relation=relation)
        assert kept == [r for r in rows
                        if _cell_predicate()(dict(zip(relation.columns,
                                                      r)))]
        assert ctx.stats.numeric_accepts == 0  # below MIN_BATCH

    @pytest.mark.skipif(not numeric.numeric_available(),
                        reason="batch fallback booking needs the fast extra")
    def test_failing_extractor_falls_back_to_exact_test(self):
        relation = _relation()

        def broken(cell):
            raise RuntimeError("no extraction")

        predicate = CstPredicate(("c",), _cell_sat, "SAT", (), broken)
        ctx = QueryContext(stats=ExecutionStats(), cache=None)
        rows = list(relation)
        kept = batch.filter_rows(relation.columns, rows, predicate,
                                 ctx=ctx)
        reference = [r for r in rows
                     if _cell_sat(r[relation.column_index("c")])]
        assert kept == reference
        assert ctx.stats.numeric_fallbacks == len(rows)

    def test_erroring_rows_still_raise(self):
        relation = ConstraintRelation("T", ("rid", "c"), [
            (LiteralOid(0), LiteralOid("not a cst"))])
        rows = list(relation) * 10   # above MIN_BATCH
        with pytest.raises(AttributeError):
            batch.filter_rows(
                relation.columns, rows, _cell_predicate(),
                ctx=QueryContext(stats=ExecutionStats(), cache=None))


class TestStatsSurfacing:
    @pytest.mark.skipif(not numeric.numeric_available(),
                        reason="counters only move with the fast extra")
    def test_engine_surfaces_numeric_counters(self):
        catalog = {"T": _relation()}
        plan = Select(Scan("T", ("rid", "c")), _cell_predicate())
        stats = ExecutionStats()
        with caching(None):
            execute(plan, catalog, use_optimizer=False, stats=stats)
        decided = stats.numeric_accepts + stats.numeric_rejects
        assert decided + stats.numeric_fallbacks == len(catalog["T"])
        assert decided > 0

    def test_numeric_off_under_fault_injection(self):
        from repro.runtime.faults import FaultPlan
        from repro.runtime.guard import ExecutionGuard
        guard = ExecutionGuard(faults=FaultPlan())
        ctx = QueryContext(stats=ExecutionStats(), guard=guard)
        assert not ctx.numeric_active()

    @pytest.mark.skipif(not numeric.numeric_available(),
                        reason="counters only move with the fast extra")
    def test_parallel_matches_serial_and_merges_counters(self):
        catalog = {"T": _relation(count=80, seed=8)}
        plan = Select(Scan("T", ("rid", "c")), _cell_predicate())
        serial_stats = ExecutionStats()
        with caching(None):
            serial = execute(plan, catalog, use_optimizer=False,
                             stats=serial_stats)
        parallel_stats = ExecutionStats()
        with caching(None), parallel.parallelism(2):
            fanned = execute(plan, catalog, use_optimizer=False,
                             stats=parallel_stats)
        _same_relation(serial, fanned)
        total = (parallel_stats.numeric_accepts
                 + parallel_stats.numeric_rejects
                 + parallel_stats.numeric_fallbacks)
        assert total == len(catalog["T"])

"""Unit tests for the on-disk framing: headers, records, checksums,
and the total-ness of ``scan_records`` under arbitrary damage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StoreCorruptError
from repro.storage import format as fmt


def _records(n):
    return [{"op": "add_row", "relation": "r", "row": [i]}
            for i in range(n)]


def _log_bytes(records):
    return b"".join(fmt.encode_record(r) for r in records)


class TestSnapshotFraming:
    def test_round_trip(self):
        payload = fmt.canonical_json({"hello": [1, 2, 3]})
        blob = fmt.pack_snapshot(7, b"f" * 16, payload)
        generation, fingerprint, decoded = fmt.read_snapshot(blob)
        assert generation == 7
        assert fingerprint == b"f" * 16
        assert decoded == {"hello": [1, 2, 3]}

    def test_header_truncation(self):
        blob = fmt.pack_snapshot(1, b"\0" * 16, b"{}")
        with pytest.raises(StoreCorruptError, match="header"):
            fmt.read_snapshot(blob[:10])

    def test_payload_truncation(self):
        blob = fmt.pack_snapshot(1, b"\0" * 16,
                                 fmt.canonical_json({"k": 1}))
        with pytest.raises(StoreCorruptError, match="truncated"):
            fmt.read_snapshot(blob[:-3])

    def test_bad_magic(self):
        blob = b"EVIL" + fmt.pack_snapshot(1, b"\0" * 16, b"{}")[4:]
        with pytest.raises(StoreCorruptError, match="magic"):
            fmt.read_snapshot(blob)

    def test_bit_flip_fails_checksum(self):
        payload = fmt.canonical_json({"value": 12345})
        blob = bytearray(fmt.pack_snapshot(1, b"\0" * 16, payload))
        blob[fmt.SNAPSHOT_HEADER_SIZE + 4] ^= 0x40
        with pytest.raises(StoreCorruptError, match="checksum"):
            fmt.read_snapshot(bytes(blob))

    def test_version_gate(self):
        blob = bytearray(fmt.pack_snapshot(1, b"\0" * 16, b"{}"))
        blob[4] = 0xFF  # format version low byte
        with pytest.raises(StoreCorruptError, match="version"):
            fmt.read_snapshot(bytes(blob))


class TestWalHeader:
    def test_round_trip(self):
        data = fmt.pack_wal_header(3, b"s" * 16)
        assert fmt.read_wal_header(data) == (3, b"s" * 16)

    def test_truncated(self):
        data = fmt.pack_wal_header(3, b"s" * 16)
        with pytest.raises(StoreCorruptError, match="header"):
            fmt.read_wal_header(data[:5])


class TestScanRecords:
    def test_clean_log(self):
        records = _records(5)
        scanned, tail, end = fmt.scan_records(_log_bytes(records))
        assert scanned == records
        assert tail == fmt.TAIL_CLEAN
        assert end == len(_log_bytes(records))

    def test_empty_is_clean(self):
        assert fmt.scan_records(b"") == ([], fmt.TAIL_CLEAN, 0)

    def test_torn_tail_at_every_byte(self):
        """Truncation at ANY byte boundary yields a valid record
        prefix and never raises — the crash-at-every-byte guarantee
        at the framing layer."""
        records = _records(4)
        data = _log_bytes(records)
        boundaries = [end for _start, end
                      in fmt.iter_record_offsets(data)]
        for cut in range(len(data) + 1):
            scanned, tail, end = fmt.scan_records(data[:cut])
            assert scanned == records[:len(scanned)]
            complete = sum(1 for b in boundaries if b <= cut)
            assert len(scanned) == complete
            if cut in (0, *boundaries):
                assert tail == fmt.TAIL_CLEAN
            else:
                assert tail == fmt.TAIL_TORN
            assert end <= cut

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=120, deadline=None)
    def test_bit_flip_never_crashes(self, position, bit):
        """A single flipped bit anywhere classifies as a shorter valid
        prefix plus a corrupt (or torn) tail — never an exception,
        never a wrong record accepted silently."""
        records = _records(6)
        data = bytearray(_log_bytes(records))
        position %= len(data)
        data[position] ^= 1 << bit
        scanned, tail, _end = fmt.scan_records(bytes(data))
        boundaries = [0] + [end for _s, end
                            in fmt.iter_record_offsets(_log_bytes(records))]
        damaged_index = max(i for i, b in enumerate(boundaries)
                            if b <= position)
        assert len(scanned) <= len(records)
        # Records strictly before the damaged one always survive ...
        assert scanned[:damaged_index] == records[:damaged_index]
        # ... and a record is only ever reported verbatim.
        assert all(r in records for r in scanned)

    def test_absurd_length_is_corrupt_not_alloc(self):
        prefix = fmt._RECORD_PREFIX.pack(2**31, 0)
        scanned, tail, end = fmt.scan_records(prefix + b"x" * 50)
        assert scanned == []
        assert tail == fmt.TAIL_CORRUPT
        assert end == 0

    def test_offset_skips_header(self):
        header = fmt.pack_wal_header(1, b"\0" * 16)
        records = _records(2)
        data = header + _log_bytes(records)
        scanned, tail, _ = fmt.scan_records(
            data, offset=fmt.WAL_HEADER_SIZE)
        assert scanned == records
        assert tail == fmt.TAIL_CLEAN


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        a = fmt.canonical_json({"b": 1, "a": 2})
        b = fmt.canonical_json({"a": 2, "b": 1})
        assert a == b

    def test_fingerprint_tracks_schema(self):
        from repro.model.schema import AttributeDef, Schema
        one, two = Schema(), Schema()
        assert fmt.schema_fingerprint(one) == fmt.schema_fingerprint(two)
        two.define("Extra", attributes=[AttributeDef("n", "real")])
        assert fmt.schema_fingerprint(one) != fmt.schema_fingerprint(two)

"""Unit tests for the write-ahead log appender: durability policies,
fault-injected writes/fsyncs, and broken-log semantics."""

import pytest

from repro.errors import StoreError, StoreWriteError
from repro.runtime.faults import FaultPlan
from repro.storage import format as fmt
from repro.storage.wal import StorageIO, WriteAheadLog, read_wal

FP = b"\x01" * 16


def make_wal(tmp_path, *, durability="always", faults=None,
             batch_size=64):
    io = StorageIO(faults)
    wal = WriteAheadLog(str(tmp_path / "wal-000001.log"),
                        generation=1, fingerprint=FP, io=io,
                        durability=durability, batch_size=batch_size)
    return wal, io


class TestAppendAndRead:
    def test_round_trip(self, tmp_path):
        wal, _io = make_wal(tmp_path)
        for i in range(5):
            wal.append({"op": "n", "i": i})
        wal.close()
        generation, fingerprint, records, tail, _end = \
            read_wal(str(tmp_path / "wal-000001.log"))
        assert generation == 1
        assert fingerprint == FP
        assert records == [{"op": "n", "i": i} for i in range(5)]
        assert tail == fmt.TAIL_CLEAN

    def test_create_refuses_existing_file(self, tmp_path):
        make_wal(tmp_path)[0].close()
        with pytest.raises(OSError):
            make_wal(tmp_path)

    def test_reopen_appends(self, tmp_path):
        wal, io = make_wal(tmp_path)
        wal.append({"i": 0})
        wal.close()
        wal2 = WriteAheadLog(str(tmp_path / "wal-000001.log"),
                             generation=1, fingerprint=FP, io=io,
                             durability="always", create=False)
        wal2.append({"i": 1})
        wal2.close()
        _g, _f, records, tail, _e = \
            read_wal(str(tmp_path / "wal-000001.log"))
        assert records == [{"i": 0}, {"i": 1}]
        assert tail == fmt.TAIL_CLEAN


class TestDurabilityPolicies:
    def test_always_syncs_every_append(self, tmp_path):
        wal, io = make_wal(tmp_path, durability="always")
        baseline = io.fsyncs
        for i in range(3):
            wal.append({"i": i})
            assert wal.synced_records == i + 1
        assert io.fsyncs == baseline + 3

    def test_batch_syncs_on_threshold_and_flush(self, tmp_path):
        wal, io = make_wal(tmp_path, durability="batch", batch_size=3)
        wal.append({"i": 0})
        wal.append({"i": 1})
        assert wal.synced_records == 0
        wal.append({"i": 2})       # hits the batch threshold
        assert wal.synced_records == 3
        wal.append({"i": 3})
        wal.flush()
        assert wal.synced_records == 4

    def test_off_never_fsyncs(self, tmp_path):
        wal, io = make_wal(tmp_path, durability="off")
        for i in range(5):
            wal.append({"i": i})
        wal.flush()
        wal.close()
        assert io.fsyncs == 0

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="durability"):
            make_wal(tmp_path, durability="sometimes")


class TestInjectedFaults:
    def test_failed_write_breaks_log(self, tmp_path):
        # Write 1 is the WAL header; fail the second append.
        wal, _io = make_wal(tmp_path,
                            faults=FaultPlan(fail_write_at=3))
        wal.append({"i": 0})
        with pytest.raises(StoreWriteError, match="write"):
            wal.append({"i": 1})
        assert wal.broken
        with pytest.raises(StoreError, match="broken"):
            wal.append({"i": 2})
        with pytest.raises(StoreError, match="broken"):
            wal.flush()
        wal.close()
        _g, _f, records, tail, _e = \
            read_wal(str(tmp_path / "wal-000001.log"))
        assert records == [{"i": 0}]
        assert tail == fmt.TAIL_CLEAN  # nothing of the failed write landed

    def test_torn_write_leaves_partial_record(self, tmp_path):
        wal, _io = make_wal(
            tmp_path,
            faults=FaultPlan(torn_write_at=3, torn_write_bytes=5))
        wal.append({"i": 0})
        with pytest.raises(StoreWriteError, match="torn"):
            wal.append({"i": 1})
        wal.close()
        _g, _f, records, tail, end = \
            read_wal(str(tmp_path / "wal-000001.log"))
        assert records == [{"i": 0}]
        assert tail == fmt.TAIL_TORN
        # valid_end names the truncation point before the torn bytes.
        path = tmp_path / "wal-000001.log"
        assert end < path.stat().st_size

    def test_fsync_failure_counts_as_unsynced(self, tmp_path):
        wal, _io = make_wal(tmp_path,
                            faults=FaultPlan(fail_fsync_at=2))
        with pytest.raises(StoreWriteError, match="fsync"):
            wal.append({"i": 0})
        assert wal.broken
        assert wal.synced_records == 0

    def test_disk_full_admits_prefix(self, tmp_path):
        header = fmt.WAL_HEADER_SIZE
        wal, io = make_wal(
            tmp_path,
            faults=FaultPlan(disk_full_after_bytes=header + 10))
        with pytest.raises(StoreWriteError, match="disk full"):
            wal.append({"i": 0})
        assert io.bytes_written == header + 10
        wal.close()
        _g, _f, records, tail, _e = \
            read_wal(str(tmp_path / "wal-000001.log"))
        assert records == []
        assert tail == fmt.TAIL_TORN

    def test_io_counters_shared_across_files(self, tmp_path):
        io = StorageIO(None)
        one = WriteAheadLog(str(tmp_path / "wal-000001.log"),
                            generation=1, fingerprint=FP, io=io,
                            durability="off")
        two = WriteAheadLog(str(tmp_path / "wal-000002.log"),
                            generation=2, fingerprint=FP, io=io,
                            durability="off")
        one.append({})
        two.append({})
        assert io.writes == 4  # two headers + two records
        one.close()
        two.close()

"""Incremental maintenance equivalence: box indexes and packed
coefficient matrices brought current by *extension* after appends must
be indistinguishable from ones rebuilt from scratch — including after
a crash and recovery, where the store replays the rows and the
rebuilt structures must match the incrementally maintained ones."""

from fractions import Fraction

import pytest

from repro.constraints import matrix as matrix_mod
from repro.constraints.parser import parse_cst
from repro.runtime.context import QueryContext
from repro.sqlc import index as index_mod
from repro.sqlc.relation import ConstraintRelation
from repro.storage import Store


def box_cst(x0, x1, y0, y1):
    return parse_cst(
        f"((x,y) | {x0} <= x <= {x1} and {y0} <= y <= {y1})")


def fresh_relation(n=3):
    rel = ConstraintRelation("boxes", ("e",))
    for i in range(n):
        rel.add_row((box_cst(i, i + 2, 0, 1 + i),))
    return rel


def assert_indexes_equal(left, right):
    assert left.n_rows == right.n_rows
    assert left.boxes == right.boxes
    assert left.nonempty == right.nonempty
    assert set(left.bounded) == set(right.bounded)
    for var in left.bounded:
        assert left.bounded[var] == right.bounded[var]
        assert sorted(left.unbounded[var]) == sorted(right.unbounded[var])


def _system_key(system):
    if system is None:
        return None
    return (tuple(v.name for v in system.variables),
            tuple(map(tuple, system.rows)),
            tuple(system.rhs), tuple(system.kinds),
            tuple(system.scales))


def unit_key(unit):
    if unit is None:
        return None
    return tuple(_system_key(s) for s in unit)


def matrix_keys(matrix, relation):
    cell_index = relation.column_index(matrix.column)
    return [unit_key(matrix.unit_for(row[cell_index]))
            for row in relation]


@pytest.fixture(autouse=True)
def _reset_counters():
    index_mod.reset_stats()
    matrix_mod.clear_matrix_cache()
    yield
    index_mod.reset_stats()
    matrix_mod.clear_matrix_cache()


class TestIncrementalBoxIndex:
    def test_extended_equals_rebuilt_over_interleaved_appends(self):
        rel = fresh_relation(2)
        ctx = QueryContext()
        first = index_mod.index_for(rel, "e", index_mod.cst_cell_box,
                                    ctx=ctx)
        for round_no in range(1, 5):
            rel.add_row((box_cst(round_no * 3, round_no * 3 + 1,
                                 -round_no, round_no),))
            current = index_mod.index_for(
                rel, "e", index_mod.cst_cell_box, ctx=ctx)
            rebuilt = index_mod.BoxIndex(rel, "e",
                                         index_mod.cst_cell_box)
            assert_indexes_equal(current, rebuilt)
        stats = index_mod.stats()
        assert stats["builds"] == 1
        assert stats["extends"] == 4
        assert ctx.stats.index_builds == 1
        assert ctx.stats.index_extends == 4
        # The original index never moved: copy-on-extend froze it.
        assert first.n_rows == 2

    def test_multi_row_append_extends_once(self):
        rel = fresh_relation(3)
        index_mod.index_for(rel, "e", index_mod.cst_cell_box)
        for i in range(5):
            rel.add_row((box_cst(i, i + 1, i, i + 1),))
        current = index_mod.index_for(rel, "e",
                                      index_mod.cst_cell_box)
        assert current.n_rows == 8
        assert index_mod.stats()["extends"] == 1
        assert_indexes_equal(
            current,
            index_mod.BoxIndex(rel, "e", index_mod.cst_cell_box))

    def test_unbounded_and_empty_appends_extend_correctly(self):
        rel = fresh_relation(2)
        index_mod.index_for(rel, "e", index_mod.cst_cell_box)
        # A half-space (unbounded in y), then an empty cell.
        rel.add_row((parse_cst("((x,y) | x >= 5)"),))
        rel.add_row((parse_cst("((x,y) | x >= 1 and x <= 0)"),))
        current = index_mod.index_for(rel, "e",
                                      index_mod.cst_cell_box)
        assert_indexes_equal(
            current,
            index_mod.BoxIndex(rel, "e", index_mod.cst_cell_box))

    def test_version_gap_without_appends_rebuilds(self):
        """A version delta that does not match the row delta (not a
        pure append) must fall back to a full rebuild, never extend."""
        rel = fresh_relation(3)
        index_mod.index_for(rel, "e", index_mod.cst_cell_box)
        rel._version += 1  # simulate an in-place, non-append mutation
        index_mod.index_for(rel, "e", index_mod.cst_cell_box)
        stats = index_mod.stats()
        assert stats["builds"] == 2
        assert stats["extends"] == 0


class TestIncrementalMatrix:
    def test_extend_is_in_place_and_equals_rebuild(self):
        rel = fresh_relation(2)
        first = matrix_mod.matrix_for(rel, "e")
        rel.add_row((box_cst(7, 9, Fraction(1, 3), 4),))
        second = matrix_mod.matrix_for(rel, "e")
        assert second is first  # in-place extension, same object
        assert second.n_rows == 3
        rebuilt = matrix_mod.RelationMatrix(rel, "e")
        assert matrix_keys(second, rel) == matrix_keys(rebuilt, rel)

    def test_same_version_is_cache_hit(self):
        rel = fresh_relation(2)
        first = matrix_mod.matrix_for(rel, "e")
        assert matrix_mod.matrix_for(rel, "e") is first
        assert first.n_rows == 2


class TestMaintenanceThroughStore:
    def test_recovered_relation_rebuild_equals_incremental(
            self, tmp_path):
        """Rows appended through a live store keep the index current by
        extension; after crash recovery the replayed relation's rebuilt
        index must equal the incrementally maintained one."""
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        store.create_relation("boxes", ("e",))
        rel = store.relation("boxes")
        for i in range(3):
            rel.add_row((box_cst(i, i + 2, 0, i + 1),))
        index_mod.index_for(rel, "e", index_mod.cst_cell_box)
        matrix = matrix_mod.matrix_for(rel, "e")
        for i in range(3, 6):
            rel.add_row((box_cst(i, i + 2, 0, i + 1),))
        incremental = index_mod.index_for(rel, "e",
                                          index_mod.cst_cell_box)
        matrix = matrix_mod.matrix_for(rel, "e")
        assert index_mod.stats()["extends"] >= 1
        store.close()

        with Store.open(path) as reopened:
            recovered = reopened.relation("boxes")
            assert len(recovered) == 6
            rebuilt = index_mod.BoxIndex(recovered, "e",
                                         index_mod.cst_cell_box)
            assert_indexes_equal(incremental, rebuilt)
            rebuilt_matrix = matrix_mod.RelationMatrix(recovered, "e")
            assert matrix_keys(matrix, rel) \
                == matrix_keys(rebuilt_matrix, recovered)

    def test_store_loaded_relation_supports_incremental_appends(
            self, tmp_path):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        store.create_relation("boxes", ("e",))
        rel = store.relation("boxes")
        rel.add_row((box_cst(0, 1, 0, 1),))
        store.close()
        with Store.open(path) as reopened:
            rel = reopened.relation("boxes")
            index_mod.index_for(rel, "e", index_mod.cst_cell_box)
            rel.add_row((box_cst(2, 3, 2, 3),))
            current = index_mod.index_for(rel, "e",
                                          index_mod.cst_cell_box)
            assert current.n_rows == 2
            assert index_mod.stats()["extends"] == 1
            assert_indexes_equal(
                current,
                index_mod.BoxIndex(rel, "e", index_mod.cst_cell_box))

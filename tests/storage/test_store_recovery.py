"""Crash-recovery property tests for the durable store.

The invariant everything here checks: *whatever* the crash point —
every record boundary, every byte inside a record, a failed or torn
write, a crash mid-snapshot-rotation — reopening the store yields the
state after some prefix of the mutation history, with every record
acknowledged as fsync'd still present, and never an unhandled
exception.
"""

import os
import shutil

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.parser import parse_cst
from repro.errors import StoreCorruptError, StoreError, StoreWriteError
from repro.model.database import Database
from repro.model.schema import AttributeDef, CSTSpec, ClassDef, Schema
from repro.model.serialize import dump_database, dump_oid
from repro.runtime.faults import FaultPlan
from repro.sqlc.relation import ConstraintRelation
from repro.storage import CLEAN, RECOVERED, UNRECOVERABLE, Store
from repro.storage import format as fmt

CST_A = "((x,y) | 0 <= x <= 4 and 1 <= y <= 3)"
CST_B = "((x,y) | x + y <= 10 and x >= -2)"

#: The mutation script.  Each op maps to EXACTLY one WAL record, so
#: "prefix of the history" and "prefix of the log" coincide.
OPS = [
    ("add_class",),
    ("add_object", "i1", {"name": "a"}),
    ("add_object", "i2", {"ext": CST_A}),
    ("create_relation", "R", ("a", "b")),
    ("add_row", "R", ("i1", CST_A)),
    ("update", "i1", "name", "b"),
    ("add_object", "i3", {"name": "c", "ext": CST_B}),
    ("add_row", "R", ("i3", CST_B)),
    ("remove", "i3"),
    ("add_object", "i4", {"name": "d"}),
]


def _item_class():
    return ClassDef(name="Item", attributes={
        "name": AttributeDef("name", "string"),
        "ext": AttributeDef("ext", CSTSpec(("x", "y"))),
    })


def _coerce(values):
    return {k: parse_cst(v) if k == "ext" else v
            for k, v in values.items()}


def apply_op(op, db, create_relation, add_row):
    kind = op[0]
    if kind == "add_class":
        db.schema.add_class(_item_class())
    elif kind == "add_object":
        db.add_object(op[1], "Item", _coerce(op[2]))
    elif kind == "create_relation":
        create_relation(op[1], op[2])
    elif kind == "add_row":
        add_row(op[1], (op[2][0], parse_cst(op[2][1])))
    elif kind == "update":
        db.update_attribute(
            next(o.oid for o in db.objects() if str(o.oid) == op[1]),
            op[2], op[3])
    elif kind == "remove":
        db.remove_object(
            next(o.oid for o in db.objects() if str(o.oid) == op[1]))
    else:  # pragma: no cover - script bug
        raise AssertionError(kind)


def run_ops_on_store(store, ops):
    for op in ops:
        apply_op(op, store.db, store.create_relation,
                 lambda name, row: store.relation(name).add_row(row))


def plain_state(k):
    """The in-memory state after the first ``k`` ops, no store."""
    db = Database(Schema())
    relations = {}

    def create_relation(name, columns):
        relations[name] = ConstraintRelation(name, columns)

    for op in OPS[:k]:
        apply_op(op, db, create_relation,
                 lambda name, row: relations[name].add_row(row))
    return db, relations


def fingerprint(db, relations):
    return fmt.canonical_json({
        "db": dump_database(db),
        "rels": {name: [[dump_oid(c) for c in row] for row in rel]
                 for name, rel in sorted(relations.items())},
    })


_PREFIXES = None


def prefix_fingerprints():
    global _PREFIXES
    if _PREFIXES is None:
        _PREFIXES = [fingerprint(*plain_state(k))
                     for k in range(len(OPS) + 1)]
    return _PREFIXES


def recovered_prefix(store):
    """Which prefix of the history the store's state equals; fails the
    test if it matches none (a torn state leaked through)."""
    fp = fingerprint(store.db, store.relations)
    prefixes = prefix_fingerprints()
    assert fp in prefixes, "recovered state matches no history prefix"
    return prefixes.index(fp)


def wal_file(directory):
    names = sorted(n for n in os.listdir(directory)
                   if n.startswith("wal-"))
    assert names, f"no WAL in {directory}"
    return os.path.join(directory, names[-1])


class TestCleanRoundTrip:
    def test_full_history_round_trips(self, tmp_path):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        run_ops_on_store(store, OPS)
        store.close()
        with Store.open(path) as reopened:
            assert reopened.report.state == CLEAN
            assert recovered_prefix(reopened) == len(OPS)

    def test_snapshot_compacts_and_round_trips(self, tmp_path):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        run_ops_on_store(store, OPS[:5])
        assert store.snapshot() == 2
        run_ops_on_store(store, OPS[5:])
        store.close()
        with Store.open(path) as reopened:
            assert reopened.report.state == CLEAN
            assert reopened.generation == 2
            assert recovered_prefix(reopened) == len(OPS)

    def test_verify_is_read_only(self, tmp_path):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        run_ops_on_store(store, OPS)
        store.close()
        before = sorted((p.name, p.stat().st_size)
                        for p in (tmp_path / "store").iterdir())
        report = Store.verify(path)
        assert report.state == CLEAN
        after = sorted((p.name, p.stat().st_size)
                       for p in (tmp_path / "store").iterdir())
        assert before == after


class TestCrashAtEveryRecord:
    """Fail or tear the write of record n, for every n: recovery must
    land exactly on the n-1 prefix, keeping every fsync'd record."""

    @pytest.mark.parametrize("n", range(1, len(OPS) + 1))
    def test_failed_write_of_record_n(self, tmp_path, n):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        store.io.faults = FaultPlan(fail_write_at=store.io.writes + n)
        with pytest.raises(StoreWriteError):
            run_ops_on_store(store, OPS)
        synced = store.synced_records
        assert synced == n - 1
        # The store is broken: further mutations are refused even
        # though the in-memory database would accept them.
        with pytest.raises(StoreError, match="broken"):
            store.db.add_object("late", "Item", {"name": "z"})
        store.close()
        with Store.open(path) as reopened:
            # A write that never reached the file leaves a clean log.
            assert reopened.report.state == CLEAN
            assert recovered_prefix(reopened) == n - 1
            assert reopened.report.records_applied >= synced

    @pytest.mark.parametrize("n", range(1, len(OPS) + 1))
    @pytest.mark.parametrize("torn_bytes", [1, 6])
    def test_torn_write_of_record_n(self, tmp_path, n, torn_bytes):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        store.io.faults = FaultPlan(
            torn_write_at=store.io.writes + n,
            torn_write_bytes=torn_bytes)
        with pytest.raises(StoreWriteError):
            run_ops_on_store(store, OPS)
        store.close()
        with Store.open(path) as reopened:
            assert reopened.report.state == RECOVERED  # torn tail
            assert recovered_prefix(reopened) == n - 1
        # The repair truncated the tail: a second open is clean.
        with Store.open(path) as again:
            assert again.report.state == CLEAN
            assert recovered_prefix(again) == n - 1

    def test_fsync_failure_is_a_crash_point_too(self, tmp_path):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        store.io.faults = FaultPlan(fail_fsync_at=store.io.fsyncs + 3)
        with pytest.raises(StoreWriteError, match="fsync"):
            run_ops_on_store(store, OPS)
        assert store.synced_records == 2
        store.close()
        with Store.open(path) as reopened:
            # The record's bytes DID land; only the acknowledgment
            # failed.  Recovery may keep it: prefix 2 or 3, never less.
            assert recovered_prefix(reopened) in (2, 3)


class TestCrashAtEveryByte:
    """Truncate the WAL at every byte offset: recovery always yields
    exactly the complete records before the cut."""

    @pytest.fixture(scope="class")
    def clean_store(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("bytes")
        path = str(root / "store")
        store = Store.create(path, durability="always")
        run_ops_on_store(store, OPS)
        store.close()
        return path

    def test_truncate_everywhere(self, clean_store, tmp_path):
        data = open(wal_file(clean_store), "rb").read()
        boundaries = [fmt.WAL_HEADER_SIZE] + [
            end for _start, end in fmt.iter_record_offsets(
                data, offset=fmt.WAL_HEADER_SIZE)]
        for cut in range(fmt.WAL_HEADER_SIZE, len(data)):
            work = str(tmp_path / f"cut{cut}")
            shutil.copytree(clean_store, work)
            with open(wal_file(work), "r+b") as handle:
                handle.truncate(cut)
            with Store.open(work) as store:
                expected = sum(1 for b in boundaries if b <= cut) - 1
                assert recovered_prefix(store) == expected
                if cut in boundaries:
                    assert store.report.state == CLEAN
                else:
                    assert store.report.state == RECOVERED
            shutil.rmtree(work)

    @given(st.integers(min_value=0, max_value=1_000_000),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_bit_flip_anywhere_yields_a_prefix(self, clean_store,
                                               tmp_path_factory,
                                               position, bit):
        work = str(tmp_path_factory.mktemp("flip") / "store")
        shutil.copytree(clean_store, work)
        victim = wal_file(work)
        data = bytearray(open(victim, "rb").read())
        position %= len(data)
        data[position] ^= 1 << bit
        with open(victim, "wb") as handle:
            handle.write(bytes(data))

        report = Store.verify(work)
        assert report.state in (CLEAN, RECOVERED)
        with Store.open(work) as store:
            prefix = recovered_prefix(store)
        if position < fmt.WAL_HEADER_SIZE:
            # Header damage invalidates the whole log, never more.
            assert prefix == 0
            assert report.state == RECOVERED
        else:
            # Exactly the records before the damaged one survive.
            ends = [end for _start, end in fmt.iter_record_offsets(
                open(wal_file(clean_store), "rb").read(),
                offset=fmt.WAL_HEADER_SIZE)]
            damaged = sum(1 for end in ends if end <= position)
            assert prefix == damaged
            assert report.state == RECOVERED
        shutil.rmtree(work)


class TestRotationCrashWindows:
    """Crash inside snapshot(): every write of the rotation sequence
    (snapshot blob, new WAL header, CURRENT flip) is a crash point.
    The store turns broken — appending to the old WAL past the new
    snapshot would break the chain — and reopening lands on the exact
    pre-rotation state."""

    @pytest.mark.parametrize("w", [1, 2, 3])
    def test_crash_mid_rotation(self, tmp_path, w):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        run_ops_on_store(store, OPS[:5])
        store.io.faults = FaultPlan(fail_write_at=store.io.writes + w)
        with pytest.raises(StoreWriteError):
            store.snapshot()
        store.io.faults = None
        assert store.broken
        with pytest.raises(StoreError, match="broken"):
            run_ops_on_store(store, OPS[5:6])
        store.close()
        with Store.open(path) as reopened:
            assert recovered_prefix(reopened) == 5
        # Recovery repaired to a stable generation: open again, still 5.
        with Store.open(path) as again:
            assert recovered_prefix(again) == 5
            again.snapshot()  # and rotation works again after repair
        with Store.open(path) as final:
            assert recovered_prefix(final) == 5

    def test_fsync_crash_mid_rotation(self, tmp_path):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        run_ops_on_store(store, OPS[:5])
        store.io.faults = FaultPlan(fail_fsync_at=store.io.fsyncs + 1)
        with pytest.raises(StoreWriteError, match="fsync"):
            store.snapshot()
        store.close()
        with Store.open(path) as reopened:
            assert recovered_prefix(reopened) == 5


class TestChainedGenerations:
    def test_corrupt_newest_snapshot_falls_back_across_wals(
            self, tmp_path):
        """Snapshot n dies; snapshot n-1 + wal n-1 + wal n still reach
        the exact latest state."""
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        run_ops_on_store(store, OPS[:5])
        store.snapshot()
        run_ops_on_store(store, OPS[5:])
        store.close()
        snap2 = tmp_path / "store" / "snapshot-000002.lyrc"
        blob = bytearray(snap2.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        snap2.write_bytes(bytes(blob))
        with Store.open(path) as reopened:
            assert reopened.report.state == RECOVERED
            assert any("falling back" in w
                       for w in reopened.report.warnings)
            assert recovered_prefix(reopened) == len(OPS)

    def test_missing_current_scans_for_newest(self, tmp_path):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        run_ops_on_store(store, OPS)
        store.close()
        (tmp_path / "store" / "CURRENT").unlink()
        with Store.open(path) as reopened:
            assert reopened.report.state == RECOVERED
            assert any("CURRENT" in w for w in reopened.report.warnings)
            assert recovered_prefix(reopened) == len(OPS)

    def test_all_snapshots_dead_is_unrecoverable(self, tmp_path):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        run_ops_on_store(store, OPS)
        store.close()
        for p in (tmp_path / "store").iterdir():
            if p.name.startswith("snapshot-"):
                p.write_bytes(b"nothing left")
        assert Store.verify(path).state == UNRECOVERABLE
        with pytest.raises(StoreCorruptError):
            Store.open(path)

    def test_retention_prunes_old_generations(self, tmp_path):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="batch", retain=2)
        run_ops_on_store(store, OPS[:3])
        for _ in range(3):
            store.snapshot()
        store.close()
        names = {p.name for p in (tmp_path / "store").iterdir()}
        assert "snapshot-000001.lyrc" not in names
        assert "snapshot-000003.lyrc" in names
        assert "snapshot-000004.lyrc" in names
        with Store.open(path) as reopened:
            assert recovered_prefix(reopened) == 3


class TestReadonlyAndBrokenSemantics:
    def test_readonly_refuses_mutation(self, tmp_path):
        path = str(tmp_path / "store")
        Store.create(path, durability="off").close()
        store = Store.open(path, readonly=True)
        with pytest.raises(StoreError, match="read-only"):
            store.db.schema.add_class(_item_class())
        with pytest.raises(StoreError, match="read-only"):
            store.snapshot()
        store.close()

    def test_adopted_relation_rows_are_logged(self, tmp_path):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="always")
        rel = ConstraintRelation("pre", ("c",),
                                 [(parse_cst(CST_A),)])
        store.add_relation(rel)
        rel.add_row((parse_cst(CST_B),))
        store.close()
        with Store.open(path) as reopened:
            assert len(reopened.relation("pre")) == 2

    def test_duplicate_relation_name_refused(self, tmp_path):
        path = str(tmp_path / "store")
        store = Store.create(path, durability="off")
        store.create_relation("R", ("a",))
        with pytest.raises(StoreError, match="already exists"):
            store.create_relation("R", ("b",))
        store.close()

    def test_create_refuses_existing_store(self, tmp_path):
        path = str(tmp_path / "store")
        Store.create(path).close()
        with pytest.raises(StoreError, match="already contains"):
            Store.create(path)

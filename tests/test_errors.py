"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    def test_single_root(self):
        leaves = [
            errors.ConstraintFamilyError, errors.NonLinearError,
            errors.InfeasibleError, errors.UnboundedError,
            errors.ConstraintSyntaxError, errors.DimensionError,
            errors.SchemaError, errors.UnknownClassError,
            errors.UnknownAttributeError, errors.IntegrityError,
            errors.UnknownObjectError, errors.LyricSyntaxError,
            errors.SemanticError, errors.EvaluationError,
        ]
        for leaf in leaves:
            assert issubclass(leaf, errors.ReproError)

    def test_layer_bases(self):
        assert issubclass(errors.ConstraintFamilyError,
                          errors.ConstraintError)
        assert issubclass(errors.UnknownClassError, errors.SchemaError)
        assert issubclass(errors.LyricSyntaxError, errors.QueryError)

    def test_catch_all_from_query(self):
        """A single except clause suffices for any library failure."""
        from repro import lyric
        from repro.model.office import build_office_database
        db, _ = build_office_database()
        for bad in ("SELECT", "SELECT X FROM Ghost X",
                    "SELECT ((u) | u <= D.color) FROM Drawer D"):
            with pytest.raises(errors.ReproError):
                lyric.query(db, bad)

    def test_lyric_syntax_error_location(self):
        exc = errors.LyricSyntaxError("boom", line=3, column=7)
        assert "line 3" in str(exc)
        assert "column 7" in str(exc)
        assert exc.line == 3

    def test_lyric_syntax_error_without_location(self):
        exc = errors.LyricSyntaxError("boom")
        assert str(exc) == "boom"

"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    def test_single_root(self):
        leaves = [
            errors.ConstraintFamilyError, errors.NonLinearError,
            errors.InfeasibleError, errors.UnboundedError,
            errors.ConstraintSyntaxError, errors.DimensionError,
            errors.SchemaError, errors.UnknownClassError,
            errors.UnknownAttributeError, errors.IntegrityError,
            errors.UnknownObjectError, errors.LyricSyntaxError,
            errors.SemanticError, errors.EvaluationError,
        ]
        for leaf in leaves:
            assert issubclass(leaf, errors.ReproError)

    def test_layer_bases(self):
        assert issubclass(errors.ConstraintFamilyError,
                          errors.ConstraintError)
        assert issubclass(errors.UnknownClassError, errors.SchemaError)
        assert issubclass(errors.LyricSyntaxError, errors.QueryError)

    def test_catch_all_from_query(self):
        """A single except clause suffices for any library failure."""
        from repro import lyric
        from repro.model.office import build_office_database
        db, _ = build_office_database()
        for bad in ("SELECT", "SELECT X FROM Ghost X",
                    "SELECT ((u) | u <= D.color) FROM Drawer D"):
            with pytest.raises(errors.ReproError):
                lyric.query(db, bad)

    def test_lyric_syntax_error_location(self):
        exc = errors.LyricSyntaxError("boom", line=3, column=7)
        assert "line 3" in str(exc)
        assert "column 7" in str(exc)
        assert exc.line == 3

    def test_lyric_syntax_error_without_location(self):
        exc = errors.LyricSyntaxError("boom")
        assert str(exc) == "boom"

    def test_resource_exhausted_subtree(self):
        for leaf in (errors.DeadlineExceeded, errors.PivotBudgetExceeded,
                     errors.BranchBudgetExceeded,
                     errors.DisjunctBudgetExceeded,
                     errors.CanonicalizationBudgetExceeded,
                     errors.QueryCancelled):
            assert issubclass(leaf, errors.ResourceExhausted)
            assert issubclass(leaf, errors.ReproError)
        assert issubclass(errors.ReservedVariableError,
                          errors.ConstraintError)
        assert issubclass(errors.InjectedFaultError,
                          errors.ConstraintError)


class TestAdversarialInputs:
    """Hostile inputs surface as documented ReproError subclasses —
    never as a bare RecursionError / ZeroDivisionError / KeyError."""

    def test_deeply_nested_query_is_syntax_error(self):
        from repro.core.parser import parse_query
        text = ("SELECT X FROM Desk X WHERE "
                + "not (" * 3000 + "X.color = 'red'" + ")" * 3000)
        with pytest.raises(errors.LyricSyntaxError):
            parse_query(text)

    def test_deeply_nested_constraint_is_syntax_error(self):
        from repro.constraints.parser import parse_constraint
        text = "(" * 4000 + "x <= 1" + ")" * 4000
        with pytest.raises(errors.ConstraintSyntaxError):
            parse_constraint(text)

    def test_deeply_nested_cst_is_syntax_error(self):
        from repro.constraints.parser import parse_cst
        text = "((x) | " + "(" * 4000 + "x <= 1" + ")" * 4000 + ")"
        with pytest.raises(errors.ConstraintSyntaxError):
            parse_cst(text)

    def test_wrong_dimension_cst_object(self):
        from repro.constraints import geometry
        from repro.constraints.parser import parse_cst
        with pytest.raises(errors.DimensionError):
            geometry.box(["x", "y"], [(0, 1)])  # 2 vars, 1 bound pair
        square = parse_cst("((x,y) | 0 <= x <= 1 and 0 <= y <= 1)")
        with pytest.raises(errors.DimensionError):
            square.contains_point(1)  # needs two coordinates
        from repro.constraints.terms import variables
        x, y, z = variables("x y z")
        cube = parse_cst("((x,y,z) | x = 0 and y = 0 and z = 0)")
        with pytest.raises(errors.DimensionError):
            geometry.vertices_2d(cube.constraint, (x, y, z))

    def test_unbounded_lp(self):
        from repro.constraints import lp
        from repro.constraints.atoms import Le
        from repro.constraints.terms import variables
        (x,) = variables("x")
        with pytest.raises(errors.UnboundedError):
            lp.max_value(x, Le(-x, 0))  # x >= 0, maximize x

    def test_infeasible_lp(self):
        from repro.constraints import lp
        from repro.constraints.atoms import Le
        from repro.constraints.conjunctive import ConjunctiveConstraint
        from repro.constraints.terms import variables
        (x,) = variables("x")
        system = ConjunctiveConstraint.of(Le(x, 0), Le(-x, -1))
        with pytest.raises(errors.InfeasibleError):
            lp.max_value(x, system)

    def test_epsilon_collision_is_reserved_variable_error(self):
        from repro.constraints.atoms import Lt
        from repro.constraints.conjunctive import ConjunctiveConstraint
        from repro.constraints.terms import Variable
        conj = ConjunctiveConstraint.of(Lt(Variable("__eps__"), 1))
        with pytest.raises(errors.ReservedVariableError):
            conj.is_satisfiable()
        # And it is catchable as the library-wide base class.
        with pytest.raises(errors.ReproError):
            conj.sample_point()

"""Shim for legacy (non-PEP-517) editable installs.

The offline environment has setuptools but no wheel package, so
``pip install -e . --no-use-pep517 --no-build-isolation`` is the
supported install path; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""The paper's running example: the office-design schema (Figure 1) and
database instance (Figure 2 / the ``my_desk`` table in Section 3.2).

This module is both documentation and a reusable test fixture: the
golden tests of experiments E1-E6 are phrased against exactly this
database.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.parser import parse_cst
from repro.model.database import Database
from repro.model.oid import SymbolicOid
from repro.model.schema import AttributeDef, CSTSpec, Schema


def build_office_schema() -> Schema:
    """The Figure 1 schema (two-dimensional world, as in the paper)."""
    schema = Schema()
    schema.ensure_cst_class(2)

    schema.define(
        "Office_Object",
        interface=("x", "y"),
        attributes=[
            AttributeDef("cat_number", "string"),
            AttributeDef("name", "string"),
            AttributeDef("color", "string"),
            AttributeDef("extent", CSTSpec(["w", "z"])),
            AttributeDef("translation",
                         CSTSpec(["w", "z", "x", "y", "u", "v"])),
        ])

    schema.define(
        "Object_in_Room",
        attributes=[
            AttributeDef("inv_number", "string"),
            AttributeDef("location", CSTSpec(["x", "y"])),
            AttributeDef("catalog_object", "Office_Object",
                         interface_args=("x", "y")),
        ])

    schema.define(
        "Drawer",
        interface=("x", "y"),
        attributes=[
            AttributeDef("color", "string"),
            AttributeDef("extent", CSTSpec(["w", "z"])),
            AttributeDef("translation",
                         CSTSpec(["w", "z", "x", "y", "u", "v"])),
        ])

    schema.define(
        "Desk",
        parents=("Office_Object",),
        attributes=[
            AttributeDef("drawer_center", CSTSpec(["p", "q"])),
            AttributeDef("drawer", "Drawer", interface_args=("p", "q")),
        ])

    schema.define(
        "File_Cabinet",
        parents=("Office_Object",),
        attributes=[
            AttributeDef("drawer_center", CSTSpec(["p1", "q1"]),
                         set_valued=True),
            AttributeDef("drawer", "Drawer", interface_args=("p1", "q1")),
        ])

    # The Region class of the Section 4.1 view example: a user subclass
    # of CST(2) whose instances are constraint objects with a name.
    schema.define(
        "Region",
        parents=("CST(2)",),
        cst_dimension=2,
        attributes=[AttributeDef("region_name", "string")])

    return schema


@dataclass(frozen=True)
class OfficeOids:
    """Named oids of the paper instance, for readable tests."""

    my_desk: SymbolicOid
    standard_desk: SymbolicOid
    standard_drawer: SymbolicOid


def build_office_database(schema: Schema | None = None
                          ) -> tuple[Database, OfficeOids]:
    """The Figure 2 instance: ``my_desk`` at (6,4) with its catalog
    object ``standard desk`` and that desk's drawer.

    Every constraint below is verbatim from the paper's instance table.
    """
    db = Database(schema or build_office_schema())

    drawer = db.add_object("standard_drawer", "Drawer", {
        "color": "red",
        "extent": parse_cst("((w,z) | -1 <= w <= 1 and -1 <= z <= 1)"),
        "translation": parse_cst(
            "((w,z,x,y,u,v) | u = x + w and v = y + z)"),
    })

    desk = db.add_object("standard_desk", "Desk", {
        "cat_number": "CAT-17",
        "name": "standard desk",
        "color": "red",
        "extent": parse_cst("((w,z) | -4 <= w <= 4 and -2 <= z <= 2)"),
        "translation": parse_cst(
            "((w,z,x,y,u,v) | u = x + w and v = y + z)"),
        "drawer_center": parse_cst("((p,q) | p = -2 and -2 <= q <= 0)"),
        "drawer": drawer.oid,
    })

    my_desk = db.add_object("my_desk", "Object_in_Room", {
        "inv_number": "22-354",
        "location": parse_cst("((x,y) | x = 6 and y = 4)"),
        "catalog_object": desk.oid,
    })

    db.validate()
    return db, OfficeOids(
        my_desk=my_desk.oid,
        standard_desk=desk.oid,
        standard_drawer=drawer.oid,
    )


def add_file_cabinet(db: Database, name: str = "standard_cabinet",
                     location: tuple[int, int] = (2, 8)) -> SymbolicOid:
    """Add a file cabinet (exercising set-valued drawer_center) plus an
    Object_in_Room placing it; returns the cabinet's oid."""
    drawer = db.add_object(f"{name}_drawer", "Drawer", {
        "color": "grey",
        "extent": parse_cst(
            "((w,z) | -1/2 <= w <= 1/2 and -1 <= z <= 1)"),
        "translation": parse_cst(
            "((w,z,x,y,u,v) | u = x + w and v = y + z)"),
    })
    cabinet = db.add_object(name, "File_Cabinet", {
        "cat_number": "CAT-29",
        "name": "standard cabinet",
        "color": "grey",
        "extent": parse_cst("((w,z) | -1 <= w <= 1 and -2 <= z <= 2)"),
        "translation": parse_cst(
            "((w,z,x,y,u,v) | u = x + w and v = y + z)"),
        "drawer_center": [
            parse_cst("((p1,q1) | p1 = 0 and 0 <= q1 <= 1)"),
            parse_cst("((p1,q1) | p1 = 0 and -2 <= q1 <= -1)"),
        ],
        "drawer": drawer.oid,
    })
    lx, ly = location
    db.add_object(f"{name}_in_room", "Object_in_Room", {
        "inv_number": "22-901",
        "location": parse_cst(f"((x,y) | x = {lx} and y = {ly})"),
        "catalog_object": cabinet.oid,
    })
    db.validate()
    return cabinet.oid


def add_regions(db: Database) -> list:
    """Populate the Region class (for the Section 4.1 view example):
    the four quarters of a 20 x 10 room."""
    quarters = [
        ("left_lower", "0 <= x <= 10 and 0 <= y <= 5"),
        ("left_upper", "0 <= x <= 10 and 5 <= y <= 10"),
        ("right_lower", "10 <= x <= 20 and 0 <= y <= 5"),
        ("right_upper", "10 <= x <= 20 and 5 <= y <= 10"),
    ]
    oids = []
    for name, body in quarters:
        obj = db.add_cst_instance(
            "Region", parse_cst(f"((x,y) | {body})"),
            {"region_name": name})
        oids.append(obj.oid)
    db.validate()
    return oids

"""Flattening an object database into flat constraint relations.

Section 5 of the paper: "the definition of a database in LyriC as a
general structure means that it is essentially a collection of flat
relations.  These represent the extent of classes and the mapping used
to represent attributes."  We materialize:

* one unary *extent* relation per class — ``class:Name(oid)`` — holding
  the full extent (subclass instances included), and
* one binary *attribute* relation per attribute name —
  ``attr:name(oid, value)`` — with set-valued attributes unnested to one
  row per member.

Together these are the catalog the Section 5 translation runs against.
"""

from __future__ import annotations

from repro.model.database import Database
from repro.model.schema import BUILTIN_CLASSES
from repro.sqlc.relation import ConstraintRelation

EXTENT_PREFIX = "class:"
ATTRIBUTE_PREFIX = "attr:"


def extent_relation_name(class_name: str) -> str:
    return EXTENT_PREFIX + class_name


def attribute_relation_name(attribute: str) -> str:
    return ATTRIBUTE_PREFIX + attribute


def flatten(db: Database,
            shards: int = 0) -> dict[str, ConstraintRelation]:
    """The flat-relation encoding of the database.

    With ``shards >= 2`` every *attribute* relation is materialized as
    a :class:`~repro.sqlc.shard.ShardedConstraintRelation`
    range-partitioned on its ``value`` column — the CST-bearing column
    scatter-gather joins prune on.  Extent relations stay monolithic
    (they are unary oid lists with no geometry to partition).  Row
    content and order are identical either way.
    """
    catalog: dict[str, ConstraintRelation] = {}

    for class_name in db.schema.class_names:
        if class_name in BUILTIN_CLASSES:
            continue
        name = extent_relation_name(class_name)
        rel = ConstraintRelation(name, ("oid",))
        rel.add_rows([(oid,) for oid in db.extent(class_name)])
        catalog[name] = rel

    attribute_rows: dict[str, list] = {}
    for obj in db.objects():
        for attr_name in obj.attribute_names:
            rows = attribute_rows.setdefault(attr_name, [])
            for value in obj.values(attr_name):
                rows.append((obj.oid, value))
    for attr_name, rows in attribute_rows.items():
        name = attribute_relation_name(attr_name)
        if shards >= 2:
            from repro.sqlc.shard import ShardedConstraintRelation
            rel = ShardedConstraintRelation(
                name, ("oid", "value"), rows,
                shards=shards, partition_by="value")
        else:
            rel = ConstraintRelation(name, ("oid", "value"), rows)
        catalog[name] = rel
    return catalog

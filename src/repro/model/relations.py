"""Flattening an object database into flat constraint relations.

Section 5 of the paper: "the definition of a database in LyriC as a
general structure means that it is essentially a collection of flat
relations.  These represent the extent of classes and the mapping used
to represent attributes."  We materialize:

* one unary *extent* relation per class — ``class:Name(oid)`` — holding
  the full extent (subclass instances included), and
* one binary *attribute* relation per attribute name —
  ``attr:name(oid, value)`` — with set-valued attributes unnested to one
  row per member.

Together these are the catalog the Section 5 translation runs against.
"""

from __future__ import annotations

from repro.model.database import Database
from repro.model.schema import BUILTIN_CLASSES
from repro.sqlc.relation import ConstraintRelation

EXTENT_PREFIX = "class:"
ATTRIBUTE_PREFIX = "attr:"


def extent_relation_name(class_name: str) -> str:
    return EXTENT_PREFIX + class_name


def attribute_relation_name(attribute: str) -> str:
    return ATTRIBUTE_PREFIX + attribute


def flatten(db: Database) -> dict[str, ConstraintRelation]:
    """The flat-relation encoding of the database."""
    catalog: dict[str, ConstraintRelation] = {}

    for class_name in db.schema.class_names:
        if class_name in BUILTIN_CLASSES:
            continue
        name = extent_relation_name(class_name)
        rel = ConstraintRelation(name, ("oid",))
        for oid in db.extent(class_name):
            rel.add_row((oid,))
        catalog[name] = rel

    attribute_rows: dict[str, list] = {}
    for obj in db.objects():
        for attr_name in obj.attribute_names:
            rows = attribute_rows.setdefault(attr_name, [])
            for value in obj.values(attr_name):
                rows.append((obj.oid, value))
    for attr_name, rows in attribute_rows.items():
        name = attribute_relation_name(attr_name)
        rel = ConstraintRelation(name, ("oid", "value"))
        for row in rows:
            rel.add_row(row)
        catalog[name] = rel
    return catalog

"""The object-oriented data model with constraint objects (Sections 2-3).

Logical oids (including constraints-as-oids), schemas with IS-A,
CST variable schemas and class interfaces, the object store, path
expressions, and the flat-relation encoding used by the Section 5
translation.
"""

from repro.model.database import Database, DBObject
from repro.model.oid import (
    AttributeNameOid,
    ClassNameOid,
    CstOid,
    FunctionalOid,
    LiteralOid,
    Oid,
    SymbolicOid,
    as_oid,
    oid,
)
from repro.model.paths import PathExpression, Step, VarRef, enumerate_paths, path_values
from repro.model.relations import flatten
from repro.model.schema import (
    AttributeDef,
    CSTSpec,
    ClassDef,
    MethodDef,
    Schema,
    cst_class_name,
)
from repro.model.serialize import (
    dump_database,
    load_database,
    read_database,
    save_database,
)

__all__ = [
    "AttributeDef",
    "AttributeNameOid",
    "CSTSpec",
    "ClassDef",
    "ClassNameOid",
    "CstOid",
    "Database",
    "DBObject",
    "FunctionalOid",
    "LiteralOid",
    "MethodDef",
    "Oid",
    "PathExpression",
    "Schema",
    "Step",
    "SymbolicOid",
    "VarRef",
    "as_oid",
    "cst_class_name",
    "dump_database",
    "enumerate_paths",
    "flatten",
    "load_database",
    "oid",
    "path_values",
    "read_database",
    "save_database",
]

"""Serialization of schemas and databases to JSON-able dictionaries.

A practical necessity for an open-source release: constraint databases
must survive a round trip to disk.  CST values serialize through the
textual projection notation (the same concrete syntax users write), so
dumps are human-readable and diff-able; oids serialize as tagged
terms.

    from repro.model.serialize import dump_database, load_database
    payload = dump_database(db)          # plain dicts/lists/strings
    clone = load_database(payload)       # a fresh, validated Database
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

from repro.constraints.parser import parse_cst
from repro.errors import ModelError
from repro.model.database import Database
from repro.model.oid import (
    AttributeNameOid,
    ClassNameOid,
    CstOid,
    FunctionalOid,
    LiteralOid,
    Oid,
    SymbolicOid,
)
from repro.model.schema import (
    AttributeDef,
    BUILTIN_CLASSES,
    CSTSpec,
    ClassDef,
    Schema,
)

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Oids
# ---------------------------------------------------------------------------


def dump_oid(oid: Oid) -> Any:
    """Oid -> JSON-able tagged value."""
    if isinstance(oid, SymbolicOid):
        return {"t": "sym", "v": oid.name}
    if isinstance(oid, LiteralOid):
        value = oid.value
        if isinstance(value, Fraction):
            return {"t": "num", "v": str(value)}
        return {"t": "str", "v": value}
    if isinstance(oid, CstOid):
        return {"t": "cst", "v": oid.cst.oid_text()}
    if isinstance(oid, FunctionalOid):
        return {"t": "fn", "f": oid.function,
                "a": [dump_oid(a) for a in oid.args]}
    if isinstance(oid, AttributeNameOid):
        return {"t": "attr", "v": oid.name}
    if isinstance(oid, ClassNameOid):
        return {"t": "class", "v": oid.name}
    raise ModelError(f"cannot serialize oid {oid!r}")


def load_oid(payload: Any) -> Oid:
    tag = payload.get("t")
    if tag == "sym":
        return SymbolicOid(payload["v"])
    if tag == "num":
        return LiteralOid(Fraction(payload["v"]))
    if tag == "str":
        return LiteralOid(payload["v"])
    if tag == "cst":
        return CstOid(parse_cst(payload["v"]))
    if tag == "fn":
        return FunctionalOid(payload["f"],
                             [load_oid(a) for a in payload["a"]])
    if tag == "attr":
        return AttributeNameOid(payload["v"])
    if tag == "class":
        return ClassNameOid(payload["v"])
    raise ModelError(f"unknown oid tag {tag!r}")


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------


def dump_class_def(cls: ClassDef) -> dict:
    """One class definition as a JSON-able dict (methods are code and
    do not serialize; a loaded class re-attaches them via
    :meth:`Schema.add_method`)."""
    return {
        "name": cls.name,
        "parents": list(cls.parents),
        "interface": [v.name for v in cls.interface],
        "cst_dimension": cls.cst_dimension,
        "attributes": [_dump_attribute(a)
                       for a in cls.attributes.values()],
    }


def load_class_def(payload: dict) -> ClassDef:
    return ClassDef(
        name=payload["name"],
        parents=tuple(payload["parents"]),
        interface=tuple(payload["interface"]),
        attributes={a["name"]: _load_attribute(a)
                    for a in payload["attributes"]},
        cst_dimension=payload.get("cst_dimension"))


def dump_schema(schema: Schema) -> dict:
    classes = []
    cst_dimensions = []
    for name in schema.class_names:
        if name in BUILTIN_CLASSES:
            continue
        cls = schema.class_def(name)
        if name.startswith("CST(") and name.endswith(")"):
            # Built-in CST classes are recorded by dimension only.
            cst_dimensions.append(cls.cst_dimension)
            continue
        classes.append(dump_class_def(cls))
    return {"version": FORMAT_VERSION, "classes": classes,
            "cst_classes": cst_dimensions}


def _dump_attribute(attr: AttributeDef) -> dict:
    out: dict = {"name": attr.name, "set_valued": attr.set_valued}
    if attr.is_cst:
        out["cst"] = list(attr.target.names)
    else:
        out["target"] = attr.target
        if attr.interface_args is not None:
            out["interface_args"] = [v.name
                                     for v in attr.interface_args]
    return out


def load_schema(payload: dict) -> Schema:
    if payload.get("version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported schema format version "
            f"{payload.get('version')!r}")
    schema = Schema()
    for dimension in payload.get("cst_classes", ()):
        schema.ensure_cst_class(dimension)
    # CST base classes may also appear only as parents (CST(n)).
    for cls in payload["classes"]:
        for parent in cls["parents"]:
            if parent.startswith("CST(") and parent.endswith(")"):
                schema.ensure_cst_class(int(parent[4:-1]))
    for cls in payload["classes"]:
        schema.add_class(load_class_def(cls))
    schema.validate()
    return schema


def _load_attribute(payload: dict) -> AttributeDef:
    if "cst" in payload:
        return AttributeDef(payload["name"], CSTSpec(payload["cst"]),
                            set_valued=payload["set_valued"])
    # ``is not None``, not truthiness: an *empty* renaming ``()`` is a
    # meaningful value (the target class declares no interface) and
    # must survive the round trip distinct from "no renaming".
    interface_args = payload.get("interface_args")
    return AttributeDef(
        payload["name"], payload["target"],
        set_valued=payload["set_valued"],
        interface_args=tuple(interface_args)
        if interface_args is not None else None)


# ---------------------------------------------------------------------------
# Database
# ---------------------------------------------------------------------------


def dump_value(raw: Any) -> Any:
    """One stored attribute value: a tagged set for set-valued
    attributes, a plain oid payload otherwise."""
    if isinstance(raw, frozenset):
        return {"set": [dump_oid(v) for v in sorted(raw, key=str)]}
    return dump_oid(raw)


def load_value(raw: Any) -> Any:
    """Inverse of :func:`dump_value`; set values load as lists, which
    :meth:`DBObject.set` coerces back to frozensets."""
    if isinstance(raw, dict) and "set" in raw:
        return [load_oid(v) for v in raw["set"]]
    return load_oid(raw)


def dump_object(obj: Any) -> dict:
    """One stored object (oid, class, attribute values) as a
    JSON-able dict — the snapshot *and* WAL representation."""
    return {
        "oid": dump_oid(obj.oid),
        "class": obj.class_name,
        "values": {name: dump_value(obj.get(name))
                   for name in obj.attribute_names},
    }


def load_object_into(db: Database, payload: dict) -> None:
    """Add a :func:`dump_object` payload to ``db``."""
    db.add_object(load_oid(payload["oid"]), payload["class"],
                  {name: load_value(raw)
                   for name, raw in payload["values"].items()})


def dump_database(db: Database) -> dict:
    return {
        "version": FORMAT_VERSION,
        "schema": dump_schema(db.schema),
        "objects": [dump_object(obj) for obj in db.objects()],
    }


def load_database(payload: dict) -> Database:
    if payload.get("version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported database format version "
            f"{payload.get('version')!r}")
    schema = load_schema(payload["schema"])
    db = Database(schema)
    for obj in payload["objects"]:
        load_object_into(db, obj)
    db.validate()
    return db


def save_database(db: Database, path: str) -> None:
    """Write the database as JSON to ``path``."""
    import json
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dump_database(db), handle, indent=1)


def read_database(path: str) -> Database:
    """Load a database previously written by :func:`save_database`."""
    import json
    with open(path, encoding="utf-8") as handle:
        return load_database(json.load(handle))

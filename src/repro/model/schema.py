"""Database schemas: classes, IS-A, attributes, CST variable schemas and
class interfaces.

This is the data-model half of Sections 2-3 of the paper:

* classes organize objects; the IS-A relation is acyclic and instances
  of a class belong to all its superclasses;
* attributes are scalar or set-valued (names ending in ``*`` in
  Figure 1) and range over classes or over CST variable schemas
  (``extent : CST(w,z)``);
* a class whose CST attributes may be constrained from outside declares
  an *interface* — a list of variables attached to its name, e.g.
  ``Drawer(x,y)``;
* an attribute ranging over such a class may *rename* the interface
  with actual parameters (``drawer : (p,q)``), inducing the implicit
  equality constraints of Section 4.1;
* CST classes ``CST(n)`` hold constraint objects of dimension ``n``;
  user classes (the ``Region`` example) may subclass them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.constraints.terms import Variable
from repro.errors import SchemaError, UnknownAttributeError, UnknownClassError

#: Built-in value classes.  Literal oids are instances of these.
BUILTIN_CLASSES = ("string", "real", "integer", "boolean")


def cst_class_name(dimension: int) -> str:
    """Name of the built-in CST class of a given dimension."""
    return f"CST({dimension})"


@dataclass(frozen=True)
class CSTSpec:
    """The variable schema of a CST attribute: ``CST(w,z)``."""

    variables: tuple[Variable, ...]

    def __init__(self, variables: Iterable[Variable | str]):
        resolved = tuple(
            v if isinstance(v, Variable) else Variable(v)
            for v in variables)
        if len({v.name for v in resolved}) != len(resolved):
            raise SchemaError(
                f"duplicate variables in CST schema {resolved}")
        object.__setattr__(self, "variables", resolved)

    @property
    def dimension(self) -> int:
        return len(self.variables)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variables)

    def __str__(self) -> str:
        return f"CST({','.join(self.names)})"


@dataclass(frozen=True)
class AttributeDef:
    """One attribute of a class.

    ``target`` is a class name (composition edge) or a :class:`CSTSpec`
    (constraint-valued attribute).  ``interface_args`` optionally
    renames the target class's interface — the paper's
    ``drawer : (p,q)`` notation, stored as the variables ``(p, q)``.
    """

    name: str
    target: str | CSTSpec
    set_valued: bool = False
    interface_args: tuple[Variable, ...] | None = None

    def __post_init__(self):
        if not self.name:
            raise SchemaError("attribute needs a name")
        if self.interface_args is not None:
            if isinstance(self.target, CSTSpec):
                raise SchemaError(
                    f"attribute {self.name!r}: interface renaming applies "
                    "to class-valued attributes only")
            object.__setattr__(
                self, "interface_args",
                tuple(v if isinstance(v, Variable) else Variable(v)
                      for v in self.interface_args))

    @property
    def is_cst(self) -> bool:
        return isinstance(self.target, CSTSpec)

    def __str__(self) -> str:
        star = "*" if self.set_valued else ""
        if self.is_cst:
            return f"{self.name}{star} : {self.target}"
        rename = ""
        if self.interface_args:
            rename = f"({','.join(v.name for v in self.interface_args)})"
        return f"{self.name}{star} : {self.target}{rename}"


@dataclass(frozen=True)
class MethodDef:
    """A stored method (Section 2.1: "a method, invoked in the scope of
    an object on a tuple of arguments, returns an answer").

    Path expressions invoke 0-ary methods exactly like attributes ("an
    attribute is regarded as a 0-ary method"); the implementation
    receives ``(db, self_oid, *args)`` and returns a value (or an
    iterable, for set-valued methods) coercible to oids.  Methods are
    excluded from the Section 5 complexity analysis — "they provide
    unlimited computational power" — and from the flat translation.
    """

    name: str
    implementation: object  # Callable[[Database, Oid, ...], value]
    result: str = "real"
    arity: int = 0
    set_valued: bool = False

    def __post_init__(self):
        if not self.name:
            raise SchemaError("method needs a name")
        if not callable(self.implementation):
            raise SchemaError(
                f"method {self.name!r}: implementation not callable")
        if self.arity < 0:
            raise SchemaError(f"method {self.name!r}: negative arity")

    def __str__(self) -> str:
        args = ", ".join("_" for _ in range(self.arity))
        arrow = "=>>" if self.set_valued else "=>"
        return f"{self.name}({args}) {arrow} {self.result}"


@dataclass
class ClassDef:
    """A class: name, superclasses, interface, attributes, methods.

    ``cst_dimension`` marks classes whose instances are CST objects —
    the built-in ``CST(n)`` classes and user subclasses like ``Region``.
    """

    name: str
    parents: tuple[str, ...] = ()
    interface: tuple[Variable, ...] = ()
    attributes: dict[str, AttributeDef] = field(default_factory=dict)
    methods: dict[str, MethodDef] = field(default_factory=dict)
    cst_dimension: int | None = None

    def __post_init__(self):
        if not self.name:
            raise SchemaError("class needs a name")
        self.parents = tuple(self.parents)
        self.interface = tuple(
            v if isinstance(v, Variable) else Variable(v)
            for v in self.interface)

    def attribute(self, name: str) -> AttributeDef | None:
        return self.attributes.get(name)

    def __str__(self) -> str:
        header = self.name
        if self.interface:
            header += f"({','.join(v.name for v in self.interface)})"
        if self.parents:
            header += " IS-A " + ", ".join(self.parents)
        return header


class Schema:
    """A complete database schema with validation and resolution.

    Built-in classes (``string``, ``real``, ``integer``, ``boolean``)
    are always present; ``CST(n)`` classes are materialized on demand.
    """

    def __init__(self):
        self._classes: dict[str, ClassDef] = {}
        for name in BUILTIN_CLASSES:
            self._classes[name] = ClassDef(name=name)
        #: DDL observer ``(event, **data)`` — the durable store's
        #: write-ahead log subscribes here (:mod:`repro.storage`).
        self._observer = None
        #: Mutation counter: bumped by every DDL change (class added,
        #: CST class materialized, method attached).  Cached plans key
        #: on the content fingerprint; the version makes the expensive
        #: fingerprint computable lazily and cacheable per mutation.
        self._version = 0
        self._fingerprint: tuple[int, bytes] | None = None

    # -- identity ---------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone DDL mutation counter (0 for a fresh schema)."""
        return self._version

    def _mutated(self) -> None:
        self._version += 1

    def fingerprint(self) -> bytes:
        """Content digest of the schema (16 bytes), equal for two
        schemas declaring the same classes — the plan-cache key
        component and :class:`~repro.lyric.PreparedQuery`'s binding
        check.  Recomputed only when :attr:`version` changed since the
        last call."""
        cached = self._fingerprint
        if cached is not None and cached[0] == self._version:
            return cached[1]
        from repro.storage.format import schema_fingerprint
        digest = schema_fingerprint(self)
        self._fingerprint = (self._version, digest)
        return digest

    # -- construction -----------------------------------------------------

    def set_observer(self, observer) -> None:
        """Subscribe ``observer(event, **data)`` to DDL (or ``None`` to
        unsubscribe): ``add_class(class_def=)`` after a class is
        defined, ``cst_class(dimension=)`` when a ``CST(n)`` class
        materializes."""
        self._observer = observer

    def _notify(self, event: str, **data) -> None:
        if self._observer is not None:
            self._observer(event, **data)

    def add_class(self, class_def: ClassDef) -> ClassDef:
        if class_def.name in self._classes:
            raise SchemaError(f"class {class_def.name!r} already defined")
        self._classes[class_def.name] = class_def
        self._mutated()
        self._notify("add_class", class_def=class_def)
        return class_def

    def define(self, name: str, parents: Iterable[str] = (),
               interface: Iterable[str | Variable] = (),
               attributes: Iterable[AttributeDef] = (),
               methods: Iterable[MethodDef] = (),
               cst_dimension: int | None = None) -> ClassDef:
        """Convenience builder used by fixtures and workload generators."""
        class_def = ClassDef(
            name=name, parents=tuple(parents),
            interface=tuple(interface),
            attributes={a.name: a for a in attributes},
            methods={m.name: m for m in methods},
            cst_dimension=cst_dimension)
        return self.add_class(class_def)

    def add_method(self, class_name: str, method: MethodDef) -> None:
        """Attach a method to an existing class (inherited by
        subclasses, like attributes)."""
        self.class_def(class_name).methods[method.name] = method
        self._mutated()

    def ensure_cst_class(self, dimension: int) -> ClassDef:
        name = cst_class_name(dimension)
        if name not in self._classes:
            self._classes[name] = ClassDef(name=name,
                                           cst_dimension=dimension)
            self._mutated()
            self._notify("cst_class", dimension=dimension)
        return self._classes[name]

    # -- lookup ---------------------------------------------------------------

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(self._classes)

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def class_def(self, name: str) -> ClassDef:
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClassError(f"unknown class {name!r}") from None

    def superclasses(self, name: str) -> tuple[str, ...]:
        """All (transitive) superclasses, the class itself first."""
        seen: list[str] = []
        stack = [name]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.append(current)
            stack.extend(self.class_def(current).parents)
        return tuple(seen)

    def subclasses(self, name: str) -> tuple[str, ...]:
        """All (transitive) subclasses, including the class itself."""
        self.class_def(name)
        result = [name]
        changed = True
        while changed:
            changed = False
            for cls in self._classes.values():
                if cls.name in result:
                    continue
                if any(p in result for p in cls.parents):
                    result.append(cls.name)
                    changed = True
        return tuple(result)

    def is_subclass(self, name: str, ancestor: str) -> bool:
        return ancestor in self.superclasses(name)

    def attributes_of(self, name: str) -> Mapping[str, AttributeDef]:
        """Attributes including inherited ones (subclass overrides win)."""
        merged: dict[str, AttributeDef] = {}
        for cls_name in reversed(self.superclasses(name)):
            merged.update(self.class_def(cls_name).attributes)
        return merged

    def resolve_attribute(self, class_name: str, attr: str) -> AttributeDef:
        attr_def = self.attributes_of(class_name).get(attr)
        if attr_def is None:
            raise UnknownAttributeError(
                f"class {class_name!r} has no attribute {attr!r}")
        return attr_def

    def methods_of(self, name: str) -> Mapping[str, MethodDef]:
        """Methods including inherited ones (overrides win)."""
        merged: dict[str, MethodDef] = {}
        for cls_name in reversed(self.superclasses(name)):
            merged.update(self.class_def(cls_name).methods)
        return merged

    def interface_of(self, class_name: str) -> tuple[Variable, ...]:
        """The class's own interface, or the nearest inherited one."""
        for cls_name in self.superclasses(class_name):
            interface = self.class_def(cls_name).interface
            if interface:
                return interface
        return ()

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Check well-formedness; raises :class:`SchemaError`."""
        for cls in self._classes.values():
            for parent in cls.parents:
                if parent not in self._classes:
                    raise SchemaError(
                        f"class {cls.name!r}: unknown parent {parent!r}")
        self._check_acyclic()
        for cls in self._classes.values():
            for attr in cls.attributes.values():
                self._validate_attribute(cls, attr)
        for cls in self._classes.values():
            attributes = self.attributes_of(cls.name)
            for method_name in self.methods_of(cls.name):
                if method_name in attributes:
                    raise SchemaError(
                        f"class {cls.name!r}: {method_name!r} is both "
                        "an attribute and a method")

    def _check_acyclic(self) -> None:
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in visiting:
                raise SchemaError(f"cyclic IS-A involving {name!r}")
            visiting.add(name)
            for parent in self.class_def(name).parents:
                visit(parent)
            visiting.discard(name)
            done.add(name)

        for name in self._classes:
            visit(name)

    def _validate_attribute(self, cls: ClassDef, attr: AttributeDef) -> None:
        if attr.is_cst:
            return
        if attr.target not in self._classes:
            raise SchemaError(
                f"class {cls.name!r}, attribute {attr.name!r}: unknown "
                f"target class {attr.target!r}")
        if attr.interface_args is not None:
            formals = self.interface_of(attr.target)
            if len(formals) != len(attr.interface_args):
                raise SchemaError(
                    f"class {cls.name!r}, attribute {attr.name!r}: "
                    f"interface renaming has {len(attr.interface_args)} "
                    f"arguments, class {attr.target!r} declares "
                    f"{len(formals)}")

    def __str__(self) -> str:
        user = [c for n, c in sorted(self._classes.items())
                if n not in BUILTIN_CLASSES]
        return "\n".join(str(c) for c in user)

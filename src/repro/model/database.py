"""Object store: database instances of a schema.

Objects are tuple-objects (Section 2.1): each object has an oid, an
instance-of class, and values for attributes — a single oid for scalar
attributes, a set of oids for set-valued ones.  CST attribute values are
:class:`repro.model.oid.CstOid` wrapping :class:`CSTObject` values.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.constraints.cst_object import CSTObject
from repro.errors import (
    IntegrityError,
    UnknownObjectError,
)
from repro.model.oid import CstOid, LiteralOid, Oid, as_oid
from repro.model.schema import AttributeDef, Schema


class DBObject:
    """A stored tuple-object."""

    __slots__ = ("_oid", "_class_name", "_values")

    def __init__(self, oid: Oid, class_name: str,
                 values: Mapping[str, object] | None = None):
        self._oid = oid
        self._class_name = class_name
        self._values: dict[str, Oid | frozenset[Oid]] = {}
        if values:
            for name, value in values.items():
                self.set(name, value)

    @property
    def oid(self) -> Oid:
        return self._oid

    @property
    def class_name(self) -> str:
        return self._class_name

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self._values)

    def set(self, attribute: str, value) -> None:
        """Assign an attribute value (a set/list means set-valued)."""
        if isinstance(value, (set, frozenset, list, tuple)):
            self._values[attribute] = frozenset(as_oid(v) for v in value)
        else:
            self._values[attribute] = as_oid(value)

    def get(self, attribute: str) -> Oid | frozenset[Oid] | None:
        return self._values.get(attribute)

    def unset(self, attribute: str) -> None:
        """Remove an attribute value (missing is fine)."""
        self._values.pop(attribute, None)

    def restore(self, attribute: str,
                value: Oid | frozenset[Oid] | None) -> None:
        """Reinstate a previously read raw value (rollback helper)."""
        if value is None:
            self._values.pop(attribute, None)
        else:
            self._values[attribute] = value

    def values(self, attribute: str) -> tuple[Oid, ...]:
        """The attribute value as a tuple of oids (empty when absent;
        one element for scalar attributes)."""
        value = self._values.get(attribute)
        if value is None:
            return ()
        if isinstance(value, frozenset):
            return tuple(value)
        return (value,)

    def __repr__(self):
        return f"DBObject({self._oid}, {self._class_name})"


class Database:
    """A populated instance of a :class:`Schema`.

    CST objects may be stored both as attribute values and as
    first-class instances of CST classes (e.g. ``Region``); for the
    latter, :meth:`add_cst_instance` registers the CstOid itself in the
    class extent — a constraint *is* its oid.
    """

    def __init__(self, schema: Schema):
        schema.validate()
        self._schema = schema
        self._objects: dict[Oid, DBObject] = {}
        self._direct_extents: dict[str, list[Oid]] = {}
        #: Mutation observer ``(event, **data)`` — the durable store's
        #: write-ahead log subscribes here (:mod:`repro.storage`).
        self._observer = None

    @property
    def schema(self) -> Schema:
        return self._schema

    # -- mutation observation ------------------------------------------------

    def set_observer(self, observer) -> None:
        """Subscribe ``observer(event, **data)`` to mutations (or
        ``None`` to unsubscribe).  Events fire *after* a successful
        mutation: ``add_object(obj=)``, ``update_attribute(oid=,
        attribute=, value=)``, ``remove_object(oid=, force=)``."""
        self._observer = observer

    def _notify(self, event: str, **data) -> None:
        if self._observer is not None:
            self._observer(event, **data)

    # -- population ---------------------------------------------------------

    def add_object(self, oid: Oid | str, class_name: str,
                   values: Mapping[str, object] | None = None) -> DBObject:
        """Create and store an object; string oids become symbolic."""
        from repro.model.oid import SymbolicOid
        if isinstance(oid, str):
            oid = SymbolicOid(oid)
        self._schema.class_def(class_name)
        if oid in self._objects:
            raise IntegrityError(f"oid {oid} already present")
        obj = DBObject(oid, class_name, values)
        self._objects[oid] = obj
        self._direct_extents.setdefault(class_name, []).append(oid)
        self._notify("add_object", obj=obj)
        return obj

    def add_cst_instance(self, class_name: str, cst: CSTObject,
                         values: Mapping[str, object] | None = None
                         ) -> DBObject:
        """Store a CST object as an instance of a CST class.

        The object's oid *is* the constraint (its canonical form); CST
        classes may attach extra attributes (e.g. a region's name).
        """
        class_def = self._schema.class_def(class_name)
        if class_def.cst_dimension is None:
            raise IntegrityError(
                f"class {class_name!r} is not a CST class")
        if cst.dimension != class_def.cst_dimension:
            raise IntegrityError(
                f"CST instance of {class_name!r} must have dimension "
                f"{class_def.cst_dimension}, got {cst.dimension}")
        return self.add_object(CstOid(cst), class_name, values)

    # -- lookup --------------------------------------------------------------------

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def object(self, oid: Oid) -> DBObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise UnknownObjectError(f"no object with oid {oid}") from None

    def maybe_object(self, oid: Oid) -> DBObject | None:
        return self._objects.get(oid)

    def objects(self) -> Iterator[DBObject]:
        return iter(self._objects.values())

    def direct_extent(self, class_name: str) -> tuple[Oid, ...]:
        """Oids whose instance-of class is exactly ``class_name``."""
        return tuple(self._direct_extents.get(class_name, ()))

    def extent(self, class_name: str) -> tuple[Oid, ...]:
        """Oids of all instances, including those of subclasses."""
        result: list[Oid] = []
        for sub in self._schema.subclasses(class_name):
            result.extend(self._direct_extents.get(sub, ()))
        return tuple(result)

    def is_instance(self, oid: Oid, class_name: str) -> bool:
        obj = self._objects.get(oid)
        if obj is None:
            return False
        return self._schema.is_subclass(obj.class_name, class_name)

    def attribute_values(self, oid: Oid, attribute: str
                         ) -> tuple[Oid, ...]:
        """Values of an attribute (or 0-ary method) on an object.

        A path step through an undefined or unset attribute yields no
        database paths (the XSQL semantics), so missing data returns
        an empty tuple rather than raising.  When no stored value
        exists but the class declares a 0-ary method of that name, the
        method is invoked ("an attribute is regarded as a 0-ary
        method").
        """
        obj = self._objects.get(oid)
        if obj is None:
            return ()
        stored = obj.values(attribute)
        if stored:
            return stored
        method = self._schema.methods_of(obj.class_name).get(attribute)
        if method is not None and method.arity == 0:
            return self.invoke_method(oid, attribute)
        return ()

    def invoke_method(self, oid: Oid, name: str, *args) -> tuple[Oid, ...]:
        """Invoke a stored method on an object; the result is coerced
        to a tuple of oids (one element for scalar methods)."""
        from repro.model.oid import as_oid
        obj = self.object(oid)
        method = self._schema.methods_of(obj.class_name).get(name)
        if method is None:
            raise IntegrityError(
                f"class {obj.class_name!r} has no method {name!r}")
        if len(args) != method.arity:
            raise IntegrityError(
                f"method {name!r} takes {method.arity} arguments, "
                f"got {len(args)}")
        result = method.implementation(self, oid, *args)
        if method.set_valued:
            return tuple(as_oid(v) for v in result)
        return (as_oid(result),)

    # -- integrity -------------------------------------------------------------------

    def validate(self) -> None:
        """Check every stored object against the schema.

        Verifies: attributes are declared (on the class or inherited),
        scalar vs set-valued shape, CST dimensions, and that
        class-valued attributes reference stored objects of a matching
        class (literals match built-in classes).
        """
        for obj in self._objects.values():
            declared = self._schema.attributes_of(obj.class_name)
            for name in obj.attribute_names:
                attr = declared.get(name)
                if attr is None:
                    raise IntegrityError(
                        f"{obj.oid}: attribute {name!r} not declared on "
                        f"class {obj.class_name!r}")
                self._validate_value(obj, attr)

    def _validate_value(self, obj: DBObject, attr: AttributeDef) -> None:
        value = obj.get(attr.name)
        if attr.set_valued != isinstance(value, frozenset):
            shape = "set-valued" if attr.set_valued else "scalar"
            raise IntegrityError(
                f"{obj.oid}.{attr.name}: expected {shape} value")
        for member in obj.values(attr.name):
            self._validate_member(obj, attr, member)

    def _validate_member(self, obj: DBObject, attr: AttributeDef,
                         member: Oid) -> None:
        if attr.is_cst:
            if not isinstance(member, CstOid):
                raise IntegrityError(
                    f"{obj.oid}.{attr.name}: expected a CST value")
            declared = attr.target.variables
            if member.cst.dimension != len(declared):
                raise IntegrityError(
                    f"{obj.oid}.{attr.name}: CST value has dimension "
                    f"{member.cst.dimension}, schema says {len(declared)}")
            return
        target = attr.target
        if isinstance(member, LiteralOid):
            if target in ("string", "real", "integer", "boolean"):
                return
            raise IntegrityError(
                f"{obj.oid}.{attr.name}: literal {member} cannot be an "
                f"instance of {target!r}")
        if isinstance(member, CstOid):
            target_def = self._schema.class_def(target)
            if target_def.cst_dimension is None:
                raise IntegrityError(
                    f"{obj.oid}.{attr.name}: CST oid stored in "
                    f"non-CST-class attribute {target!r}")
            if member not in self._objects:
                raise IntegrityError(
                    f"{obj.oid}.{attr.name}: CST instance not registered "
                    f"in class {target!r}")
            return
        referenced = self._objects.get(member)
        if referenced is None:
            raise IntegrityError(
                f"{obj.oid}.{attr.name}: dangling reference {member}")
        if not self._schema.is_subclass(referenced.class_name, target):
            raise IntegrityError(
                f"{obj.oid}.{attr.name}: {member} is a "
                f"{referenced.class_name!r}, expected {target!r}")

    # -- updates --------------------------------------------------------------------

    def update_attribute(self, oid: Oid, attribute: str, value) -> None:
        """General attribute update (Section 6: "updating CST
        attributes is completely general ... there is no reason that
        moving a desk would be limited in any way").

        The new value is validated against the schema immediately;
        an invalid update raises and leaves the object unchanged.
        """
        obj = self.object(oid)
        attr = self._schema.attributes_of(obj.class_name).get(attribute)
        if attr is None:
            raise IntegrityError(
                f"{oid}: attribute {attribute!r} not declared on class "
                f"{obj.class_name!r}")
        previous = obj.get(attribute)
        obj.set(attribute, value)
        try:
            self._validate_value(obj, attr)
        except IntegrityError:
            obj.restore(attribute, previous)
            raise
        self._notify("update_attribute", oid=oid, attribute=attribute,
                     value=obj.get(attribute))

    def remove_object(self, oid: Oid, *, force: bool = False) -> None:
        """Delete an object; refuses (without ``force``) when other
        stored objects still reference it."""
        obj = self.object(oid)
        if not force:
            for other in self._objects.values():
                if other.oid == oid:
                    continue
                for name in other.attribute_names:
                    if oid in other.values(name):
                        raise IntegrityError(
                            f"cannot remove {oid}: referenced by "
                            f"{other.oid}.{name} (use force=True)")
        del self._objects[oid]
        extent = self._direct_extents.get(obj.class_name, [])
        if oid in extent:
            extent.remove(oid)
        self._notify("remove_object", oid=oid, force=force)

    # -- CST convenience ----------------------------------------------------------------

    def cst_value(self, oid: Oid, attribute: str) -> CSTObject | None:
        """The CST object stored at a scalar CST attribute, or None."""
        for value in self.attribute_values(oid, attribute):
            if isinstance(value, CstOid):
                return value.cst
        return None

    def literals(self, class_name: str,
                 values: Iterable[object]) -> list[Oid]:
        """Bulk-wrap literal values (helper for workload generators)."""
        return [as_oid(v) for v in values]

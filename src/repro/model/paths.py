"""Path expressions over the composition hierarchy (Section 2.2).

A path expression has the form::

    selector0 . AttEx1[selector1] . AttEx2[selector2] . ... . AttExm[selectorm]

where ``selector0`` is mandatory and each other selector optional.  A
selector is *ground* (an oid) or a *variable*; attribute expressions are
attribute names or attribute variables (the paper's higher-order
variables).  A path expression describes the set of database paths
satisfying one of its ground instances; evaluation here enumerates the
satisfying variable bindings directly (the ground instances are never
materialized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.model.database import Database
from repro.model.oid import AttributeNameOid, Oid
from repro.errors import EvaluationError

#: A variable binding environment.  Keys are variable names; values are
#: oids (AttributeNameOid for attribute variables).
Bindings = Mapping[str, Oid]


@dataclass(frozen=True)
class VarRef:
    """A variable occurrence in a path expression."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Step:
    """One ``.AttEx[selector]`` step."""

    attribute: str | VarRef
    selector: Oid | VarRef | None = None

    def __str__(self) -> str:
        text = str(self.attribute)
        if self.selector is not None:
            text += f"[{self.selector}]"
        return text


@dataclass(frozen=True)
class PathExpression:
    """``head.step1.step2...`` — a path expression."""

    head: Oid | VarRef
    steps: tuple[Step, ...] = ()

    def __str__(self) -> str:
        parts = [str(self.head)]
        parts.extend(str(s) for s in self.steps)
        return ".".join(parts)

    @property
    def variables(self) -> tuple[str, ...]:
        """Names of every variable occurring in the expression, in
        first-occurrence order."""
        names: list[str] = []

        def add(item):
            if isinstance(item, VarRef) and item.name not in names:
                names.append(item.name)

        add(self.head)
        for step in self.steps:
            add(step.attribute if isinstance(step.attribute, VarRef)
                else None)
            add(step.selector)
        return tuple(names)

    def is_ground(self) -> bool:
        return not self.variables


def enumerate_paths(db: Database, path: PathExpression,
                    bindings: Bindings) -> Iterator[tuple[dict, Oid]]:
    """Yield ``(extended_bindings, tail_oid)`` for every database path
    satisfying the expression under an extension of ``bindings``.

    New variables encountered in the path are bound; already-bound
    variables act as filters.  The same (bindings, tail) pair may be
    produced once per satisfying database path; callers that need set
    semantics deduplicate.
    """
    for env, head_oid in _resolve_head(db, path.head, bindings):
        yield from _walk(db, head_oid, path.steps, env)


def path_values(db: Database, path: PathExpression,
                bindings: Bindings) -> set[Oid]:
    """The *value* of a path expression under fixed bindings: the set of
    tail objects of its satisfying database paths (used by the
    comparison predicates of Section 2.2)."""
    return {tail for _, tail in enumerate_paths(db, path, bindings)}


def _resolve_head(db: Database, head, bindings: Bindings
                  ) -> Iterator[tuple[dict, Oid]]:
    if isinstance(head, VarRef):
        bound = bindings.get(head.name)
        if bound is not None:
            yield dict(bindings), bound
            return
        # Unbound head: range over every stored object (FROM clauses
        # normally bind path heads; this is the fallback semantics).
        for obj in db.objects():
            env = dict(bindings)
            env[head.name] = obj.oid
            yield env, obj.oid
        return
    if not isinstance(head, Oid):
        raise EvaluationError(f"invalid path head {head!r}")
    yield dict(bindings), head


def _walk(db: Database, current: Oid, steps: tuple[Step, ...],
          env: dict) -> Iterator[tuple[dict, Oid]]:
    if not steps:
        yield env, current
        return
    step, rest = steps[0], steps[1:]
    for attr_env, attr_name in _resolve_attribute(db, current, step, env):
        for value in db.attribute_values(current, attr_name):
            sel_env = _match_selector(step.selector, value, attr_env)
            if sel_env is None:
                continue
            yield from _walk(db, value, rest, sel_env)


def _resolve_attribute(db: Database, current: Oid, step: Step,
                       env: dict) -> Iterator[tuple[dict, str]]:
    attribute = step.attribute
    if isinstance(attribute, str):
        yield env, attribute
        return
    bound = env.get(attribute.name)
    if bound is not None:
        if isinstance(bound, AttributeNameOid):
            yield env, bound.name
        return
    obj = db.maybe_object(current)
    if obj is None:
        return
    for name in sorted(db.schema.attributes_of(obj.class_name)):
        extended = dict(env)
        extended[attribute.name] = AttributeNameOid(name)
        yield extended, name


def _match_selector(selector, value: Oid, env: dict) -> dict | None:
    if selector is None:
        return env
    if isinstance(selector, VarRef):
        bound = env.get(selector.name)
        if bound is None:
            extended = dict(env)
            extended[selector.name] = value
            return extended
        return env if bound == value else None
    return env if selector == value else None

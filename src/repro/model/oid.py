"""Logical object identities.

Section 2.1 of the paper: objects are referred to via logical oids —
syntactic terms such as ``20``, ``john23``, or ``secretary(dept77)``.
Literal values (numbers, strings) are oids carrying their usual
semantics; explicit *id-functions* create new oids from tuples of oids
(the ``OID FUNCTION OF`` clause); and — the paper's key move — CST
objects are "another kind of logical object identity" whose content is
the canonical form of their constraint.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.constraints.cst_object import CSTObject
from repro.constraints.terms import to_fraction


class Oid:
    """Base class of logical object identities.

    Oids are immutable, hashable, and compare by content — two
    syntactically equal id-terms denote the same object.
    """

    __slots__ = ()

    def describe(self) -> str:
        """Human-readable rendering (used by result printing)."""
        return str(self)


class LiteralOid(Oid):
    """A value object: number, string or boolean.

    The paper: "we consider '20' to be the oid of the abstract object
    with the usual properties of the number 20."
    """

    __slots__ = ("_value",)

    def __init__(self, value):
        if isinstance(value, bool) or isinstance(value, (str, Fraction)):
            self._value = value
        elif isinstance(value, int):
            self._value = Fraction(value)
        elif isinstance(value, float):
            self._value = to_fraction(value)
        else:
            raise TypeError(f"not a literal value: {value!r}")

    @property
    def value(self):
        return self._value

    def __eq__(self, other):
        if not isinstance(other, LiteralOid):
            return NotImplemented
        return (type(self._value) is type(other._value)
                or isinstance(self._value, Fraction)
                and isinstance(other._value, Fraction)) \
            and self._value == other._value

    def __hash__(self):
        return hash(("LiteralOid", self._value))

    def __repr__(self):
        return f"LiteralOid({self._value!r})"

    def __str__(self):
        if isinstance(self._value, Fraction):
            from repro.constraints.terms import format_fraction
            return format_fraction(self._value)
        if isinstance(self._value, str):
            return f"'{self._value}'"
        return str(self._value)


class SymbolicOid(Oid):
    """A named abstract object, e.g. ``desk123``."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError(f"invalid oid name {name!r}")
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def __eq__(self, other):
        if not isinstance(other, SymbolicOid):
            return NotImplemented
        return self._name == other._name

    def __hash__(self):
        return hash(("SymbolicOid", self._name))

    def __repr__(self):
        return f"SymbolicOid({self._name!r})"

    def __str__(self):
        return self._name


class FunctionalOid(Oid):
    """An id-function application ``f(o1, ..., ok)``.

    Used by ``OID FUNCTION OF``: a query result tuple built from a
    variable assignment (x, w) gets identity ``f(x, w)`` — re-running
    the query yields the *same* objects.
    """

    __slots__ = ("_function", "_args")

    def __init__(self, function: str, args: Iterable[Oid]):
        self._function = function
        self._args = tuple(args)
        for arg in self._args:
            if not isinstance(arg, Oid):
                raise TypeError(f"id-function argument {arg!r} is not an Oid")

    @property
    def function(self) -> str:
        return self._function

    @property
    def args(self) -> tuple[Oid, ...]:
        return self._args

    def __eq__(self, other):
        if not isinstance(other, FunctionalOid):
            return NotImplemented
        return (self._function == other._function
                and self._args == other._args)

    def __hash__(self):
        return hash(("FunctionalOid", self._function, self._args))

    def __repr__(self):
        return f"FunctionalOid({self._function!r}, {self._args!r})"

    def __str__(self):
        inner = ", ".join(str(a) for a in self._args)
        return f"{self._function}({inner})"


class CstOid(Oid):
    """A constraint as a logical object identity (Section 3).

    Wraps a :class:`CSTObject`; two CstOids are equal iff their CST
    objects have the same canonical form (alpha-invariant).
    """

    __slots__ = ("_cst",)

    def __init__(self, cst: CSTObject):
        if not isinstance(cst, CSTObject):
            raise TypeError(f"expected CSTObject, got {cst!r}")
        self._cst = cst

    @property
    def cst(self) -> CSTObject:
        return self._cst

    def __eq__(self, other):
        if not isinstance(other, CstOid):
            return NotImplemented
        return self._cst == other._cst

    def __hash__(self):
        return hash(("CstOid", self._cst))

    def __repr__(self):
        return f"CstOid({self._cst!r})"

    def __str__(self):
        return self._cst.oid_text()


class AttributeNameOid(Oid):
    """An attribute name as an object — the target of the paper's
    higher-order attribute variables."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def __eq__(self, other):
        if not isinstance(other, AttributeNameOid):
            return NotImplemented
        return self._name == other._name

    def __hash__(self):
        return hash(("AttributeNameOid", self._name))

    def __repr__(self):
        return f"AttributeNameOid({self._name!r})"

    def __str__(self):
        return f"@{self._name}"


class ClassNameOid(Oid):
    """A class name as an object — the target of class variables (used
    by schema-querying and view-defining queries)."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def __eq__(self, other):
        if not isinstance(other, ClassNameOid):
            return NotImplemented
        return self._name == other._name

    def __hash__(self):
        return hash(("ClassNameOid", self._name))

    def __repr__(self):
        return f"ClassNameOid({self._name!r})"

    def __str__(self):
        return f"class:{self._name}"


def as_oid(value) -> Oid:
    """Coerce a Python value / CST object into an oid."""
    if isinstance(value, Oid):
        return value
    if isinstance(value, CSTObject):
        return CstOid(value)
    if isinstance(value, (int, float, str, Fraction)) \
            and not isinstance(value, bool):
        return LiteralOid(value)
    raise TypeError(f"cannot interpret {value!r} as an oid")


def oid(name: str) -> SymbolicOid:
    """Shorthand constructor for symbolic oids."""
    return SymbolicOid(name)

"""Execution guards: deadlines, work budgets, cooperative cancellation.

The paper's closure results bound *representation* sizes, but several
runtime quantities of this reproduction are unbounded in practice:
disequality branching is exponential in query size, disjunct counts
multiply under conjunction, and the exact simplex can pivot arbitrarily
long on adversarial coefficients.  An :class:`ExecutionGuard` bounds a
query execution along every one of those axes:

``deadline``
    wall-clock seconds for the whole execution;
``max_pivots``
    total exact-simplex pivots;
``max_branches``
    disequality branches explored by the satisfiability procedure;
``max_disjuncts``
    size any single disjunction may reach;
``max_canonical``
    canonicalisation work units (one unit ≈ one redundancy/entailment
    LP check);
cooperative cancellation
    :meth:`ExecutionGuard.cancel` may be called from any thread; the
    next checkpoint raises :class:`~repro.errors.QueryCancelled`.

The guard travels inside the active
:class:`~repro.runtime.context.QueryContext`; engine layers receive it
explicitly through a ``ctx`` parameter, and :func:`current_guard` /
:func:`guarded` remain as thin shims over the context for public entry
points.  When no guard is active every checkpoint sees ``None`` — the
unguarded fast path does no counting, no clock reads, and no exception
handling.

Exceeding a budget raises a subclass of
:class:`~repro.errors.ResourceExhausted` carrying structured
diagnostics (which budget, the limit, the spend, which component).
Callers that prefer partial answers over failures construct the guard
with ``on_exhaustion="degrade"``; the query evaluator and the flat
engine then catch the exception at their result boundary and return
what they had, with a warning.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import (
    BranchBudgetExceeded,
    CanonicalizationBudgetExceeded,
    DeadlineExceeded,
    DisjunctBudgetExceeded,
    InjectedFaultError,
    PivotBudgetExceeded,
    QueryCancelled,
)
from repro.runtime.faults import FaultPlan

#: Exhaustion policies: fail the query, or return a partial result
#: with a warning at the evaluator / engine boundary.
POLICIES = ("fail", "degrade")


class ExecutionGuard:
    """Budgets, spend counters, and cancellation for one execution.

    A guard may be reused across executions (counters are cumulative),
    but is not thread-safe for *spending* — activate one guard per
    worker.  :meth:`cancel` is the one cross-thread entry point.
    """

    __slots__ = (
        "deadline", "max_pivots", "max_branches", "max_disjuncts",
        "max_canonical", "on_exhaustion", "faults",
        "pivots", "branches", "canonical_steps", "peak_disjuncts",
        "checkpoints", "simplex_calls", "exhausted",
        "_clock", "_started", "_cancelled", "_cancel_probe",
    )

    def __init__(self, *,
                 deadline: float | None = None,
                 max_pivots: int | None = None,
                 max_branches: int | None = None,
                 max_disjuncts: int | None = None,
                 max_canonical: int | None = None,
                 on_exhaustion: str = "fail",
                 faults: FaultPlan | None = None,
                 clock: Callable[[], float] = time.monotonic):
        if on_exhaustion not in POLICIES:
            raise ValueError(
                f"on_exhaustion must be one of {POLICIES}, "
                f"got {on_exhaustion!r}")
        for name, value in (("deadline", deadline),
                            ("max_pivots", max_pivots),
                            ("max_branches", max_branches),
                            ("max_disjuncts", max_disjuncts),
                            ("max_canonical", max_canonical)):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        self.deadline = deadline
        self.max_pivots = max_pivots
        self.max_branches = max_branches
        self.max_disjuncts = max_disjuncts
        self.max_canonical = max_canonical
        self.on_exhaustion = on_exhaustion
        self.faults = faults
        self.pivots = 0
        self.branches = 0
        self.canonical_steps = 0
        self.peak_disjuncts = 0
        self.checkpoints = 0
        self.simplex_calls = 0
        #: Name of the budget that tripped (or "cancellation"), kept
        #: even when a degrade policy swallows the exception — stats
        #: capture reads it on every path.
        self.exhausted: str | None = None
        self._clock = clock
        self._started: float | None = None
        self._cancelled = False
        self._cancel_probe: Callable[[], bool] | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start the deadline clock (idempotent; :func:`guarded` calls
        this on activation)."""
        if self._started is None:
            self._started = self._clock()

    def elapsed(self) -> float:
        """Wall-clock seconds since activation (0.0 before)."""
        if self._started is None:
            return 0.0
        return self._clock() - self._started

    # -- cancellation ----------------------------------------------------

    def cancel(self) -> None:
        """Request cooperative cancellation (safe from any thread);
        observed at the next checkpoint."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def bind_cancel_probe(self, probe: Callable[[], bool] | None) -> None:
        """Attach an external cancellation source, polled at every
        checkpoint.  This is how a *worker process* guard observes a
        cancel issued in the parent: :meth:`cancel` sets a flag in this
        process only, but a probe can read fork-shared memory (the
        cancel board of :mod:`repro.runtime.parallel`) that the parent
        writes after the worker was forked."""
        self._cancel_probe = probe

    # -- checkpoints and spend ticks -------------------------------------

    def checkpoint(self, fragment: str | None = None) -> None:
        """A cooperative cancellation + deadline checkpoint.

        Hot paths call this at natural unit-of-work boundaries (per
        binding environment, per simplex solve, per canonicalisation).
        """
        self.checkpoints += 1
        if self.faults is not None \
                and self.faults.cancels_at(self.checkpoints):
            self._cancelled = True
        if not self._cancelled and self._cancel_probe is not None \
                and self._cancel_probe():
            self._cancelled = True
        if self._cancelled:
            self.exhausted = "cancellation"
            raise QueryCancelled(spent=self.checkpoints,
                                 fragment=fragment)
        self._check_deadline(fragment)

    def tick_pivots(self, n: int = 1,
                    fragment: str | None = "simplex") -> None:
        """Spend ``n`` simplex pivots."""
        self.pivots += n
        if self.faults is not None \
                and self.faults.exhausts("pivots", self.pivots):
            self._exhaust(PivotBudgetExceeded, "pivots",
                          self.faults.exhaust_after, self.pivots,
                          "fault-injection")
        if self.max_pivots is not None and self.pivots > self.max_pivots:
            self._exhaust(PivotBudgetExceeded, "pivots",
                          self.max_pivots, self.pivots, fragment)
        self._check_deadline(fragment)

    def tick_branch(self, fragment: str | None = "satisfiability") -> None:
        """Spend one disequality branch."""
        self.branches += 1
        if self.faults is not None \
                and self.faults.exhausts("branches", self.branches):
            self._exhaust(BranchBudgetExceeded, "branches",
                          self.faults.exhaust_after, self.branches,
                          "fault-injection")
        if self.max_branches is not None \
                and self.branches > self.max_branches:
            self._exhaust(BranchBudgetExceeded, "branches",
                          self.max_branches, self.branches, fragment)
        self._check_deadline(fragment)

    def tick_canonical(self, n: int = 1,
                       fragment: str | None = "canonical") -> None:
        """Spend ``n`` canonicalisation work units."""
        self.canonical_steps += n
        if self.faults is not None \
                and self.faults.exhausts("canonical", self.canonical_steps):
            self._exhaust(CanonicalizationBudgetExceeded, "canonical",
                          self.faults.exhaust_after, self.canonical_steps,
                          "fault-injection")
        if self.max_canonical is not None \
                and self.canonical_steps > self.max_canonical:
            self._exhaust(CanonicalizationBudgetExceeded, "canonical",
                          self.max_canonical, self.canonical_steps,
                          fragment)
        self._check_deadline(fragment)

    def note_disjuncts(self, count: int,
                       fragment: str | None = "disjunctive") -> None:
        """Record that a disjunction of ``count`` disjuncts was built."""
        if count > self.peak_disjuncts:
            self.peak_disjuncts = count
        if self.faults is not None \
                and self.faults.exhausts("disjuncts", count):
            self._exhaust(DisjunctBudgetExceeded, "disjuncts",
                          self.faults.exhaust_after, count,
                          "fault-injection")
        if self.max_disjuncts is not None and count > self.max_disjuncts:
            self._exhaust(DisjunctBudgetExceeded, "disjuncts",
                          self.max_disjuncts, count, fragment)

    def enter_simplex(self) -> None:
        """Checkpoint at the entry of one exact-simplex solve; the
        hook point for injected solver failures."""
        self.simplex_calls += 1
        self.checkpoint("simplex")
        if self.faults is not None \
                and self.faults.simplex_should_fail(self.simplex_calls):
            raise InjectedFaultError(
                f"injected simplex failure (solve #{self.simplex_calls})")

    def absorb_spend(self, spend: dict) -> None:
        """Fold a worker guard's spend into this guard's counters
        without budget checks (:mod:`repro.runtime.parallel` pro-rates
        the budgets up front, so the merged totals cannot exceed what
        this guard had left).  Additive counters sum; peaks max."""
        self.pivots += spend.get("pivots", 0)
        self.branches += spend.get("branches", 0)
        self.canonical_steps += spend.get("canonical_steps", 0)
        self.checkpoints += spend.get("checkpoints", 0)
        self.simplex_calls += spend.get("simplex_calls", 0)
        peak = spend.get("peak_disjuncts", 0)
        if peak > self.peak_disjuncts:
            self.peak_disjuncts = peak

    # -- reporting -------------------------------------------------------

    def spend(self) -> dict:
        """The spend counters as a plain dict (for stats/logging)."""
        return {
            "elapsed": self.elapsed(),
            "pivots": self.pivots,
            "branches": self.branches,
            "canonical_steps": self.canonical_steps,
            "peak_disjuncts": self.peak_disjuncts,
            "checkpoints": self.checkpoints,
            "simplex_calls": self.simplex_calls,
            "exhausted": self.exhausted,
        }

    def __repr__(self) -> str:
        limits = []
        for name, value in (("deadline", self.deadline),
                            ("max_pivots", self.max_pivots),
                            ("max_branches", self.max_branches),
                            ("max_disjuncts", self.max_disjuncts),
                            ("max_canonical", self.max_canonical)):
            if value is not None:
                limits.append(f"{name}={value}")
        return (f"ExecutionGuard({', '.join(limits) or 'no limits'}, "
                f"on_exhaustion={self.on_exhaustion!r})")

    # -- internals -------------------------------------------------------

    def _check_deadline(self, fragment: str | None) -> None:
        if self.deadline is None and (
                self.faults is None
                or self.faults.exhaust_budget != "deadline"):
            return
        spent = self.elapsed()
        if self.faults is not None \
                and self.faults.exhausts("deadline", self.checkpoints):
            self.exhausted = "deadline"
            raise DeadlineExceeded(
                "deadline exceeded", budget="deadline",
                limit=self.faults.exhaust_after, spent=round(spent, 6),
                fragment="fault-injection")
        if self.deadline is not None and spent > self.deadline:
            self.exhausted = "deadline"
            raise DeadlineExceeded(
                "deadline exceeded", budget="deadline",
                limit=self.deadline, spent=round(spent, 6),
                fragment=fragment)

    def _exhaust(self, exc_type, budget: str, limit, spent,
                 fragment: str | None) -> None:
        self.exhausted = budget
        raise exc_type(f"{budget} budget exhausted", budget=budget,
                       limit=limit, spent=spent, fragment=fragment)


# ---------------------------------------------------------------------------
# Ambient guard — a shim over the active QueryContext
# ---------------------------------------------------------------------------


def current_guard() -> ExecutionGuard | None:
    """The active context's guard, or None (the unguarded fast path).

    Shim over :func:`repro.runtime.context.current_context` for call
    sites at the public API boundary; internal layers receive the
    :class:`~repro.runtime.context.QueryContext` explicitly.
    """
    from repro.runtime import context
    return context.current_context().guard


@contextmanager
def guarded(guard: ExecutionGuard | None) -> Iterator[ExecutionGuard | None]:
    """Activate ``guard`` for the dynamic extent of the block.

    ``guarded(None)`` is a no-op context (convenient for optional-guard
    call sites).  Guards nest; the innermost wins.  Implemented by
    deriving and activating a :class:`QueryContext` over the current
    one, so every layer sees the guard through the one ambient context.
    """
    if guard is None:
        yield None
        return
    from repro.runtime import context
    derived = context.current_context().derive(guard=guard)
    with derived.activate():
        yield guard


def should_degrade(guard: ExecutionGuard | None) -> bool:
    """Does the active guard ask for partial results on exhaustion?"""
    return guard is not None and guard.on_exhaustion == "degrade"

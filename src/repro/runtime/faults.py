"""Deterministic fault injection for the resource-governance layer.

The degradation paths of :mod:`repro.runtime.guard` — budget
exhaustion, solver failure, cancellation — are hard to reach with
well-behaved inputs and flaky to reach with pathological ones.  A
:class:`FaultPlan` attached to an :class:`~repro.runtime.guard.ExecutionGuard`
makes every one of them reproducible:

* ``exhaust_budget``/``exhaust_after`` — trip the named budget on the
  Nth spend tick, regardless of any configured limit;
* ``fail_simplex_at`` — raise :class:`repro.errors.InjectedFaultError`
  on the Nth entry into the exact simplex;
* ``cancel_at_checkpoint`` — behave as if :meth:`ExecutionGuard.cancel`
  had been called just before the Nth cooperative checkpoint.

The durable-storage layer (:mod:`repro.storage`) adds I/O faults, so
crash-at-every-record recovery is property-testable without killing
processes:

* ``fail_write_at`` — the Nth storage write fails with nothing
  durable;
* ``torn_write_at``/``torn_write_bytes`` — the Nth storage write
  persists only a prefix (a torn write: the classic crash artifact a
  write-ahead log must tolerate);
* ``fail_fsync_at`` — the Nth fsync fails after the data reached the
  OS but possibly not the platter;
* ``disk_full_after_bytes`` — every write past a cumulative byte
  budget fails, persisting only the bytes under the cap (ENOSPC).

All counters are 1-based and deterministic: the same query against the
same database trips at the same spot every run.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Budget names a plan may exhaust (mirrors ExecutionGuard's counters).
BUDGETS = ("deadline", "pivots", "branches", "disjuncts", "canonical")


@dataclass
class FaultPlan:
    """A deterministic schedule of injected failures.

    Attach to a guard with ``ExecutionGuard(faults=FaultPlan(...))``.
    A default-constructed plan injects nothing.
    """

    #: Trip this budget as if its limit were ``exhaust_after``.
    exhaust_budget: str | None = None
    #: Spend threshold for ``exhaust_budget``: the budget trips on the
    #: first tick that brings its counter above this value.
    exhaust_after: int = 0
    #: Raise ``InjectedFaultError`` on the Nth simplex solve (1-based).
    fail_simplex_at: int | None = None
    #: Trip cancellation on the Nth cooperative checkpoint (1-based).
    cancel_at_checkpoint: int | None = None
    #: Fail the Nth storage write with nothing persisted (1-based).
    fail_write_at: int | None = None
    #: Tear the Nth storage write: persist only ``torn_write_bytes``.
    torn_write_at: int | None = None
    #: Prefix length a torn write leaves behind.
    torn_write_bytes: int = 8
    #: Fail the Nth storage fsync (1-based).
    fail_fsync_at: int | None = None
    #: Simulate a full disk: writes past this cumulative byte budget
    #: persist only the bytes under the cap, then fail.
    disk_full_after_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.exhaust_budget is not None \
                and self.exhaust_budget not in BUDGETS:
            raise ValueError(
                f"unknown budget {self.exhaust_budget!r}; "
                f"expected one of {BUDGETS}")

    # -- queries used by ExecutionGuard ---------------------------------

    def exhausts(self, budget: str, spent: int) -> bool:
        """Should ``budget`` trip now, given its spend counter?"""
        return (self.exhaust_budget == budget
                and spent > self.exhaust_after)

    def simplex_should_fail(self, call_number: int) -> bool:
        """Should the ``call_number``-th simplex solve fail?"""
        return (self.fail_simplex_at is not None
                and call_number == self.fail_simplex_at)

    def cancels_at(self, checkpoint_number: int) -> bool:
        """Should the ``checkpoint_number``-th checkpoint observe a
        cancellation?"""
        return (self.cancel_at_checkpoint is not None
                and checkpoint_number >= self.cancel_at_checkpoint)

    # -- queries used by the storage layer ------------------------------

    def write_should_fail(self, write_number: int) -> bool:
        """Should the ``write_number``-th storage write fail outright
        (nothing persisted)?"""
        return (self.fail_write_at is not None
                and write_number == self.fail_write_at)

    def write_torn(self, write_number: int) -> bool:
        """Should the ``write_number``-th storage write be torn
        (persist only :attr:`torn_write_bytes`, then fail)?"""
        return (self.torn_write_at is not None
                and write_number == self.torn_write_at)

    def fsync_should_fail(self, fsync_number: int) -> bool:
        """Should the ``fsync_number``-th storage fsync fail?"""
        return (self.fail_fsync_at is not None
                and fsync_number == self.fail_fsync_at)

    def bytes_admitted(self, written_before: int, size: int) -> int:
        """How many of a ``size``-byte write fit under the disk-full
        budget, given the bytes already written (``size`` when no
        budget is configured)."""
        if self.disk_full_after_bytes is None:
            return size
        return max(0, min(size,
                          self.disk_full_after_bytes - written_before))

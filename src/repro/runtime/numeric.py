"""Import guards for the optional numeric stack (the ``fast`` extra).

``pyproject.toml`` declares ``fast = ["numpy", "scipy"]``; neither is a
hard dependency, so every consumer of the numeric fast path
(:mod:`repro.constraints.matrix`, :mod:`repro.constraints.kernel`, the
vectorized index sweep) must degrade cleanly when the extra is absent.
This module is the single place that probes for the libraries:

* :func:`numeric_available` — is numpy importable?  This is the gate
  the :class:`~repro.runtime.context.QueryContext` ``numeric`` option
  defaults to;
* :func:`get_numpy` — the module object, or ``None``;
* :func:`get_linprog` — ``scipy.optimize.linprog``, or ``None`` (the
  float-LP kernel falls back to its pure-python simplex).

Probes run once and memoize; :func:`force` lets tests simulate a
missing (or present) stack for the dynamic extent without touching
``sys.modules``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

#: Probe cache: ``_UNPROBED`` until the first import attempt.
_UNPROBED = object()

_numpy: Any = _UNPROBED
_linprog: Any = _UNPROBED

#: Test override: ``None`` = probe normally, ``False`` = pretend the
#: whole numeric stack is missing.
_forced: bool | None = None


def get_numpy() -> Any:
    """The ``numpy`` module, or ``None`` when the ``fast`` extra is not
    installed (or :func:`force`\\ d off)."""
    global _numpy
    if _forced is False:
        return None
    if _numpy is _UNPROBED:
        try:
            import numpy  # noqa: F401 - probe
            _numpy = numpy
        except Exception:
            _numpy = None
    return _numpy


def get_linprog() -> Callable[..., Any] | None:
    """``scipy.optimize.linprog``, or ``None`` when scipy is missing
    (the kernel then uses its pure-python float simplex)."""
    global _linprog
    if _forced is False:
        return None
    if _linprog is _UNPROBED:
        try:
            from scipy.optimize import linprog
            _linprog = linprog
        except Exception:
            _linprog = None
    return _linprog


def numeric_available() -> bool:
    """Can the numeric fast path run at all?  True when numpy imports.

    This is what ``QueryContext(numeric=None)`` (the default) resolves
    to; ``numeric=True`` forces the float kernel on even without numpy
    (pure-python packing and simplex), ``numeric=False`` disables it.
    """
    return get_numpy() is not None


def scipy_available() -> bool:
    return get_linprog() is not None


@contextmanager
def numeric_mode(enabled: bool) -> Iterator[None]:
    """Enable/disable the numeric fast path for the dynamic extent —
    the shim mirror of ``QueryContext(numeric=...)``, like
    :func:`repro.sqlc.index.indexing` for the box index."""
    from repro.runtime import context as context_mod
    derived = context_mod.current_context().derive(numeric=enabled)
    with derived.activate():
        yield


@contextmanager
def force(available: bool | None) -> Iterator[None]:
    """Override the probe for the dynamic extent (tests only):
    ``force(False)`` simulates a missing ``fast`` extra, ``force(None)``
    restores normal probing."""
    global _forced
    previous = _forced
    _forced = available
    try:
        yield
    finally:
        _forced = previous

"""Resource governance for query execution.

Public surface:

* :class:`QueryContext` — one object owning all per-query execution
  state (guard, cache, stats, options); :func:`current_context`
  resolves the ambient one (see ``docs/API.md``, "Architecture");
* :class:`ExecutionStats` / :class:`PhaseRecord` — the per-execution
  account every layer writes into, and the pipeline's phase trace;
* :class:`ExecutionGuard` — deadlines, work budgets, cancellation;
* :func:`guarded` / :func:`current_guard` — the ambient activation
  protocol used by the engine's hot paths;
* :class:`FaultPlan` — deterministic fault injection for testing every
  degradation path;
* :class:`ConstraintCache` / :func:`caching` / :func:`prefilter` — the
  constraint-level memoization layer and the interval-prefilter gate
  (see ``docs/API.md``, "Performance: caching and prefilters");
* :class:`PlanCache` — the compiled-plan cache keyed on (query AST,
  schema fingerprint, options); see ``docs/API.md``, "Prepared queries
  & the plan cache";
* :func:`parallelism` / :func:`current_parallelism` — the partitioned
  parallel evaluator's worker-count gate (see ``docs/API.md``,
  "Indexing & parallel execution");
* :func:`numeric_available` / :func:`scipy_available` — the single
  import guard in front of the optional ``fast`` extra (numpy/scipy);
  the numeric fast path (see ``docs/API.md``, "Numeric fast path")
  degrades cleanly when the extra is missing.
"""

from repro.runtime.cache import (
    ConstraintCache,
    active_cache,
    caching,
    clear_global_cache,
    get_global_cache,
    memoized,
    prefilter,
    prefilter_active,
)
from repro.runtime.context import (
    ExecutionStats,
    PhaseRecord,
    QueryContext,
    current_context,
    default_context,
)
from repro.runtime.faults import BUDGETS, FaultPlan
from repro.runtime.plancache import (
    PlanCache,
    active_plan_cache,
    clear_global_plan_cache,
    get_global_plan_cache,
)
from repro.runtime.numeric import (
    numeric_available,
    numeric_mode,
    scipy_available,
)
from repro.runtime.guard import (
    POLICIES,
    ExecutionGuard,
    current_guard,
    guarded,
    should_degrade,
)
from repro.runtime.parallel import (
    current_parallelism,
    filter_rows,
    parallelism,
    should_partition,
)

__all__ = [
    "BUDGETS",
    "POLICIES",
    "ConstraintCache",
    "ExecutionGuard",
    "ExecutionStats",
    "FaultPlan",
    "PhaseRecord",
    "PlanCache",
    "QueryContext",
    "active_cache",
    "active_plan_cache",
    "caching",
    "clear_global_cache",
    "clear_global_plan_cache",
    "get_global_plan_cache",
    "current_context",
    "current_guard",
    "current_parallelism",
    "default_context",
    "filter_rows",
    "get_global_cache",
    "guarded",
    "memoized",
    "numeric_available",
    "numeric_mode",
    "parallelism",
    "prefilter",
    "prefilter_active",
    "scipy_available",
    "should_degrade",
    "should_partition",
]

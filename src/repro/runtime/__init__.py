"""Resource governance for query execution.

Public surface:

* :class:`ExecutionGuard` — deadlines, work budgets, cancellation;
* :func:`guarded` / :func:`current_guard` — the ambient activation
  protocol used by the engine's hot paths;
* :class:`FaultPlan` — deterministic fault injection for testing every
  degradation path;
* :class:`ConstraintCache` / :func:`caching` / :func:`prefilter` — the
  constraint-level memoization layer and the interval-prefilter gate
  (see ``docs/API.md``, "Performance: caching and prefilters").

See ``docs/API.md`` ("Resource limits and graceful degradation").
"""

from repro.runtime.cache import (
    ConstraintCache,
    active_cache,
    caching,
    clear_global_cache,
    get_global_cache,
    memoized,
    prefilter,
    prefilter_active,
)
from repro.runtime.faults import BUDGETS, FaultPlan
from repro.runtime.guard import (
    POLICIES,
    ExecutionGuard,
    current_guard,
    guarded,
    should_degrade,
)

__all__ = [
    "BUDGETS",
    "POLICIES",
    "ConstraintCache",
    "ExecutionGuard",
    "FaultPlan",
    "active_cache",
    "caching",
    "clear_global_cache",
    "current_guard",
    "get_global_cache",
    "guarded",
    "memoized",
    "prefilter",
    "prefilter_active",
    "should_degrade",
]

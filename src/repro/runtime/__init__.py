"""Resource governance for query execution.

Public surface:

* :class:`ExecutionGuard` — deadlines, work budgets, cancellation;
* :func:`guarded` / :func:`current_guard` — the ambient activation
  protocol used by the engine's hot paths;
* :class:`FaultPlan` — deterministic fault injection for testing every
  degradation path.

See ``docs/API.md`` ("Resource limits and graceful degradation").
"""

from repro.runtime.faults import BUDGETS, FaultPlan
from repro.runtime.guard import (
    POLICIES,
    ExecutionGuard,
    current_guard,
    guarded,
    should_degrade,
)

__all__ = [
    "BUDGETS",
    "POLICIES",
    "ExecutionGuard",
    "FaultPlan",
    "current_guard",
    "guarded",
    "should_degrade",
]

"""The compiled-plan cache — memoizing the compile pipeline itself.

PR 4 restaged compilation (parse → analyze → translate → rewrite →
physical plan) as an inspectable pipeline; this module caches its
product.  In constraint databases the compilation/elimination machinery
often dominates evaluation cost (Giusti, Heintz & Kuijpers), so a
workload of many small repeated queries — exactly the query-server
shape of the ROADMAP north star — spends most of its time re-deriving
identical plans.

A plan is reusable because PR 7 made it *database-free*: plan nodes
reference relations by catalog name and predicate closures resolve the
database through :func:`repro.runtime.context.bound_db` at evaluation
time, so one compiled plan serves every database whose schema matches.
Parameter slots (``$name``) stay symbolic in the plan and resolve from
the active context's bindings, so one plan also serves all parameter
bindings.

Keys are ``(query AST, schema fingerprint, plan-relevant options)``:

* the **raw parsed AST** — every AST node is a frozen dataclass, so the
  tree is hashable and structurally comparable; two textual queries
  differing only in whitespace/comments share an entry, and a hit
  skips *analysis and translation entirely* (zero translate/optimize
  phase records);
* the **schema fingerprint** (:meth:`repro.model.schema.Schema.
  fingerprint`, the storage layer's content digest) — equal-content
  schemas share plans (a ``Store``-restored database reuses plans
  prepared against the original), and any DDL mutation changes the key;
* the **options** that change the compiled plan: ``numeric``,
  ``indexing``, ``use_optimizer``, ``parallelism`` and ``shards``
  (they steer the physical rewrites — sharding selects scatter-gather
  join nodes — so they must partition the cache).

Guard interaction mirrors the constraint cache
(:mod:`repro.runtime.cache`): a hit runs one guard checkpoint (done by
the pipeline), and a guard carrying a :class:`~repro.runtime.faults.
FaultPlan` bypasses the cache entirely — fault schedules count
compile-phase ticks, so a cached plan would shift injected failures.

Invalidation: the cache tracks the last fingerprint seen per schema
*object* (weakly, so cached schemas die naturally).  When a schema
reappears with a different fingerprint — DDL ran, e.g. a CREATE VIEW
materialized new classes — every entry compiled against the old
fingerprint is evicted and counted in ``invalidations``.  Keys carry
the fingerprint too, so even an un-evicted stale entry can never be
*served*; eviction just keeps the LRU from filling with dead plans.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, TYPE_CHECKING
from weakref import WeakKeyDictionary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.model.schema import Schema
    from repro.runtime.context import QueryContext

#: Default LRU capacity — entries are plan trees plus their analysis;
#: a few hundred distinct (query, schema, options) shapes comfortably
#: covers the repeated-small-query workloads the cache targets.
DEFAULT_PLAN_CACHE_SIZE = 256


def plan_options_key(ctx: "QueryContext") -> tuple:
    """The plan-relevant slice of a context's options — everything that
    changes what the compile pipeline produces."""
    return (ctx.numeric, ctx.indexing, ctx.use_optimizer,
            ctx.parallelism, ctx.shards)


def plan_key(query_ast: Hashable, fingerprint: bytes,
             ctx: "QueryContext") -> tuple:
    """The full cache key for one compilation."""
    return (query_ast, fingerprint, plan_options_key(ctx))


class PlanCache:
    """A size-bounded LRU of compiled query plans.

    ``compile_saved`` accumulates, over all hits, the wall-clock
    seconds the original (miss-time) compilation spent past parsing —
    the headline number reported by ``--analyze`` and the E20
    benchmark.

    Every public method holds an internal lock: the process default is
    shared by all concurrent server sessions, and an unsynchronized
    ``OrderedDict`` corrupts under interleaved ``move_to_end`` /
    ``popitem``.  The widest race left open is check-then-act across
    calls (two threads miss the same key and both compile) — benign,
    the second ``store`` overwrites with an equal plan.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions",
                 "invalidations", "compile_saved", "_data", "_asts",
                 "_schema_fingerprints", "_lock", "__weakref__")

    def __init__(self, maxsize: int = DEFAULT_PLAN_CACHE_SIZE):
        if maxsize <= 0:
            raise ValueError(
                f"plan cache maxsize must be positive, got {maxsize!r}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.compile_saved = 0.0
        #: key -> (compiled plan, compile seconds past parsing)
        self._data: OrderedDict[Hashable, tuple[Any, float]] \
            = OrderedDict()
        #: query text -> parsed AST.  Parsing is pure syntax (no schema
        #: involved), so this memo never needs invalidating; it removes
        #: the tokenizer from the repeat-query path while the *plan*
        #: key stays the AST, so textual variants still share one plan.
        self._asts: OrderedDict[str, Any] = OrderedDict()
        #: Last fingerprint seen per live schema object; a change means
        #: DDL ran and the old fingerprint's entries are dead.
        self._schema_fingerprints: WeakKeyDictionary
        self._schema_fingerprints = WeakKeyDictionary()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def ast_for(self, text: str, parser) -> Any:
        """The parsed AST for ``text``, memoized (LRU, same bound as
        the plan table).  ``parser`` runs outside the lock — parsing is
        pure, so two racing threads at worst parse the same text twice.
        """
        with self._lock:
            entry = self._asts.get(text)
            if entry is not None:
                self._asts.move_to_end(text)
                return entry
        entry = parser(text)
        with self._lock:
            if text not in self._asts \
                    and len(self._asts) >= self.maxsize:
                self._asts.popitem(last=False)
            self._asts[text] = entry
        return entry

    # -- schema tracking --------------------------------------------------

    def note_schema(self, schema: "Schema") -> bytes:
        """Record ``schema``'s current fingerprint, evicting every
        entry compiled against a previous fingerprint of this same
        object (counted in ``invalidations``).  Returns the fingerprint
        for key building."""
        fingerprint = schema.fingerprint()
        with self._lock:
            previous = self._schema_fingerprints.get(schema)
            if previous is not None and previous != fingerprint:
                stale = [key for key in self._data
                         if key[1] == previous]
                for key in stale:
                    del self._data[key]
                self.invalidations += len(stale)
            self._schema_fingerprints[schema] = fingerprint
        return fingerprint

    # -- LRU protocol -----------------------------------------------------

    def lookup(self, key: Hashable) -> tuple[bool, Any, float]:
        """``(hit, compiled, seconds_saved)``; a hit refreshes the
        entry's recency."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return False, None, 0.0
            self._data.move_to_end(key)
            self.hits += 1
            self.compile_saved += entry[1]
            return True, entry[0], entry[1]

    def store(self, key: Hashable, compiled: Any,
              seconds: float) -> None:
        """Insert a compiled plan (costing ``seconds`` to compile past
        parsing), evicting the least-recently-used entry if full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            elif len(self._data) >= self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
            self._data[key] = (compiled, seconds)

    def clear(self) -> None:
        """Drop all entries and reset every counter."""
        with self._lock:
            self._data.clear()
            self._asts.clear()
            self._schema_fingerprints.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0
            self.compile_saved = 0.0

    def counters(self) -> dict[str, Any]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "compile_saved": self.compile_saved,
                "entries": len(self._data),
            }


# ---------------------------------------------------------------------------
# The process-global cache (the QueryContext default)
# ---------------------------------------------------------------------------

_global_plan_cache = PlanCache()


def get_global_plan_cache() -> PlanCache:
    return _global_plan_cache


def clear_global_plan_cache() -> None:
    _global_plan_cache.clear()


def active_plan_cache() -> PlanCache | None:
    """The plan cache the current context should use, or ``None``
    (disabled, or fault injection active).  Shim over
    :meth:`repro.runtime.context.QueryContext.active_plan_cache`."""
    from repro.runtime import context
    return context.current_context().active_plan_cache()

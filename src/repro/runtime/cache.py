"""Constraint-level memoization — the engine's second hot-path layer.

Canonical keys are the paper's logical oids, and they get recomputed
per join row; every recomputation bottoms out in exact-``Fraction``
simplex runs.  This module caches the three expensive decision results
(``is_satisfiable``, ``canonical_conjunctive``,
``implication.atom_redundant_in``) behind a size-bounded LRU keyed on
the structural content of the inputs — atoms normalize on construction
(:mod:`repro.constraints.atoms`), so the sorted atom tuple *is* a
structural hash, and keys built from canonical forms are alpha-invariant
by construction.

Guard interaction (the part that keeps the resource-governance layer
honest):

* a cache **hit** spends no pivot/branch/canonical budget — the work
  was genuinely not redone — but still runs one
  :meth:`~repro.runtime.guard.ExecutionGuard.checkpoint`, so
  cancellation and wall-clock deadlines are observed on the fast path;
* a guard carrying a :class:`~repro.runtime.faults.FaultPlan`
  **bypasses** the cache entirely (no reads, no writes): fault tests
  count ticks, and a warm cache would make injected failures
  nondeterministic.

The cache is process-global by default and travels inside the active
:class:`~repro.runtime.context.QueryContext`; :func:`caching` scopes a
different cache (or ``None`` to disable) to a dynamic extent by
deriving a context, which is what the CLI's
``--no-cache``/``--cache-size`` flags and the A/B benchmarks use.
:func:`prefilter` gates the interval prefilter
(:mod:`repro.constraints.bounds`) the same way.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Hashable, Iterator, TypeVar

T = TypeVar("T")

#: Default LRU capacity — entries are single booleans or conjunction
#: objects, so memory per entry is dominated by the key's atom tuples.
DEFAULT_CACHE_SIZE = 4096


class ConstraintCache:
    """A size-bounded LRU of constraint-level decision results.

    ``simplex_saved`` accumulates, over all hits, the number of simplex
    solves the original (miss-time) computation performed — the
    headline effectiveness number reported by ``ExecutionStats`` and
    the E16 benchmark.

    Methods are individually thread-safe (one internal lock): the
    process-global cache is shared by every concurrent server session,
    and ``OrderedDict`` recency updates corrupt under unsynchronized
    interleaving.  Check-then-act across calls (two threads miss the
    same key, both compute, both store) stays possible and is benign —
    decision results are deterministic, the second store overwrites
    with an equal value.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions",
                 "simplex_saved", "_data", "_lock")

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize <= 0:
            raise ValueError(
                f"cache maxsize must be positive, got {maxsize!r}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.simplex_saved = 0
        self._data: OrderedDict[Hashable, tuple[object, int]] \
            = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def lookup(self, key: Hashable) -> tuple[bool, object]:
        """``(hit, value)``; a hit refreshes the entry's recency."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return False, None
            self._data.move_to_end(key)
            self.hits += 1
            self.simplex_saved += entry[1]
            return True, entry[0]

    def store(self, key: Hashable, value: object, cost: int = 0) -> None:
        """Insert ``value`` (costing ``cost`` simplex solves to
        compute), evicting the least-recently-used entry if full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            elif len(self._data) >= self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
            self._data[key] = (value, cost)

    def clear(self) -> None:
        """Drop all entries and reset every counter."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.simplex_saved = 0

    def absorb(self, delta: dict) -> None:
        """Fold a worker process's counter deltas into this cache (the
        entries a forked worker stored die with it, but its lookup
        traffic belongs in the parent's account)."""
        with self._lock:
            self.hits += delta.get("hits", 0)
            self.misses += delta.get("misses", 0)
            self.evictions += delta.get("evictions", 0)
            self.simplex_saved += delta.get("simplex_saved", 0)

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "simplex_saved": self.simplex_saved,
                "entries": len(self._data),
            }


# ---------------------------------------------------------------------------
# Ambient cache selection — shims over the active QueryContext
# ---------------------------------------------------------------------------

_global_cache = ConstraintCache()


def get_global_cache() -> ConstraintCache:
    return _global_cache


def clear_global_cache() -> None:
    _global_cache.clear()


def active_cache() -> ConstraintCache | None:
    """The cache the current context should use, or ``None``.

    ``None`` when caching is disabled in this context **or** the active
    guard injects faults (fault determinism beats speed).  Shim over
    :meth:`repro.runtime.context.QueryContext.active_cache`.
    """
    from repro.runtime import context
    return context.current_context().active_cache()


def prefilter_active() -> bool:
    """Is the interval prefilter enabled in this context?  Off under
    fault injection, for the same determinism reason as the cache."""
    from repro.runtime import context
    return context.current_context().prefilter_active()


@contextmanager
def caching(cache: ConstraintCache | None) -> Iterator[None]:
    """Use ``cache`` for the dynamic extent; ``caching(None)``
    disables memoization entirely (the A/B baseline).  Implemented by
    deriving a :class:`~repro.runtime.context.QueryContext` with the
    override and activating it."""
    from repro.runtime import context
    derived = context.current_context().derive(cache=cache)
    with derived.activate():
        yield


@contextmanager
def prefilter(enabled: bool) -> Iterator[None]:
    """Enable/disable the bounding-box prefilter for the extent."""
    from repro.runtime import context
    derived = context.current_context().derive(prefilter=enabled)
    with derived.activate():
        yield


# ---------------------------------------------------------------------------
# The memoization protocol
# ---------------------------------------------------------------------------


def memoized(key: Hashable, compute: Callable[[], T]) -> T:
    """``compute()`` through the active context's cache — shim over
    :meth:`repro.runtime.context.QueryContext.memoized` for public
    entry points; internal layers call the context method directly.
    """
    from repro.runtime import context
    return context.current_context().memoized(key, compute)


def counters() -> dict[str, int]:
    """Counters of the context's cache (zeros when disabled).

    Reads the context's *configured* cache, not :func:`active_cache`:
    fault injection bypasses the cache for lookups but should not zero
    the report the CLI prints.
    """
    from repro.runtime import context
    cache = context.current_context().cache
    if cache is None:
        return {"hits": 0, "misses": 0, "evictions": 0,
                "simplex_saved": 0, "entries": 0}
    return cache.counters()

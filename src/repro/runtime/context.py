"""The execution context: one object owning all per-query state.

PRs 1-3 grew guards, caches, fault plans, stats, index toggles, and
parallel settings as *ambient* state — five separate ``ContextVar``\\ s
plus module-level singletons, threaded implicitly between layers.  That
state could not be isolated per query, which blocks the ROADMAP north
star of serving many concurrent queries from one process.

:class:`QueryContext` replaces all of it.  One object owns

* the :class:`~repro.runtime.guard.ExecutionGuard` (budgets,
  cancellation, and — through the guard — the
  :class:`~repro.runtime.faults.FaultPlan`);
* the :class:`~repro.runtime.cache.ConstraintCache` (or ``None`` for
  the memoization-off baseline);
* the :class:`ExecutionStats` account every layer writes into;
* the execution options: interval prefilter, box indexing, worker
  parallelism, and whether the optimizer runs.

Every layer of the engine *receives* the context explicitly (a ``ctx``
parameter resolved once at each public entry point); exactly one
``ContextVar`` remains, holding the active ``QueryContext``, and the
pre-existing ambient APIs (``guarded``, ``caching``, ``prefilter``,
``indexing``, ``parallelism``) survive as thin shims that derive and
activate a context.  Two ``QueryContext``\\ s are fully isolated: two
engines with different budgets and caches can run interleaved in one
process without stats, cache, or guard bleed-through.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Hashable,
    Iterator,
    Mapping,
    TYPE_CHECKING,
    TypeVar,
    cast,
)

from repro.runtime.guard import ExecutionGuard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.model.database import Database
    from repro.model.oid import Oid
    from repro.runtime.cache import ConstraintCache
    from repro.runtime.faults import FaultPlan
    from repro.runtime.plancache import PlanCache
    from repro.storage.store import Store

T = TypeVar("T")


@dataclass
class PhaseRecord:
    """One compilation/execution phase as recorded by the pipeline.

    ``plan_before``/``plan_after`` hold rendered plan trees for the
    phases that transform plans (``None`` for phases that do not).
    """

    name: str
    seconds: float
    detail: str = ""
    plan_before: str | None = None
    plan_after: str | None = None


def _merged(**meta: str) -> Any:
    """A counter field carrying explicit merge metadata."""
    return field(default=0, metadata=meta)


@dataclass
class ExecutionStats:
    """Counters filled during one execution (used by the benchmarks,
    the CLI's ``--analyze``, and the parallel evaluator's merge).

    The budget-spend block mirrors the context's
    :class:`~repro.runtime.guard.ExecutionGuard` counters; without a
    guard it stays at zero.  ``exhausted`` names the budget that
    tripped — recorded from the guard on every path, not only when the
    execution degraded.  The cache/box/index/parallel blocks are
    written *directly* by the layers doing the work, so the numbers are
    per-context, not process-global deltas.

    Every field declares how it merges across parallel workers in its
    dataclass metadata (``sum`` is the default for counters; peaks use
    ``max``; lists ``extend``; engine-assigned fields are ``skip``\\ ed)
    — :meth:`merge` is generic over the declared fields, so counters
    added later automatically survive a worker round-trip.
    """

    optimized: bool = field(default=False, metadata={"merge": "skip"})
    input_rows: int = _merged(merge="skip")
    output_rows: int = _merged(merge="skip")
    # -- budget spend (from the context's ExecutionGuard) --------------
    elapsed: float = field(default=0.0, metadata={"merge": "max"})
    pivots: int = 0
    branches: int = 0
    canonical_steps: int = 0
    peak_disjuncts: int = _merged(merge="max")
    checkpoints: int = 0
    simplex_calls: int = 0
    exhausted: str | None = field(default=None,
                                  metadata={"merge": "first"})
    warnings: list[str] = field(default_factory=list,
                                metadata={"merge": "extend"})
    # -- cache / prefilter effectiveness -------------------------------
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_simplex_saved: int = 0
    box_checks: int = 0
    box_refutations: int = 0
    #: Exact-simplex invocations booked by the solver itself (the
    #: per-context successor of ``simplex.call_count()``).
    simplex_solves: int = 0
    # -- numeric fast path (float prefilter / exact fallback) ----------
    numeric_accepts: int = 0
    numeric_rejects: int = 0
    numeric_fallbacks: int = 0
    # -- box index / parallel execution --------------------------------
    index_builds: int = 0
    #: Box indexes brought current by *extending* a cached index with
    #: appended rows instead of rebuilding from scratch
    #: (:func:`repro.sqlc.index.index_for`).
    index_extends: int = 0
    index_probes: int = 0
    index_candidates: int = 0
    candidates_pruned: int = 0
    partitions: int = 0
    workers: int = _merged(merge="max")
    parallel_runs: int = 0
    parallel_fallbacks: int = 0
    # -- sharded scatter-gather execution -------------------------------
    #: Scatter-gather joins evaluated over sharded relations.
    shard_joins: int = 0
    #: Shard pairs whose bounding envelopes were disjoint — skipped
    #: without probing either shard's index.
    shard_pairs_pruned: int = 0
    #: Shard pairs that survived the envelope test and were probed.
    shard_pairs_probed: int = 0
    #: Surviving shard pairs whose index probes ran concurrently in
    #: pool workers (the rest probed serially in-process).
    shard_pairs_parallel: int = 0
    # -- persistent worker pool -----------------------------------------
    #: Parallel regions dispatched through the persistent pool (the
    #: remainder took the legacy fork-per-query or serial path).
    pool_dispatches: int = 0
    #: Pool dispatches that had to create (or grow) the pool first;
    #: ``pool_dispatches - pool_cold_starts`` ran on warm workers.
    pool_cold_starts: int = 0
    # -- compiled-plan cache --------------------------------------------
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Cached plans evicted because their schema changed underneath.
    plan_cache_invalidations: int = 0
    #: Compile seconds skipped by plan-cache hits.
    plan_compile_saved: float = 0.0
    # -- pipeline phase trace ------------------------------------------
    phases: list[PhaseRecord] = field(default_factory=list,
                                      metadata={"merge": "extend"})

    def reset(self) -> None:
        """Zero every per-execution field so a stats object can be
        reused across executions without accumulating stale values."""
        fresh = ExecutionStats()
        for f in dataclasses.fields(self):
            setattr(self, f.name, getattr(fresh, f.name))

    def snapshot(self) -> dict[str, Any]:
        """The counters as a plain picklable dict (lists copied) — the
        transport format workers ship back to the parent process."""
        out: dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, list) else value
        return out

    def merge(self, other: "ExecutionStats | Mapping[str, Any]") -> None:
        """Fold another account (object or :meth:`snapshot` dict) into
        this one, using each field's declared reduction.

        Generic over ``dataclasses.fields``: a counter added to this
        class later merges correctly with no change here (``sum`` by
        default, or whatever its metadata declares).
        """
        if isinstance(other, Mapping):
            def get(name: str) -> Any:
                return other.get(name)
        else:
            def get(name: str) -> Any:
                return getattr(other, name, None)
        for f in dataclasses.fields(self):
            how = f.metadata.get("merge", "sum")
            if how == "skip":
                continue
            value = get(f.name)
            if value is None:
                continue
            current = getattr(self, f.name)
            if how == "sum":
                setattr(self, f.name, current + value)
            elif how == "max":
                if value > current:
                    setattr(self, f.name, value)
            elif how == "first":
                if current is None:
                    setattr(self, f.name, value)
            elif how == "extend":
                current.extend(value)

    def capture_guard(self, guard: ExecutionGuard | None,
                      baseline: dict[str, Any] | None = None) -> None:
        """Record the guard's spend, as a delta against ``baseline`` (a
        prior :meth:`ExecutionGuard.spend` snapshot) when given —
        guards accumulate across executions, so reusing one without a
        baseline would re-report earlier executions' spend."""
        if guard is None:
            return
        base = baseline or {}
        self.elapsed = guard.elapsed() - base.get("elapsed", 0.0)
        self.pivots = guard.pivots - base.get("pivots", 0)
        self.branches = guard.branches - base.get("branches", 0)
        self.canonical_steps = guard.canonical_steps \
            - base.get("canonical_steps", 0)
        self.peak_disjuncts = guard.peak_disjuncts
        self.checkpoints = guard.checkpoints \
            - base.get("checkpoints", 0)
        self.simplex_calls = guard.simplex_calls \
            - base.get("simplex_calls", 0)
        if self.exhausted is None and guard.exhausted is not None \
                and guard.exhausted != base.get("exhausted"):
            self.exhausted = guard.exhausted


#: Sentinel distinguishing "not overridden" from an explicit ``None``
#: (``cache=None`` means *caching disabled*, a meaningful value).
_UNSET: Any = object()

#: The attributes :meth:`QueryContext.derive` may override.
_DERIVABLE = frozenset({
    "guard", "cache", "prefilter", "indexing", "parallelism",
    "numeric", "use_optimizer", "catalog", "stats", "store",
    "db", "params", "plan_cache", "shards",
})


class QueryContext:
    """All execution state of one query, as one explicit object.

    Construction is cheap; contexts are freely derived per query or per
    dynamic extent (:meth:`derive`).  ``cache`` defaults to the
    process-global constraint cache; pass ``cache=None`` for the
    memoization-off baseline.  ``stats`` defaults to a fresh
    :class:`ExecutionStats`; :meth:`derive` *shares* the parent's stats
    unless overridden, so nested activations keep one coherent account.
    """

    __slots__ = ("guard", "cache", "prefilter", "indexing",
                 "parallelism", "numeric", "use_optimizer", "catalog",
                 "stats", "store", "db", "params", "plan_cache",
                 "shards")

    def __init__(self, *,
                 guard: ExecutionGuard | None = None,
                 cache: "ConstraintCache | None" = _UNSET,
                 prefilter: bool = True,
                 indexing: bool = True,
                 parallelism: int = 1,
                 numeric: bool | None = None,
                 use_optimizer: bool = True,
                 catalog: Mapping[str, Any] | None = None,
                 stats: ExecutionStats | None = None,
                 store: "Store | None" = None,
                 db: "Database | None" = None,
                 params: "Mapping[str, Oid] | None" = None,
                 plan_cache: "PlanCache | None" = _UNSET,
                 shards: int = 0) -> None:
        if parallelism < 1:
            raise ValueError(
                f"parallelism must be >= 1, got {parallelism!r}")
        if shards < 0 or shards == 1:
            raise ValueError(
                f"shards must be 0 (unsharded) or >= 2, got {shards!r}")
        if cache is _UNSET:
            from repro.runtime.cache import get_global_cache
            cache = get_global_cache()
        if plan_cache is _UNSET:
            from repro.runtime.plancache import get_global_plan_cache
            plan_cache = get_global_plan_cache()
        self.guard = guard
        self.cache = cache
        self.prefilter = prefilter
        self.indexing = indexing
        self.parallelism = parallelism
        self.numeric = numeric
        self.use_optimizer = use_optimizer
        self.catalog = catalog
        self.stats = stats if stats is not None else ExecutionStats()
        #: The durable :class:`~repro.storage.store.Store` this query
        #: runs against, when any — carried so layers can reach the
        #: store's relations and report durability state without a
        #: second channel.  ``None`` for purely in-memory execution.
        self.store = store
        #: The database a cached (database-free) plan is bound to for
        #: this execution — set by the pipeline's execute step; plan
        #: closures read it through :func:`bound_db`.
        self.db = db
        #: Parameter bindings (``$name`` -> oid) for this execution.
        self.params = params
        #: The compiled-plan cache, or ``None`` to compile every query
        #: from scratch (the ``--no-plan-cache`` baseline).
        self.plan_cache = plan_cache
        #: Hash/range-partition catalog relations into this many shards
        #: when flattening (0 = monolithic relations, the default).
        #: Sharded catalogs enable the scatter-gather
        #: :class:`~repro.sqlc.algebra.ShardedIndexJoin`.
        self.shards = shards

    # -- derived views ---------------------------------------------------

    @property
    def faults(self) -> "FaultPlan | None":
        """The fault-injection plan, owned through the guard."""
        return self.guard.faults if self.guard is not None else None

    @property
    def on_exhaustion(self) -> str:
        """The degrade policy (``"fail"`` without a guard)."""
        return self.guard.on_exhaustion if self.guard is not None \
            else "fail"

    def active_cache(self) -> "ConstraintCache | None":
        """The cache this context should use, or ``None``: caching
        disabled, or the guard injects faults (fault determinism beats
        speed — a warm cache would make injected failures
        nondeterministic)."""
        if self.cache is None:
            return None
        if self.guard is not None and self.guard.faults is not None:
            return None
        return self.cache

    def active_plan_cache(self) -> "PlanCache | None":
        """The compiled-plan cache this context should use, or
        ``None``: plan caching disabled, or the guard injects faults
        (a fault schedule counts compile-phase ticks, so a cached plan
        would shift every injected failure)."""
        if self.plan_cache is None:
            return None
        if self.guard is not None and self.guard.faults is not None:
            return None
        return self.plan_cache

    def prefilter_active(self) -> bool:
        """Is the interval prefilter enabled?  Off under fault
        injection, for the same determinism reason as the cache."""
        if not self.prefilter:
            return False
        return self.guard is None or self.guard.faults is None

    def numeric_active(self) -> bool:
        """Is the float-prefilter numeric fast path enabled?

        ``numeric=None`` (the default) resolves to "on iff numpy
        imports"; ``numeric=True`` forces the kernel on (pure-python
        fallbacks carry it without the ``fast`` extra); ``numeric=False``
        disables it.  Always off under fault injection: the kernel
        changes how many exact-solver calls a run makes, which would
        perturb deterministic fault schedules.
        """
        if self.numeric is False:
            return False
        if self.guard is not None and self.guard.faults is not None:
            return False
        if self.numeric is None:
            from repro.runtime.numeric import numeric_available
            return numeric_available()
        return True

    # -- memoization protocol --------------------------------------------

    def memoized(self, key: Hashable, compute: Callable[[], T]) -> T:
        """``compute()`` through this context's cache.

        On a hit the stored result is returned after a single guard
        checkpoint — budgets are not spent, but cancellation and
        deadlines still fire.  On a miss the computation runs normally
        (spending its budgets) and the result is stored with its
        simplex-call cost.  Exceptions (budget exhaustion included) are
        never cached.  Hit/miss/eviction traffic is booked both on the
        cache object (its cumulative counters) and on this context's
        :attr:`stats`.
        """
        cache = self.active_cache()
        if cache is None:
            return compute()
        saved_before = cache.simplex_saved
        hit, value = cache.lookup(key)
        if hit:
            self.stats.cache_hits += 1
            self.stats.cache_simplex_saved += \
                cache.simplex_saved - saved_before
            if self.guard is not None:
                self.guard.checkpoint("cache")
            return cast(T, value)
        self.stats.cache_misses += 1
        solves_before = self.stats.simplex_solves
        result = compute()
        evictions_before = cache.evictions
        cache.store(key, result,
                    cost=self.stats.simplex_solves - solves_before)
        self.stats.cache_evictions += cache.evictions - evictions_before
        return result

    # -- derivation and activation ---------------------------------------

    def derive(self, **overrides: Any) -> "QueryContext":
        """A new context differing only in the given attributes.

        ``stats`` is *shared* with this context unless overridden
        (nested extents report into one account); every other attribute
        copies.  Explicit ``None`` overrides are honoured (``guard=None``
        removes the guard, ``cache=None`` disables caching).
        """
        unknown = set(overrides) - _DERIVABLE
        if unknown:
            raise TypeError(
                f"cannot derive over {sorted(unknown)}; "
                f"derivable: {sorted(_DERIVABLE)}")
        kwargs: dict[str, Any] = {
            name: overrides[name] if name in overrides
            else getattr(self, name)
            for name in _DERIVABLE
        }
        return QueryContext(**kwargs)

    @contextmanager
    def activate(self) -> Iterator["QueryContext"]:
        """Make this context ambient for the dynamic extent (starts the
        guard's deadline clock).  Activations nest; the innermost wins,
        and the previous context is restored on exit."""
        if self.guard is not None:
            self.guard.start()
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    def __repr__(self) -> str:
        parts = []
        if self.guard is not None:
            parts.append(f"guard={self.guard!r}")
        parts.append("cache=off" if self.cache is None
                     else f"cache({self.cache.maxsize})")
        if not self.prefilter:
            parts.append("prefilter=off")
        if not self.indexing:
            parts.append("indexing=off")
        if self.numeric is not None:
            parts.append(f"numeric={'on' if self.numeric else 'off'}")
        if self.parallelism > 1:
            parts.append(f"parallelism={self.parallelism}")
        if self.shards:
            parts.append(f"shards={self.shards}")
        if not self.use_optimizer:
            parts.append("optimizer=off")
        if self.store is not None:
            parts.append(f"store={self.store.path!r}")
        if self.plan_cache is None:
            parts.append("plan-cache=off")
        if self.params:
            parts.append(f"params={sorted(self.params)}")
        return f"QueryContext({', '.join(parts)})"


# ---------------------------------------------------------------------------
# The one remaining ContextVar
# ---------------------------------------------------------------------------

_ACTIVE: ContextVar[QueryContext | None] = ContextVar(
    "repro_query_context", default=None)

_default_context: QueryContext | None = None


def default_context() -> QueryContext:
    """The process-default context: no guard, the global cache, every
    option at its default.  Constructed lazily, once."""
    global _default_context
    if _default_context is None:
        _default_context = QueryContext()
    return _default_context


def current_context() -> QueryContext:
    """The context active in this dynamic extent, falling back to the
    process default (never ``None`` — unguarded code paths read their
    options from the default context)."""
    active = _ACTIVE.get()
    return active if active is not None else default_context()


def resolve(ctx: QueryContext | None) -> QueryContext:
    """The explicit ``ctx`` when given, else the ambient context — the
    one-line shim every public entry point uses."""
    return ctx if ctx is not None else current_context()


def bound_db(fallback: "Database | None" = None) -> "Database | None":
    """The database the active context binds plans to, falling back to
    ``fallback`` (the translate-time database) for direct plan
    evaluation outside the pipeline's bind step."""
    db = current_context().db
    return db if db is not None else fallback


def param_value(name: str) -> "Oid":
    """The oid bound to parameter ``$name`` in the active context.

    Raises :class:`~repro.errors.EvaluationError` when the execution
    carries no binding for it — parameters are resolved at evaluation
    time, so an unbound slot is a run-time error, not a compile-time
    one."""
    from repro.errors import EvaluationError
    params = current_context().params
    if params is None or name not in params:
        raise EvaluationError(
            f"unbound parameter ${name}; bind it via EXECUTE arguments "
            "or the params= mapping")
    return params[name]

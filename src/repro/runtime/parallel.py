"""Partitioned parallel evaluation over worker processes.

ROADMAP's north star asks the flat engine to run "as fast as the
hardware allows"; this module supplies the execution half of that:
large row filters (the exact phase of :class:`~repro.sqlc.algebra.
IndexJoin` and big ``Select`` nodes) are split into contiguous chunks
and evaluated by a ``ProcessPoolExecutor``, then merged back
deterministically.

Design points, in the order they bit:

**Determinism.**  Chunks are contiguous slices of the input row list
and results are concatenated in chunk order, so the output row order is
identical to the serial evaluation.  Runs under a
:class:`~repro.runtime.faults.FaultPlan` are forced serial — fault
schedules count ticks on one guard, and sharding the tick stream across
processes would make injected failures nondeterministic.

**Budget pro-rating.**  Each worker activates a derived
:class:`~repro.runtime.context.QueryContext` whose fresh
:class:`~repro.runtime.guard.ExecutionGuard` carries
``remaining_budget // partitions`` of every *work* budget of the
parent context's guard (pivots, branches, canonical; disjuncts is a
per-disjunction cap and passes through unchanged) and the full
remaining wall-clock deadline (workers run concurrently).  Worker
guards always use ``on_exhaustion="fail"`` so exhaustion surfaces as an
exception; the parent re-raises the first (in chunk order) worker
error, and the caller's own policy — degrade or fail — applies at the
usual engine boundary, exactly as in a serial run.

**Counter merging.**  Each worker runs under a fresh
:class:`~repro.runtime.context.ExecutionStats` and ships its
:meth:`~repro.runtime.context.ExecutionStats.snapshot` back; the parent
folds it in with the *generic*
:meth:`~repro.runtime.context.ExecutionStats.merge` (each field's
declared reduction), so counters added to ``ExecutionStats`` later
survive the round-trip with no change here.  Guard spend additionally
merges into the parent guard (budget bookkeeping), and cache traffic
into the parent's cache object (whose entries would otherwise die with
the fork); bounding-box counters live only in ``ExecutionStats`` and
need no second write.
:class:`~repro.errors.ResourceExhausted` instances don't survive
pickling (keyword-only constructors), so workers ship plain dicts and
the parent reconstructs the exception class by name.

**Transport.**  Two transports, picked per filter by whether the
predicate pickles:

* **Persistent pool** (preferred) — a lazily created, process-wide
  :class:`WorkerPool` of warm fork workers reused across queries.
  Each task ships ``(columns, row chunk, predicate, budgets, context
  options)`` over the pickle boundary, so warm workers never see stale
  fork-inherited state: they rebuild a fresh context from the shipped
  options every task.  Dispatch to a warm pool skips the per-query
  fork/teardown entirely (``pool_dispatches`` vs ``pool_cold_starts``
  in :class:`~repro.runtime.context.ExecutionStats`).  A dead pool
  (:class:`~concurrent.futures.process.BrokenProcessPool`) is
  discarded and the filter falls back to the legacy transport below.
* **Fork-per-query** (legacy fallback) — translator predicates are
  closures over the constraint engine and don't pickle; for those the
  payload is published in a module global, a one-shot pool is forked
  (inheriting it), and only chunk bounds cross the pickle boundary.

Platforms without ``fork`` fall back to serial evaluation.

**Task-level scatter.**  :func:`scatter_tasks` generalizes the
row-filter transport into a futures API: any picklable ``fn(*args)``
tasks are dispatched to the warm pool, run under pro-rated worker
guards, and their values gathered back *in task order* (deterministic
merge).  :class:`~repro.sqlc.shard.ShardedIndexJoin` uses it to probe
surviving shard pairs concurrently; the server's process executor uses
the same pool for whole-query execution.

**Cross-process cancellation.**  A worker cannot see
:meth:`~repro.runtime.guard.ExecutionGuard.cancel` called in the
parent — the flag lives in parent memory.  The *cancel board* closes
the gap: a small shared-memory byte array allocated at import time, so
every forked pool inherits it.  A dispatch that wants mid-flight
cancellation reserves a slot, ships the slot number with the task, and
the worker guard polls the slot at every checkpoint
(:meth:`~repro.runtime.guard.ExecutionGuard.bind_cancel_probe`); the
parent's gather loop writes the slot when it observes its own guard
cancelled, and the workers wind down with ``QueryCancelled`` at their
next checkpoint.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

import repro.errors as errors_mod
from repro.errors import QueryCancelled, ResourceExhausted
from repro.runtime import context as context_mod
from repro.runtime.context import ExecutionStats, QueryContext
from repro.runtime.guard import ExecutionGuard

#: Don't partition filters smaller than this: pool startup dominates.
PARTITION_THRESHOLD = 64

#: Budgets divided among workers; disjuncts caps a single disjunction
#: wherever it is built and is passed through whole.
_DIVIDED_BUDGETS = (
    ("max_pivots", "pivots"),
    ("max_branches", "branches"),
    ("max_canonical", "canonical_steps"),
)

_stats = {"runs": 0, "partitions": 0, "max_workers": 0, "fallbacks": 0,
          "pool_dispatches": 0, "pool_cold_starts": 0,
          "scatters": 0, "salvaged_chunks": 0}


def stats() -> dict[str, int]:
    """Cumulative counters: ``runs`` (parallel regions executed),
    ``partitions`` (chunks dispatched), ``max_workers`` (largest pool
    used), ``fallbacks`` (regions degraded to serial at runtime),
    ``pool_dispatches`` (tasks sent to the persistent pool),
    ``pool_cold_starts`` (persistent pools created), ``scatters``
    (task-level scatter regions), ``salvaged_chunks`` (chunk outcomes
    kept across a mid-run pool death instead of being recomputed)."""
    return dict(_stats)


def reset_stats() -> None:
    for key in _stats:
        _stats[key] = 0


# ---------------------------------------------------------------------------
# Parallelism context (the CLI's --parallel N)
# ---------------------------------------------------------------------------


def current_parallelism() -> int:
    return context_mod.current_context().parallelism


@contextmanager
def parallelism(workers: int) -> Iterator[None]:
    """Allow up to ``workers`` worker processes for the dynamic extent
    (1 = serial, the default).  Shim deriving a
    :class:`~repro.runtime.context.QueryContext` over the current one;
    the derived constructor rejects non-positive worker counts."""
    derived = context_mod.current_context().derive(parallelism=workers)
    with derived.activate():
        yield


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def should_partition(n_rows: int,
                     ctx: QueryContext | None = None) -> bool:
    """Partition this filter?  Requires parallelism in the (given or
    ambient) context, enough rows to amortize pool startup, no
    FaultPlan on the context's guard (fault determinism), a ``fork``
    start method, and not already being inside a worker."""
    ctx = context_mod.resolve(ctx)
    return _should_partition(n_rows, ctx, ctx.parallelism)


def _should_partition(n_rows: int, ctx: QueryContext,
                      limit: int) -> bool:
    if _IN_WORKER or limit < 2 or n_rows < PARTITION_THRESHOLD:
        return False
    guard = ctx.guard
    if guard is not None and guard.faults is not None:
        return False
    return _fork_available()


# ---------------------------------------------------------------------------
# The cancel board (cross-process cooperative cancellation)
# ---------------------------------------------------------------------------

#: Concurrent dispatches that can each carry a live cancel channel.
#: A dispatch that finds no free slot simply runs without one (its
#: workers still terminate on their pro-rated deadline).
CANCEL_SLOTS = 128

try:
    #: Allocated at import time — *before* any pool can fork — so every
    #: worker inherits the same shared mapping and parent writes are
    #: visible worker-side.
    _CANCEL_BOARD = multiprocessing.RawArray("b", CANCEL_SLOTS)
except Exception:  # pragma: no cover - exotic platforms
    _CANCEL_BOARD = None

_SLOT_LOCK = threading.Lock()
_SLOTS_IN_USE: set[int] = set()


def acquire_cancel_slot() -> int | None:
    """Reserve (and clear) a cancel-board slot, or ``None`` when the
    board is unavailable or fully busy.  A slot freed while a stale
    worker still polls it is harmless: the worker belongs to an
    abandoned dispatch, so a spurious cancel only stops wasted work."""
    if _CANCEL_BOARD is None:
        return None
    with _SLOT_LOCK:
        for slot in range(CANCEL_SLOTS):
            if slot not in _SLOTS_IN_USE:
                _SLOTS_IN_USE.add(slot)
                _CANCEL_BOARD[slot] = 0
                return slot
    return None


def release_cancel_slot(slot: int | None) -> None:
    if slot is None or _CANCEL_BOARD is None:
        return
    with _SLOT_LOCK:
        _CANCEL_BOARD[slot] = 0
        _SLOTS_IN_USE.discard(slot)


def signal_cancel(slot: int | None) -> None:
    """Flip a slot: every worker guard bound to it cancels at its next
    checkpoint."""
    if slot is not None and _CANCEL_BOARD is not None:
        _CANCEL_BOARD[slot] = 1


def slot_cancelled(slot: int | None) -> bool:
    return (slot is not None and _CANCEL_BOARD is not None
            and bool(_CANCEL_BOARD[slot]))


# ---------------------------------------------------------------------------
# The persistent worker pool
# ---------------------------------------------------------------------------


def _warm_task() -> int:
    """A pre-fork no-op.  The short sleep keeps each warm-up task
    occupying a worker long enough that every submit sees no idle
    worker and spawns a fresh process (the executor forks lazily)."""
    time.sleep(0.02)
    return multiprocessing.current_process().pid or 0


class WorkerPool:
    """A persistent fork-based worker pool, reused across queries.

    Thin wrapper over :class:`~concurrent.futures.ProcessPoolExecutor`
    carrying its nominal size (executors don't expose theirs) so
    :func:`get_pool` can decide when a bigger pool is needed.
    """

    __slots__ = ("workers", "_executor")

    def __init__(self, workers: int):
        self.workers = workers
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("fork"))

    def submit(self, fn, /, *args):
        return self._executor.submit(fn, *args)

    def warm(self) -> int:
        """Pre-fork the pool's workers now (they normally spawn on
        first dispatch, which PR 8 measured as a 6x cold-start penalty
        on the first query).  Returns the number of distinct worker
        processes that answered."""
        futures = [self.submit(_warm_task) for _ in range(self.workers)]
        pids = set()
        for future in futures:
            try:
                pids.add(future.result(timeout=30))
            except Exception:  # pragma: no cover - fork pressure
                break
        return len(pids)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


_POOL: WorkerPool | None = None

#: Guards creation/growth/discard of the process-wide pool: concurrent
#: server sessions reach :func:`get_pool` from executor threads, and an
#: unsynchronized grow would leak (and double-fork) executors.
#: ``submit`` on the returned pool needs no extra locking —
#: ``ProcessPoolExecutor`` is itself thread-safe.
_POOL_LOCK = threading.Lock()


def get_pool(min_workers: int) -> tuple[WorkerPool, bool]:
    """The process-wide pool, created (or grown) lazily.  Returns
    ``(pool, cold)`` — ``cold`` when this call had to (re)create it.
    Growing replaces the pool: warm workers are cheap to refork and a
    single pool keeps the process-count bound obvious."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None and _POOL.workers >= min_workers:
            return _POOL, False
        if _POOL is not None:
            _POOL.shutdown()
        _POOL = WorkerPool(min_workers)
        _stats["pool_cold_starts"] += 1
        return _POOL, True


def warm(workers: int) -> int:
    """Create (or grow) the process-wide pool to ``workers`` and
    pre-fork every worker (``repro serve --warm-pool``).  Returns the
    number of workers that answered the warm-up, 0 when ``fork`` is
    unavailable."""
    if workers < 1 or not _fork_available():
        return 0
    pool, _cold = get_pool(workers)
    return pool.warm()


def shutdown_pool() -> None:
    """Discard the persistent pool (tests; broken-pool recovery).  The
    next pool dispatch cold-starts a fresh one."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown()
            _POOL = None


def _transportable(predicate) -> bool:
    """Does the predicate survive a pickle round-trip?  Translator
    predicates are closures (they don't); module-level functions and
    functools.partial over them do, and take the warm-pool path."""
    try:
        pickle.dumps(predicate)
        return True
    except Exception:
        return False


#: Public name for callers gating their own pool dispatch on
#: picklability (shard scatter, the server's process executor).
transportable = _transportable


# ---------------------------------------------------------------------------
# The partitioned filter
# ---------------------------------------------------------------------------

#: (columns, rows, predicate) published to forked workers.
_PAYLOAD: tuple | None = None

#: True inside a worker process — suppresses nested partitioning.
_IN_WORKER = False


def filter_rows(columns: Sequence[str], rows: list,
                predicate: Callable[[dict], bool],
                ctx: QueryContext | None = None,
                workers: int | None = None) -> list:
    """The rows satisfying ``predicate`` (a row-dict test), in input
    order — partitioned across worker processes when the context (and
    the optional per-node ``workers`` annotation planted by the
    optimizer's parallelism rule) allows, serially otherwise."""
    ctx = context_mod.resolve(ctx)
    limit = workers if workers is not None else ctx.parallelism
    cols = tuple(columns)
    if not _should_partition(len(rows), ctx, limit):
        return [row for row in rows
                if predicate(dict(zip(cols, row)))]
    if _transportable(predicate):
        try:
            return _pool_filter(cols, rows, predicate, ctx, limit)
        except BrokenProcessPool:
            # Every worker died before producing anything (OOM kill,
            # signal).  No outcome was merged, so rerunning the whole
            # set is safe; the legacy fork-per-query transport gets a
            # fresh set of processes.  (A *partial* death never lands
            # here — _pool_filter salvages the completed chunks and
            # finishes the lost ones itself, so nothing re-dispatched
            # was already absorbed.)
            shutdown_pool()
    return _parallel_filter(cols, rows, predicate, ctx, limit)


def _chunk_bounds(n_rows: int, chunks: int) -> list[tuple[int, int]]:
    size, extra = divmod(n_rows, chunks)
    bounds_list, start = [], 0
    for i in range(chunks):
        stop = start + size + (1 if i < extra else 0)
        if stop > start:
            bounds_list.append((start, stop))
        start = stop
    return bounds_list


def _worker_limits(guard: ExecutionGuard | None,
                   partitions: int) -> dict | None:
    """The pro-rated budget dict shipped to each worker, or ``None``
    for unguarded workers.  Raises :class:`_NoHeadroom` when some
    budget has no spend left — the caller then runs serially so the
    parent guard trips at its usual site."""
    if guard is None:
        return None
    limits: dict = {}
    if guard.deadline is not None:
        remaining = guard.deadline - guard.elapsed()
        if remaining <= 0:
            raise _NoHeadroom
        limits["deadline"] = remaining
    for limit_name, counter_name in _DIVIDED_BUDGETS:
        limit = getattr(guard, limit_name)
        if limit is None:
            continue
        remaining = limit - getattr(guard, counter_name)
        if remaining <= 0:
            raise _NoHeadroom
        limits[limit_name] = max(1, remaining // partitions)
    limits["max_disjuncts"] = guard.max_disjuncts
    return limits


class _NoHeadroom(Exception):
    """Internal: a budget is already exhausted; run serial."""


def _serial_fallback(columns: tuple, rows: list,
                     predicate: Callable[[dict], bool],
                     ctx: QueryContext) -> list:
    _stats["fallbacks"] += 1
    ctx.stats.parallel_fallbacks += 1
    return [row for row in rows
            if predicate(dict(zip(columns, row)))]


def _book_run(ctx: QueryContext, n_chunks: int) -> None:
    _stats["runs"] += 1
    _stats["partitions"] += n_chunks
    _stats["max_workers"] = max(_stats["max_workers"], n_chunks)
    ctx.stats.parallel_runs += 1
    ctx.stats.partitions += n_chunks
    if n_chunks > ctx.stats.workers:
        ctx.stats.workers = n_chunks


def _absorb_outcome(ctx: QueryContext, guard: ExecutionGuard | None,
                    outcome: dict) -> None:
    """Fold ONE worker outcome dict into the parent context.  Callers
    must absorb each outcome exactly once — the salvage path after a
    mid-run pool death keeps completed outcomes and re-runs only the
    lost chunks, so a second absorption would double-count the dead
    workers' counters."""
    snapshot = outcome["stats"]
    if guard is not None:
        guard.absorb_spend(outcome["spend"])
    # One generic merge covers every declared counter — including
    # any added after this code was written.
    ctx.stats.merge(snapshot)
    # The cache object still needs the worker deltas (the entries
    # and cumulative counters a worker wrote die with its process
    # or stay in the pool worker).  Bounds traffic, by contrast,
    # lives *only* in ExecutionStats now — the old
    # ``bounds.absorb`` mirror write here counted the same checks
    # twice.
    cache = ctx.active_cache()
    if cache is not None:
        cache.absorb({
            "hits": snapshot.get("cache_hits", 0),
            "misses": snapshot.get("cache_misses", 0),
            "evictions": snapshot.get("cache_evictions", 0),
            "simplex_saved": snapshot.get("cache_simplex_saved", 0),
        })


def _merge_outcomes(ctx: QueryContext, guard: ExecutionGuard | None,
                    outcomes: list[dict]) -> None:
    """Fold worker outcome dicts into the parent context — both
    transports ship the same shape.  Raises the first (chunk-order)
    worker exhaustion after all counters merged, then runs the guard's
    cancellation/deadline checkpoint (workers can't see a cancel issued
    after they were handed their task)."""
    first_error: dict | None = None
    for outcome in outcomes:
        _absorb_outcome(ctx, guard, outcome)
        if outcome["error"] is not None and first_error is None:
            first_error = outcome["error"]
    if first_error is not None:
        raise _rebuild_exhaustion(guard, first_error)
    if guard is not None:
        guard.checkpoint("parallel-merge")


def _gather(futures: list, guard: ExecutionGuard | None,
            slot: int | None) -> tuple[list, bool]:
    """Collect outcomes in dispatch order, propagating a parent-side
    cancel to the workers through the cancel board.

    Returns ``(outcomes, broken)`` where ``outcomes[i]`` is ``None``
    for futures lost to a pool death (``broken`` then ``True``).  On
    cancel the workers are *not* abandoned: the board flip makes each
    one raise ``QueryCancelled`` at its next checkpoint, its error
    outcome ships back normally, and the ordinary merge re-raises it —
    so the pool stays clean and the spend is still accounted."""
    outcomes: list = [None] * len(futures)
    broken = False
    signalled = False
    for i, future in enumerate(futures):
        while True:
            if not signalled and slot is not None \
                    and guard is not None and guard.cancelled:
                signal_cancel(slot)
                signalled = True
            try:
                outcomes[i] = future.result(timeout=0.05)
                break
            except FuturesTimeout:
                continue
            except BrokenProcessPool:
                broken = True
                break
            except (OSError, RuntimeError):
                broken = True
                break
    return outcomes, broken


def _context_options(ctx: QueryContext) -> dict:
    """The option flags a worker rebuilds its fresh context from."""
    return {"prefilter": ctx.prefilter, "indexing": ctx.indexing,
            "numeric": ctx.numeric}


def _pool_filter(columns: tuple, rows: list,
                 predicate: Callable[[dict], bool],
                 ctx: QueryContext, limit: int) -> list:
    """The persistent-pool transport: chunk rows and predicate cross
    the pickle boundary into warm workers.  Raises
    :class:`BrokenProcessPool` (caller falls back) only when the pool
    died with *nothing* completed; a partial death is salvaged here —
    completed chunk outcomes are absorbed exactly once and only the
    lost chunks are recomputed, serially, under the parent guard."""
    guard = ctx.guard
    workers = min(limit, len(rows))
    chunks = _chunk_bounds(len(rows), workers)
    try:
        limits = _worker_limits(guard, len(chunks))
    except _NoHeadroom:
        return _serial_fallback(columns, rows, predicate, ctx)
    options = _context_options(ctx)
    slot = acquire_cancel_slot() if guard is not None else None
    if slot is not None:
        limits = dict(limits)
        limits["cancel_slot"] = slot
    try:
        try:
            pool, cold = get_pool(len(chunks))
            if cold:
                ctx.stats.pool_cold_starts += 1
            futures = [pool.submit(_run_pool_task, columns,
                                   rows[start:stop], predicate, limits,
                                   options)
                       for start, stop in chunks]
        except BrokenProcessPool:
            # Submitting to an already-dead pool: nothing ran, the
            # caller's whole-set fallback is exactly right.
            raise
        except (OSError, RuntimeError):
            # Pool startup failure (fork limits, sandboxing): serial
            # is always a correct answer.
            return _serial_fallback(columns, rows, predicate, ctx)
        outcomes, broken = _gather(futures, guard, slot)
    finally:
        release_cancel_slot(slot)

    if broken:
        shutdown_pool()
        if not any(outcome is not None for outcome in outcomes):
            raise BrokenProcessPool(
                "worker pool died before any chunk completed")
        return _salvage_filter(columns, rows, predicate, ctx,
                               chunks, outcomes)

    _book_run(ctx, len(chunks))
    _stats["pool_dispatches"] += len(chunks)
    ctx.stats.pool_dispatches += len(chunks)
    _merge_outcomes(ctx, guard, outcomes)
    kept: list = []
    for (start, _stop), outcome in zip(chunks, outcomes):
        kept.extend(rows[start + i] for i in outcome["kept"])
    return kept


def _salvage_filter(columns: tuple, rows: list,
                    predicate: Callable[[dict], bool],
                    ctx: QueryContext, chunks: list[tuple[int, int]],
                    outcomes: list) -> list:
    """Finish a filter whose pool died mid-run: keep every completed
    chunk's outcome (absorbed exactly once), recompute only the lost
    chunks serially under the parent guard, preserving chunk order —
    so the result, and the merged counters, match a clean run.

    Absorption idempotence is the point: the pre-PR-10 path re-ran the
    *whole* chunk set through the legacy transport after a death, which
    double-counts whenever some workers had already finished their
    work (their spend is in the counters the moment they return)."""
    guard = ctx.guard
    completed = [o for o in outcomes if o is not None]
    _book_run(ctx, len(chunks))
    _stats["pool_dispatches"] += len(completed)
    ctx.stats.pool_dispatches += len(completed)
    _stats["salvaged_chunks"] += len(completed)
    _stats["fallbacks"] += 1
    ctx.stats.parallel_fallbacks += 1
    for outcome in completed:
        _absorb_outcome(ctx, guard, outcome)
    kept: list = []
    for (start, stop), outcome in zip(chunks, outcomes):
        if outcome is not None:
            if outcome["error"] is not None:
                raise _rebuild_exhaustion(guard, outcome["error"])
            kept.extend(rows[start + i] for i in outcome["kept"])
        else:
            # Lost chunk: evaluate in-process.  The parent guard is
            # active, so this spend ticks it directly (no pro-rating,
            # no second absorption), and an exhaustion raises at the
            # position the serial run would have reached.
            kept.extend(row for row in rows[start:stop]
                        if predicate(dict(zip(columns, row))))
    if guard is not None:
        guard.checkpoint("parallel-merge")
    return kept


def _parallel_filter(columns: tuple, rows: list,
                     predicate: Callable[[dict], bool],
                     ctx: QueryContext, limit: int) -> list:
    global _PAYLOAD
    guard = ctx.guard
    workers = min(limit, len(rows))
    chunks = _chunk_bounds(len(rows), workers)
    try:
        limits = _worker_limits(guard, len(chunks))
    except _NoHeadroom:
        return _serial_fallback(columns, rows, predicate, ctx)

    _PAYLOAD = (columns, rows, predicate)
    try:
        mp_context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=len(chunks),
                                 mp_context=mp_context) as pool:
            futures = [pool.submit(_run_chunk, start, stop, limits)
                       for start, stop in chunks]
            outcomes = [f.result() for f in futures]
    except (OSError, RuntimeError):
        # Pool startup failure (fork limits, sandboxing): serial is
        # always a correct answer.
        return _serial_fallback(columns, rows, predicate, ctx)
    finally:
        _PAYLOAD = None

    _book_run(ctx, len(chunks))
    _merge_outcomes(ctx, guard, outcomes)
    kept: list = []
    for outcome in outcomes:
        kept.extend(rows[i] for i in outcome["kept"])
    return kept


# ---------------------------------------------------------------------------
# Task-level scatter (the futures API)
# ---------------------------------------------------------------------------


def should_scatter(n_tasks: int, ctx: QueryContext | None = None,
                   workers: int | None = None) -> bool:
    """Dispatch ``n_tasks`` independent tasks to the pool?  Mirrors
    :func:`should_partition`: needs parallelism in the context (or the
    explicit ``workers`` annotation), at least two tasks, no FaultPlan
    (fault schedules count ticks on one guard), ``fork``, and not
    already being inside a worker."""
    ctx = context_mod.resolve(ctx)
    limit = workers if workers is not None else ctx.parallelism
    if _IN_WORKER or limit < 2 or n_tasks < 2:
        return False
    guard = ctx.guard
    if guard is not None and guard.faults is not None:
        return False
    return _fork_available()


def scatter_tasks(fn: Callable, tasks: Sequence[tuple],
                  ctx: QueryContext | None = None,
                  workers: int | None = None) -> list:
    """Run ``fn(*task)`` for every task in warm pool workers and return
    the values **in task order** (the deterministic merge: callers that
    fold the values in sequence get exactly the serial loop's result).

    The caller is responsible for gating on :func:`should_scatter` and
    on :func:`transportable` for ``fn``/``tasks``/values.  Semantics
    match the partitioned filter: each worker runs under a fresh
    context (rebuilt from the parent's option flags) and a pro-rated
    guard (``remaining // n_tasks`` of each work budget, the full
    remaining deadline); worker counters merge generically into the
    parent; the first task-order exhaustion re-raises after all
    counters merged.  A parent-side cancel propagates through the
    cancel board; a mid-run pool death salvages completed outcomes
    (absorbed exactly once) and re-runs only the lost tasks serially."""
    ctx = context_mod.resolve(ctx)
    guard = ctx.guard
    limit = workers if workers is not None else ctx.parallelism
    try:
        limits = _worker_limits(guard, len(tasks))
    except _NoHeadroom:
        return _serial_tasks(fn, tasks, ctx)
    options = _context_options(ctx)
    slot = acquire_cancel_slot() if guard is not None else None
    if slot is not None:
        limits = dict(limits)
        limits["cancel_slot"] = slot
    try:
        try:
            pool, cold = get_pool(min(limit, len(tasks)))
            if cold:
                ctx.stats.pool_cold_starts += 1
            futures = [pool.submit(_run_task, fn, task, limits, options)
                       for task in tasks]
        except BrokenProcessPool:
            # Already-dead pool at submit time: discard it (the next
            # dispatch cold-starts) and run this region serially.
            shutdown_pool()
            return _serial_tasks(fn, tasks, ctx)
        except (OSError, RuntimeError):
            return _serial_tasks(fn, tasks, ctx)
        outcomes, broken = _gather(futures, guard, slot)
    finally:
        release_cancel_slot(slot)

    if broken:
        shutdown_pool()
    completed = [o for o in outcomes if o is not None]
    # Book the region by hand: tasks can outnumber the pool, so the
    # worker peak is the pool size, not the task count.
    pool_workers = min(limit, len(tasks))
    _stats["runs"] += 1
    _stats["partitions"] += len(tasks)
    _stats["max_workers"] = max(_stats["max_workers"], pool_workers)
    ctx.stats.parallel_runs += 1
    ctx.stats.partitions += len(tasks)
    if pool_workers > ctx.stats.workers:
        ctx.stats.workers = pool_workers
    _stats["scatters"] += 1
    _stats["pool_dispatches"] += len(completed)
    ctx.stats.pool_dispatches += len(completed)
    if broken:
        _stats["salvaged_chunks"] += len(completed)
        _stats["fallbacks"] += 1
        ctx.stats.parallel_fallbacks += 1
    for outcome in completed:
        _absorb_outcome(ctx, guard, outcome)
    values: list = []
    for task, outcome in zip(tasks, outcomes):
        if outcome is None:
            # Lost to the pool death: run in-process under the parent
            # guard (absorbed outcomes stay absorbed — no re-dispatch).
            values.append(fn(*task))
        elif outcome["error"] is not None:
            raise _rebuild_exhaustion(guard, outcome["error"])
        else:
            values.append(outcome["value"])
    if guard is not None:
        guard.checkpoint("scatter-merge")
    return values


def _serial_tasks(fn: Callable, tasks: Sequence[tuple],
                  ctx: QueryContext) -> list:
    _stats["fallbacks"] += 1
    ctx.stats.parallel_fallbacks += 1
    return [fn(*task) for task in tasks]


def _rebuild_exhaustion(guard: ExecutionGuard | None,
                        error: dict) -> ResourceExhausted:
    """A worker's exhaustion dict back into the exception the serial
    run would have raised (ResourceExhausted doesn't pickle: its
    constructors are keyword-only)."""
    cls = getattr(errors_mod, error["kind"], None)
    if cls is None or not (isinstance(cls, type)
                           and issubclass(cls, ResourceExhausted)):
        cls = ResourceExhausted
    if guard is not None:
        guard.exhausted = error["budget"]
    if cls is QueryCancelled:
        return QueryCancelled(spent=error["spent"],
                              fragment=error["fragment"])
    return cls(error["message"], budget=error["budget"],
               limit=error["limit"], spent=error["spent"],
               fragment=error["fragment"])


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _build_worker_guard(limits: dict | None) -> ExecutionGuard | None:
    """The pro-rated per-worker guard — always ``on_exhaustion="fail"``
    so exhaustion travels back as an exception for the parent to
    re-raise under its own policy.  When the dispatch carries a cancel
    slot, the guard polls it at every checkpoint — the parent's cancel
    reaches this process through the fork-shared board."""
    if limits is None:
        return None
    guard = ExecutionGuard(
        deadline=limits.get("deadline"),
        max_pivots=limits.get("max_pivots"),
        max_branches=limits.get("max_branches"),
        max_disjuncts=limits.get("max_disjuncts"),
        max_canonical=limits.get("max_canonical"),
        on_exhaustion="fail")
    slot = limits.get("cancel_slot")
    if slot is not None:
        guard.bind_cancel_probe(lambda: slot_cancelled(slot))
    return guard


def _exhaustion_dict(exc: ResourceExhausted) -> dict:
    # str(exc) already embeds the [budget=...] diagnostics block;
    # ship the bare message so reconstruction doesn't double it.
    return {
        "kind": type(exc).__name__,
        "message": ("deadline exceeded" if exc.budget == "deadline"
                    else f"{exc.budget} budget exhausted"),
        "budget": exc.budget,
        "limit": exc.limit,
        "spent": exc.spent,
        "fragment": exc.fragment,
    }


def _finish_outcome(worker_ctx: QueryContext,
                    worker_guard: ExecutionGuard | None,
                    kept: list[int], error: dict | None) -> dict:
    worker_ctx.stats.capture_guard(worker_guard)
    spend = worker_guard.spend() if worker_guard is not None else {}
    return {"kept": kept, "spend": spend,
            "stats": worker_ctx.stats.snapshot(), "error": error}


def _run_chunk(start: int, stop: int, limits: dict | None) -> dict:
    """Evaluate one chunk in a one-shot forked worker (legacy
    transport).

    The worker activates a context derived from the fork-inherited one
    with a pro-rated guard and a *fresh* ``ExecutionStats``, so its
    stats snapshot is exactly this chunk's delta.  Returns kept row
    *indices* (absolute, so the parent merges without offset
    bookkeeping); worker exhaustion travels back as a plain ``error``
    dict.
    """
    global _IN_WORKER
    _IN_WORKER = True
    columns, rows, predicate = _PAYLOAD
    worker_guard = _build_worker_guard(limits)
    worker_ctx = context_mod.current_context().derive(
        guard=worker_guard, stats=ExecutionStats())

    kept: list[int] = []
    error: dict | None = None
    try:
        with worker_ctx.activate():
            for i in range(start, stop):
                if predicate(dict(zip(columns, rows[i]))):
                    kept.append(i)
    except ResourceExhausted as exc:
        error = _exhaustion_dict(exc)
    return _finish_outcome(worker_ctx, worker_guard, kept, error)


def _run_task(fn: Callable, args: tuple, limits: dict | None,
              options: dict) -> dict:
    """Evaluate one scatter task in a warm pool worker.

    Like :func:`_run_pool_task`, nothing fork-inherited is trusted:
    the context is rebuilt from the shipped option flags, under a
    pro-rated guard (with the cancel-board probe when the dispatch
    carries a slot).  ``fn`` reads the context ambiently — the task
    body runs inside ``worker_ctx.activate()`` — and its return value
    ships back in the outcome's ``value`` field.
    """
    global _IN_WORKER
    _IN_WORKER = True
    worker_guard = _build_worker_guard(limits)
    worker_ctx = QueryContext(
        guard=worker_guard,
        prefilter=options["prefilter"],
        indexing=options["indexing"],
        numeric=options["numeric"],
        stats=ExecutionStats())

    value = None
    error: dict | None = None
    try:
        with worker_ctx.activate():
            value = fn(*args)
    except ResourceExhausted as exc:
        error = _exhaustion_dict(exc)
    outcome = _finish_outcome(worker_ctx, worker_guard, [], error)
    outcome["value"] = value
    return outcome


def _run_pool_task(columns: tuple, rows: list,
                   predicate: Callable[[dict], bool],
                   limits: dict | None, options: dict) -> dict:
    """Evaluate one shipped chunk in a warm pool worker.

    Unlike :func:`_run_chunk`, nothing fork-inherited is trusted — the
    pool may have been forked during an unrelated earlier query — so
    the context is rebuilt from the shipped option flags (the worker's
    own process-wide constraint cache stays, deliberately: it is what
    makes warm workers *warm*).  Returns chunk-local kept indices; the
    parent offsets them by the chunk start.
    """
    global _IN_WORKER
    _IN_WORKER = True
    worker_guard = _build_worker_guard(limits)
    worker_ctx = QueryContext(
        guard=worker_guard,
        prefilter=options["prefilter"],
        indexing=options["indexing"],
        numeric=options["numeric"],
        stats=ExecutionStats())

    kept: list[int] = []
    error: dict | None = None
    try:
        with worker_ctx.activate():
            for i, row in enumerate(rows):
                if predicate(dict(zip(columns, row))):
                    kept.append(i)
    except ResourceExhausted as exc:
        error = _exhaustion_dict(exc)
    return _finish_outcome(worker_ctx, worker_guard, kept, error)

"""Partitioned parallel evaluation over worker processes.

ROADMAP's north star asks the flat engine to run "as fast as the
hardware allows"; this module supplies the execution half of that:
large row filters (the exact phase of :class:`~repro.sqlc.algebra.
IndexJoin` and big ``Select`` nodes) are split into contiguous chunks
and evaluated by a ``ProcessPoolExecutor``, then merged back
deterministically.

Design points, in the order they bit:

**Determinism.**  Chunks are contiguous slices of the input row list
and results are concatenated in chunk order, so the output row order is
identical to the serial evaluation.  Runs under a
:class:`~repro.runtime.faults.FaultPlan` are forced serial — fault
schedules count ticks on one guard, and sharding the tick stream across
processes would make injected failures nondeterministic.

**Budget pro-rating.**  Each worker activates a derived
:class:`~repro.runtime.context.QueryContext` whose fresh
:class:`~repro.runtime.guard.ExecutionGuard` carries
``remaining_budget // partitions`` of every *work* budget of the
parent context's guard (pivots, branches, canonical; disjuncts is a
per-disjunction cap and passes through unchanged) and the full
remaining wall-clock deadline (workers run concurrently).  Worker
guards always use ``on_exhaustion="fail"`` so exhaustion surfaces as an
exception; the parent re-raises the first (in chunk order) worker
error, and the caller's own policy — degrade or fail — applies at the
usual engine boundary, exactly as in a serial run.

**Counter merging.**  Each worker runs under a fresh
:class:`~repro.runtime.context.ExecutionStats` and ships its
:meth:`~repro.runtime.context.ExecutionStats.snapshot` back; the parent
folds it in with the *generic*
:meth:`~repro.runtime.context.ExecutionStats.merge` (each field's
declared reduction), so counters added to ``ExecutionStats`` later
survive the round-trip with no change here.  Guard spend additionally
merges into the parent guard (budget bookkeeping), and cache traffic
into the parent's cache object (whose entries would otherwise die with
the fork); bounding-box counters live only in ``ExecutionStats`` and
need no second write.
:class:`~repro.errors.ResourceExhausted` instances don't survive
pickling (keyword-only constructors), so workers ship plain dicts and
the parent reconstructs the exception class by name.

**Transport.**  Two transports, picked per filter by whether the
predicate pickles:

* **Persistent pool** (preferred) — a lazily created, process-wide
  :class:`WorkerPool` of warm fork workers reused across queries.
  Each task ships ``(columns, row chunk, predicate, budgets, context
  options)`` over the pickle boundary, so warm workers never see stale
  fork-inherited state: they rebuild a fresh context from the shipped
  options every task.  Dispatch to a warm pool skips the per-query
  fork/teardown entirely (``pool_dispatches`` vs ``pool_cold_starts``
  in :class:`~repro.runtime.context.ExecutionStats`).  A dead pool
  (:class:`~concurrent.futures.process.BrokenProcessPool`) is
  discarded and the filter falls back to the legacy transport below.
* **Fork-per-query** (legacy fallback) — translator predicates are
  closures over the constraint engine and don't pickle; for those the
  payload is published in a module global, a one-shot pool is forked
  (inheriting it), and only chunk bounds cross the pickle boundary.

Platforms without ``fork`` fall back to serial evaluation.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

import repro.errors as errors_mod
from repro.errors import QueryCancelled, ResourceExhausted
from repro.runtime import context as context_mod
from repro.runtime.context import ExecutionStats, QueryContext
from repro.runtime.guard import ExecutionGuard

#: Don't partition filters smaller than this: pool startup dominates.
PARTITION_THRESHOLD = 64

#: Budgets divided among workers; disjuncts caps a single disjunction
#: wherever it is built and is passed through whole.
_DIVIDED_BUDGETS = (
    ("max_pivots", "pivots"),
    ("max_branches", "branches"),
    ("max_canonical", "canonical_steps"),
)

_stats = {"runs": 0, "partitions": 0, "max_workers": 0, "fallbacks": 0,
          "pool_dispatches": 0, "pool_cold_starts": 0}


def stats() -> dict[str, int]:
    """Cumulative counters: ``runs`` (parallel regions executed),
    ``partitions`` (chunks dispatched), ``max_workers`` (largest pool
    used), ``fallbacks`` (regions degraded to serial at runtime),
    ``pool_dispatches`` (tasks sent to the persistent pool),
    ``pool_cold_starts`` (persistent pools created)."""
    return dict(_stats)


def reset_stats() -> None:
    for key in _stats:
        _stats[key] = 0


# ---------------------------------------------------------------------------
# Parallelism context (the CLI's --parallel N)
# ---------------------------------------------------------------------------


def current_parallelism() -> int:
    return context_mod.current_context().parallelism


@contextmanager
def parallelism(workers: int) -> Iterator[None]:
    """Allow up to ``workers`` worker processes for the dynamic extent
    (1 = serial, the default).  Shim deriving a
    :class:`~repro.runtime.context.QueryContext` over the current one;
    the derived constructor rejects non-positive worker counts."""
    derived = context_mod.current_context().derive(parallelism=workers)
    with derived.activate():
        yield


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def should_partition(n_rows: int,
                     ctx: QueryContext | None = None) -> bool:
    """Partition this filter?  Requires parallelism in the (given or
    ambient) context, enough rows to amortize pool startup, no
    FaultPlan on the context's guard (fault determinism), a ``fork``
    start method, and not already being inside a worker."""
    ctx = context_mod.resolve(ctx)
    return _should_partition(n_rows, ctx, ctx.parallelism)


def _should_partition(n_rows: int, ctx: QueryContext,
                      limit: int) -> bool:
    if _IN_WORKER or limit < 2 or n_rows < PARTITION_THRESHOLD:
        return False
    guard = ctx.guard
    if guard is not None and guard.faults is not None:
        return False
    return _fork_available()


# ---------------------------------------------------------------------------
# The persistent worker pool
# ---------------------------------------------------------------------------


class WorkerPool:
    """A persistent fork-based worker pool, reused across queries.

    Thin wrapper over :class:`~concurrent.futures.ProcessPoolExecutor`
    carrying its nominal size (executors don't expose theirs) so
    :func:`get_pool` can decide when a bigger pool is needed.
    """

    __slots__ = ("workers", "_executor")

    def __init__(self, workers: int):
        self.workers = workers
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("fork"))

    def submit(self, fn, /, *args):
        return self._executor.submit(fn, *args)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


_POOL: WorkerPool | None = None

#: Guards creation/growth/discard of the process-wide pool: concurrent
#: server sessions reach :func:`get_pool` from executor threads, and an
#: unsynchronized grow would leak (and double-fork) executors.
#: ``submit`` on the returned pool needs no extra locking —
#: ``ProcessPoolExecutor`` is itself thread-safe.
_POOL_LOCK = threading.Lock()


def get_pool(min_workers: int) -> tuple[WorkerPool, bool]:
    """The process-wide pool, created (or grown) lazily.  Returns
    ``(pool, cold)`` — ``cold`` when this call had to (re)create it.
    Growing replaces the pool: warm workers are cheap to refork and a
    single pool keeps the process-count bound obvious."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None and _POOL.workers >= min_workers:
            return _POOL, False
        if _POOL is not None:
            _POOL.shutdown()
        _POOL = WorkerPool(min_workers)
        _stats["pool_cold_starts"] += 1
        return _POOL, True


def shutdown_pool() -> None:
    """Discard the persistent pool (tests; broken-pool recovery).  The
    next pool dispatch cold-starts a fresh one."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown()
            _POOL = None


def _transportable(predicate) -> bool:
    """Does the predicate survive a pickle round-trip?  Translator
    predicates are closures (they don't); module-level functions and
    functools.partial over them do, and take the warm-pool path."""
    try:
        pickle.dumps(predicate)
        return True
    except Exception:
        return False


# ---------------------------------------------------------------------------
# The partitioned filter
# ---------------------------------------------------------------------------

#: (columns, rows, predicate) published to forked workers.
_PAYLOAD: tuple | None = None

#: True inside a worker process — suppresses nested partitioning.
_IN_WORKER = False


def filter_rows(columns: Sequence[str], rows: list,
                predicate: Callable[[dict], bool],
                ctx: QueryContext | None = None,
                workers: int | None = None) -> list:
    """The rows satisfying ``predicate`` (a row-dict test), in input
    order — partitioned across worker processes when the context (and
    the optional per-node ``workers`` annotation planted by the
    optimizer's parallelism rule) allows, serially otherwise."""
    ctx = context_mod.resolve(ctx)
    limit = workers if workers is not None else ctx.parallelism
    cols = tuple(columns)
    if not _should_partition(len(rows), ctx, limit):
        return [row for row in rows
                if predicate(dict(zip(cols, row)))]
    if _transportable(predicate):
        try:
            return _pool_filter(cols, rows, predicate, ctx, limit)
        except BrokenProcessPool:
            # A worker died mid-task (OOM kill, signal).  No outcome
            # was merged yet, so rerunning is safe; the legacy
            # fork-per-query transport gets a fresh set of processes.
            shutdown_pool()
    return _parallel_filter(cols, rows, predicate, ctx, limit)


def _chunk_bounds(n_rows: int, chunks: int) -> list[tuple[int, int]]:
    size, extra = divmod(n_rows, chunks)
    bounds_list, start = [], 0
    for i in range(chunks):
        stop = start + size + (1 if i < extra else 0)
        if stop > start:
            bounds_list.append((start, stop))
        start = stop
    return bounds_list


def _worker_limits(guard: ExecutionGuard | None,
                   partitions: int) -> dict | None:
    """The pro-rated budget dict shipped to each worker, or ``None``
    for unguarded workers.  Raises :class:`_NoHeadroom` when some
    budget has no spend left — the caller then runs serially so the
    parent guard trips at its usual site."""
    if guard is None:
        return None
    limits: dict = {}
    if guard.deadline is not None:
        remaining = guard.deadline - guard.elapsed()
        if remaining <= 0:
            raise _NoHeadroom
        limits["deadline"] = remaining
    for limit_name, counter_name in _DIVIDED_BUDGETS:
        limit = getattr(guard, limit_name)
        if limit is None:
            continue
        remaining = limit - getattr(guard, counter_name)
        if remaining <= 0:
            raise _NoHeadroom
        limits[limit_name] = max(1, remaining // partitions)
    limits["max_disjuncts"] = guard.max_disjuncts
    return limits


class _NoHeadroom(Exception):
    """Internal: a budget is already exhausted; run serial."""


def _serial_fallback(columns: tuple, rows: list,
                     predicate: Callable[[dict], bool],
                     ctx: QueryContext) -> list:
    _stats["fallbacks"] += 1
    ctx.stats.parallel_fallbacks += 1
    return [row for row in rows
            if predicate(dict(zip(columns, row)))]


def _book_run(ctx: QueryContext, n_chunks: int) -> None:
    _stats["runs"] += 1
    _stats["partitions"] += n_chunks
    _stats["max_workers"] = max(_stats["max_workers"], n_chunks)
    ctx.stats.parallel_runs += 1
    ctx.stats.partitions += n_chunks
    if n_chunks > ctx.stats.workers:
        ctx.stats.workers = n_chunks


def _merge_outcomes(ctx: QueryContext, guard: ExecutionGuard | None,
                    outcomes: list[dict]) -> None:
    """Fold worker outcome dicts into the parent context — both
    transports ship the same shape.  Raises the first (chunk-order)
    worker exhaustion after all counters merged, then runs the guard's
    cancellation/deadline checkpoint (workers can't see a cancel issued
    after they were handed their task)."""
    first_error: dict | None = None
    for outcome in outcomes:
        snapshot = outcome["stats"]
        if guard is not None:
            guard.absorb_spend(outcome["spend"])
        # One generic merge covers every declared counter — including
        # any added after this code was written.
        ctx.stats.merge(snapshot)
        # The cache object still needs the worker deltas (the entries
        # and cumulative counters a worker wrote die with its process
        # or stay in the pool worker).  Bounds traffic, by contrast,
        # lives *only* in ExecutionStats now — the old
        # ``bounds.absorb`` mirror write here counted the same checks
        # twice.
        cache = ctx.active_cache()
        if cache is not None:
            cache.absorb({
                "hits": snapshot.get("cache_hits", 0),
                "misses": snapshot.get("cache_misses", 0),
                "evictions": snapshot.get("cache_evictions", 0),
                "simplex_saved": snapshot.get("cache_simplex_saved", 0),
            })
        if outcome["error"] is not None and first_error is None:
            first_error = outcome["error"]
    if first_error is not None:
        raise _rebuild_exhaustion(guard, first_error)
    if guard is not None:
        guard.checkpoint("parallel-merge")


def _pool_filter(columns: tuple, rows: list,
                 predicate: Callable[[dict], bool],
                 ctx: QueryContext, limit: int) -> list:
    """The persistent-pool transport: chunk rows and predicate cross
    the pickle boundary into warm workers.  Raises
    :class:`BrokenProcessPool` (caller falls back) when the pool died;
    every other degradation handles itself serially here."""
    guard = ctx.guard
    workers = min(limit, len(rows))
    chunks = _chunk_bounds(len(rows), workers)
    try:
        limits = _worker_limits(guard, len(chunks))
    except _NoHeadroom:
        return _serial_fallback(columns, rows, predicate, ctx)
    options = {"prefilter": ctx.prefilter, "indexing": ctx.indexing,
               "numeric": ctx.numeric}
    try:
        pool, cold = get_pool(len(chunks))
        if cold:
            ctx.stats.pool_cold_starts += 1
        futures = [pool.submit(_run_pool_task, columns,
                               rows[start:stop], predicate, limits,
                               options)
                   for start, stop in chunks]
        outcomes = [f.result() for f in futures]
    except BrokenProcessPool:
        raise
    except (OSError, RuntimeError):
        # Pool startup failure (fork limits, sandboxing): serial is
        # always a correct answer.
        return _serial_fallback(columns, rows, predicate, ctx)

    _book_run(ctx, len(chunks))
    _stats["pool_dispatches"] += len(chunks)
    ctx.stats.pool_dispatches += len(chunks)
    _merge_outcomes(ctx, guard, outcomes)
    kept: list = []
    for (start, _stop), outcome in zip(chunks, outcomes):
        kept.extend(rows[start + i] for i in outcome["kept"])
    return kept


def _parallel_filter(columns: tuple, rows: list,
                     predicate: Callable[[dict], bool],
                     ctx: QueryContext, limit: int) -> list:
    global _PAYLOAD
    guard = ctx.guard
    workers = min(limit, len(rows))
    chunks = _chunk_bounds(len(rows), workers)
    try:
        limits = _worker_limits(guard, len(chunks))
    except _NoHeadroom:
        return _serial_fallback(columns, rows, predicate, ctx)

    _PAYLOAD = (columns, rows, predicate)
    try:
        mp_context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=len(chunks),
                                 mp_context=mp_context) as pool:
            futures = [pool.submit(_run_chunk, start, stop, limits)
                       for start, stop in chunks]
            outcomes = [f.result() for f in futures]
    except (OSError, RuntimeError):
        # Pool startup failure (fork limits, sandboxing): serial is
        # always a correct answer.
        return _serial_fallback(columns, rows, predicate, ctx)
    finally:
        _PAYLOAD = None

    _book_run(ctx, len(chunks))
    _merge_outcomes(ctx, guard, outcomes)
    kept: list = []
    for outcome in outcomes:
        kept.extend(rows[i] for i in outcome["kept"])
    return kept


def _rebuild_exhaustion(guard: ExecutionGuard | None,
                        error: dict) -> ResourceExhausted:
    """A worker's exhaustion dict back into the exception the serial
    run would have raised (ResourceExhausted doesn't pickle: its
    constructors are keyword-only)."""
    cls = getattr(errors_mod, error["kind"], None)
    if cls is None or not (isinstance(cls, type)
                           and issubclass(cls, ResourceExhausted)):
        cls = ResourceExhausted
    if guard is not None:
        guard.exhausted = error["budget"]
    if cls is QueryCancelled:
        return QueryCancelled(spent=error["spent"],
                              fragment=error["fragment"])
    return cls(error["message"], budget=error["budget"],
               limit=error["limit"], spent=error["spent"],
               fragment=error["fragment"])


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _build_worker_guard(limits: dict | None) -> ExecutionGuard | None:
    """The pro-rated per-worker guard — always ``on_exhaustion="fail"``
    so exhaustion travels back as an exception for the parent to
    re-raise under its own policy."""
    if limits is None:
        return None
    return ExecutionGuard(
        deadline=limits.get("deadline"),
        max_pivots=limits.get("max_pivots"),
        max_branches=limits.get("max_branches"),
        max_disjuncts=limits.get("max_disjuncts"),
        max_canonical=limits.get("max_canonical"),
        on_exhaustion="fail")


def _exhaustion_dict(exc: ResourceExhausted) -> dict:
    # str(exc) already embeds the [budget=...] diagnostics block;
    # ship the bare message so reconstruction doesn't double it.
    return {
        "kind": type(exc).__name__,
        "message": ("deadline exceeded" if exc.budget == "deadline"
                    else f"{exc.budget} budget exhausted"),
        "budget": exc.budget,
        "limit": exc.limit,
        "spent": exc.spent,
        "fragment": exc.fragment,
    }


def _finish_outcome(worker_ctx: QueryContext,
                    worker_guard: ExecutionGuard | None,
                    kept: list[int], error: dict | None) -> dict:
    worker_ctx.stats.capture_guard(worker_guard)
    spend = worker_guard.spend() if worker_guard is not None else {}
    return {"kept": kept, "spend": spend,
            "stats": worker_ctx.stats.snapshot(), "error": error}


def _run_chunk(start: int, stop: int, limits: dict | None) -> dict:
    """Evaluate one chunk in a one-shot forked worker (legacy
    transport).

    The worker activates a context derived from the fork-inherited one
    with a pro-rated guard and a *fresh* ``ExecutionStats``, so its
    stats snapshot is exactly this chunk's delta.  Returns kept row
    *indices* (absolute, so the parent merges without offset
    bookkeeping); worker exhaustion travels back as a plain ``error``
    dict.
    """
    global _IN_WORKER
    _IN_WORKER = True
    columns, rows, predicate = _PAYLOAD
    worker_guard = _build_worker_guard(limits)
    worker_ctx = context_mod.current_context().derive(
        guard=worker_guard, stats=ExecutionStats())

    kept: list[int] = []
    error: dict | None = None
    try:
        with worker_ctx.activate():
            for i in range(start, stop):
                if predicate(dict(zip(columns, rows[i]))):
                    kept.append(i)
    except ResourceExhausted as exc:
        error = _exhaustion_dict(exc)
    return _finish_outcome(worker_ctx, worker_guard, kept, error)


def _run_pool_task(columns: tuple, rows: list,
                   predicate: Callable[[dict], bool],
                   limits: dict | None, options: dict) -> dict:
    """Evaluate one shipped chunk in a warm pool worker.

    Unlike :func:`_run_chunk`, nothing fork-inherited is trusted — the
    pool may have been forked during an unrelated earlier query — so
    the context is rebuilt from the shipped option flags (the worker's
    own process-wide constraint cache stays, deliberately: it is what
    makes warm workers *warm*).  Returns chunk-local kept indices; the
    parent offsets them by the chunk start.
    """
    global _IN_WORKER
    _IN_WORKER = True
    worker_guard = _build_worker_guard(limits)
    worker_ctx = QueryContext(
        guard=worker_guard,
        prefilter=options["prefilter"],
        indexing=options["indexing"],
        numeric=options["numeric"],
        stats=ExecutionStats())

    kept: list[int] = []
    error: dict | None = None
    try:
        with worker_ctx.activate():
            for i, row in enumerate(rows):
                if predicate(dict(zip(columns, row))):
                    kept.append(i)
    except ResourceExhausted as exc:
        error = _exhaustion_dict(exc)
    return _finish_outcome(worker_ctx, worker_guard, kept, error)

"""Reproduction of Brodsky & Kornatzky, "The LyriC Language: Querying
Constraint Objects" (SIGMOD 1995).

Layers (bottom-up):

* :mod:`repro.constraints` — the linear-constraint engine (Section 3).
* :mod:`repro.model` — the object-oriented data model with CST classes,
  interfaces and variable schemas (Sections 2-3).
* :mod:`repro.sqlc` — flat "SQL with constraints" relations and algebra,
  the translation target of Section 5.
* :mod:`repro.core` — the LyriC language: parser, semantics, naive
  evaluator, translation to :mod:`repro.sqlc`, views (Sections 4-5).
* :mod:`repro.workloads` — synthetic workload generators for the three
  application realms the paper motivates.

Quickstart::

    from repro import lyric
    from repro.model.office import build_office_database

    db, oids = build_office_database()
    result = lyric.query(db, '''
        SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
        FROM Office_Object CO
        WHERE CO.extent[E] and CO.translation[D]
    ''')
"""

from repro import errors

__version__ = "1.0.0"

__all__ = ["errors", "__version__"]

"""Process-backed query execution for the server (GIL escape).

The thread executor in :mod:`repro.server.service` keeps *distinct*
concurrent queries on one interpreter, so solver-bound load gains
nothing from extra cores.  This module runs a whole query in a
:class:`~repro.runtime.parallel.WorkerPool` worker process instead:

**Shipping strategy.**  The database never pickles per request — the
worker *inherits* it by fork.  :func:`publish` stores
``(db_version, db)`` in this module before the pool exists; every
forked worker therefore carries that exact state.  After a mutation the
service re-publishes and discards the pool
(:func:`~repro.runtime.parallel.shutdown_pool`), so the next dispatch
forks workers that inherit the post-mutation database.  The version
check in :func:`run_query` turns any remaining race into a clean
``{"stale": True}`` reply, which the service converts into a silent
thread-path fallback — never a wrong answer.

What *does* cross the process boundary per request is small: the query
AST, parameter oids, the option flags, and the guard budgets.  Rows
come back already ``dump_oid``-serialized in result order, so the
service publishes byte-identical frames to the thread path's.

**Cancellation.**  The request's guard budgets rebuild in the worker
under the request's own ``on_exhaustion`` policy (degrade must produce
the same partial rows and warnings it would in-process), and the
worker guard binds a cancel-board slot probe — the service signals the
slot when the job's shared guard is cancelled, and the worker observes
it at its next checkpoint.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro import lyric
from repro.model.database import Database
from repro.model.serialize import dump_oid
from repro.runtime import parallel
from repro.runtime.context import ExecutionStats, QueryContext
from repro.runtime.guard import ExecutionGuard
from repro.server import protocol

#: ``(db_version, database)`` the *next* pool fork will inherit.
_PUBLISHED: tuple[int, Database | None] = (-1, None)


def publish(db_version: int, db: Database | None) -> None:
    """Stage the database state future pool workers inherit.  Call
    before the pool forks (service start) and after every mutation
    (paired with a pool shutdown, so stale workers are discarded)."""
    global _PUBLISHED
    _PUBLISHED = (db_version, db)


def published_version() -> int:
    return _PUBLISHED[0]


def _worker_guard(limits: Mapping[str, Any]) -> ExecutionGuard:
    """The request guard, rebuilt worker-side: same budgets, same
    exhaustion policy (a degrade request must degrade *in the worker*
    to produce identical partial output), plus the cancel-board
    probe."""
    guard = ExecutionGuard(
        deadline=limits.get("deadline"),
        max_pivots=limits.get("max_pivots"),
        max_branches=limits.get("max_branches"),
        max_disjuncts=limits.get("max_disjuncts"),
        max_canonical=limits.get("max_canonical"),
        on_exhaustion=limits.get("on_exhaustion", "fail"))
    slot = limits.get("cancel_slot")
    if slot is not None:
        guard.bind_cancel_probe(
            lambda: parallel.slot_cancelled(slot))
    return guard


def run_query(db_version: int, query_ast, params, translated: bool,
              use_optimizer: bool, options: Mapping[str, Any],
              limits: Mapping[str, Any]) -> dict:
    """The worker body: execute one query against the fork-inherited
    database and ship the whole result back.

    Returns ``{"stale": True}`` when the inherited database predates
    ``db_version`` (the service falls back to its thread path), else a
    reply dict with ``rows`` (``(values, oid)`` pairs, dump_oid
    serialized, in result order), ``columns``/``engine``/``partial``/
    ``warnings``, the stats snapshot, the guard spend — or
    ``error_code``/``error_message`` plus the rows produced before the
    error, mirroring what the thread path would already have
    streamed."""
    version, db = _PUBLISHED
    if db is None or version != db_version:
        return {"stale": True}
    # Pool-in-pool suppression: a server worker must not fork its own
    # worker pool for shard scatter or partitioned filters.
    parallel._IN_WORKER = True
    guard = _worker_guard(limits)
    stats = ExecutionStats()
    ctx_kwargs: dict[str, Any] = dict(
        guard=guard, stats=stats,
        params=dict(params) if params else None,
        prefilter=options.get("prefilter", True),
        indexing=options.get("indexing", True),
        numeric=options.get("numeric"),
        shards=options.get("shards", 0),
        use_optimizer=use_optimizer)
    if options.get("cache_off"):
        ctx_kwargs["cache"] = None
    if options.get("plan_cache_off"):
        ctx_kwargs["plan_cache"] = None
    ctx = QueryContext(**ctx_kwargs)
    baseline = guard.spend()
    rows: list[tuple] = []
    try:
        stream = lyric.stream(db, query_ast, translated=translated,
                              use_optimizer=use_optimizer, ctx=ctx)
        batch = stream.next_batch(64)
        while batch:
            rows.extend((
                [dump_oid(v) for v in row.values],
                dump_oid(row.oid) if row.oid is not None else None)
                for row in batch)
            batch = stream.next_batch(64)
        stats.capture_guard(guard, baseline)
        return {
            "rows": rows,
            "columns": list(stream.columns),
            "engine": stream.engine,
            "partial": bool(stream.warnings),
            "warnings": list(stream.warnings),
            "stats": stats.snapshot(),
            "spend": guard.spend(),
        }
    except BaseException as exc:  # noqa: BLE001 - process boundary
        stats.capture_guard(guard, baseline)
        return {
            "rows": rows,
            "error_code": protocol.error_code(exc),
            "error_message": str(exc),
            "stats": stats.snapshot(),
            "spend": guard.spend(),
        }

"""The server's wire format.

Two client dialects share one port, distinguished by the first byte a
client sends:

* **framed** (``0x00`` first) — every message is a 4-byte big-endian
  length followed by a UTF-8 JSON object.  The length of any sane
  frame is far below 2\\ :sup:`24`, so its first (most significant)
  byte is always ``0x00`` — which is exactly how the server detects
  the mode without a handshake byte of its own.  This is what
  :mod:`repro.client` speaks.
* **line** (anything else first) — newline-terminated text commands
  (``HELLO`` / ``QUERY <text>`` / ``PREPARE <name> AS <text>`` /
  ``EXECUTE <name> (args)`` / ``CANCEL <id>`` / ``STATS`` /
  ``CLOSE``), answered with human-readable lines.  A debugging
  convenience for ``telnet``/``nc``; it carries the same verbs but
  renders oids as text instead of tagged terms.

Framed requests carry ``{"op": ..., "id": ...}`` plus op-specific
fields; responses echo the request ``id`` and stream ``row`` /
``warning`` / ``stats`` / ``done`` / ``error`` frames (queries), or a
single reply frame (everything else).  Result values cross the wire as
:func:`repro.model.serialize.dump_oid` tagged terms, whose round trip
is exact — the property suite holds server results byte-identical to
in-process execution.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from typing import Any

from repro.core.translator import TranslationError
from repro.errors import (
    ConstraintSyntaxError,
    EvaluationError,
    LyricSyntaxError,
    QueryCancelled,
    ReproError,
    ResourceExhausted,
    SemanticError,
)
from repro.runtime.context import ExecutionStats

#: Hard cap on a single frame — a guard against a garbage length
#: prefix allocating gigabytes, not a practical limit (row frames are
#: a few hundred bytes).
MAX_FRAME = 32 * 1024 * 1024

#: Protocol revision, reported by the HELLO reply.
PROTOCOL_VERSION = 1


class ProtocolError(ReproError):
    """A malformed frame or command (oversized, bad JSON, missing
    fields).  Sessions answer with a ``bad_request`` error frame and
    keep the connection usable."""


def encode_frame(payload: dict) -> bytes:
    """A JSON object as one length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return len(body).to_bytes(4, "big") + body


async def read_frame(reader: asyncio.StreamReader,
                     prefix: bytes = b"") -> dict | None:
    """The next frame as a dict, or ``None`` at a clean EOF.

    ``prefix`` holds bytes already consumed by mode detection (the
    peeked ``0x00``), logically prepended to the stream.
    """
    header = prefix
    try:
        if len(header) < 4:
            header += await reader.readexactly(4 - len(header))
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and not prefix:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------


def error_code(exc: BaseException) -> str:
    """The stable machine-readable code an exception maps to in an
    ``error`` frame.  Scripts (and the smoke-test client) branch on
    these, mirroring the CLI's exit-code taxonomy."""
    if isinstance(exc, QueryCancelled):
        return "cancelled"
    if isinstance(exc, ResourceExhausted):
        return "resource"
    if isinstance(exc, (LyricSyntaxError, ConstraintSyntaxError)):
        return "syntax"
    if isinstance(exc, TranslationError):
        # Before SemanticError: TranslationError subclasses it.
        return "untranslatable"
    if isinstance(exc, SemanticError):
        return "semantic"
    if isinstance(exc, (EvaluationError, ProtocolError)):
        return "bad_request" if isinstance(exc, ProtocolError) \
            else "evaluation"
    if isinstance(exc, ReproError):
        return "error"
    return "internal"


# ---------------------------------------------------------------------------
# Stats transport
# ---------------------------------------------------------------------------


def stats_payload(stats: ExecutionStats) -> dict[str, Any]:
    """An :class:`ExecutionStats` as a JSON-able dict: scalar counters
    verbatim, warnings as strings, the phase trace flattened to
    name/seconds/detail triples (rendered plans are dropped — they are
    a debugging artifact, not a counter)."""
    out: dict[str, Any] = {}
    for f in dataclasses.fields(stats):
        value = getattr(stats, f.name)
        if f.name == "phases":
            out[f.name] = [{"name": p.name,
                            "seconds": p.seconds,
                            "detail": p.detail} for p in value]
        elif isinstance(value, list):
            out[f.name] = list(value)
        else:
            out[f.name] = value
    return out

"""LyriC-as-a-service: the asyncio query server.

Three layers, one per module:

* :mod:`repro.server.protocol` — the wire format: length-prefixed JSON
  frames over TCP, plus a thin line mode for telnet debugging;
* :mod:`repro.server.session` — one :class:`Session` per connection:
  request dispatch, per-request guard budgets, streaming row frames,
  cooperative cancel;
* :mod:`repro.server.service` — the process-wide
  :class:`QueryService`: the shared database, plan/constraint caches,
  the blocking-work executor, in-flight request deduplication, and the
  aggregate statistics account.

:mod:`repro.server.server` ties them together as :class:`LyricServer`
(accept loop, session limits, graceful shutdown); ``repro serve`` is
the CLI front end and :mod:`repro.client` the matching async client.
"""

from repro.server.protocol import (
    MAX_FRAME,
    ProtocolError,
    encode_frame,
    error_code,
    read_frame,
    stats_payload,
)
from repro.server.service import QueryService, ServerLimits, ServiceStats
from repro.server.session import Session
from repro.server.server import LyricServer

__all__ = [
    "LyricServer",
    "MAX_FRAME",
    "ProtocolError",
    "QueryService",
    "ServerLimits",
    "ServiceStats",
    "Session",
    "encode_frame",
    "error_code",
    "read_frame",
    "stats_payload",
]

"""The accept loop: session limits and graceful shutdown.

:class:`LyricServer` binds one TCP endpoint over one
:class:`~repro.server.service.QueryService`.  Beyond accepting
sessions, its job is the two edges of the lifecycle:

* **admission** — past ``max_sessions`` (or once shutdown has begun) a
  new connection is answered with a single framed ``error``
  (``max_sessions`` / ``shutting_down``) and closed, so clients
  distinguish "busy" from "gone";
* **graceful shutdown** — :meth:`shutdown` stops admitting work, waits
  up to ``drain_timeout`` seconds for in-flight requests to finish on
  their own, then cooperatively cancels the stragglers (their clients
  see a ``cancelled`` error frame), flushes the store's WAL to disk
  when one is attached, and closes every connection.  SIGINT/SIGTERM
  are wired to this by ``repro serve``.
"""

from __future__ import annotations

import asyncio

from repro.errors import StoreError
from repro.server import protocol
from repro.server.service import QueryService
from repro.server.session import Session


class LyricServer:
    def __init__(self, service: QueryService, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_sessions: int = 64,
                 drain_timeout: float = 5.0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.max_sessions = max_sessions
        self.drain_timeout = drain_timeout
        self.sessions: set[Session] = set()
        self._tasks: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._shutting_down = False
        self._closed = asyncio.Event()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port)
        # Resolve the bound port (``port=0`` asks the OS to pick).
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        await self._closed.wait()

    @property
    def shutting_down(self) -> bool:
        return self._shutting_down

    # -- admission -------------------------------------------------------

    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        if self._shutting_down:
            await self._reject(writer, "shutting_down",
                               "server is shutting down")
            return
        if len(self.sessions) >= self.max_sessions:
            await self._reject(
                writer, "max_sessions",
                f"session limit ({self.max_sessions}) reached")
            return
        session = Session(self.service, reader, writer)
        self.sessions.add(session)
        task = asyncio.ensure_future(session.run())
        self._tasks.add(task)

        def _done(t: asyncio.Task) -> None:
            self.sessions.discard(session)
            self._tasks.discard(t)
        task.add_done_callback(_done)

    @staticmethod
    async def _reject(writer: asyncio.StreamWriter, code: str,
                      message: str) -> None:
        try:
            writer.write(protocol.encode_frame(
                {"id": None, "type": "error", "code": code,
                 "message": message}))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    # -- shutdown --------------------------------------------------------

    async def shutdown(self) -> None:
        """Drain, then stop.  Idempotent; returns when fully closed."""
        if self._shutting_down:
            await self._closed.wait()
            return
        self._shutting_down = True
        self.service.draining = True

        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        while loop.time() < deadline \
                and any(s.active for s in self.sessions):
            await asyncio.sleep(0.02)

        # Past the deadline: cooperatively cancel what's still running
        # and give the cancels a moment to land (each needs one guard
        # checkpoint in the worker).
        if any(s.active for s in self.sessions):
            for session in list(self.sessions):
                session.force_cancel()
            grace = loop.time() + 1.0
            while loop.time() < grace \
                    and any(s.active for s in self.sessions):
                await asyncio.sleep(0.02)

        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self.sessions):
            session.writer.close()
        if self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)

        if self.service.store is not None:
            # The whole point of draining before dying: what was
            # acknowledged is on disk.
            try:
                self.service.store.flush()
            except StoreError:
                pass
        self.service.close()
        self._closed.set()

"""The process-wide query service: shared state, deduplication, stats.

One :class:`QueryService` owns what every session shares — the
database (optionally backed by a durable
:class:`~repro.storage.store.Store`), the process-wide plan and
constraint caches, a thread-pool executor for the solver-bound work,
and the aggregate statistics account.

**In-flight deduplication.**  Identical concurrent queries share one
execution: a request is keyed on (normalized AST, schema fingerprint,
database version, plan options, parameter bindings, effective guard
budgets), and a second request arriving while the first still runs
*subscribes* to the same :class:`_Job` instead of executing again.
Every event a job publishes (row batches, warnings, stats, the
terminal frame) is buffered, so a late subscriber replays the prefix
it missed and then follows live — all subscribers observe the exact
same result bytes.  Cancellation is per-subscriber: detaching drops
that waiter, and only when the *last* subscriber detaches is the
shared guard cancelled.

**Mutations.**  ``CREATE VIEW`` takes the writer path: it waits for
in-flight reads to drain, runs exclusively, flushes the store's WAL
(when durable), and bumps ``db_version`` — which changes every dedup
key, so no later query can join a pre-mutation job.

Everything here runs on the event loop thread except the query bodies
themselves, which :meth:`QueryService.submit` ships to the executor;
workers publish events back via ``loop.call_soon_threadsafe``.

**Executor modes.**  The executor above is always a thread pool; with
``executor="process"`` (or ``"auto"`` on a multi-core fork platform)
each executor thread first tries to run its query in a
:class:`~repro.runtime.parallel.WorkerPool` *process* via
:mod:`repro.server.procexec` — true parallelism for distinct-query
load — and falls back to the in-thread body whenever the request
cannot ship (unpicklable AST or params), the pool is saturated or
broken, or the worker's inherited database is stale.  The fallback is
taken before anything is published, so clients cannot observe which
path served them except through STATS.
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, AsyncIterator, Mapping

from repro import lyric
from repro.core import ast
from repro.errors import EvaluationError
from repro.model.database import Database
from repro.model.oid import Oid
from repro.model.serialize import dump_oid
from repro.runtime import ExecutionGuard, QueryContext
from repro.runtime import parallel
from repro.runtime.context import ExecutionStats
from repro.runtime.plancache import plan_options_key
from repro.server import procexec, protocol
from repro.storage.store import Store

#: Rows per published event — the granularity at which the worker
#: thread hands rows to the event loop (each event becomes that many
#: ``row`` frames).
ROW_BATCH = 32

#: Budget axes a client may request and the server may cap.
BUDGET_FIELDS = ("deadline", "max_pivots", "max_branches",
                 "max_disjuncts", "max_canonical")


@dataclass(frozen=True)
class ServerLimits:
    """Server-side caps on per-request guard budgets.

    A client asks for budgets in its request; the effective budget on
    each axis is the *smaller* of what it asked for and the cap here
    (a cap alone applies to clients that asked for nothing).  ``None``
    means uncapped on that axis.

    ``max_workers`` is not a guard budget: it caps how many pool
    *processes* the process executor may occupy at once (``None`` =
    size the pool to the machine).  Requests beyond the cap take the
    thread path instead of queueing."""

    deadline: float | None = None
    max_pivots: int | None = None
    max_branches: int | None = None
    max_disjuncts: int | None = None
    max_canonical: int | None = None
    max_workers: int | None = None

    def effective_guard(self, spec: Mapping[str, Any] | None
                        ) -> ExecutionGuard:
        """The guard a request runs under.  Always a real guard, even
        with no budgets anywhere: the guard is also the cooperative
        cancellation channel, and CANCEL must work on every query."""
        spec = spec or {}
        unknown = set(spec) - set(BUDGET_FIELDS) - {"on_exhaustion"}
        if unknown:
            raise protocol.ProtocolError(
                f"unknown guard fields: {sorted(unknown)}")
        kwargs: dict[str, Any] = {}
        for name in BUDGET_FIELDS:
            asked = spec.get(name)
            cap = getattr(self, name)
            if asked is not None and (
                    not isinstance(asked, (int, float))
                    or asked <= 0):
                raise protocol.ProtocolError(
                    f"guard budget {name} must be positive")
            if asked is None:
                kwargs[name] = cap
            elif cap is None:
                kwargs[name] = asked
            else:
                kwargs[name] = min(asked, cap)
        policy = spec.get("on_exhaustion", "fail")
        if policy not in ("fail", "degrade"):
            raise protocol.ProtocolError(
                f"on_exhaustion must be 'fail' or 'degrade', "
                f"got {policy!r}")
        return ExecutionGuard(on_exhaustion=policy, **kwargs)

    def budget_key(self, spec: Mapping[str, Any] | None) -> tuple:
        """The dedup-key component for a guard spec: the *effective*
        budgets (two clients capped to the same budgets share work)."""
        guard = self.effective_guard(spec)
        return tuple(getattr(guard, name) for name in BUDGET_FIELDS) \
            + (guard.on_exhaustion,)


# ---------------------------------------------------------------------------
# Aggregate statistics (satellite: STATS / --dump-stats-on-exit)
# ---------------------------------------------------------------------------


class ServiceStats:
    """The service-lifetime account: request counters plus a merged
    :class:`ExecutionStats` over every request served.

    Written from executor threads and read from the loop, so all
    access goes through one lock.  Before merging, the unbounded
    ``extend`` fields (phase traces, warnings) are stripped — the
    aggregate is a counter account, not a transcript — which the
    field-survival test pins down explicitly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._execution = ExecutionStats()
        self.requests = 0
        self.failures = 0
        self.cancellations = 0
        self.rows_streamed = 0
        self.dedup_hits = 0
        self.dedup_misses = 0
        self.mutations = 0
        self.sessions_opened = 0
        self.sessions_closed = 0
        #: Resolved executor mode ("thread" / "process"), set by the
        #: owning service.
        self.executor = "thread"
        #: Requests served end-to-end in a pool worker process, and
        #: requests that fell back to the thread path (unpicklable,
        #: saturated, stale, or broken pool).
        self.process_requests = 0
        self.process_fallbacks = 0

    def record_request(self, stats: ExecutionStats | None, *,
                       rows: int = 0, outcome: str = "ok") -> None:
        """Fold one request's account into the aggregate.  ``outcome``
        is ``"ok"`` / ``"error"`` / ``"cancelled"``."""
        with self._lock:
            self.requests += 1
            self.rows_streamed += rows
            if outcome == "error":
                self.failures += 1
            elif outcome == "cancelled":
                self.cancellations += 1
            if stats is not None:
                snap = stats.snapshot()
                snap.pop("phases", None)
                snap.pop("warnings", None)
                self._execution.merge(snap)

    def note_dedup(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.dedup_hits += 1
            else:
                self.dedup_misses += 1

    def note_mutation(self) -> None:
        with self._lock:
            self.mutations += 1

    def note_session(self, opened: bool) -> None:
        with self._lock:
            if opened:
                self.sessions_opened += 1
            else:
                self.sessions_closed += 1

    def note_process(self, *, fallback: bool) -> None:
        with self._lock:
            if fallback:
                self.process_fallbacks += 1
            else:
                self.process_requests += 1

    def snapshot(self) -> dict[str, Any]:
        """The whole account as a JSON-able dict (the STATS reply and
        the ``--dump-stats-on-exit`` report)."""
        with self._lock:
            execution = protocol.stats_payload(self._execution)
            execution.pop("phases", None)
            execution.pop("warnings", None)
            pool = parallel.stats()
            return {
                "requests": self.requests,
                "failures": self.failures,
                "cancellations": self.cancellations,
                "rows_streamed": self.rows_streamed,
                "dedup_hits": self.dedup_hits,
                "dedup_misses": self.dedup_misses,
                "mutations": self.mutations,
                "sessions_opened": self.sessions_opened,
                "sessions_closed": self.sessions_closed,
                "executor": self.executor,
                "process_requests": self.process_requests,
                "process_fallbacks": self.process_fallbacks,
                #: The process-wide worker-pool account — in particular
                #: ``pool_cold_starts``, the warm-pool satellite's
                #: observable.
                "pool": pool,
                "execution": execution,
            }


# ---------------------------------------------------------------------------
# In-flight jobs and their subscribers
# ---------------------------------------------------------------------------

#: Event tuples a job publishes; "done" and "error" are terminal.
_TERMINAL = ("done", "error")


class _Job:
    """One shared execution.  Mutated only on the event loop thread
    (the worker publishes via ``call_soon_threadsafe``), so no lock."""

    __slots__ = ("key", "guard", "buffer", "subscribers", "finished",
                 "_next_sub")

    def __init__(self, key: tuple, guard: ExecutionGuard) -> None:
        self.key = key
        self.guard = guard
        self.buffer: list[tuple] = []
        self.subscribers: dict[int, asyncio.Queue] = {}
        self.finished = False
        self._next_sub = 0

    def publish(self, event: tuple) -> None:
        self.buffer.append(event)
        if event[0] in _TERMINAL:
            self.finished = True
        for queue in self.subscribers.values():
            queue.put_nowait(event)

    def attach(self, deduped: bool) -> "Subscription":
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.buffer:
            queue.put_nowait(event)
        sub_id = self._next_sub
        self._next_sub += 1
        if not self.finished:
            self.subscribers[sub_id] = queue
        return Subscription(self, sub_id, queue, deduped)

    def detach(self, sub_id: int) -> None:
        self.subscribers.pop(sub_id, None)
        if not self.subscribers and not self.finished:
            # Nobody is listening any more: stop spending.  The worker
            # observes this at its next guard checkpoint.
            self.guard.cancel()


class Subscription:
    """One waiter's view of a job: an event stream plus a local,
    per-subscriber cancel."""

    __slots__ = ("job", "sub_id", "queue", "deduped", "detached")

    def __init__(self, job: _Job, sub_id: int, queue: asyncio.Queue,
                 deduped: bool) -> None:
        self.job = job
        self.sub_id = sub_id
        self.queue = queue
        self.deduped = deduped
        self.detached = False

    def cancel(self) -> None:
        """Detach this waiter.  Its event stream ends with a
        ``cancelled`` error immediately; the shared execution keeps
        running while other subscribers remain and is guard-cancelled
        when the last one leaves."""
        if self.detached:
            return
        self.detached = True
        self.job.detach(self.sub_id)
        self.queue.put_nowait(
            ("error", "cancelled", "query cancelled by client"))

    async def events(self) -> AsyncIterator[tuple]:
        """Events until (and including) the terminal one."""
        while True:
            event = await self.queue.get()
            yield event
            if event[0] in _TERMINAL:
                return


class _ReadWriteGate:
    """Reads run concurrently; a mutation runs alone.  Writer-greedy:
    once a writer waits, new readers queue behind it (no starvation).
    Loop-thread only."""

    def __init__(self) -> None:
        self._cond: asyncio.Condition | None = None
        self._readers = 0
        self._writing = False
        self._writers_waiting = 0

    def _condition(self) -> asyncio.Condition:
        if self._cond is None:
            self._cond = asyncio.Condition()
        return self._cond

    async def acquire_read(self) -> None:
        cond = self._condition()
        async with cond:
            while self._writing or self._writers_waiting:
                await cond.wait()
            self._readers += 1

    async def release_read(self) -> None:
        cond = self._condition()
        async with cond:
            self._readers -= 1
            cond.notify_all()

    async def acquire_write(self) -> None:
        cond = self._condition()
        async with cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    await cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writing = True

    async def release_write(self) -> None:
        cond = self._condition()
        async with cond:
            self._writing = False
            cond.notify_all()


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class QueryService:
    """Shared execution state for every session of one server."""

    def __init__(self, db: Database, *,
                 store: Store | None = None,
                 limits: ServerLimits | None = None,
                 executor_threads: int = 8,
                 executor: str = "auto",
                 base_ctx: QueryContext | None = None) -> None:
        self.db = db
        self.store = store
        self.limits = limits or ServerLimits()
        self.stats = ServiceStats()
        #: Bumped under the write gate by every mutation; part of every
        #: dedup key, so post-mutation queries never join stale jobs.
        self.db_version = 0
        #: Set by the server while draining: sessions refuse new work.
        self.draining = False
        # The base context: process-global caches, fresh stats/guard
        # per request (derived in the worker).
        self._base_ctx = base_ctx if base_ctx is not None \
            else QueryContext(store=store)
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads,
            thread_name_prefix="lyric-exec")
        self._jobs: dict[tuple, _Job] = {}
        self._gate = _ReadWriteGate()
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Resolved executor mode: "process" runs picklable requests
        #: in pool workers, "thread" keeps everything in-process.
        self.executor_mode = self._resolve_executor(executor)
        self.stats.executor = self.executor_mode
        self._pool_size = self.limits.max_workers \
            or max(2, os.cpu_count() or 2)
        #: Caps concurrent process-executor requests (ServerLimits.
        #: max_workers); a request that finds no free slot takes the
        #: thread path instead of queueing behind the pool.
        self._worker_slots = threading.Semaphore(self._pool_size)
        if self.executor_mode == "process":
            # Discard any pool forked before this publish: its workers
            # inherited someone else's database (or none at all), and
            # a colliding db_version would let the staleness check
            # pass against the wrong state.
            parallel.shutdown_pool()
            procexec.publish(self.db_version, db)

    @staticmethod
    def _resolve_executor(executor: str) -> str:
        """``auto`` means "process" exactly when it can pay off: a
        ``fork`` platform with more than one core.  An explicit
        ``process`` on a fork-less platform degrades to ``thread``
        (the pool could never start)."""
        if executor not in ("auto", "thread", "process"):
            raise ValueError(
                f"executor must be auto/thread/process, "
                f"got {executor!r}")
        if not parallel._fork_available():
            return "thread"
        if executor == "auto":
            return "process" if (os.cpu_count() or 1) >= 2 \
                else "thread"
        return executor

    # -- lifecycle -------------------------------------------------------

    def _running_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        return loop

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.executor_mode == "process":
            parallel.shutdown_pool()

    def warm_pool(self) -> int:
        """Pre-fork the worker pool (``repro serve --warm-pool``), so
        the first process-executed request does not pay the cold-start
        penalty.  Returns the worker count that answered (0 in thread
        mode)."""
        if self.executor_mode != "process":
            return 0
        return parallel.warm(self._pool_size)

    @property
    def inflight(self) -> int:
        return len(self._jobs)

    # -- queries ---------------------------------------------------------

    def parse(self, text: str) -> ast.Query:
        """Parse through the plan cache's AST memo, so a repeated query
        text skips the tokenizer before it ever reaches a worker."""
        from repro.core.parser import parse_query
        cache = self._base_ctx.active_plan_cache()
        if cache is not None:
            return cache.ast_for(text, parse_query)
        return parse_query(text)

    async def submit(self, query_ast: ast.Query, *,
                     params: Mapping[str, Oid] | None = None,
                     translated: bool = True,
                     use_optimizer: bool = True,
                     guard_spec: Mapping[str, Any] | None = None
                     ) -> Subscription:
        """Run (or join) a query; returns the caller's subscription.

        Dedup joins an in-flight job only when every key component
        matches — including the *effective* budgets, so a tighter
        client never receives rows computed under a looser budget."""
        loop = self._running_loop()
        params_key = tuple(sorted((params or {}).items())) or None
        plan_ctx = self._base_ctx.derive(
            use_optimizer=use_optimizer) \
            if use_optimizer != self._base_ctx.use_optimizer \
            else self._base_ctx
        key = (query_ast, self.db.schema.fingerprint(),
               self.db_version, translated,
               plan_options_key(plan_ctx), params_key,
               self.limits.budget_key(guard_spec))
        job = self._jobs.get(key)
        if job is not None and not job.finished:
            self.stats.note_dedup(True)
            return job.attach(deduped=True)
        self.stats.note_dedup(False)
        await self._gate.acquire_read()
        guard = self.limits.effective_guard(guard_spec)
        job = _Job(key, guard)
        self._jobs[key] = job
        subscription = job.attach(deduped=False)
        db = self.db
        db_version = self.db_version

        def work() -> None:
            if self.executor_mode == "process":
                if self._execute_via_pool(job, db_version, query_ast,
                                          params, translated,
                                          use_optimizer):
                    return
                self.stats.note_process(fallback=True)
            self._execute(job, db, query_ast, params,
                          translated, use_optimizer)

        async def drive() -> None:
            try:
                await loop.run_in_executor(self._executor, work)
            finally:
                if self._jobs.get(key) is job:
                    del self._jobs[key]
                await self._gate.release_read()

        asyncio.ensure_future(drive())
        return subscription

    def _execute(self, job: _Job, db: Database,
                 query_ast: ast.Query,
                 params: Mapping[str, Oid] | None,
                 translated: bool, use_optimizer: bool) -> None:
        """The worker-thread body: pump a
        :class:`~repro.lyric.QueryStream` and publish events."""
        loop = self._loop
        assert loop is not None

        def post(event: tuple) -> None:
            loop.call_soon_threadsafe(job.publish, event)

        stats = ExecutionStats()
        ctx = self._base_ctx.derive(
            guard=job.guard, stats=stats,
            params=dict(params) if params else None)
        baseline = job.guard.spend()
        rows = 0
        try:
            stream = lyric.stream(db, query_ast,
                                  translated=translated,
                                  use_optimizer=use_optimizer,
                                  ctx=ctx)
            batch = stream.next_batch(ROW_BATCH)
            while batch:
                rows += len(batch)
                post(("rows", [
                    ([dump_oid(v) for v in row.values],
                     dump_oid(row.oid) if row.oid is not None
                     else None)
                    for row in batch]))
                batch = stream.next_batch(ROW_BATCH)
            for warning in stream.warnings:
                post(("warning", warning))
            stats.capture_guard(job.guard, baseline)
            post(("stats", protocol.stats_payload(stats)))
            # Record before the terminal event goes out, so anyone who
            # observed "done" also sees this request in the aggregate.
            self.stats.record_request(stats, rows=rows, outcome="ok")
            post(("done", {
                "columns": list(stream.columns),
                "engine": stream.engine,
                "rows": rows,
                "partial": bool(stream.warnings),
            }))
        except BaseException as exc:  # noqa: BLE001 - wire boundary
            stats.capture_guard(job.guard, baseline)
            code = protocol.error_code(exc)
            self.stats.record_request(
                stats, rows=rows,
                outcome="cancelled" if code == "cancelled"
                else "error")
            post(("error", code, str(exc)))

    def _execute_via_pool(self, job: _Job, db_version: int,
                          query_ast: ast.Query,
                          params: Mapping[str, Oid] | None,
                          translated: bool,
                          use_optimizer: bool) -> bool:
        """Try to run the request in a pool worker process.  Returns
        False — with *nothing published* — whenever the thread path
        must serve instead: the request doesn't pickle, the worker cap
        is reached, the pool broke, or the worker's fork-inherited
        database is stale."""
        if not parallel.transportable(
                (query_ast, tuple(sorted((params or {}).items())))):
            return False
        if not self._worker_slots.acquire(blocking=False):
            return False
        slot = parallel.acquire_cancel_slot()
        try:
            guard = job.guard
            limits: dict[str, Any] = {
                name: getattr(guard, name) for name in BUDGET_FIELDS}
            limits["on_exhaustion"] = guard.on_exhaustion
            limits["cancel_slot"] = slot
            base = self._base_ctx
            options = {
                "prefilter": base.prefilter,
                "indexing": base.indexing,
                "numeric": base.numeric,
                "shards": base.shards,
                "cache_off": base.cache is None,
                "plan_cache_off": base.plan_cache is None,
            }
            try:
                pool, cold = parallel.get_pool(self._pool_size)
                future = pool.submit(
                    procexec.run_query, db_version, query_ast, params,
                    translated, use_optimizer, options, limits)
            except Exception:
                parallel.shutdown_pool()
                return False
            signalled = False
            while True:
                if guard.cancelled and not signalled:
                    # Propagate the parent-side cancel; the worker's
                    # guard observes the board at its next checkpoint
                    # and ships a clean "cancelled" reply.
                    parallel.signal_cancel(slot)
                    signalled = True
                try:
                    reply = future.result(timeout=0.05)
                    break
                except FuturesTimeout:
                    continue
                except (BrokenProcessPool, OSError, RuntimeError):
                    parallel.shutdown_pool()
                    return False
            if reply.get("stale"):
                return False
            # Count the process-served request *before* the terminal
            # frame goes out (same invariant as record_request in the
            # thread path: anyone who observed "done" also sees this
            # request in the aggregate).
            self.stats.note_process(fallback=False)
            self._publish_reply(job, reply, cold)
            return True
        finally:
            parallel.release_cancel_slot(slot)
            self._worker_slots.release()

    def _publish_reply(self, job: _Job, reply: dict,
                       cold: bool) -> None:
        """Publish a worker reply as the exact event sequence the
        thread path would have produced (frames are byte-identical;
        only their timing differs — the worker ships the whole result
        at once)."""
        loop = self._loop
        assert loop is not None

        def post(event: tuple) -> None:
            loop.call_soon_threadsafe(job.publish, event)

        stats = ExecutionStats()
        stats.merge(reply["stats"])
        stats.pool_dispatches += 1
        if cold:
            stats.pool_cold_starts += 1
        parallel._stats["pool_dispatches"] += 1
        job.guard.absorb_spend(reply["spend"])
        rows = reply["rows"]
        for i in range(0, len(rows), ROW_BATCH):
            post(("rows", rows[i:i + ROW_BATCH]))
        code = reply.get("error_code")
        if code is None:
            for warning in reply["warnings"]:
                post(("warning", warning))
            post(("stats", protocol.stats_payload(stats)))
            self.stats.record_request(stats, rows=len(rows),
                                      outcome="ok")
            post(("done", {
                "columns": reply["columns"],
                "engine": reply["engine"],
                "rows": len(rows),
                "partial": reply["partial"],
            }))
        else:
            self.stats.record_request(
                stats, rows=len(rows),
                outcome="cancelled" if code == "cancelled"
                else "error")
            post(("error", code, reply["error_message"]))

    # -- mutations -------------------------------------------------------

    async def run_view(self, text: str | ast.CreateView,
                       guard_spec: Mapping[str, Any] | None = None
                       ) -> dict[str, Any]:
        """Execute a CREATE VIEW exclusively: wait out in-flight reads,
        materialize, flush the store's WAL (fsync), bump the database
        version.  Returns the JSON-able summary frame body."""
        loop = self._running_loop()
        await self._gate.acquire_write()
        try:
            guard = self.limits.effective_guard(guard_spec)

            def work() -> dict[str, Any]:
                ctx = self._base_ctx.derive(
                    guard=guard, stats=ExecutionStats())
                created = lyric.view(self.db, text, ctx=ctx)
                if self.store is not None:
                    self.store.flush()
                return {
                    "classes": list(created.classes),
                    "instances": {name: len(members)
                                  for name, members
                                  in created.instances.items()},
                }
            summary = await loop.run_in_executor(self._executor, work)
            self.db_version += 1
            self.stats.note_mutation()
            if self.executor_mode == "process":
                # Pool workers inherited the pre-mutation database by
                # fork.  Re-publish for the *next* fork and discard the
                # pool (exclusive write: no process query is running);
                # the version check in the worker covers any stragglers.
                procexec.publish(self.db_version, self.db)
                parallel.shutdown_pool()
            return summary
        finally:
            await self._gate.release_write()

    # -- prepared statements --------------------------------------------

    def analyze_prepared(self, text: str) -> tuple[ast.Query,
                                                   tuple[str, ...],
                                                   list[str]]:
        """Parse + analyze for PREPARE: the AST (which EXECUTE submits
        through the same dedup machinery as QUERY), the parameter
        slots, and the static warnings."""
        from repro.core.semantics import analyze
        query_ast = self.parse(text)
        analysis = analyze(self.db.schema, query_ast)
        return query_ast, analysis.params, list(analysis.warnings)

    @staticmethod
    def check_params(required: tuple[str, ...],
                     bound: Mapping[str, Oid] | None) -> None:
        missing = [p for p in required if p not in (bound or {})]
        if missing:
            raise EvaluationError(
                "unbound parameters: "
                + ", ".join(f"${p}" for p in missing))

"""One :class:`Session` per accepted connection.

A session owns the per-connection state — request ids in flight, the
prepared-statement namespace, the write half of the socket — and
translates between the wire and the shared
:class:`~repro.server.service.QueryService`.

Framed mode handles requests *concurrently*: each QUERY/EXECUTE
spawns a pump task that streams its subscription's events out as
frames, while the read loop keeps reading — which is what lets a
CANCEL for an in-flight request arrive and take effect mid-stream.
One write lock serializes frames onto the socket; a request's own
frames stay in order because they all flow through its single pump.

Line mode (telnet) is deliberately thinner: sequential
request/response, text rendering, no mid-query cancel.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Any

from repro.model.oid import Oid, as_oid
from repro.model.serialize import load_oid
from repro.server import protocol
from repro.server.service import QueryService, Subscription


def _decode_params(payload: Any) -> dict[str, Oid] | None:
    """Wire parameter bindings -> oids.  Tagged terms go through
    :func:`load_oid`; plain scalars (numbers, strings) coerce like the
    ``params=`` mapping of the in-process API."""
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise protocol.ProtocolError("params must be an object")
    out: dict[str, Oid] = {}
    for name, value in payload.items():
        if isinstance(value, dict):
            out[name] = load_oid(value)
        else:
            out[name] = as_oid(value)
    return out


_LINE_PREPARE = re.compile(
    r"^prepare\s+([A-Za-z_]\w*)\s+as\s+(.+)$",
    re.IGNORECASE | re.DOTALL)
_LINE_EXECUTE = re.compile(
    r"^execute\s+([A-Za-z_]\w*)\s*(?:\((.*)\))?\s*$",
    re.IGNORECASE | re.DOTALL)


class Session:
    """The protocol state machine for one connection."""

    _ids = iter(range(1, 1 << 62))

    def __init__(self, service: QueryService,
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.service = service
        self.reader = reader
        self.writer = writer
        self.session_id = next(Session._ids)
        #: request id -> live subscription (the CANCEL target table).
        self.active: dict[int, Subscription] = {}
        self.prepared: dict[str, tuple] = {}
        self._write_lock = asyncio.Lock()
        self._pumps: set[asyncio.Task] = set()
        self._closing = False

    # -- top level -------------------------------------------------------

    async def run(self) -> None:
        self.service.stats.note_session(opened=True)
        try:
            first = await self.reader.read(1)
            if not first:
                return
            if first == b"\x00":
                await self._run_framed(first)
            else:
                await self._run_lines(first)
        except (protocol.ProtocolError, ConnectionError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self._closing = True
            for subscription in list(self.active.values()):
                subscription.cancel()
            if self._pumps:
                await asyncio.gather(*self._pumps,
                                     return_exceptions=True)
            self.service.stats.note_session(opened=False)
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def force_cancel(self) -> None:
        """Cancel every in-flight request (shutdown past deadline)."""
        for subscription in list(self.active.values()):
            subscription.cancel()

    # -- framed mode -----------------------------------------------------

    async def _run_framed(self, prefix: bytes) -> None:
        while not self._closing:
            try:
                frame = await protocol.read_frame(self.reader, prefix)
            except protocol.ProtocolError as exc:
                await self._send({"id": None, "type": "error",
                                  "code": "bad_request",
                                  "message": str(exc)})
                return
            prefix = b""
            if frame is None:
                return
            if not await self._dispatch(frame):
                return

    async def _dispatch(self, frame: dict) -> bool:
        """Handle one request frame; False ends the session."""
        op = frame.get("op")
        request_id = frame.get("id")
        try:
            if op == "hello":
                await self._send({
                    "id": request_id, "type": "hello",
                    "server": "lyric", "version":
                        protocol.PROTOCOL_VERSION,
                    "session": self.session_id,
                    "engines": ["translated", "naive"]})
            elif op == "close":
                await self._send({"id": request_id, "type": "bye"})
                return False
            elif op == "stats":
                await self._send({
                    "id": request_id, "type": "stats",
                    "stats": self.service.stats.snapshot()})
            elif op == "cancel":
                target = frame.get("target")
                subscription = self.active.get(target)
                if subscription is not None:
                    subscription.cancel()
                await self._send({
                    "id": request_id, "type": "cancelled",
                    "target": target,
                    "found": subscription is not None})
            elif op in ("query", "execute", "view"):
                if self.service.draining:
                    await self._send({
                        "id": request_id, "type": "error",
                        "code": "shutting_down",
                        "message": "server is shutting down"})
                    return True
                if op == "view":
                    await self._handle_view(request_id, frame)
                else:
                    await self._start_query(request_id, frame, op)
            elif op == "prepare":
                self._handle_prepare(frame)
                name = frame["name"]
                _ast, params, warnings = self.prepared[name]
                await self._send({
                    "id": request_id, "type": "prepared",
                    "name": name, "params": list(params),
                    "warnings": warnings})
            else:
                raise protocol.ProtocolError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 - wire boundary
            await self._send({
                "id": request_id, "type": "error",
                "code": protocol.error_code(exc),
                "message": str(exc)})
        return True

    def _handle_prepare(self, frame: dict) -> None:
        name = frame.get("name")
        text = frame.get("text")
        if not isinstance(name, str) or not isinstance(text, str):
            raise protocol.ProtocolError(
                "prepare requires string 'name' and 'text'")
        self.prepared[name] = self.service.analyze_prepared(text)

    async def _start_query(self, request_id: Any, frame: dict,
                           op: str) -> None:
        options = frame.get("options") or {}
        params = _decode_params(frame.get("params"))
        if op == "execute":
            name = frame.get("name")
            entry = self.prepared.get(name)
            if entry is None:
                raise protocol.ProtocolError(
                    f"no prepared query {name!r}")
            query_ast, required, _warnings = entry
            self.service.check_params(required, params)
        else:
            text = frame.get("text")
            if not isinstance(text, str):
                raise protocol.ProtocolError(
                    "query requires string 'text'")
            query_ast = self.service.parse(text)
        subscription = await self.service.submit(
            query_ast, params=params,
            translated=options.get("translated", True),
            use_optimizer=options.get("use_optimizer", True),
            guard_spec=options.get("guard"))
        self.active[request_id] = subscription
        pump = asyncio.ensure_future(
            self._pump(request_id, subscription))
        self._pumps.add(pump)
        pump.add_done_callback(self._pumps.discard)

    async def _pump(self, request_id: Any,
                    subscription: Subscription) -> None:
        try:
            async for event in subscription.events():
                await self._write_event(request_id, subscription,
                                        event)
        except (ConnectionError, OSError):
            subscription.cancel()
        finally:
            self.active.pop(request_id, None)

    async def _write_event(self, request_id: Any,
                           subscription: Subscription,
                           event: tuple) -> None:
        kind = event[0]
        if kind == "rows":
            frames = [{"id": request_id, "type": "row",
                       "values": values, "oid": oid}
                      for values, oid in event[1]]
        elif kind == "warning":
            frames = [{"id": request_id, "type": "warning",
                       "message": event[1]}]
        elif kind == "stats":
            frames = [{"id": request_id, "type": "stats",
                       "stats": event[1]}]
        elif kind == "done":
            body = dict(event[1])
            body["dedup"] = subscription.deduped
            frames = [{"id": request_id, "type": "done", **body}]
        else:  # error
            frames = [{"id": request_id, "type": "error",
                       "code": event[1], "message": event[2]}]
        async with self._write_lock:
            for frame in frames:
                self.writer.write(protocol.encode_frame(frame))
            await self.writer.drain()

    async def _handle_view(self, request_id: Any,
                           frame: dict) -> None:
        text = frame.get("text")
        if not isinstance(text, str):
            raise protocol.ProtocolError(
                "view requires string 'text'")
        options = frame.get("options") or {}
        summary = await self.service.run_view(
            text, guard_spec=options.get("guard"))
        await self._send({"id": request_id, "type": "view",
                          **summary})

    async def _send(self, payload: dict) -> None:
        async with self._write_lock:
            self.writer.write(protocol.encode_frame(payload))
            await self.writer.drain()

    # -- line mode -------------------------------------------------------

    async def _run_lines(self, first: bytes) -> None:
        buffer = first
        while not self._closing:
            line = await self.reader.readline()
            raw = (buffer + line)
            buffer = b""
            if not raw.strip() and not line:
                return
            text = raw.decode("utf-8", "replace").strip()
            if not text:
                if not line:
                    return
                continue
            if not await self._line_command(text):
                return
            if not line:
                return

    async def _line_command(self, text: str) -> bool:
        lowered = text.lower().rstrip(";").strip()
        body = text.rstrip(";").strip()
        try:
            if lowered in ("close", "quit", "exit"):
                await self._say("bye")
                return False
            if lowered == "hello":
                await self._say(
                    f"ok lyric v{protocol.PROTOCOL_VERSION} "
                    f"session={self.session_id}")
                return True
            if lowered == "stats":
                await self._say("stats " + json.dumps(
                    self.service.stats.snapshot(),
                    separators=(",", ":")))
                return True
            if lowered.startswith("cancel"):
                await self._say("error bad_request: line mode is "
                                "sequential; nothing to cancel")
                return True
            if self.service.draining:
                await self._say(
                    "error shutting_down: server is shutting down")
                return True
            match = _LINE_PREPARE.match(body)
            if match:
                name = match.group(1)
                self.prepared[name] = \
                    self.service.analyze_prepared(match.group(2))
                slots = self.prepared[name][1]
                suffix = (" (" + ", ".join(f"${p}" for p in slots)
                          + ")") if slots else ""
                await self._say(f"prepared {name}{suffix}")
                return True
            match = _LINE_EXECUTE.match(body)
            if match:
                from repro.cli import _execute_bindings
                entry = self.prepared.get(match.group(1))
                if entry is None:
                    await self._say(
                        f"error bad_request: no prepared query "
                        f"{match.group(1)!r}")
                    return True
                query_ast, required, _warnings = entry
                bindings = _execute_bindings(match.group(2), required)
                self.service.check_params(required, bindings)
                await self._line_query(query_ast, bindings)
                return True
            if lowered.startswith("create"):
                summary = await self.service.run_view(body)
                for name in summary["classes"]:
                    count = summary["instances"].get(name, 0)
                    await self._say(f"{name}: {count} instances")
                await self._say("done")
                return True
            if lowered.startswith("query "):
                body = body[len("query "):]
            await self._line_query(self.service.parse(body), None)
            return True
        except Exception as exc:  # noqa: BLE001 - wire boundary
            await self._say(
                f"error {protocol.error_code(exc)}: {exc}")
            return True

    async def _line_query(self, query_ast,
                          params: dict | None) -> None:
        subscription = await self.service.submit(
            query_ast, params=params)
        rows = 0
        async for event in subscription.events():
            kind = event[0]
            if kind == "rows":
                for values, oid in event[1]:
                    rows += 1
                    rendered = " | ".join(
                        str(load_oid(v)) for v in values)
                    if oid is not None:
                        rendered = f"<{load_oid(oid)}> | {rendered}"
                    await self._say(f"row {rendered}")
            elif kind == "warning":
                await self._say(f"warning {event[1]}")
            elif kind == "done":
                suffix = " (partial)" if event[1]["partial"] else ""
                await self._say(
                    f"done {event[1]['rows']} rows via "
                    f"{event[1]['engine']}{suffix}")
            elif kind == "error":
                await self._say(f"error {event[1]}: {event[2]}")

    async def _say(self, line: str) -> None:
        async with self._write_lock:
            self.writer.write(line.encode("utf-8") + b"\n")
            await self.writer.drain()

"""Top-level facade: the one-import API for LyriC users.

    from repro import lyric
    from repro.model.office import build_office_database

    db, oids = build_office_database()
    result = lyric.query(db, '''
        SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
        FROM Office_Object CO
        WHERE CO.extent[E] and CO.translation[D]
    ''')
    print(result.pretty())

Every entry point accepts an optional
:class:`~repro.runtime.QueryContext` carrying the execution state
(guard, cache, stats, indexing/parallelism options); the ``guard``
parameters remain as conveniences that derive a context on the fly.
"""

from __future__ import annotations

from typing import Mapping

from typing import Iterator

from repro.core import ast
from repro.core.evaluator import evaluate
from repro.core.parser import parse, parse_query, parse_view
from repro.core.result import ResultRow, ResultSet
from repro.core.translator import TranslationError, run_translated
from repro.core.views import ViewResult, create_view
from repro.errors import QueryCancelled, ResourceExhausted
from repro.model.database import Database
from repro.model.oid import Oid, as_oid
from repro.runtime import ExecutionGuard, QueryContext, guarded
from repro.runtime import context as context_mod
from repro.runtime.context import ExecutionStats
from repro.runtime.guard import should_degrade


def _call_context(guard: ExecutionGuard | None,
                  ctx: QueryContext | None,
                  **overrides) -> QueryContext:
    """The context a facade call should run under: the explicit ``ctx``
    (or the ambient one), with ``guard`` derived in when given.  Calls
    with neither get a fresh stats account so repeated facade calls do
    not grow the process default's."""
    base = context_mod.resolve(ctx)
    if guard is not None:
        overrides["guard"] = guard
    if ctx is None and "stats" not in overrides:
        overrides["stats"] = ExecutionStats()
    return base.derive(**overrides) if overrides else base


def _coerce_params(params: Mapping[str, object] | None
                   ) -> dict[str, Oid] | None:
    """Parameter bindings with plain Python values coerced to oids
    (ints/floats/strings become literal oids, CST objects become CST
    oids; oids pass through)."""
    if params is None:
        return None
    return {name: as_oid(value) for name, value in params.items()}


def query(db: Database, text: str | ast.Query,
          guard: ExecutionGuard | None = None,
          ctx: QueryContext | None = None,
          params: Mapping[str, object] | None = None) -> ResultSet:
    """Evaluate a LyriC query with the naive object-level evaluator.

    An optional :class:`~repro.runtime.ExecutionGuard` bounds the
    execution (deadline, pivot/branch/disjunct/canonicalisation
    budgets, cancellation); with ``on_exhaustion="degrade"`` the result
    is partial-with-warnings instead of an error.  ``ctx`` supplies the
    full execution state (cache, stats, options) explicitly.
    ``params`` binds the query's ``$name`` placeholders.
    """
    overrides = {}
    if params is not None:
        overrides["params"] = _coerce_params(params)
    return evaluate(db, text, ctx=_call_context(guard, ctx, **overrides))


def query_translated(db: Database, text: str | ast.Query,
                     use_optimizer: bool = True,
                     guard: ExecutionGuard | None = None,
                     ctx: QueryContext | None = None,
                     params: Mapping[str, object] | None = None
                     ) -> ResultSet:
    """Evaluate via the Section 5 translation to flat SQL with
    constraints (the second, independent evaluation path), through the
    staged compile pipeline."""
    overrides = {}
    if params is not None:
        overrides["params"] = _coerce_params(params)
    return run_translated(db, text, use_optimizer=use_optimizer,
                          ctx=_call_context(guard, ctx, **overrides))


def view(db: Database, text: str | ast.CreateView,
         guard: ExecutionGuard | None = None,
         ctx: QueryContext | None = None) -> ViewResult:
    """Execute a CREATE VIEW statement, materializing new classes."""
    return create_view(db, text, ctx=_call_context(guard, ctx))


def explain(db: Database, text: str | ast.Query,
            use_optimizer: bool = True, analyze: bool = False,
            ctx: QueryContext | None = None) -> str:
    """The flat-relational plan the Section 5 translation produces for
    a query, rendered as a tree (after optimization by default).

    With ``analyze`` the plan is executed and each node is annotated
    with its actual output row count; the compile pipeline's per-phase
    trace lands in the context's stats (``ctx.stats.phases``)."""
    import time

    from repro.core.pipeline import Pipeline
    from repro.runtime.context import PhaseRecord
    from repro.sqlc.engine import explain_analyze

    call_ctx = _call_context(None, ctx, use_optimizer=use_optimizer)
    compiled = Pipeline(db, call_ctx).compile(text)
    if not analyze:
        return compiled.plan.explain()
    from repro.model.relations import flatten
    catalog = flatten(db, shards=call_ctx.shards)
    exec_ctx = call_ctx.derive(catalog=catalog, db=db)
    started = time.perf_counter()
    rendered = explain_analyze(compiled.plan, catalog,
                               use_optimizer=False, ctx=exec_ctx)
    call_ctx.stats.phases.append(PhaseRecord(
        "execute", time.perf_counter() - started,
        detail="explain analyze (per-node evaluation)"))
    return rendered


def warnings_for(db: Database, text: str | ast.Query) -> list[str]:
    """Static diagnostics for a query (e.g. paths that are empty by
    typing — XSQL's "type error" case)."""
    from repro.core.parser import parse_query
    from repro.core.semantics import analyze as analyze_query
    query = parse_query(text) if isinstance(text, str) else text
    return list(analyze_query(db.schema, query).warnings)


class QueryStream:
    """Incremental query results: an iterator of
    :class:`~repro.core.result.ResultRow`\\ s plus the metadata a
    consumer streams out alongside them (columns, warnings, stats).
    Created by :func:`stream`; the serving layer pumps one of these per
    request, shipping rows as frames between guard checkpoints.

    Every pull re-activates the stream's context: generators resume in
    the *caller's* contextvar scope, so without this the engine's
    late-bound closures (parameter slots, ``bound_db``, the constraint
    cache) would resolve against whatever context the pumping thread
    happens to have active.

    Exhaustion policy matches the materializing entry points: under
    ``on_exhaustion="degrade"`` a tripped budget ends the stream with a
    ``partial result: ...`` warning instead of raising.  The one
    deliberate divergence is :class:`~repro.errors.QueryCancelled`,
    which always propagates — an explicit cancel is a verdict, not a
    partial answer (the server turns it into an ``error`` frame with
    code ``cancelled``).
    """

    def __init__(self, ctx: QueryContext, columns: tuple[str, ...],
                 rows: Iterator[ResultRow], engine: str):
        self._ctx = ctx
        self._rows = rows
        self._columns = tuple(columns)
        self._engine = engine
        self._own_warnings: list[str] = []
        self._done = False

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    @property
    def engine(self) -> str:
        """Which evaluator produces the rows: ``"translated"`` (the
        Section 5 compile pipeline) or ``"naive"`` (the reference
        evaluator — the fallback outside the translatable fragment)."""
        return self._engine

    @property
    def ctx(self) -> QueryContext:
        return self._ctx

    @property
    def stats(self) -> ExecutionStats:
        return self._ctx.stats

    @property
    def exhausted(self) -> bool:
        """True once the stream has yielded its last row (normally or
        by degrading)."""
        return self._done

    @property
    def warnings(self) -> tuple[str, ...]:
        """Warnings so far: the context account's (the translated
        engine degrades internally, leaving its warning there) plus the
        stream's own (a budget tripped between pulls under degrade).
        Complete only once :attr:`exhausted`."""
        return tuple(self._ctx.stats.warnings) \
            + tuple(self._own_warnings)

    def __iter__(self) -> Iterator[ResultRow]:
        while True:
            row = self._pull()
            if row is None:
                return
            yield row

    def next_batch(self, size: int = 64) -> list[ResultRow]:
        """Up to ``size`` more rows; ``[]`` means the stream is done."""
        batch: list[ResultRow] = []
        while len(batch) < size:
            row = self._pull()
            if row is None:
                break
            batch.append(row)
        return batch

    def _pull(self) -> ResultRow | None:
        if self._done:
            return None
        try:
            with self._ctx.activate():
                return next(self._rows)
        except StopIteration:
            self._done = True
            return None
        except QueryCancelled:
            self._done = True
            raise
        except ResourceExhausted as exc:
            self._done = True
            if not should_degrade(self._ctx.guard):
                raise
            self._own_warnings.append(f"partial result: {exc}")
            return None

    def result(self) -> ResultSet:
        """Drain the stream and materialize — identical to what the
        equivalent :func:`query`/:func:`query_translated` call
        returns."""
        rows = list(self)
        result = ResultSet(self._columns)
        for warning in self.warnings:
            result.add_warning(warning)
        for row in rows:
            result.add(row)
        return result


def stream(db: Database, text: str | ast.Query,
           translated: bool = True,
           use_optimizer: bool = True,
           guard: ExecutionGuard | None = None,
           ctx: QueryContext | None = None,
           params: Mapping[str, object] | None = None) -> QueryStream:
    """Evaluate a query incrementally, returning a
    :class:`QueryStream` of rows instead of a materialized
    :class:`~repro.core.result.ResultSet`.

    Compilation (parse, analysis, and — when ``translated`` — the plan
    pipeline) runs eagerly, so syntax and translation problems surface
    here; execution is deferred to the first pull.  ``translated``
    queries outside the translatable fragment fall back to the naive
    evaluator, as does any run under fault injection (matching
    :class:`PreparedQuery`); :attr:`QueryStream.engine` reports which
    path was taken.
    """
    overrides: dict = {}
    if params is not None:
        overrides["params"] = _coerce_params(params)
    if translated:
        overrides["use_optimizer"] = use_optimizer
    call_ctx = _call_context(guard, ctx, **overrides)
    query_ast = parse_query(text) if isinstance(text, str) else text
    if translated and call_ctx.faults is None:
        from repro.core.pipeline import Pipeline
        pipeline = Pipeline(db, call_ctx)
        try:
            compiled = pipeline.compile(query_ast)
        except TranslationError:
            compiled = None
        if compiled is not None:
            return QueryStream(call_ctx, compiled.columns,
                               pipeline.stream_compiled(compiled),
                               "translated")
    from repro.core import evaluator as evaluator_mod
    from repro.core.semantics import analyze as analyze_query
    analysis = analyze_query(db.schema, query_ast)
    rows = evaluator_mod.stream_analyzed(db, analysis, ctx=call_ctx)
    columns = evaluator_mod._column_names(analysis.query)
    return QueryStream(call_ctx, columns, rows, "naive")


class PreparedQuery:
    """A query parsed, analyzed **and compiled** once, reusable across
    executions — the PREPARE half of PREPARE/EXECUTE.

    Binding is by schema *content*, not object identity: the schema
    fingerprint recorded at prepare time must equal the target
    database's, so a database restored via
    :class:`~repro.storage.store.Store` runs plans prepared against the
    original, while any DDL mutation correctly invalidates them.

    The compiled plan is memoized per plan-relevant option combination
    (numeric/indexing/optimizer/parallelism); queries outside the
    translatable fragment fall back to the naive evaluator, as does any
    run under fault injection (a memoized plan would shift the fault
    schedule's compile-phase ticks).
    """

    def __init__(self, schema, text: str | ast.Query):
        from repro.core.parser import parse_query
        from repro.core.semantics import analyze as analyze_query
        query_ast = parse_query(text) if isinstance(text, str) else text
        self._schema = schema
        self._fingerprint = schema.fingerprint()
        self._query_ast = query_ast
        self._analysis = analyze_query(schema, query_ast)
        #: options key -> CompiledQuery, or None for "untranslatable".
        self._plans: dict = {}

    @property
    def warnings(self) -> list[str]:
        return list(self._analysis.warnings)

    @property
    def query(self) -> ast.Query:
        return self._analysis.query

    @property
    def params(self) -> tuple[str, ...]:
        """Parameter slots in positional (first-occurrence) order."""
        return self._analysis.params

    def run(self, db: Database,
            ctx: QueryContext | None = None,
            params: Mapping[str, object] | None = None) -> ResultSet:
        if db.schema.fingerprint() != self._fingerprint:
            raise ValueError(
                "prepared query bound to a different schema")
        overrides = {}
        if params is not None:
            overrides["params"] = _coerce_params(params)
        call_ctx = _call_context(None, ctx, **overrides)
        bound = call_ctx.params or {}
        missing = [p for p in self._analysis.params if p not in bound]
        if missing:
            from repro.errors import EvaluationError
            raise EvaluationError(
                "unbound parameters: "
                + ", ".join(f"${p}" for p in missing))
        from repro.core.evaluator import evaluate_analyzed
        if call_ctx.faults is not None:
            return evaluate_analyzed(db, self._analysis, ctx=call_ctx)
        from repro.core.pipeline import Pipeline
        from repro.runtime.plancache import plan_options_key
        key = plan_options_key(call_ctx)
        pipeline = Pipeline(db, call_ctx)
        if key not in self._plans:
            try:
                self._plans[key] = pipeline.compile(self._query_ast)
            except TranslationError:
                self._plans[key] = None
        compiled = self._plans[key]
        if compiled is None:
            return evaluate_analyzed(db, self._analysis, ctx=call_ctx)
        return pipeline.run_compiled(compiled)


def prepare(db: Database, text: str | ast.Query) -> PreparedQuery:
    """Parse, analyze and (lazily) compile once; execute many times
    with ``.run(db, params=...)``."""
    return PreparedQuery(db.schema, text)


__all__ = [
    "Database",
    "ExecutionGuard",
    "QueryContext",
    "guarded",
    "ResultSet",
    "ViewResult",
    "create_view",
    "evaluate",
    "explain",
    "prepare",
    "PreparedQuery",
    "parse",
    "parse_query",
    "parse_view",
    "query",
    "query_translated",
    "stream",
    "QueryStream",
    "view",
]

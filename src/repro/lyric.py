"""Top-level facade: the one-import API for LyriC users.

    from repro import lyric
    from repro.model.office import build_office_database

    db, oids = build_office_database()
    result = lyric.query(db, '''
        SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
        FROM Office_Object CO
        WHERE CO.extent[E] and CO.translation[D]
    ''')
    print(result.pretty())
"""

from __future__ import annotations

from repro.core import ast
from repro.core.evaluator import evaluate
from repro.core.parser import parse, parse_query, parse_view
from repro.core.result import ResultSet
from repro.core.translator import run_translated
from repro.core.views import ViewResult, create_view
from repro.model.database import Database
from repro.runtime import ExecutionGuard, guarded


def query(db: Database, text: str | ast.Query,
          guard: ExecutionGuard | None = None) -> ResultSet:
    """Evaluate a LyriC query with the naive object-level evaluator.

    An optional :class:`~repro.runtime.ExecutionGuard` bounds the
    execution (deadline, pivot/branch/disjunct/canonicalisation
    budgets, cancellation); with ``on_exhaustion="degrade"`` the result
    is partial-with-warnings instead of an error.  Equivalent to
    ``with guarded(guard): lyric.query(db, text)``.
    """
    with guarded(guard):
        return evaluate(db, text)


def query_translated(db: Database, text: str | ast.Query,
                     use_optimizer: bool = True,
                     guard: ExecutionGuard | None = None) -> ResultSet:
    """Evaluate via the Section 5 translation to flat SQL with
    constraints (the second, independent evaluation path)."""
    with guarded(guard):
        return run_translated(db, text, use_optimizer=use_optimizer)


def view(db: Database, text: str | ast.CreateView) -> ViewResult:
    """Execute a CREATE VIEW statement, materializing new classes."""
    return create_view(db, text)


def explain(db: Database, text: str | ast.Query,
            use_optimizer: bool = True, analyze: bool = False) -> str:
    """The flat-relational plan the Section 5 translation produces for
    a query, rendered as a tree (after optimization by default).

    With ``analyze`` the plan is executed and each node is annotated
    with its actual output row count."""
    from repro.core.translator import translate
    from repro.model.relations import flatten
    from repro.sqlc.engine import explain_analyze
    from repro.sqlc.optimizer import optimize
    translated = translate(db, text)
    catalog = flatten(db)
    if analyze:
        return explain_analyze(translated.plan, catalog,
                               use_optimizer=use_optimizer)
    plan = translated.plan
    if use_optimizer:
        plan = optimize(plan, catalog)
    return plan.explain()


def warnings_for(db: Database, text: str | ast.Query) -> list[str]:
    """Static diagnostics for a query (e.g. paths that are empty by
    typing — XSQL's "type error" case)."""
    from repro.core.parser import parse_query
    from repro.core.semantics import analyze as analyze_query
    query = parse_query(text) if isinstance(text, str) else text
    return list(analyze_query(db.schema, query).warnings)


class PreparedQuery:
    """A parsed and analyzed query bound to a schema, reusable across
    executions (and databases sharing that schema) without re-running
    the parser or the semantic analysis."""

    def __init__(self, schema, text: str | ast.Query):
        from repro.core.parser import parse_query
        from repro.core.semantics import analyze as analyze_query
        query_ast = parse_query(text) if isinstance(text, str) else text
        self._schema = schema
        self._analysis = analyze_query(schema, query_ast)

    @property
    def warnings(self) -> list[str]:
        return list(self._analysis.warnings)

    @property
    def query(self) -> ast.Query:
        return self._analysis.query

    def run(self, db: Database) -> ResultSet:
        if db.schema is not self._schema:
            raise ValueError(
                "prepared query bound to a different schema")
        from repro.core.evaluator import evaluate_analyzed
        return evaluate_analyzed(db, self._analysis)


def prepare(db: Database, text: str | ast.Query) -> PreparedQuery:
    """Parse and analyze once; execute many times with ``.run(db)``."""
    return PreparedQuery(db.schema, text)


__all__ = [
    "Database",
    "ExecutionGuard",
    "guarded",
    "ResultSet",
    "ViewResult",
    "create_view",
    "evaluate",
    "explain",
    "prepare",
    "PreparedQuery",
    "parse",
    "parse_query",
    "parse_view",
    "query",
    "query_translated",
    "view",
]

"""Top-level facade: the one-import API for LyriC users.

    from repro import lyric
    from repro.model.office import build_office_database

    db, oids = build_office_database()
    result = lyric.query(db, '''
        SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
        FROM Office_Object CO
        WHERE CO.extent[E] and CO.translation[D]
    ''')
    print(result.pretty())

Every entry point accepts an optional
:class:`~repro.runtime.QueryContext` carrying the execution state
(guard, cache, stats, indexing/parallelism options); the ``guard``
parameters remain as conveniences that derive a context on the fly.
"""

from __future__ import annotations

from repro.core import ast
from repro.core.evaluator import evaluate
from repro.core.parser import parse, parse_query, parse_view
from repro.core.result import ResultSet
from repro.core.translator import run_translated
from repro.core.views import ViewResult, create_view
from repro.model.database import Database
from repro.runtime import ExecutionGuard, QueryContext, guarded
from repro.runtime import context as context_mod
from repro.runtime.context import ExecutionStats


def _call_context(guard: ExecutionGuard | None,
                  ctx: QueryContext | None,
                  **overrides) -> QueryContext:
    """The context a facade call should run under: the explicit ``ctx``
    (or the ambient one), with ``guard`` derived in when given.  Calls
    with neither get a fresh stats account so repeated facade calls do
    not grow the process default's."""
    base = context_mod.resolve(ctx)
    if guard is not None:
        overrides["guard"] = guard
    if ctx is None and "stats" not in overrides:
        overrides["stats"] = ExecutionStats()
    return base.derive(**overrides) if overrides else base


def query(db: Database, text: str | ast.Query,
          guard: ExecutionGuard | None = None,
          ctx: QueryContext | None = None) -> ResultSet:
    """Evaluate a LyriC query with the naive object-level evaluator.

    An optional :class:`~repro.runtime.ExecutionGuard` bounds the
    execution (deadline, pivot/branch/disjunct/canonicalisation
    budgets, cancellation); with ``on_exhaustion="degrade"`` the result
    is partial-with-warnings instead of an error.  ``ctx`` supplies the
    full execution state (cache, stats, options) explicitly.
    """
    return evaluate(db, text, ctx=_call_context(guard, ctx))


def query_translated(db: Database, text: str | ast.Query,
                     use_optimizer: bool = True,
                     guard: ExecutionGuard | None = None,
                     ctx: QueryContext | None = None) -> ResultSet:
    """Evaluate via the Section 5 translation to flat SQL with
    constraints (the second, independent evaluation path), through the
    staged compile pipeline."""
    return run_translated(db, text, use_optimizer=use_optimizer,
                          ctx=_call_context(guard, ctx))


def view(db: Database, text: str | ast.CreateView,
         guard: ExecutionGuard | None = None,
         ctx: QueryContext | None = None) -> ViewResult:
    """Execute a CREATE VIEW statement, materializing new classes."""
    return create_view(db, text, ctx=_call_context(guard, ctx))


def explain(db: Database, text: str | ast.Query,
            use_optimizer: bool = True, analyze: bool = False,
            ctx: QueryContext | None = None) -> str:
    """The flat-relational plan the Section 5 translation produces for
    a query, rendered as a tree (after optimization by default).

    With ``analyze`` the plan is executed and each node is annotated
    with its actual output row count; the compile pipeline's per-phase
    trace lands in the context's stats (``ctx.stats.phases``)."""
    import time

    from repro.core.pipeline import Pipeline
    from repro.runtime.context import PhaseRecord
    from repro.sqlc.engine import explain_analyze

    call_ctx = _call_context(None, ctx, use_optimizer=use_optimizer)
    compiled = Pipeline(db, call_ctx).compile(text)
    if not analyze:
        return compiled.plan.explain()
    started = time.perf_counter()
    rendered = explain_analyze(compiled.plan, compiled.catalog,
                               use_optimizer=False, ctx=compiled.ctx)
    compiled.ctx.stats.phases.append(PhaseRecord(
        "execute", time.perf_counter() - started,
        detail="explain analyze (per-node evaluation)"))
    return rendered


def warnings_for(db: Database, text: str | ast.Query) -> list[str]:
    """Static diagnostics for a query (e.g. paths that are empty by
    typing — XSQL's "type error" case)."""
    from repro.core.parser import parse_query
    from repro.core.semantics import analyze as analyze_query
    query = parse_query(text) if isinstance(text, str) else text
    return list(analyze_query(db.schema, query).warnings)


class PreparedQuery:
    """A parsed and analyzed query bound to a schema, reusable across
    executions (and databases sharing that schema) without re-running
    the parser or the semantic analysis."""

    def __init__(self, schema, text: str | ast.Query):
        from repro.core.parser import parse_query
        from repro.core.semantics import analyze as analyze_query
        query_ast = parse_query(text) if isinstance(text, str) else text
        self._schema = schema
        self._analysis = analyze_query(schema, query_ast)

    @property
    def warnings(self) -> list[str]:
        return list(self._analysis.warnings)

    @property
    def query(self) -> ast.Query:
        return self._analysis.query

    def run(self, db: Database,
            ctx: QueryContext | None = None) -> ResultSet:
        if db.schema is not self._schema:
            raise ValueError(
                "prepared query bound to a different schema")
        from repro.core.evaluator import evaluate_analyzed
        return evaluate_analyzed(db, self._analysis,
                                 ctx=_call_context(None, ctx))


def prepare(db: Database, text: str | ast.Query) -> PreparedQuery:
    """Parse and analyze once; execute many times with ``.run(db)``."""
    return PreparedQuery(db.schema, text)


__all__ = [
    "Database",
    "ExecutionGuard",
    "QueryContext",
    "guarded",
    "ResultSet",
    "ViewResult",
    "create_view",
    "evaluate",
    "explain",
    "prepare",
    "PreparedQuery",
    "parse",
    "parse_query",
    "parse_view",
    "query",
    "query_translated",
    "view",
]

"""Exception hierarchy for the LyriC reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  The sub-hierarchy mirrors the
package layout: constraint-engine errors, data-model errors, and query
language errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


# ---------------------------------------------------------------------------
# Constraint engine
# ---------------------------------------------------------------------------


class ConstraintError(ReproError):
    """Base class for errors raised by :mod:`repro.constraints`."""


class ConstraintFamilyError(ConstraintError):
    """An operation would leave the paper's four constraint families.

    Section 3.1 of the paper restricts projection on conjunctive and
    disjunctive constraints to eliminating one, or all-but-one, variable,
    and forbids existential quantification over disjunctive existential
    constraints.  Violations raise this error instead of silently doing
    potentially exponential work.
    """


class NonLinearError(ConstraintError):
    """A term that must be linear (after instantiation) is not."""


class InfeasibleError(ConstraintError):
    """An LP optimisation was attempted over an unsatisfiable system."""


class UnboundedError(ConstraintError):
    """An LP objective is unbounded over the feasible region."""


class ConstraintSyntaxError(ConstraintError):
    """Textual constraint input could not be parsed."""


class ReservedVariableError(ConstraintError):
    """A user variable collides with an engine-reserved name.

    The strict-inequality epsilon trick reserves ``__eps__``
    (:mod:`repro.constraints.satisfiability`); building a constraint
    over that name would silently change its meaning, so it is
    rejected up front.
    """


class InjectedFaultError(ConstraintError):
    """A failure injected by the fault harness.

    Raised only when a :class:`repro.runtime.FaultPlan` asks a
    component (e.g. the simplex) to fail deterministically, so that
    error-handling paths can be exercised without pathological inputs.
    """


class DimensionError(ConstraintError):
    """A CST object was used with the wrong number of variables."""


# ---------------------------------------------------------------------------
# Object-oriented data model
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for errors raised by :mod:`repro.model`."""


class SchemaError(ModelError):
    """Invalid schema definition (duplicate class, cyclic IS-A, ...)."""


class UnknownClassError(SchemaError):
    """Reference to a class that is not defined in the schema."""


class UnknownAttributeError(SchemaError):
    """Reference to an attribute that is not defined on a class."""


class IntegrityError(ModelError):
    """A database instance violates its schema."""


class UnknownObjectError(ModelError):
    """Reference to an oid not present in the database."""


# ---------------------------------------------------------------------------
# Durable storage (repro.storage)
# ---------------------------------------------------------------------------


class StoreError(ReproError):
    """Base class for errors raised by :mod:`repro.storage`."""


class StoreWriteError(StoreError):
    """A storage write or fsync failed (really, or by injection).

    After this error the in-process :class:`repro.storage.Store` is
    *broken* — the on-disk log may end in a torn record — and refuses
    further mutations; reopening the store runs recovery.
    """


class StoreCorruptError(StoreError):
    """A store could not be recovered to any consistent state.

    Raised only when *no* snapshot generation on disk is readable;
    partial damage (torn WAL tails, corrupt records, missing files)
    degrades to the last consistent state with warnings instead.
    """


# ---------------------------------------------------------------------------
# Resource governance (repro.runtime)
# ---------------------------------------------------------------------------


class ResourceExhausted(ReproError):
    """A query exceeded one of its execution budgets.

    Carries structured diagnostics so that callers (and the CLI) can
    report *which* budget tripped and how much work had been done:

    ``budget``
        The budget's name (``"deadline"``, ``"pivots"``, ``"branches"``,
        ``"disjuncts"``, ``"canonical"``, ``"cancellation"``).
    ``limit``
        The configured limit (seconds for the deadline, counts
        otherwise; ``0`` for cancellation).
    ``spent``
        How much had been spent when the budget tripped.
    ``fragment``
        Optional: which engine component was executing (e.g.
        ``"simplex"``, ``"satisfiability"``, ``"evaluator"``), or
        ``"fault-injection"`` for injected exhaustion.
    """

    def __init__(self, message: str, *, budget: str, limit, spent,
                 fragment: str | None = None):
        where = f", in {fragment}" if fragment else ""
        super().__init__(
            f"{message} [budget={budget}, limit={limit}, "
            f"spent={spent}{where}]")
        self.budget = budget
        self.limit = limit
        self.spent = spent
        self.fragment = fragment


class DeadlineExceeded(ResourceExhausted):
    """The wall-clock deadline passed before the query finished."""


class PivotBudgetExceeded(ResourceExhausted):
    """The exact simplex performed more pivots than allowed."""


class BranchBudgetExceeded(ResourceExhausted):
    """Disequality branching explored more branches than allowed."""


class DisjunctBudgetExceeded(ResourceExhausted):
    """A disjunction grew beyond the configured disjunct cap."""


class CanonicalizationBudgetExceeded(ResourceExhausted):
    """Canonicalisation performed more work units than allowed."""


class QueryCancelled(ResourceExhausted):
    """Cooperative cancellation was requested and observed."""

    def __init__(self, message: str = "query cancelled", *,
                 spent=0, fragment: str | None = None):
        super().__init__(message, budget="cancellation", limit=0,
                         spent=spent, fragment=fragment)


# ---------------------------------------------------------------------------
# Query language
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for errors raised by :mod:`repro.core`."""


class LyricSyntaxError(QueryError):
    """Textual LyriC input could not be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SemanticError(QueryError):
    """A parsed query refers to unknown names or is ill-typed."""


class EvaluationError(QueryError):
    """A runtime failure while evaluating a query."""

"""Exception hierarchy for the LyriC reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  The sub-hierarchy mirrors the
package layout: constraint-engine errors, data-model errors, and query
language errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


# ---------------------------------------------------------------------------
# Constraint engine
# ---------------------------------------------------------------------------


class ConstraintError(ReproError):
    """Base class for errors raised by :mod:`repro.constraints`."""


class ConstraintFamilyError(ConstraintError):
    """An operation would leave the paper's four constraint families.

    Section 3.1 of the paper restricts projection on conjunctive and
    disjunctive constraints to eliminating one, or all-but-one, variable,
    and forbids existential quantification over disjunctive existential
    constraints.  Violations raise this error instead of silently doing
    potentially exponential work.
    """


class NonLinearError(ConstraintError):
    """A term that must be linear (after instantiation) is not."""


class InfeasibleError(ConstraintError):
    """An LP optimisation was attempted over an unsatisfiable system."""


class UnboundedError(ConstraintError):
    """An LP objective is unbounded over the feasible region."""


class ConstraintSyntaxError(ConstraintError):
    """Textual constraint input could not be parsed."""


class DimensionError(ConstraintError):
    """A CST object was used with the wrong number of variables."""


# ---------------------------------------------------------------------------
# Object-oriented data model
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for errors raised by :mod:`repro.model`."""


class SchemaError(ModelError):
    """Invalid schema definition (duplicate class, cyclic IS-A, ...)."""


class UnknownClassError(SchemaError):
    """Reference to a class that is not defined in the schema."""


class UnknownAttributeError(SchemaError):
    """Reference to an attribute that is not defined on a class."""


class IntegrityError(ModelError):
    """A database instance violates its schema."""


class UnknownObjectError(ModelError):
    """Reference to an oid not present in the database."""


# ---------------------------------------------------------------------------
# Query language
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for errors raised by :mod:`repro.core`."""


class LyricSyntaxError(QueryError):
    """Textual LyriC input could not be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SemanticError(QueryError):
    """A parsed query refers to unknown names or is ill-typed."""


class EvaluationError(QueryError):
    """A runtime failure while evaluating a query."""

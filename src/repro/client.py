"""The async client for the LyriC query server.

    from repro.client import connect

    client = await connect("127.0.0.1", 7407)
    result = await client.query("SELECT X FROM Desk X")   # a ResultSet
    async for row in await client.stream("SELECT X FROM Desk X"):
        ...
    await client.close()

One background reader task demultiplexes response frames to their
requests by id, so any number of queries may be in flight on one
connection — and :meth:`LyricClient.cancel` can target one of them
while its rows are still streaming.  Row values come back as tagged
terms and are rebuilt with :func:`repro.model.serialize.load_oid`,
whose round trip is exact: a :class:`~repro.core.result.ResultSet`
materialized here compares equal, row for row and warning for
warning, with one produced in-process.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator, Mapping

from repro.errors import (
    EvaluationError,
    LyricSyntaxError,
    QueryCancelled,
    ReproError,
    ResourceExhausted,
    SemanticError,
)
from repro.core.result import ResultRow, ResultSet
from repro.model.oid import Oid
from repro.model.serialize import dump_oid, load_oid
from repro.server import protocol


class ServerError(ReproError):
    """An ``error`` frame, re-raised client-side with its wire code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.wire_message = message


#: Wire codes that map back onto the library's own exception types, so
#: client code can catch the same classes it would in-process.
_CODE_EXCEPTIONS: dict[str, type] = {
    "cancelled": QueryCancelled,
    "syntax": LyricSyntaxError,
    "semantic": SemanticError,
    "evaluation": EvaluationError,
}


def _raise_for(frame: dict) -> None:
    code = frame.get("code", "error")
    message = frame.get("message", "")
    exc_type = _CODE_EXCEPTIONS.get(code)
    if exc_type is QueryCancelled:
        raise QueryCancelled(message or "query cancelled")
    if exc_type is not None:
        raise exc_type(message)
    if code == "resource":
        raise ResourceExhausted(message, budget="remote",
                                limit=None, spent=None)
    raise ServerError(code, message)


def _encode_params(params: Mapping[str, object] | None
                   ) -> dict[str, Any] | None:
    if params is None:
        return None
    return {name: dump_oid(value) if isinstance(value, Oid)
            else value for name, value in params.items()}


class RemoteStream:
    """One streaming request: rows as they arrive, then the trailer
    (warnings, stats, the done frame)."""

    def __init__(self, client: "LyricClient", request_id: int,
                 queue: asyncio.Queue) -> None:
        self._client = client
        self.request_id = request_id
        self._queue = queue
        self.warnings: list[str] = []
        self.stats: dict[str, Any] | None = None
        self.done: dict[str, Any] | None = None
        self._finished = False

    @property
    def columns(self) -> tuple[str, ...]:
        if self.done is None:
            raise RuntimeError("columns arrive with the done frame; "
                               "drain the stream first")
        return tuple(self.done["columns"])

    def __aiter__(self) -> AsyncIterator[ResultRow]:
        return self._rows()

    async def _rows(self) -> AsyncIterator[ResultRow]:
        while not self._finished:
            frame = await self._queue.get()
            kind = frame.get("type")
            if kind == "row":
                values = tuple(load_oid(v) for v in frame["values"])
                oid = load_oid(frame["oid"]) \
                    if frame.get("oid") is not None else None
                yield ResultRow(values, oid)
            elif kind == "warning":
                self.warnings.append(frame["message"])
            elif kind == "stats":
                self.stats = frame["stats"]
            elif kind == "done":
                self.done = frame
                self._finished = True
                self._client._release(self.request_id)
            elif kind == "error":
                self._finished = True
                self._client._release(self.request_id)
                _raise_for(frame)

    async def result(self) -> ResultSet:
        """Drain and materialize, exactly as the in-process API
        would."""
        rows = [row async for row in self]
        result = ResultSet(self.columns)
        for warning in self.warnings:
            result.add_warning(warning)
        for row in rows:
            result.add(row)
        return result

    async def cancel(self) -> None:
        await self._client.cancel(self.request_id)


class LyricClient:
    """A framed-protocol connection.  Use :func:`connect`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._next_id = 1
        self._inboxes: dict[int, asyncio.Queue] = {}
        self._closed = False
        self._conn_error: dict | None = None
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self.hello: dict[str, Any] | None = None

    # -- plumbing --------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await protocol.read_frame(self._reader)
                if frame is None:
                    break
                inbox = self._inboxes.get(frame.get("id"))
                if inbox is not None:
                    inbox.put_nowait(frame)
                elif frame.get("id") is None \
                        and frame.get("type") == "error":
                    # A connection-level rejection (max_sessions,
                    # shutting_down): fail every waiter.
                    for waiting in self._inboxes.values():
                        waiting.put_nowait(frame)
                    self._conn_error = frame
        except (protocol.ProtocolError, ConnectionError, OSError):
            pass
        finally:
            self._closed = True
            eof = {"id": None, "type": "error", "code": "closed",
                   "message": "connection closed"}
            for waiting in self._inboxes.values():
                waiting.put_nowait(eof)

    async def _request(self, payload: dict) -> int:
        if self._closed:
            raise ServerError("closed", "connection closed")
        request_id = self._next_id
        self._next_id += 1
        payload["id"] = request_id
        self._inboxes[request_id] = asyncio.Queue()
        async with self._write_lock:
            self._writer.write(protocol.encode_frame(payload))
            await self._writer.drain()
        return request_id

    def _release(self, request_id: int) -> None:
        self._inboxes.pop(request_id, None)

    async def _reply(self, request_id: int) -> dict:
        """The single reply frame of a non-streaming request."""
        frame = await self._inboxes[request_id].get()
        self._release(request_id)
        if frame.get("type") == "error":
            _raise_for(frame)
        return frame

    # -- verbs -----------------------------------------------------------

    async def handshake(self) -> dict:
        self.hello = await self._reply(
            await self._request({"op": "hello"}))
        return self.hello

    async def stream(self, text: str, *,
                     params: Mapping[str, object] | None = None,
                     translated: bool = True,
                     use_optimizer: bool = True,
                     guard: Mapping[str, Any] | None = None
                     ) -> RemoteStream:
        """Start a query; rows stream through the returned handle."""
        options: dict[str, Any] = {"translated": translated,
                                   "use_optimizer": use_optimizer}
        if guard is not None:
            options["guard"] = dict(guard)
        request_id = await self._request(
            {"op": "query", "text": text,
             "params": _encode_params(params), "options": options})
        return RemoteStream(self, request_id,
                            self._inboxes[request_id])

    async def query(self, text: str, **kwargs: Any) -> ResultSet:
        """Run a query to completion and materialize the result."""
        return await (await self.stream(text, **kwargs)).result()

    async def prepare(self, name: str, text: str) -> dict:
        return await self._reply(await self._request(
            {"op": "prepare", "name": name, "text": text}))

    async def execute_stream(self, name: str, *,
                             params: Mapping[str, object]
                             | None = None,
                             translated: bool = True,
                             use_optimizer: bool = True,
                             guard: Mapping[str, Any] | None = None
                             ) -> RemoteStream:
        options: dict[str, Any] = {"translated": translated,
                                   "use_optimizer": use_optimizer}
        if guard is not None:
            options["guard"] = dict(guard)
        request_id = await self._request(
            {"op": "execute", "name": name,
             "params": _encode_params(params), "options": options})
        return RemoteStream(self, request_id,
                            self._inboxes[request_id])

    async def execute(self, name: str, **kwargs: Any) -> ResultSet:
        return await (await self.execute_stream(name,
                                                **kwargs)).result()

    async def view(self, text: str) -> dict:
        return await self._reply(await self._request(
            {"op": "view", "text": text}))

    async def cancel(self, target: int) -> dict:
        return await self._reply(await self._request(
            {"op": "cancel", "target": target}))

    async def stats(self) -> dict:
        frame = await self._reply(
            await self._request({"op": "stats"}))
        return frame["stats"]

    async def close(self) -> None:
        if not self._closed:
            try:
                await self._reply(await self._request(
                    {"op": "close"}))
            except (ReproError, ConnectionError, OSError):
                pass
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def connect(host: str = "127.0.0.1", port: int = 7407, *,
                  handshake: bool = True) -> LyricClient:
    """Open a framed-protocol connection (and say HELLO)."""
    reader, writer = await asyncio.open_connection(host, port)
    client = LyricClient(reader, writer)
    if handshake:
        await client.handshake()
    return client

"""Random constraint generators for engine benchmarks (E9, E10, E12).

All generators are deterministic given a seed, use small integer
coefficients (keeping exact arithmetic fast and reproducible), and
produce *satisfiable* systems by construction where stated: every
random polytope is built from inequalities satisfied by a known
interior point.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Sequence

from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.terms import LinearExpression, Variable


def make_variables(dimension: int, prefix: str = "x"
                   ) -> list[Variable]:
    return [Variable(f"{prefix}{i}") for i in range(dimension)]


def random_polytope(dimension: int, atoms: int, seed: int = 0,
                    coeff_range: int = 5,
                    variables: Sequence[Variable] | None = None
                    ) -> ConjunctiveConstraint:
    """A satisfiable conjunction of ``atoms`` inequalities in
    ``dimension`` variables.

    Every atom is satisfied at an interior point drawn near the origin,
    so the polytope is nonempty (with slack); a bounding box keeps it
    bounded.
    """
    rng = random.Random(seed)
    vars_ = list(variables) if variables is not None \
        else make_variables(dimension)
    interior = [Fraction(rng.randint(-3, 3)) for _ in vars_]

    out: list[LinearConstraint] = []
    for var, point in zip(vars_, interior):
        out.append(LinearConstraint.build(var, Relop.GE, point - 10))
        out.append(LinearConstraint.build(var, Relop.LE, point + 10))
    for _ in range(atoms):
        coeffs = {v: Fraction(rng.randint(-coeff_range, coeff_range))
                  for v in vars_}
        expr = LinearExpression(coeffs)
        value = expr.evaluate(dict(zip(vars_, interior)))
        slack = Fraction(rng.randint(1, 5))
        out.append(LinearConstraint.build(expr, Relop.LE, value + slack))
    return ConjunctiveConstraint(out)


def scattered_boxes(count: int, dimension: int = 1, seed: int = 0,
                    spread: int = 1000, size: int = 5,
                    prefix: str = "x") -> list[ConjunctiveConstraint]:
    """``count`` small axis-aligned boxes scattered over a wide range —
    the *sparse* join workload of the box-index benchmark.

    Each constraint bounds every variable to an interval of width up to
    ``size`` with its center drawn uniformly from ``[-spread, spread]``,
    so two random boxes overlap with probability about ``size/spread``
    per dimension: the box index prunes almost every pair while the
    exact intersection remains nontrivial for the survivors.
    """
    rng = random.Random(seed)
    vars_ = make_variables(dimension, prefix)
    out: list[ConjunctiveConstraint] = []
    for _ in range(count):
        atoms: list[LinearConstraint] = []
        for var in vars_:
            center = Fraction(rng.randint(-spread, spread))
            half = Fraction(rng.randint(1, size), 2)
            atoms.append(LinearConstraint.build(
                var, Relop.GE, center - half))
            atoms.append(LinearConstraint.build(
                var, Relop.LE, center + half))
        out.append(ConjunctiveConstraint(atoms))
    return out


def overlapping_polytopes(count: int, dimension: int = 2,
                          extra_atoms: int = 8, seed: int = 0,
                          spread: int = 100, size: int = 60,
                          prefix: str = "x"
                          ) -> list[ConjunctiveConstraint]:
    """``count`` polytopes whose bounding boxes overlap heavily — the
    *dense* join workload of the numeric-kernel benchmark (E18).

    Each constraint confines every variable to an interval of width
    ``size`` with its center drawn from ``[0, spread]`` (with
    ``size/spread`` large, most box pairs overlap and the index prunes
    little), then adds ``extra_atoms`` random multi-variable
    half-spaces satisfied at the box center with nonnegative slack —
    each polytope is nonempty, but a *pair's* conjunction is
    satisfiable only when the two center-anchored systems share a
    point, so answers come out mixed while per-pair exact
    satisfiability stays genuinely expensive.  Atom counts are
    per-constraint; a joined pair solves the conjoined system.
    """
    rng = random.Random(seed)
    vars_ = make_variables(dimension, prefix)
    out: list[ConjunctiveConstraint] = []
    for _ in range(count):
        center = [Fraction(rng.randint(0, spread)) for _ in vars_]
        half = Fraction(size, 2)
        atoms: list[LinearConstraint] = []
        for var, mid in zip(vars_, center):
            atoms.append(LinearConstraint.build(var, Relop.GE,
                                                mid - half))
            atoms.append(LinearConstraint.build(var, Relop.LE,
                                                mid + half))
        for _ in range(extra_atoms):
            # Couplings keep >= 2 nonzero coefficients, so they never
            # tighten the cheap per-variable boxes: the box index sees
            # only the (deliberately overlapping) size-``size`` boxes.
            coeffs = {v: Fraction(rng.randint(-5, 5)) for v in vars_}
            while sum(1 for c in coeffs.values() if c) < min(2, len(vars_)):
                coeffs = {v: Fraction(rng.randint(-5, 5))
                          for v in vars_}
            expr = LinearExpression(coeffs)
            value = expr.evaluate(dict(zip(vars_, center)))
            slack = Fraction(rng.randint(0, size))
            atoms.append(LinearConstraint.build(expr, Relop.LE,
                                                value + slack))
        out.append(ConjunctiveConstraint(atoms))
    return out


def random_infeasible(dimension: int, atoms: int, seed: int = 0
                      ) -> ConjunctiveConstraint:
    """An unsatisfiable conjunction: a random polytope plus a pair of
    contradicting half-spaces."""
    rng = random.Random(seed)
    vars_ = make_variables(dimension)
    base = random_polytope(dimension, atoms, seed, variables=vars_)
    pivot = vars_[rng.randrange(dimension)]
    return base.conjoin(LinearConstraint.build(
        pivot, Relop.GE, 100)).conjoin(LinearConstraint.build(
            pivot, Relop.LE, -100))


def random_dnf(dimension: int, disjuncts: int, atoms_per_disjunct: int,
               seed: int = 0, infeasible_fraction: float = 0.0
               ) -> DisjunctiveConstraint:
    """A disjunction of random polytopes; a chosen fraction of the
    disjuncts is unsatisfiable (for the E10 canonical-form bench)."""
    rng = random.Random(seed)
    vars_ = make_variables(dimension)
    parts = []
    for i in range(disjuncts):
        part_seed = rng.randrange(1 << 30)
        if rng.random() < infeasible_fraction:
            parts.append(random_infeasible(
                dimension, atoms_per_disjunct, part_seed))
        else:
            parts.append(random_polytope(
                dimension, atoms_per_disjunct, part_seed,
                variables=vars_))
    return DisjunctiveConstraint(parts)


def dense_system(dimension: int, atoms: int | None = None,
                 seed: int = 0) -> ConjunctiveConstraint:
    """A satisfiable dense system: every atom couples *all* variables
    with nonzero coefficients.

    This is the classical Fourier-Motzkin worst-case shape — with
    ``m`` atoms and no sparsity, eliminating ``k`` variables can grow
    the system towards ``(m/2)^(2^k)`` — used by experiment E9 to show
    why the paper restricts projection.
    """
    rng = random.Random(seed)
    vars_ = make_variables(dimension)
    m = atoms if atoms is not None else 2 * dimension
    interior = [Fraction(rng.randint(-2, 2)) for _ in vars_]
    out: list[LinearConstraint] = []
    for _ in range(m):
        coeffs = {v: Fraction(rng.choice([-3, -2, -1, 1, 2, 3]))
                  for v in vars_}
        expr = LinearExpression(coeffs)
        value = expr.evaluate(dict(zip(vars_, interior)))
        out.append(LinearConstraint.build(
            expr, Relop.LE, value + rng.randint(1, 4)))
    return ConjunctiveConstraint(out)


def chained_projection_system(dimension: int, seed: int = 0
                              ) -> ConjunctiveConstraint:
    """A system designed to exhibit Fourier-Motzkin growth: each
    variable has several lower and upper bounds coupling it to the
    others (the E9 blow-up workload)."""
    rng = random.Random(seed)
    vars_ = make_variables(dimension)
    out: list[LinearConstraint] = []
    for i, var in enumerate(vars_):
        others = [v for v in vars_ if v is not var]
        rng.shuffle(others)
        for lower in others[:3]:
            out.append(LinearConstraint.build(
                lower - var, Relop.LE, rng.randint(0, 4)))
        for upper in others[-3:]:
            out.append(LinearConstraint.build(
                var - upper, Relop.LE, rng.randint(0, 4)))
        out.append(LinearConstraint.build(var, Relop.GE, -20))
        out.append(LinearConstraint.build(var, Relop.LE, 20))
    return ConjunctiveConstraint(out)


def redundant_conjunction(dimension: int, base_atoms: int,
                          redundant_atoms: int, seed: int = 0
                          ) -> ConjunctiveConstraint:
    """A polytope plus provably redundant atoms (positive combinations
    of existing ones, weakened) — canonical-form removal fodder."""
    rng = random.Random(seed)
    base = random_polytope(dimension, base_atoms, seed)
    atoms = [a for a in base.atoms if a.relop is Relop.LE]
    extra: list[LinearConstraint] = []
    for _ in range(redundant_atoms):
        first, second = rng.sample(atoms, 2)
        expr = first.expression + second.expression
        bound = first.bound + second.bound + rng.randint(1, 3)
        extra.append(LinearConstraint.build(expr, Relop.LE, bound))
    return base.conjoin(ConjunctiveConstraint(extra))

"""Manufacturing / linear-programming workload (application realm 3).

The paper's chemical-factory example: products are manufactured by
processes described with linear constraints over raw-material and
output quantities; LyriC generalizes classical LP by storing the
constraint systems in the database and posing the objective in the
query (``MAX/MIN ... SUBJECT TO``).

The generator builds a two-level process hierarchy: each process
converts raw materials into one product with a linear recipe plus
capacity constraints; orders request product quantities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.parser import parse_cst
from repro.model.database import Database
from repro.model.oid import Oid
from repro.model.schema import AttributeDef, CSTSpec, Schema

#: Constraint dimensions: raw material quantities r1, r2, r3, product
#: output quantity out, and cost.
PROCESS_VARS = ("r1", "r2", "r3", "out", "cost")


def build_manufacturing_schema() -> Schema:
    schema = Schema()
    schema.ensure_cst_class(len(PROCESS_VARS))
    schema.define(
        "Product",
        attributes=[
            AttributeDef("product_name", "string"),
            AttributeDef("unit_price", "real"),
        ])
    schema.define(
        "Process",
        attributes=[
            AttributeDef("process_name", "string"),
            AttributeDef("product", "Product"),
            AttributeDef("recipe", CSTSpec(PROCESS_VARS)),
        ])
    schema.define(
        "Order",
        attributes=[
            AttributeDef("order_id", "string"),
            AttributeDef("product", "Product"),
            AttributeDef("quantity", "real"),
        ])
    schema.define(
        "Stock",
        attributes=[
            AttributeDef("material_name", "string"),
            AttributeDef("amount", "real"),
        ])
    return schema


@dataclass(frozen=True)
class ManufacturingWorkload:
    db: Database
    products: tuple[Oid, ...]
    processes: tuple[Oid, ...]
    orders: tuple[Oid, ...]


def generate(n_products: int, processes_per_product: int = 2,
             n_orders: int = 4, seed: int = 0
             ) -> ManufacturingWorkload:
    """Products, each with several candidate processes (different
    recipes/costs), plus orders and raw-material stock."""
    rng = random.Random(seed)
    db = Database(build_manufacturing_schema())

    for name, amount in (("alcohol", 500), ("acid", 300),
                         ("base", 400)):
        db.add_object(f"stock_{name}", "Stock", {
            "material_name": name, "amount": amount})

    products: list[Oid] = []
    processes: list[Oid] = []
    for i in range(n_products):
        product = db.add_object(f"product_{i}", "Product", {
            "product_name": f"compound-{i}",
            "unit_price": rng.randint(10, 60),
        })
        products.append(product.oid)
        for j in range(processes_per_product):
            a1 = rng.randint(1, 4)
            a2 = rng.randint(1, 4)
            a3 = rng.randint(0, 2)
            unit_cost = rng.randint(2, 9)
            capacity = rng.randint(50, 150)
            # Recipe: materials consumed proportionally to output, cost
            # linear in output, capacity bounds output.
            body = (f"r1 = {a1}out and r2 = {a2}out and r3 = {a3}out "
                    f"and cost = {unit_cost}out "
                    f"and 0 <= out <= {capacity}")
            process = db.add_object(f"process_{i}_{j}", "Process", {
                "process_name": f"process-{i}-{j}",
                "product": product.oid,
                "recipe": parse_cst(
                    f"(({','.join(PROCESS_VARS)}) | {body})"),
            })
            processes.append(process.oid)

    orders: list[Oid] = []
    for k in range(n_orders):
        product = products[k % len(products)]
        order = db.add_object(f"order_{k}", "Order", {
            "order_id": f"ORD-{k:04d}",
            "product": product,
            "quantity": rng.randint(10, 60),
        })
        orders.append(order.oid)

    db.validate()
    return ManufacturingWorkload(db, tuple(products), tuple(processes),
                                 tuple(orders))


#: For each order, the connection among required raw materials when
#: filling it with a candidate process (a constraint-valued answer —
#: "the answer to this query may also contain constraints").
MATERIAL_CONNECTION_QUERY = """
    SELECT O, P, ((r1,r2,r3) | R(r1,r2,r3,out,cost) and out = O.quantity)
    FROM Order O, Process P
    WHERE O.product[PR] and P.product[PR] and P.recipe[R]
"""

#: Cheapest way to fill each order: MIN cost over each candidate
#: process, reported per (order, process).
CHEAPEST_FILL_QUERY = """
    SELECT O, P,
           MIN(cost SUBJECT TO
               ((r1,r2,r3,out,cost) | R and out = O.quantity))
    FROM Order O, Process P
    WHERE O.product[PR] and P.product[PR] and P.recipe[R]
      and SAT(R(r1,r2,r3,out,cost) and out = O.quantity)
"""

#: Maximum producible quantity of each product per process given the
#: alcohol stock (r1 bounded by a subquery-free stored constant).
MAX_OUTPUT_QUERY = """
    SELECT P, MAX(out SUBJECT TO
                  ((r1,r2,r3,out,cost) | R and r1 <= 500))
    FROM Process P
    WHERE P.recipe[R]
"""

"""Scalable office-design workload (application realm 1 of the paper).

Generates databases with the Figure 1 schema and ``n`` placed objects
(alternating desks and file cabinets on a grid inside a parametric
room), plus the standard query set used by the E7/E8/E13 benchmarks.
Everything is deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.parser import parse_cst
from repro.model.database import Database
from repro.model.office import build_office_schema
from repro.model.oid import Oid


@dataclass(frozen=True)
class OfficeWorkload:
    db: Database
    room_width: int
    room_height: int
    placed: tuple[Oid, ...]


def generate(n_objects: int, seed: int = 0,
             room_width: int = 200, room_height: int = 100
             ) -> OfficeWorkload:
    """A room with ``n_objects`` placed catalog objects.

    Objects are placed on a jittered grid so that sizes and positions
    differ but never leave the room; desks get a drawer, cabinets get
    two drawer positions.
    """
    rng = random.Random(seed)
    db = Database(build_office_schema())
    placed: list[Oid] = []
    columns = max(1, int(n_objects ** 0.5))

    for i in range(n_objects):
        is_desk = i % 2 == 0
        half_w = rng.randint(2, 4)
        half_h = rng.randint(1, 2)
        col, row = i % columns, i // columns
        cx = 10 + col * 12 + rng.randint(-2, 2)
        cy = 8 + row * 10 + rng.randint(-2, 2)

        drawer = db.add_object(f"drawer_{i}", "Drawer", {
            "color": rng.choice(["red", "grey", "blue"]),
            "extent": parse_cst(
                "((w,z) | -1 <= w <= 1 and -1 <= z <= 1)"),
            "translation": parse_cst(
                "((w,z,x,y,u,v) | u = x + w and v = y + z)"),
        })
        values = {
            "cat_number": f"CAT-{i:04d}",
            "name": f"{'desk' if is_desk else 'cabinet'} model {i}",
            "color": rng.choice(["red", "grey", "blue", "white"]),
            "extent": parse_cst(
                f"((w,z) | -{half_w} <= w <= {half_w} "
                f"and -{half_h} <= z <= {half_h})"),
            "translation": parse_cst(
                "((w,z,x,y,u,v) | u = x + w and v = y + z)"),
            "drawer": drawer.oid,
        }
        if is_desk:
            offset = rng.randint(1, 3)
            values["drawer_center"] = parse_cst(
                f"((p,q) | p = -{offset} and -2 <= q <= 0)")
            catalog = db.add_object(f"desk_{i}", "Desk", values)
        else:
            values["drawer_center"] = [
                parse_cst("((p1,q1) | p1 = 0 and 0 <= q1 <= 1)"),
                parse_cst("((p1,q1) | p1 = 0 and -2 <= q1 <= -1)"),
            ]
            catalog = db.add_object(f"cabinet_{i}", "File_Cabinet",
                                    values)

        db.add_object(f"obj_{i}", "Object_in_Room", {
            "inv_number": f"INV-{i:05d}",
            "location": parse_cst(f"((x,y) | x = {cx} and y = {cy})"),
            "catalog_object": catalog.oid,
        })
        placed.append(catalog.oid)
    return OfficeWorkload(db, room_width, room_height, tuple(placed))


#: The fixed query of experiment E7 (PTIME data complexity): each
#: placed object's extent in room coordinates, with a satisfiability
#: filter — one CST projection and one SAT check per binding.
PLACED_EXTENT_QUERY = """
    SELECT O, ((u,v) | E and D and L(x,y))
    FROM Object_in_Room O, Office_Object CO
    WHERE O.catalog_object[CO] and O.location[L]
      and CO.extent[E] and CO.translation[D]
"""

#: The E13 office query: red desks whose drawer line sits left of the
#: desk center (a WHERE-side entailment per desk).
RED_LEFT_DRAWER_QUERY = """
    SELECT DSK FROM Desk DSK
    WHERE DSK.color = 'red' and DSK.drawer_center[C]
      and (C(p,q) |= p <= 0)
"""

#: Pairwise overlap test among placed objects (quadratic join with a
#: SAT predicate); kept to small n in benchmarks.
OVERLAP_QUERY = """
    SELECT OX, OY
    FROM Object_in_Room OX, Object_in_Room OY
    WHERE OX.catalog_object[X] and OY.catalog_object[Y]
      and OX.location[LX] and OY.location[LY]
      and X.extent[U] and X.translation[DX]
      and Y.extent[V] and Y.translation[DY]
      and not OX.inv_number = OY.inv_number
      and SAT(U(w,z) and DX(w,z,x,y,u,v) and LX(x,y)
              and V(w2,z2) and DY(w2,z2,x2,y2,u,v) and LY(x2,y2))
"""

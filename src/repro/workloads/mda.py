"""Submarine Maneuver Decision Aid workload (application realm 2).

The paper motivates LyriC with the Naval Undersea Warfare Center's MDA
[BVCS93]: maneuvers are points in the 4-dimensional space (course,
speed, depth, time); goals such as "maintain depth at 200ft" or
"minimize speed" are constraints over that space.  The real data is not
public, so this generator synthesizes goal sets and maneuver envelopes
with the same structure: conjunctive constraints over the four
dimensions, some mutually compatible and some contradicting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.parser import parse_cst
from repro.model.database import Database
from repro.model.oid import Oid
from repro.model.schema import AttributeDef, CSTSpec, Schema

#: The four MDA dimensions: course (degrees), speed (knots), depth
#: (feet), time (minutes).
DIMENSIONS = ("c", "s", "d", "t")


def build_mda_schema() -> Schema:
    schema = Schema()
    schema.ensure_cst_class(4)
    schema.define(
        "Goal",
        attributes=[
            AttributeDef("goal_name", "string"),
            AttributeDef("priority", "real"),
            AttributeDef("region", CSTSpec(DIMENSIONS)),
        ])
    schema.define(
        "Maneuver",
        attributes=[
            AttributeDef("maneuver_name", "string"),
            AttributeDef("envelope", CSTSpec(DIMENSIONS)),
        ])
    return schema


@dataclass(frozen=True)
class MdaWorkload:
    db: Database
    goals: tuple[Oid, ...]
    maneuvers: tuple[Oid, ...]


def generate(n_goals: int, n_maneuvers: int, seed: int = 0
             ) -> MdaWorkload:
    """Random goals (boxes/half-spaces in 4-D) and maneuver envelopes.

    Roughly half of the goals constrain a single dimension ("maintain
    depth at 200ft" becomes a tight depth band); the rest couple speed
    and depth or course and time, which is what makes the constraint
    view more natural than fixed spatial operators.
    """
    rng = random.Random(seed)
    db = Database(build_mda_schema())

    goals: list[Oid] = []
    for i in range(n_goals):
        kind = rng.choice(["band", "cap", "couple"])
        if kind == "band":
            dim = rng.choice(DIMENSIONS)
            center = rng.randint(50, 350)
            width = rng.randint(5, 40)
            body = (f"{center - width} <= {dim} <= {center + width}")
        elif kind == "cap":
            dim = rng.choice(DIMENSIONS)
            body = f"{dim} <= {rng.randint(100, 400)}"
        else:
            a, b = rng.sample(DIMENSIONS, 2)
            body = (f"{a} + {rng.randint(1, 3)}{b} "
                    f"<= {rng.randint(300, 900)}")
        region = parse_cst(
            f"(({','.join(DIMENSIONS)}) | {body} "
            f"and 0 <= c <= 360 and 0 <= s <= 40 "
            f"and 0 <= d <= 1000 and 0 <= t <= 240)")
        goal = db.add_object(f"goal_{i}", "Goal", {
            "goal_name": f"goal-{kind}-{i}",
            "priority": rng.randint(1, 10),
            "region": region,
        })
        goals.append(goal.oid)

    maneuvers: list[Oid] = []
    for i in range(n_maneuvers):
        c0 = rng.randint(0, 300)
        s0 = rng.randint(0, 30)
        d0 = rng.randint(0, 800)
        t0 = rng.randint(0, 200)
        envelope = parse_cst(
            f"((c,s,d,t) | {c0} <= c <= {c0 + 60} "
            f"and {s0} <= s <= {s0 + 10} "
            f"and {d0} <= d <= {d0 + 200} "
            f"and {t0} <= t <= {t0 + 40})")
        maneuver = db.add_object(f"maneuver_{i}", "Maneuver", {
            "maneuver_name": f"maneuver-{i}",
            "envelope": envelope,
        })
        maneuvers.append(maneuver.oid)

    db.validate()
    return MdaWorkload(db, tuple(goals), tuple(maneuvers))


#: Maneuvers compatible with a given goal (SAT join).
COMPATIBLE_QUERY = """
    SELECT M, G
    FROM Maneuver M, Goal G
    WHERE M.envelope[E] and G.region[R]
      and SAT(E(c,s,d,t) and R(c,s,d,t))
"""

#: Maneuvers wholly inside a goal region (entailment join).
WITHIN_QUERY = """
    SELECT M, G
    FROM Maneuver M, Goal G
    WHERE M.envelope[E] and G.region[R]
      and (E(c,s,d,t) |= R(c,s,d,t))
"""

#: The feasible region of a maneuver under a goal, plus the slowest
#: speed achievable in it.
BEST_SPEED_QUERY = """
    SELECT M, G,
           ((c,s,d,t) | E(c,s,d,t) and R(c,s,d,t)),
           MIN(s SUBJECT TO ((c,s,d,t) | E(c,s,d,t) and R(c,s,d,t)))
    FROM Maneuver M, Goal G
    WHERE M.envelope[E] and G.region[R]
      and SAT(E(c,s,d,t) and R(c,s,d,t))
"""

"""Temporal workload: scheduling over time intervals as CST objects.

The paper folds temporal data into the same framework ("we will not
distinguish between constraint and spatio-temporal information") and
cites the linear-repeating-points line of work on infinite temporal
data.  This workload exercises the temporal reading of CST objects:
bookings are 1-D constraint objects over time (minutes of a day),
recurring availability is a small disjunction of windows, and the
scheduling questions are the standard constraint predicates —
conflicts are SAT joins, fitting inside working hours is ``|=``, and
the earliest feasible start is a MIN.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.parser import parse_cst
from repro.model.database import Database
from repro.model.oid import Oid
from repro.model.schema import AttributeDef, CSTSpec, Schema

#: Working hours of the generator, minutes from midnight.
DAY_START = 8 * 60
DAY_END = 18 * 60


def build_temporal_schema() -> Schema:
    schema = Schema()
    schema.ensure_cst_class(1)
    schema.define(
        "Room_",
        attributes=[
            AttributeDef("room_name", "string"),
            AttributeDef("open_hours", CSTSpec(["t"])),
        ])
    schema.define(
        "Booking",
        attributes=[
            AttributeDef("booking_name", "string"),
            AttributeDef("room", "Room_"),
            AttributeDef("slot", CSTSpec(["t"])),
        ])
    schema.define(
        "Availability",
        attributes=[
            AttributeDef("person", "string"),
            AttributeDef("windows", CSTSpec(["t"])),
        ])
    return schema


@dataclass(frozen=True)
class TemporalWorkload:
    db: Database
    rooms: tuple[Oid, ...]
    bookings: tuple[Oid, ...]
    people: tuple[Oid, ...]


def generate(n_rooms: int, n_bookings: int, n_people: int,
             seed: int = 0) -> TemporalWorkload:
    rng = random.Random(seed)
    db = Database(build_temporal_schema())

    rooms: list[Oid] = []
    for i in range(n_rooms):
        open_from = DAY_START + rng.choice([0, 30, 60])
        open_to = DAY_END - rng.choice([0, 30, 60])
        room = db.add_object(f"room_{i}", "Room_", {
            "room_name": f"room-{i}",
            "open_hours": parse_cst(
                f"((t) | {open_from} <= t <= {open_to})"),
        })
        rooms.append(room.oid)

    bookings: list[Oid] = []
    for i in range(n_bookings):
        start = rng.randrange(DAY_START, DAY_END - 60, 15)
        length = rng.choice([30, 45, 60, 90])
        booking = db.add_object(f"booking_{i}", "Booking", {
            "booking_name": f"booking-{i}",
            "room": rooms[i % len(rooms)],
            "slot": parse_cst(f"((t) | {start} <= t <= {start + length})"),
        })
        bookings.append(booking.oid)

    people: list[Oid] = []
    for i in range(n_people):
        # Two availability windows: morning and afternoon.
        m_from = DAY_START + rng.randrange(0, 60, 15)
        m_to = m_from + rng.choice([90, 120, 180])
        a_from = 13 * 60 + rng.randrange(0, 60, 15)
        a_to = a_from + rng.choice([120, 180, 240])
        person = db.add_object(f"person_{i}", "Availability", {
            "person": f"person-{i}",
            "windows": parse_cst(
                f"((t) | ({m_from} <= t <= {m_to}) "
                f"or ({a_from} <= t <= {a_to}))"),
        })
        people.append(person.oid)

    db.validate()
    return TemporalWorkload(db, tuple(rooms), tuple(bookings),
                            tuple(people))


#: Conflicting booking pairs in the same room (temporal SAT join).
CONFLICT_QUERY = """
    SELECT A, B
    FROM Booking A, Booking B
    WHERE A.room[R] and B.room[R]
      and not A.booking_name = B.booking_name
      and A.slot[SA] and B.slot[SB]
      and SAT(SA(t) and SB(t))
"""

#: Bookings that fit wholly inside their room's open hours (|=).
WITHIN_HOURS_QUERY = """
    SELECT B FROM Booking B
    WHERE B.room[R] and B.slot[S] and R.open_hours[H]
      and (S(t) |= H(t))
"""

#: For each person/room pair, the feasible meeting times and the
#: earliest one.
EARLIEST_MEETING_QUERY = """
    SELECT P, R,
           ((t) | W(t) and H(t)),
           MIN(t SUBJECT TO ((t) | W2(t) and H(t)))
    FROM Availability P, Room_ R
    WHERE P.windows[W] and R.open_hours[H] and P.windows[W2]
      and SAT(W(t) and H(t))
"""

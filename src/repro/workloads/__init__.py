"""Synthetic workload generators for the paper's three application
realms (office design, submarine MDA, manufacturing LP) plus random
constraint generators for the engine benchmarks."""

from repro.workloads import (
    manufacturing,
    mda,
    office,
    random_constraints,
    temporal,
)

__all__ = ["manufacturing", "mda", "office", "random_constraints",
           "temporal"]

"""Crash-safe durable storage: snapshots + a write-ahead log.

Public surface:

* :class:`Store` — create / open / verify a store directory; mutations
  of the attached database and relations are logged automatically.
* :class:`RecoveryReport` and the states :data:`CLEAN`,
  :data:`RECOVERED`, :data:`UNRECOVERABLE`.
* :data:`DURABILITY_POLICIES` — ``always`` / ``batch`` / ``off``.

See :mod:`repro.storage.store` for the recovery model and
:mod:`repro.storage.format` for the on-disk framing.
"""

from repro.storage.format import (
    STORAGE_FORMAT_VERSION,
    TAIL_CLEAN,
    TAIL_CORRUPT,
    TAIL_TORN,
)
from repro.storage.store import (
    CLEAN,
    RECOVERED,
    UNRECOVERABLE,
    RecoveryReport,
    Store,
)
from repro.storage.wal import (
    DURABILITY_POLICIES,
    StorageIO,
    WriteAheadLog,
    read_wal,
)

__all__ = [
    "CLEAN",
    "DURABILITY_POLICIES",
    "RECOVERED",
    "RecoveryReport",
    "STORAGE_FORMAT_VERSION",
    "Store",
    "StorageIO",
    "TAIL_CLEAN",
    "TAIL_CORRUPT",
    "TAIL_TORN",
    "UNRECOVERABLE",
    "WriteAheadLog",
    "read_wal",
]

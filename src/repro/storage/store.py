"""The durable store: snapshot generations + a write-ahead log.

A store is a directory::

    store/
      CURRENT               # "<generation>\\n", updated by atomic rename
      snapshot-000001.lyrc  # binary header + canonical-JSON payload
      wal-000001.log        # mutations appended since snapshot 1
      snapshot-000002.lyrc  # newer generation (older ones retained as
      wal-000002.log        #  fallbacks, pruned past ``retain``)

The snapshot payload reuses :mod:`repro.model.serialize`'s JSON-able
format for the object database plus a row dump of every registered
flat relation; the WAL records every mutation after the snapshot —
``add_object`` / ``update_attribute`` / ``remove_object`` on the
database, ``add_class`` / ``cst_class`` DDL on the schema,
``create_relation`` DDL and ``add_row`` on flat relations — observed
through the model layer's mutation hooks, so user code mutates the
ordinary :class:`~repro.model.database.Database` /
:class:`~repro.sqlc.relation.ConstraintRelation` objects and
durability is automatic.

Recovery (:meth:`Store.open` / :meth:`Store.verify`) replays the
newest readable snapshot plus the longest valid WAL prefix, *chaining*
across generations: snapshot ``n`` is by construction equivalent to
snapshot ``n-1`` plus the complete ``wal-(n-1)``, so when snapshot
``n`` is damaged the chain ``snapshot-(n-1), wal-(n-1), wal-n`` still
reaches the latest state.  Torn tails, truncated records, bit-flipped
payloads, and missing files each degrade to the last consistent
prefix with an explicit warning in the :class:`RecoveryReport` —
``unrecoverable`` is reserved for *no readable snapshot at all*.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import (
    ReproError,
    StoreCorruptError,
    StoreError,
    StoreWriteError,
)
from repro.model.database import Database
from repro.model.schema import Schema
from repro.model.serialize import (
    dump_class_def,
    dump_database,
    dump_object,
    dump_oid,
    dump_value,
    load_class_def,
    load_database,
    load_oid,
    load_value,
    load_object_into,
)
from repro.runtime.faults import FaultPlan
from repro.sqlc.relation import ConstraintRelation
from repro.storage import format as fmt
from repro.storage.wal import (
    DURABILITY_POLICIES,
    StorageIO,
    WriteAheadLog,
    read_wal,
)

#: Recovery outcomes (also the CLI's exit-code vocabulary).
CLEAN = "clean"
RECOVERED = "recovered"
UNRECOVERABLE = "unrecoverable"

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{6})\.lyrc$")
_WAL_RE = re.compile(r"^wal-(\d{6})\.log$")


def _snapshot_name(generation: int) -> str:
    return f"snapshot-{generation:06d}.lyrc"


def _wal_name(generation: int) -> str:
    return f"wal-{generation:06d}.log"


@dataclass
class RecoveryReport:
    """What recovery found and what it had to give up.

    ``state`` is :data:`CLEAN` (every byte accounted for),
    :data:`RECOVERED` (a consistent state was reached but something was
    dropped or repaired — each event is a warning), or
    :data:`UNRECOVERABLE` (no snapshot generation was readable).
    """

    state: str = CLEAN
    generation: int = 0
    base_generation: int = 0
    records_applied: int = 0
    records_dropped: int = 0
    warnings: list[str] = field(default_factory=list)

    def warn(self, message: str) -> None:
        self.warnings.append(message)
        if self.state == CLEAN:
            self.state = RECOVERED

    def describe(self) -> str:
        lines = [f"state: {self.state}",
                 f"generation: {self.generation} "
                 f"(snapshot {self.base_generation})",
                 f"records applied: {self.records_applied}"]
        if self.records_dropped:
            lines.append(f"records dropped: {self.records_dropped}")
        for message in self.warnings:
            lines.append(f"warning: {message}")
        return "\n".join(lines)


class Store:
    """A crash-safe, WAL-backed home for one constraint database.

    Use :meth:`create` for a fresh directory, :meth:`open` to recover
    an existing one, :meth:`verify` for a read-only recovery dry run.
    Mutations made through the attached :attr:`db` (and any relation
    from :meth:`create_relation` / :meth:`add_relation`) are logged
    automatically; :meth:`snapshot` compacts the log into a new
    generation.

    Logging is apply-then-log within one process: the in-memory
    mutation happens first, then the WAL record.  Under durability
    ``always`` every mutation that *returns* is on disk; after a
    failed write the store turns :attr:`broken` and refuses further
    mutations — reopening re-derives the consistent on-disk state.
    """

    def __init__(self, path: str, *, durability: str = "batch",
                 batch_size: int = 64,
                 faults: FaultPlan | None = None,
                 retain: int = 2, readonly: bool = False):
        if durability not in DURABILITY_POLICIES:
            raise StoreError(
                f"unknown durability policy {durability!r}; expected "
                f"one of {DURABILITY_POLICIES}")
        if retain < 1:
            raise StoreError(f"retain must be >= 1, got {retain}")
        self.path = os.fspath(path)
        self.durability = durability
        self.batch_size = batch_size
        self.retain = retain
        self.readonly = readonly
        self.io = StorageIO(faults)
        self.report: RecoveryReport | None = None
        self._db: Database | None = None
        self._relations: dict[str, ConstraintRelation] = {}
        self._generation = 0
        self._wal: WriteAheadLog | None = None

    # -- constructors ----------------------------------------------------

    @classmethod
    def create(cls, path: str, db: Database | None = None,
               relations: Mapping[str, ConstraintRelation] | None = None,
               **options: Any) -> "Store":
        """Initialise a new store directory around ``db`` (a fresh
        empty database when omitted) and write generation 1."""
        store = cls(path, **options)
        if store.readonly:
            raise StoreError("cannot create a store read-only")
        os.makedirs(store.path, exist_ok=True)
        if any(_SNAPSHOT_RE.match(name) or name == "CURRENT"
               for name in os.listdir(store.path)):
            raise StoreError(
                f"{store.path!r} already contains a store; "
                f"use Store.open")
        store._db = db if db is not None else Database(Schema())
        store._relations = dict(relations or {})
        store.snapshot()
        store._wire_observers()
        return store

    @classmethod
    def open(cls, path: str, **options: Any) -> "Store":
        """Recover the store and resume appending (truncating any torn
        WAL tail and pruning unreachable newer generations so the disk
        state equals the recovered state).  Raises
        :class:`~repro.errors.StoreCorruptError` when unrecoverable;
        partial damage is reported in :attr:`report` instead."""
        store = cls(path, **options)
        report = RecoveryReport()
        db, relations, tip = store._recover(report,
                                            repair=not store.readonly)
        store.report = report
        store._db = db
        store._relations = relations
        store._generation = tip
        if store.readonly:
            store._wire_readonly_observers()
        else:
            wal_path = os.path.join(store.path, _wal_name(tip))
            # A crash between snapshot rename and WAL creation leaves
            # the tip generation logless; recreate it on reopen.
            create = not os.path.exists(wal_path)
            store._wal = WriteAheadLog(
                wal_path, generation=tip,
                fingerprint=fmt.schema_fingerprint(db.schema),
                io=store.io, durability=store.durability,
                batch_size=store.batch_size, create=create)
            store._wire_observers()
        return store

    @classmethod
    def verify(cls, path: str) -> RecoveryReport:
        """Read-only recovery dry run: replays everything, touches
        nothing, and reports :data:`CLEAN` / :data:`RECOVERED` /
        :data:`UNRECOVERABLE` instead of raising."""
        store = cls(path, readonly=True)
        report = RecoveryReport()
        try:
            store._recover(report, repair=False)
        except StoreCorruptError as exc:
            report.state = UNRECOVERABLE
            report.warnings.append(str(exc))
        return report

    # -- accessors -------------------------------------------------------

    @property
    def db(self) -> Database:
        if self._db is None:
            raise StoreError("store is closed")
        return self._db

    @property
    def relations(self) -> Mapping[str, ConstraintRelation]:
        return self._relations

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def broken(self) -> bool:
        return self._wal is not None and self._wal.broken

    @property
    def synced_records(self) -> int:
        """Records of the active WAL known durable (see
        :attr:`WriteAheadLog.synced_records`)."""
        return self._wal.synced_records if self._wal is not None else 0

    # -- relation catalog ------------------------------------------------

    def create_relation(self, name: str, columns: Iterable[str],
                        shards: int = 0,
                        partition_by: str | None = None
                        ) -> ConstraintRelation:
        """A new empty flat relation registered with the store: its
        DDL is logged now, every future ``add_row``/``add_rows``
        automatically.  With ``shards >= 2`` the relation is a
        :class:`~repro.sqlc.shard.ShardedConstraintRelation`; the
        shard layout is part of the DDL record and survives recovery.
        """
        self._require_writable()
        if name in self._relations:
            raise StoreError(f"relation {name!r} already exists")
        relation = _build_relation(name, tuple(columns), shards,
                                   partition_by)
        self._append(_relation_ddl(relation))
        self._relations[name] = relation
        relation.set_observer(self._on_add_row, self._on_add_rows)
        return relation

    def add_relation(self, relation: ConstraintRelation
                     ) -> ConstraintRelation:
        """Adopt an existing (possibly populated) relation: logs its
        DDL and current rows, then observes future mutations."""
        self._require_writable()
        if relation.name in self._relations:
            raise StoreError(
                f"relation {relation.name!r} already exists")
        self._append(_relation_ddl(relation))
        if len(relation):
            self._append({"op": "add_rows", "relation": relation.name,
                          "rows": [[dump_oid(cell) for cell in row]
                                   for row in relation]})
        self._relations[relation.name] = relation
        relation.set_observer(self._on_add_row, self._on_add_rows)
        return relation

    def relation(self, name: str) -> ConstraintRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise StoreError(f"no relation {name!r} in store") from None

    # -- durability operations -------------------------------------------

    def flush(self) -> None:
        """Make every logged mutation durable now."""
        self._require_writable()
        assert self._wal is not None
        self._wal.flush()

    def snapshot(self) -> int:
        """Write a new snapshot generation and rotate the WAL.

        The old WAL is flushed first, the snapshot lands via
        ``tmp + fsync + rename``, then ``CURRENT`` flips atomically;
        a crash in any window leaves a recoverable chain.  Returns the
        new generation number and prunes generations past ``retain``.
        """
        self._require_writable()
        if self._wal is not None:
            self._wal.flush()
        generation = self._generation + 1
        fingerprint = fmt.schema_fingerprint(self.db.schema)
        payload = fmt.canonical_json(self._snapshot_payload())
        blob = fmt.pack_snapshot(generation, fingerprint, payload)

        snap_path = os.path.join(self.path, _snapshot_name(generation))
        try:
            self._write_file(snap_path, blob)
            wal = WriteAheadLog(
                os.path.join(self.path, _wal_name(generation)),
                generation=generation, fingerprint=fingerprint,
                io=self.io, durability=self.durability,
                batch_size=self.batch_size, create=True)
            self._write_file(os.path.join(self.path, "CURRENT"),
                             f"{generation}\n".encode("ascii"))
        except StoreWriteError:
            # A half-done rotation leaves disk state ambiguous between
            # generations; appending to the old WAL past the new
            # snapshot would break the chain invariant (snapshot n ==
            # snapshot n-1 + complete wal n-1).  Refuse further
            # mutations; reopening re-derives the consistent state.
            if self._wal is not None:
                self._wal.mark_broken()
            raise
        if self._wal is not None:
            self._wal.close()
        self._wal = wal
        self._generation = generation
        self._prune()
        return generation

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        if self._db is not None:
            self._db.set_observer(None)
            self._db.schema.set_observer(None)
        for relation in self._relations.values():
            relation.set_observer(None)
        self._db = None

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- observers / logging ---------------------------------------------

    def _wire_observers(self) -> None:
        self.db.set_observer(self._on_db_event)
        self.db.schema.set_observer(self._on_schema_event)
        for relation in self._relations.values():
            relation.set_observer(self._on_add_row, self._on_add_rows)

    def _wire_readonly_observers(self) -> None:
        def refuse(event: str, **data: Any) -> None:
            raise StoreError(
                f"store {self.path!r} was opened read-only; "
                f"mutation {event!r} refused")

        self.db.set_observer(refuse)
        self.db.schema.set_observer(refuse)
        for relation in self._relations.values():
            relation.set_observer(
                lambda rel, row: refuse("add_row", relation=rel.name),
                lambda rel, rows: refuse("add_rows", relation=rel.name))

    def _on_db_event(self, event: str, **data: Any) -> None:
        if event == "add_object":
            self._append({"op": "add_object",
                          "object": dump_object(data["obj"])})
        elif event == "update_attribute":
            self._append({"op": "update_attribute",
                          "oid": dump_oid(data["oid"]),
                          "attribute": data["attribute"],
                          "value": dump_value(data["value"])})
        elif event == "remove_object":
            self._append({"op": "remove_object",
                          "oid": dump_oid(data["oid"]),
                          "force": bool(data["force"])})

    def _on_schema_event(self, event: str, **data: Any) -> None:
        if event == "add_class":
            self._append({"op": "add_class",
                          "class": dump_class_def(data["class_def"])})
        elif event == "cst_class":
            self._append({"op": "cst_class",
                          "dimension": data["dimension"]})

    def _on_add_row(self, relation: ConstraintRelation,
                    row: tuple) -> None:
        self._append({"op": "add_row", "relation": relation.name,
                      "row": [dump_oid(cell) for cell in row]})

    def _on_add_rows(self, relation: ConstraintRelation,
                     rows: list[tuple]) -> None:
        """One WAL record (hence at most one fsync) per ``add_rows``
        batch — the durability half of bulk-append batching."""
        self._append({"op": "add_rows", "relation": relation.name,
                      "rows": [[dump_oid(cell) for cell in row]
                               for row in rows]})

    def _append(self, record: dict) -> None:
        self._require_writable()
        assert self._wal is not None
        self._wal.append(record)

    def _require_writable(self) -> None:
        if self.readonly:
            raise StoreError(f"store {self.path!r} is read-only")
        if self._db is None:
            raise StoreError("store is closed")
        if self._wal is not None and self._wal.broken:
            raise StoreError(
                f"store {self.path!r} is broken after a failed write; "
                f"reopen it to recover")

    # -- snapshot payload -------------------------------------------------

    def _snapshot_payload(self) -> dict:
        dumped_relations = []
        for rel in self._relations.values():
            dumped = {"name": rel.name, "columns": list(rel.columns),
                      "rows": [[dump_oid(cell) for cell in row]
                               for row in rel]}
            shards = getattr(rel, "shard_count", 0)
            if shards:
                dumped["shards"] = shards
                dumped["partition_by"] = rel.partition_by
            dumped_relations.append(dumped)
        return {
            "database": dump_database(self.db),
            "relations": dumped_relations,
        }

    @staticmethod
    def _restore_payload(payload: Any
                         ) -> tuple[Database, dict[str, ConstraintRelation]]:
        try:
            db = load_database(payload["database"])
            relations: dict[str, ConstraintRelation] = {}
            for dumped in payload["relations"]:
                relation = _build_relation(
                    dumped["name"], tuple(dumped["columns"]),
                    dumped.get("shards", 0),
                    dumped.get("partition_by"))
                relation.add_rows(
                    [[load_oid(cell) for cell in row]
                     for row in dumped["rows"]])
                relations[dumped["name"]] = relation
        except (ReproError, KeyError, TypeError) as exc:
            raise StoreCorruptError(
                f"snapshot payload does not restore: {exc}") from exc
        return db, relations

    # -- low-level file helpers -------------------------------------------

    def _write_file(self, path: str, data: bytes) -> None:
        """Crash-safe small-file write: tmp, fsync, atomic rename."""
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as handle:
                self.io.write(handle, data)
                if self.durability != "off":
                    self.io.fsync(handle)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- recovery ---------------------------------------------------------

    def _scan_files(self) -> tuple[dict[int, str], dict[int, str]]:
        snapshots: dict[int, str] = {}
        wals: dict[int, str] = {}
        try:
            names = os.listdir(self.path)
        except FileNotFoundError:
            raise StoreCorruptError(
                f"{self.path!r} does not exist") from None
        for name in names:
            match = _SNAPSHOT_RE.match(name)
            if match:
                snapshots[int(match.group(1))] = \
                    os.path.join(self.path, name)
            match = _WAL_RE.match(name)
            if match:
                wals[int(match.group(1))] = \
                    os.path.join(self.path, name)
        return snapshots, wals

    def _read_current(self, report: RecoveryReport) -> int | None:
        path = os.path.join(self.path, "CURRENT")
        try:
            with open(path, "rb") as handle:
                return int(handle.read().strip())
        except FileNotFoundError:
            report.warn("CURRENT missing; scanning for the newest "
                        "readable snapshot")
        except ValueError:
            report.warn("CURRENT unreadable; scanning for the newest "
                        "readable snapshot")
        return None

    def _recover(self, report: RecoveryReport, *, repair: bool
                 ) -> tuple[Database, dict[str, ConstraintRelation], int]:
        snapshots, wals = self._scan_files()
        if not snapshots:
            raise StoreCorruptError(
                f"{self.path!r} contains no snapshot; nothing to "
                f"recover")
        current = self._read_current(report)
        order = sorted(snapshots, reverse=True)
        if current is not None:
            if current in snapshots:
                order = [current] + [g for g in order if g != current]
            else:
                report.warn(f"CURRENT names generation {current} but "
                            f"no such snapshot exists")

        base = None
        state: tuple[Database, dict[str, ConstraintRelation]] | None = None
        fingerprint = b""
        for generation in order:
            try:
                with open(snapshots[generation], "rb") as handle:
                    gen, fingerprint, payload = \
                        fmt.read_snapshot(handle.read())
                if gen != generation:
                    raise StoreCorruptError(
                        f"snapshot header says generation {gen}, file "
                        f"name says {generation}")
                state = self._restore_payload(payload)
                base = generation
                break
            except StoreCorruptError as exc:
                report.warn(
                    f"snapshot {generation} unusable ({exc}); falling "
                    f"back")
        if base is None or state is None:
            raise StoreCorruptError(
                f"no readable snapshot in {self.path!r} "
                f"(tried generations {sorted(snapshots, reverse=True)})")
        report.base_generation = base
        db, relations = state

        tip = base
        last_gen = max([base, *[g for g in wals if g > base],
                        *[g for g in snapshots if g > base]])
        for generation in range(base, last_gen + 1):
            path = wals.get(generation)
            if path is None:
                if generation < last_gen:
                    report.warn(
                        f"wal {generation} missing; mutations after "
                        f"generation {tip} are lost")
                else:
                    report.warn(f"wal {generation} missing")
                break
            try:
                gen, fp, records, tail, valid_end = read_wal(path)
            except StoreCorruptError as exc:
                report.warn(f"wal {generation} unusable ({exc}); "
                            f"stopping replay")
                break
            stop = False
            if gen != generation:
                report.warn(
                    f"wal file {generation} carries generation {gen}; "
                    f"stopping replay")
                break
            if generation == base and fp != fingerprint:
                report.warn(
                    f"wal {generation} was written against a "
                    f"different schema snapshot; stopping replay")
                break
            applied = 0
            for record in records:
                try:
                    _apply_record(db, relations, record)
                except ReproError as exc:
                    report.warn(
                        f"wal {generation} record "
                        f"{report.records_applied + applied + 1} does "
                        f"not apply ({exc}); stopping replay")
                    stop = True
                    break
                applied += 1
            report.records_applied += applied
            report.records_dropped += len(records) - applied
            tip = generation
            if tail != fmt.TAIL_CLEAN:
                kind = ("torn tail" if tail == fmt.TAIL_TORN
                        else "corrupt record")
                report.warn(f"wal {generation}: {kind} after "
                            f"{applied} records; dropping the rest")
                stop = True
            if repair and (tail != fmt.TAIL_CLEAN
                           or generation == last_gen):
                self._truncate_wal(path, valid_end
                                   if tail != fmt.TAIL_CLEAN else None)
            if stop:
                break

        try:
            db.validate()
        except ReproError as exc:
            # Replayed state failed integrity — degrade to the bare
            # snapshot, which validated on load.
            report.warn(
                f"replayed state failed validation ({exc}); degrading "
                f"to snapshot {base} alone")
            report.records_dropped += report.records_applied
            report.records_applied = 0
            with open(snapshots[base], "rb") as handle:
                _gen, fingerprint, payload = \
                    fmt.read_snapshot(handle.read())
            db, relations = self._restore_payload(payload)
            tip = base

        if repair:
            self._prune_unreachable(tip, snapshots, wals, report)
        report.generation = tip
        return db, relations, tip

    def _truncate_wal(self, path: str, valid_end: int | None) -> None:
        """Cut a damaged tail off so the on-disk log equals the
        recovered prefix before new appends land."""
        if valid_end is None:
            return
        with open(path, "r+b") as handle:
            handle.truncate(valid_end)
            handle.flush()
            os.fsync(handle.fileno())

    def _prune_unreachable(self, tip: int, snapshots: dict[int, str],
                           wals: dict[int, str],
                           report: RecoveryReport) -> None:
        """Remove generations *newer* than the recovered tip (their
        contents build on state that no longer exists) and re-point
        CURRENT at the tip."""
        doomed = sorted(g for g in set(snapshots) | set(wals)
                        if g > tip)
        for generation in doomed:
            for path in (snapshots.get(generation),
                         wals.get(generation)):
                if path is not None and os.path.exists(path):
                    os.unlink(path)
        if doomed:
            report.warn(f"pruned unreachable generations {doomed}")
        self._write_file(os.path.join(self.path, "CURRENT"),
                         f"{tip}\n".encode("ascii"))

    def _prune(self) -> None:
        snapshots, wals = self._scan_files()
        horizon = self._generation - self.retain
        for generation, path in list(snapshots.items()):
            if generation <= horizon:
                os.unlink(path)
        for generation, path in list(wals.items()):
            if generation <= horizon:
                os.unlink(path)


def _build_relation(name: str, columns: tuple,
                    shards: int = 0,
                    partition_by: str | None = None
                    ) -> ConstraintRelation:
    """A store-managed relation: sharded when the DDL says so.  A
    replayed/restored sharded relation re-derives its range boundaries
    from the rows it sees — possibly different boundaries than the
    original process used, which affects only pruning effectiveness,
    never row content or order."""
    if shards:
        from repro.sqlc.shard import ShardedConstraintRelation
        return ShardedConstraintRelation(
            name, columns, shards=shards, partition_by=partition_by)
    return ConstraintRelation(name, columns)


def _relation_ddl(relation: ConstraintRelation) -> dict:
    """The ``create_relation`` WAL record, shard layout included."""
    record: dict[str, Any] = {
        "op": "create_relation", "name": relation.name,
        "columns": list(relation.columns)}
    shards = getattr(relation, "shard_count", 0)
    if shards:
        record["shards"] = shards
        record["partition_by"] = relation.partition_by
    return record


def _apply_record(db: Database,
                  relations: dict[str, ConstraintRelation],
                  record: Any) -> None:
    """Replay one WAL record against the recovering state."""
    if not isinstance(record, dict):
        raise StoreError(f"malformed WAL record {record!r}")
    op = record.get("op")
    if op == "add_object":
        load_object_into(db, record["object"])
    elif op == "update_attribute":
        db.update_attribute(load_oid(record["oid"]),
                            record["attribute"],
                            load_value(record["value"]))
    elif op == "remove_object":
        db.remove_object(load_oid(record["oid"]),
                         force=record["force"])
    elif op == "add_class":
        db.schema.add_class(load_class_def(record["class"]))
    elif op == "cst_class":
        db.schema.ensure_cst_class(record["dimension"])
    elif op == "create_relation":
        name = record["name"]
        if name in relations:
            raise StoreError(f"relation {name!r} created twice")
        relations[name] = _build_relation(
            name, tuple(record["columns"]),
            record.get("shards", 0), record.get("partition_by"))
    elif op == "add_row":
        name = record["relation"]
        if name not in relations:
            raise StoreError(f"add_row to unknown relation {name!r}")
        relations[name].add_row(
            [load_oid(cell) for cell in record["row"]])
    elif op == "add_rows":
        name = record["relation"]
        if name not in relations:
            raise StoreError(f"add_rows to unknown relation {name!r}")
        relations[name].add_rows(
            [[load_oid(cell) for cell in row]
             for row in record["rows"]])
    else:
        raise StoreError(f"unknown WAL op {op!r}")

"""On-disk framing for the durable store: headers, records, checksums.

Two file kinds share one discipline — *every* byte that matters is
covered by an explicit length and a CRC32, so recovery never has to
guess whether it is reading data or a crash artifact:

* a **snapshot** file is a fixed binary header (magic, storage format
  version, generation number, schema fingerprint, payload length,
  payload CRC32) followed by one canonical-JSON payload — the
  JSON-able dictionaries of :mod:`repro.model.serialize`;
* a **WAL** file is a fixed binary header (magic, version, generation,
  the fingerprint of the snapshot it extends) followed by
  length-prefixed records, each ``u32 length | u32 crc32 | payload``.

Reading is *total*: :func:`scan_records` classifies whatever bytes it
is handed into a valid record prefix plus a tail status (``clean``, a
``torn`` partial record, or a ``corrupt`` checksum mismatch), and
:func:`read_snapshot` raises :class:`~repro.errors.StoreCorruptError`
with a reason instead of propagating decode garbage.  Torn tails are
the *expected* artifact of a crash mid-append; corrupt records in the
middle of a log indicate bit rot.  Both degrade, neither crashes.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from typing import Any, Iterator

from repro.errors import StoreCorruptError

#: Bumped when the binary layout changes (independent of the JSON
#: payload's :data:`repro.model.serialize.FORMAT_VERSION`).
STORAGE_FORMAT_VERSION = 1

MAGIC_SNAPSHOT = b"LYRS"
MAGIC_WAL = b"LYRW"

#: magic(4) | format version(u16) | generation(u64) | schema
#: fingerprint(16) | payload crc32(u32) | payload length(u64)
_SNAPSHOT_HEADER = struct.Struct("<4sHQ16sIQ")

#: magic(4) | format version(u16) | generation(u64) | snapshot schema
#: fingerprint(16)
_WAL_HEADER = struct.Struct("<4sHQ16s")

#: record length(u32) | record crc32(u32)
_RECORD_PREFIX = struct.Struct("<II")

SNAPSHOT_HEADER_SIZE = _SNAPSHOT_HEADER.size
WAL_HEADER_SIZE = _WAL_HEADER.size
RECORD_PREFIX_SIZE = _RECORD_PREFIX.size

#: Upper bound on a single record; a length prefix beyond this is
#: treated as corruption rather than attempted as an allocation.
MAX_RECORD_SIZE = 64 * 1024 * 1024

#: Tail classifications of :func:`scan_records`.
TAIL_CLEAN = "clean"
TAIL_TORN = "torn"
TAIL_CORRUPT = "corrupt"


def canonical_json(payload: Any) -> bytes:
    """Deterministic JSON bytes (sorted keys, no whitespace) — the
    same payload always produces the same checksum."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def schema_fingerprint(schema: Any) -> bytes:
    """A 16-byte digest of a schema's serialized form; snapshots carry
    it and each WAL names the snapshot schema it extends."""
    from repro.model.serialize import dump_schema
    digest = hashlib.sha256(canonical_json(dump_schema(schema)))
    return digest.digest()[:16]


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Snapshot files
# ---------------------------------------------------------------------------


def pack_snapshot(generation: int, fingerprint: bytes,
                  payload: bytes) -> bytes:
    """Header + payload bytes of one snapshot file."""
    header = _SNAPSHOT_HEADER.pack(
        MAGIC_SNAPSHOT, STORAGE_FORMAT_VERSION, generation,
        fingerprint, _crc(payload), len(payload))
    return header + payload


def read_snapshot(data: bytes) -> tuple[int, bytes, Any]:
    """``(generation, fingerprint, decoded payload)`` of a snapshot
    file, or :class:`StoreCorruptError` naming what is wrong."""
    if len(data) < SNAPSHOT_HEADER_SIZE:
        raise StoreCorruptError(
            f"snapshot truncated inside the header "
            f"({len(data)} < {SNAPSHOT_HEADER_SIZE} bytes)")
    magic, version, generation, fingerprint, crc, length = \
        _SNAPSHOT_HEADER.unpack_from(data)
    if magic != MAGIC_SNAPSHOT:
        raise StoreCorruptError(f"bad snapshot magic {magic!r}")
    if version != STORAGE_FORMAT_VERSION:
        raise StoreCorruptError(
            f"unsupported storage format version {version}")
    payload = data[SNAPSHOT_HEADER_SIZE:]
    if len(payload) != length:
        raise StoreCorruptError(
            f"snapshot payload truncated "
            f"({len(payload)} of {length} bytes)")
    if _crc(payload) != crc:
        raise StoreCorruptError("snapshot payload checksum mismatch")
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptError(
            f"snapshot payload undecodable despite matching checksum: "
            f"{exc}") from None
    return generation, fingerprint, decoded


# ---------------------------------------------------------------------------
# WAL files
# ---------------------------------------------------------------------------


def pack_wal_header(generation: int, fingerprint: bytes) -> bytes:
    return _WAL_HEADER.pack(MAGIC_WAL, STORAGE_FORMAT_VERSION,
                            generation, fingerprint)


def read_wal_header(data: bytes) -> tuple[int, bytes]:
    """``(generation, fingerprint)`` from the start of a WAL file."""
    if len(data) < WAL_HEADER_SIZE:
        raise StoreCorruptError(
            f"WAL truncated inside the header "
            f"({len(data)} < {WAL_HEADER_SIZE} bytes)")
    magic, version, generation, fingerprint = \
        _WAL_HEADER.unpack_from(data)
    if magic != MAGIC_WAL:
        raise StoreCorruptError(f"bad WAL magic {magic!r}")
    if version != STORAGE_FORMAT_VERSION:
        raise StoreCorruptError(
            f"unsupported storage format version {version}")
    return generation, fingerprint


def encode_record(record: Any) -> bytes:
    """One WAL record: length-prefixed, checksummed canonical JSON."""
    payload = canonical_json(record)
    return _RECORD_PREFIX.pack(len(payload), _crc(payload)) + payload


def scan_records(data: bytes, offset: int = 0
                 ) -> tuple[list[Any], str, int]:
    """Decode the longest valid record prefix of ``data[offset:]``.

    Returns ``(records, tail, valid_end)``: the decoded records, the
    tail classification (:data:`TAIL_CLEAN`, :data:`TAIL_TORN`,
    :data:`TAIL_CORRUPT`), and the byte offset just past the last
    valid record — the truncation point a writer reopening this log
    must cut back to before appending.
    """
    records: list[Any] = []
    at = offset
    end = len(data)
    while at < end:
        if at + RECORD_PREFIX_SIZE > end:
            return records, TAIL_TORN, at
        length, crc = _RECORD_PREFIX.unpack_from(data, at)
        if length > MAX_RECORD_SIZE:
            # An absurd length prefix is bit rot, not a big record.
            return records, TAIL_CORRUPT, at
        start = at + RECORD_PREFIX_SIZE
        if start + length > end:
            return records, TAIL_TORN, at
        payload = data[start:start + length]
        if _crc(payload) != crc:
            return records, TAIL_CORRUPT, at
        try:
            records.append(json.loads(payload.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return records, TAIL_CORRUPT, at
        at = start + length
    return records, TAIL_CLEAN, at


def iter_record_offsets(data: bytes, offset: int = 0
                        ) -> Iterator[tuple[int, int]]:
    """``(start, end)`` byte ranges of the valid records in ``data``
    (introspection helper for tests and ``repro db verify``)."""
    at = offset
    end = len(data)
    while at + RECORD_PREFIX_SIZE <= end:
        length, crc = _RECORD_PREFIX.unpack_from(data, at)
        start = at + RECORD_PREFIX_SIZE
        if length > MAX_RECORD_SIZE or start + length > end:
            return
        if _crc(data[start:start + length]) != crc:
            return
        yield at, start + length
        at = start + length

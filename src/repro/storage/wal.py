"""The write-ahead log: append-only, checksummed, fsync'd on policy.

Every mutation of a stored database reaches disk *first* as one WAL
record (:func:`repro.storage.format.encode_record`), so a crash at any
byte boundary loses at most the unsynced suffix of the log — never a
record the caller was told is durable.

Durability is a dial, not a boolean (:data:`DURABILITY_POLICIES`):

``always``
    fsync after every append — an acknowledged record survives any
    crash;
``batch``
    fsync every ``batch_size`` records and on every explicit
    :meth:`WriteAheadLog.flush` / snapshot / close — bounded loss
    under OS crash, no loss under process crash;
``off``
    never fsync — the OS flushes on its own schedule (the benchmark
    and bulk-load setting).

All file writes and fsyncs go through :class:`StorageIO`, which counts
them and consults the active :class:`repro.runtime.faults.FaultPlan`
I/O hooks — failed writes, torn writes, fsync failures, and disk-full
are injected deterministically there, which is what makes
crash-at-every-record recovery property-testable without killing
processes.
"""

from __future__ import annotations

import os
from typing import Any, BinaryIO

from repro.errors import StoreError, StoreWriteError
from repro.runtime.faults import FaultPlan
from repro.storage import format as fmt

DURABILITY_POLICIES = ("always", "batch", "off")


class StorageIO:
    """Counted, fault-injectable file writes and fsyncs.

    One instance is shared by everything a :class:`~repro.storage.
    store.Store` writes (WAL appends *and* snapshot files), so a fault
    plan's 1-based write/fsync counters address every storage write
    the store performs, in order.
    """

    def __init__(self, faults: FaultPlan | None = None):
        self.faults = faults
        self.writes = 0
        self.fsyncs = 0
        self.bytes_written = 0

    def write(self, handle: BinaryIO, data: bytes) -> None:
        """Write ``data``, or raise :class:`StoreWriteError` — possibly
        after persisting a prefix (torn write / disk full), exactly the
        artifact crash recovery must tolerate."""
        self.writes += 1
        plan = self.faults
        if plan is not None:
            if plan.write_should_fail(self.writes):
                raise StoreWriteError(
                    f"injected write failure (write #{self.writes})")
            if plan.write_torn(self.writes):
                keep = max(0, min(plan.torn_write_bytes, len(data)))
                handle.write(data[:keep])
                handle.flush()
                self.bytes_written += keep
                raise StoreWriteError(
                    f"injected torn write (write #{self.writes}, "
                    f"{keep} of {len(data)} bytes persisted)")
            admitted = plan.bytes_admitted(self.bytes_written,
                                           len(data))
            if admitted < len(data):
                handle.write(data[:admitted])
                handle.flush()
                self.bytes_written += admitted
                raise StoreWriteError(
                    f"injected disk full (write #{self.writes}, "
                    f"{admitted} of {len(data)} bytes persisted)")
        try:
            handle.write(data)
        except OSError as exc:  # pragma: no cover - real I/O failure
            raise StoreWriteError(f"write failed: {exc}") from exc
        self.bytes_written += len(data)

    def fsync(self, handle: BinaryIO) -> None:
        self.fsyncs += 1
        if self.faults is not None \
                and self.faults.fsync_should_fail(self.fsyncs):
            raise StoreWriteError(
                f"injected fsync failure (fsync #{self.fsyncs})")
        try:
            handle.flush()
            os.fsync(handle.fileno())
        except OSError as exc:  # pragma: no cover - real I/O failure
            raise StoreWriteError(f"fsync failed: {exc}") from exc


class WriteAheadLog:
    """Appender over one ``wal-<generation>.log`` file.

    ``synced_records`` counts records known durable (covered by a
    completed fsync); with policy ``always`` that is every acknowledged
    append.  After any :class:`StoreWriteError` the log is *broken* —
    the file may end mid-record — and refuses further appends; the
    owning store surfaces that as a store-level failure and recovery
    truncates the torn tail on the next open.
    """

    def __init__(self, path: str, *, generation: int,
                 fingerprint: bytes, io: StorageIO,
                 durability: str = "batch", batch_size: int = 64,
                 create: bool = True):
        if durability not in DURABILITY_POLICIES:
            raise StoreError(
                f"unknown durability policy {durability!r}; expected "
                f"one of {DURABILITY_POLICIES}")
        if batch_size < 1:
            raise StoreError(f"batch_size must be >= 1, got {batch_size}")
        self.path = path
        self.generation = generation
        self.durability = durability
        self.batch_size = batch_size
        self.records = 0
        self.synced_records = 0
        self._unsynced = 0
        self._broken = False
        self._io = io
        if create:
            self._handle: BinaryIO | None = open(path, "xb")
            io.write(self._handle, fmt.pack_wal_header(generation,
                                                       fingerprint))
            if durability != "off":
                io.fsync(self._handle)
        else:
            self._handle = open(path, "r+b")
            self._handle.seek(0, os.SEEK_END)

    @property
    def broken(self) -> bool:
        return self._broken

    def mark_broken(self) -> None:
        """Refuse all further appends.  The owning store calls this
        when a *rotation* fails mid-way: growing this log past a newer
        snapshot already on disk would desynchronise the generation
        chain."""
        self._broken = True

    def append(self, record: Any) -> None:
        """Durably append one record (per the policy); raises
        :class:`StoreWriteError` and breaks the log on I/O failure."""
        if self._broken or self._handle is None:
            raise StoreError(
                f"WAL {self.path} is closed or broken; reopen the "
                f"store to recover")
        data = fmt.encode_record(record)
        try:
            self._io.write(self._handle, data)
            self.records += 1
            self._unsynced += 1
            if self.durability == "always" \
                    or (self.durability == "batch"
                        and self._unsynced >= self.batch_size):
                self._sync()
        except StoreWriteError:
            self._broken = True
            raise

    def flush(self) -> None:
        """Make every appended record durable now (any policy)."""
        if self._broken or self._handle is None:
            raise StoreError(
                f"WAL {self.path} is closed or broken; reopen the "
                f"store to recover")
        if self._unsynced:
            try:
                self._sync()
            except StoreWriteError:
                self._broken = True
                raise

    def _sync(self) -> None:
        if self.durability != "off":
            self._io.fsync(self._handle)
        self.synced_records = self.records
        self._unsynced = 0

    def close(self) -> None:
        if self._handle is None:
            return
        try:
            if not self._broken and self._unsynced \
                    and self.durability != "off":
                self._sync()
        finally:
            self._handle.close()
            self._handle = None


def read_wal(path: str) -> tuple[int, bytes, list[Any], str, int]:
    """Decode a WAL file from disk.

    Returns ``(generation, fingerprint, records, tail, valid_end)``
    where ``tail``/``valid_end`` come from
    :func:`repro.storage.format.scan_records`.  Raises
    :class:`~repro.errors.StoreCorruptError` only for a damaged
    *header* — a damaged record tail is data, reported, not raised.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    generation, fingerprint = fmt.read_wal_header(data)
    records, tail, valid_end = fmt.scan_records(
        data, offset=fmt.WAL_HEADER_SIZE)
    return generation, fingerprint, records, tail, valid_end

"""Static analysis of LyriC queries.

The parser produces paths whose heads, selectors and attribute
expressions are all plain names; this pass decides what each name is:

* an **object variable** — declared in FROM, or bound by a selector in
  the query's *binding skeleton* (the path expressions reachable through
  positive conjunctions in WHERE);
* a **ground oid** — a path head that is no declared variable resolves
  to a symbolic oid (``standard_desk.drawer.color``);
* an **attribute name** — an identifier in attribute position that
  names an attribute of the statically-known class (or of any class
  when the class is unknown);
* an **attribute variable** — any other identifier in attribute
  position (the paper's higher-order variables).

For constraint-object references the pass also records the *variable
schema* (the CST spec of the attribute the value came from) and the
*last interface-renamed edge* traversed to reach it — the information
the formula instantiation needs to add the implicit equalities of
Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import ast
from repro.errors import SemanticError
from repro.model.oid import Oid, SymbolicOid
from repro.model.paths import PathExpression, Step, VarRef
from repro.model.schema import AttributeDef, CSTSpec, Schema
from repro.constraints.terms import Variable


@dataclass
class VarInfo:
    """What the analysis knows about one variable."""

    name: str
    kind: str                   # 'object' | 'cst' | 'attribute'
    class_name: str | None = None
    cst_spec: CSTSpec | None = None
    #: The last class-valued, interface-renamed edge on the binding
    #: path; its formals are the interface of the class declaring the
    #: attribute the value was read from.
    last_edge: AttributeDef | None = None
    edge_formals: tuple[Variable, ...] = ()
    #: Path to the object the last edge starts from (the owner of the
    #: edge's actual parameters) — used to anchor implicit equalities
    #: to the right object at run time.
    edge_source: PathExpression | None = None
    #: Path to the immediate parent object the variable's value was
    #: read from (for CST variables: the object holding the attribute).
    parent_prefix: PathExpression | None = None
    declared_in_from: bool = False


@dataclass(frozen=True)
class RefInfo:
    """Schema information for one constraint-object reference."""

    spec: CSTSpec | None
    last_edge: AttributeDef | None
    edge_formals: tuple[Variable, ...]
    edge_source: PathExpression | None = None
    parent_prefix: PathExpression | None = None


@dataclass
class AnalyzedQuery:
    query: ast.Query
    schema: Schema
    var_info: dict[str, VarInfo] = field(default_factory=dict)
    #: Binding skeleton: resolved paths in evaluation order.
    skeleton: list[PathExpression] = field(default_factory=list)
    #: Schema info per FRef node (keyed by the node itself).
    ref_info: dict[ast.FRef, RefInfo] = field(default_factory=dict)
    #: Static diagnostics: paths that can never be satisfied ("the set
    #: of database paths ... could be empty because of a type error",
    #: Section 2.2).  Warnings, not errors — the query still runs.
    warnings: list[str] = field(default_factory=list)
    #: Parameter slots (``$name`` placeholders) in first-occurrence
    #: order — the positional signature EXECUTE binds arguments to.
    params: tuple[str, ...] = ()

    def info(self, name: str) -> VarInfo | None:
        return self.var_info.get(name)

    def warn(self, message: str) -> None:
        if message not in self.warnings:
            self.warnings.append(message)


def analyze(schema: Schema, query: ast.Query) -> AnalyzedQuery:
    """Resolve and type a query; raises :class:`SemanticError` on
    unknown classes, malformed clauses or unsafe variable use."""
    analysis = AnalyzedQuery(query=query, schema=schema)
    _declare_from(analysis)
    skeleton_raw = _collect_skeleton(query.where)
    resolved_skeleton = _type_skeleton(analysis, skeleton_raw)
    analysis.skeleton = resolved_skeleton

    resolved_where = _resolve_where(analysis, query.where)
    resolved_select = tuple(
        ast.SelectItem(_resolve_select_expr(analysis, item.expr),
                       item.name)
        for item in query.select)
    _check_oid_function(analysis)

    analysis.query = replace(query, select=resolved_select,
                             where=resolved_where)
    analysis.params = _collect_params(query)
    return analysis


def _collect_params(query: ast.Query) -> tuple[str, ...]:
    """All ``$name`` parameter slots, in first-occurrence order (WHERE
    before SELECT, mirroring binding-skeleton evaluation order)."""
    names: list[str] = []

    def add(name: str) -> None:
        if name not in names:
            names.append(name)

    def arith(node: ast.Arith) -> None:
        if isinstance(node, ast.AParam):
            add(node.name)
        elif isinstance(node, ast.ABinary):
            arith(node.left)
            arith(node.right)
        elif isinstance(node, ast.ANeg):
            arith(node.operand)

    def formula(node: ast.Formula) -> None:
        if isinstance(node, ast.FAtom):
            arith(node.left)
            arith(node.right)
        elif isinstance(node, (ast.FAnd, ast.FOr)):
            for part in node.parts:
                formula(part)
        elif isinstance(node, ast.FNot):
            formula(node.part)

    def where(node: ast.Where | None) -> None:
        if node is None:
            return
        if isinstance(node, ast.WCompare):
            for side in (node.left, node.right):
                if isinstance(side, ast.Param):
                    add(side.name)
        elif isinstance(node, (ast.WAnd, ast.WOr)):
            for part in node.parts:
                where(part)
        elif isinstance(node, ast.WNot):
            where(node.part)
        elif isinstance(node, ast.WSat):
            formula(node.formula.body)
        elif isinstance(node, ast.WEntails):
            formula(node.left.body)
            formula(node.right.body)

    where(query.where)
    for item in query.select:
        if isinstance(item.expr, ast.FormulaOut):
            formula(item.expr.formula.body)
        elif isinstance(item.expr, ast.OptimizeOut):
            arith(item.expr.objective)
            formula(item.expr.formula.body)
    return tuple(names)


# ---------------------------------------------------------------------------
# Declaration & skeleton collection
# ---------------------------------------------------------------------------


def _declare_from(analysis: AnalyzedQuery) -> None:
    for item in analysis.query.from_items:
        if not analysis.schema.has_class(item.class_name):
            raise SemanticError(
                f"FROM clause: unknown class {item.class_name!r}")
        if item.var in analysis.var_info:
            raise SemanticError(
                f"FROM clause: variable {item.var!r} declared twice")
        class_def = analysis.schema.class_def(item.class_name)
        info = VarInfo(name=item.var, kind="object",
                       class_name=item.class_name,
                       declared_in_from=True)
        if class_def.cst_dimension is not None:
            info.kind = "cst"
        analysis.var_info[item.var] = info


def _collect_skeleton(where: ast.Where | None) -> list[PathExpression]:
    """Path expressions reachable through positive conjunctions — the
    binding skeleton."""
    paths: list[PathExpression] = []

    def walk(node: ast.Where | None) -> None:
        if node is None:
            return
        if isinstance(node, ast.WPath):
            paths.append(node.path)
        elif isinstance(node, ast.WAnd):
            for part in node.parts:
                walk(part)
        # WOr / WNot / comparisons / CST predicates bind nothing.

    walk(where)
    return paths


# ---------------------------------------------------------------------------
# Skeleton typing: declares selector variables with schema provenance
# ---------------------------------------------------------------------------


def _type_skeleton(analysis: AnalyzedQuery,
                   raw: list[PathExpression]) -> list[PathExpression]:
    resolved: list[PathExpression] = []
    for path in raw:
        resolved.append(_type_path(analysis, path, declare=True))
    return resolved


def _type_path(analysis: AnalyzedQuery, path: PathExpression,
               declare: bool) -> PathExpression:
    """Resolve a parsed path and (optionally) declare its selector
    variables, tracking class / CST spec / interface provenance."""
    head, current_class, current_edge, current_formals, current_source = \
        _resolve_head(analysis, path.head)
    current_prefix = PathExpression(head, ())

    steps: list[Step] = []
    for step in path.steps:
        attr_name, attr_def = _resolve_attr(
            analysis, current_class, step.attribute)
        if isinstance(attr_name, VarRef) \
                and attr_name.name not in analysis.var_info:
            if not declare:
                raise SemanticError(
                    f"attribute variable {attr_name.name!r} is used "
                    "before being bound")
            analysis.var_info[attr_name.name] = VarInfo(
                name=attr_name.name, kind="attribute")

        # Compute the post-step typing state.
        next_class: str | None = None
        next_spec: CSTSpec | None = None
        next_edge, next_formals = current_edge, current_formals
        next_source = current_source
        if attr_def is not None:
            if attr_def.is_cst:
                next_spec = attr_def.target
            else:
                next_class = attr_def.target
                if attr_def.interface_args is not None:
                    next_edge = attr_def
                    next_formals = analysis.schema.interface_of(
                        attr_def.target)
                    next_source = current_prefix

        selector = step.selector
        if isinstance(selector, VarRef):
            name = selector.name
            info = analysis.var_info.get(name)
            if info is None:
                if not declare:
                    raise SemanticError(
                        f"variable {name!r} is used before being bound "
                        "(bind it in FROM or a conjunctive path "
                        "predicate)")
                info = VarInfo(name=name, kind="object")
                analysis.var_info[name] = info
            if attr_def is not None and attr_def.is_cst:
                if not info.declared_in_from:
                    info.kind = "cst"
                info.cst_spec = next_spec
                info.last_edge = current_edge
                info.edge_formals = current_formals
                info.edge_source = current_source
                info.parent_prefix = current_prefix
            elif attr_def is not None:
                info.class_name = info.class_name or next_class
                info.last_edge = next_edge
                info.edge_formals = next_formals
                info.edge_source = next_source
                info.parent_prefix = current_prefix

        steps.append(Step(attr_name, selector))
        next_prefix = PathExpression(
            current_prefix.head, current_prefix.steps
            + (Step(attr_name, selector),))
        if attr_def is not None and attr_def.is_cst:
            current_class = None
            current_edge, current_formals = None, ()
            current_source = None
        else:
            current_class = next_class
            current_edge, current_formals = next_edge, next_formals
            current_source = next_source
        current_prefix = next_prefix
    return PathExpression(head, tuple(steps))


def _resolve_head(analysis: AnalyzedQuery, head):
    """Resolve a path head to a VarRef or ground oid, returning
    (head, class, edge, formals, edge_source)."""
    if isinstance(head, Oid):
        return head, None, None, (), None
    name = head.name
    info = analysis.var_info.get(name)
    if info is not None:
        return (VarRef(name), info.class_name, info.last_edge,
                info.edge_formals, info.edge_source)
    # Unknown name: a ground symbolic oid.
    return SymbolicOid(name), None, None, (), None


def _resolve_attr(analysis: AnalyzedQuery, current_class: str | None,
                  attribute) -> tuple[str | VarRef, AttributeDef | None]:
    """Resolve an attribute expression to a name or attribute variable."""
    if isinstance(attribute, str):
        name = attribute
    else:
        name = attribute.name
    if current_class is not None:
        attr_def = analysis.schema.attributes_of(current_class).get(name)
        if attr_def is not None:
            return name, attr_def
        if name in analysis.schema.methods_of(current_class):
            # A 0-ary method used like an attribute: dynamically typed.
            return name, None
        # Not an attribute of the known class: an attribute variable if
        # it is no attribute anywhere, else a (statically empty) name.
        if _is_attribute_somewhere(analysis.schema, name):
            analysis.warn(
                f"attribute {name!r} is not defined on class "
                f"{current_class!r}: the path is statically empty "
                "(XSQL type error)")
            return name, None
        return VarRef(name), None
    # Class unknown (e.g. after a ground head): attribute names known
    # anywhere in the schema stay names, others become variables.
    if _is_attribute_somewhere(analysis.schema, name):
        return name, None
    return VarRef(name), None


def _is_attribute_somewhere(schema: Schema, name: str) -> bool:
    for class_name in schema.class_names:
        class_def = schema.class_def(class_name)
        if name in class_def.attributes or name in class_def.methods:
            return True
    return False


# ---------------------------------------------------------------------------
# WHERE / SELECT resolution (after the skeleton declared the variables)
# ---------------------------------------------------------------------------


def _resolve_where(analysis: AnalyzedQuery,
                   node: ast.Where | None) -> ast.Where | None:
    if node is None:
        return None
    if isinstance(node, ast.WPath):
        return ast.WPath(_type_path(analysis, node.path, declare=True))
    if isinstance(node, ast.WCompare):
        left = node.left
        right = node.right
        if isinstance(left, PathExpression):
            left = _type_path(analysis, left, declare=False)
        if isinstance(right, PathExpression):
            right = _type_path(analysis, right, declare=False)
        return ast.WCompare(left, node.op, right)
    if isinstance(node, ast.WSat):
        return ast.WSat(_resolve_formula(analysis, node.formula))
    if isinstance(node, ast.WEntails):
        return ast.WEntails(_resolve_formula(analysis, node.left),
                            _resolve_formula(analysis, node.right))
    if isinstance(node, ast.WAnd):
        return ast.WAnd(tuple(_resolve_where(analysis, p)
                              for p in node.parts))
    if isinstance(node, ast.WOr):
        return ast.WOr(tuple(_resolve_where(analysis, p)
                             for p in node.parts))
    if isinstance(node, ast.WNot):
        return ast.WNot(_resolve_where(analysis, node.part))
    raise SemanticError(f"unknown WHERE node {node!r}")


def _resolve_select_expr(analysis: AnalyzedQuery,
                         expr: ast.SelectExpr) -> ast.SelectExpr:
    if isinstance(expr, ast.PathOut):
        return ast.PathOut(_type_path(analysis, expr.path,
                                      declare=False))
    if isinstance(expr, ast.FormulaOut):
        return ast.FormulaOut(_resolve_formula(analysis, expr.formula))
    if isinstance(expr, ast.OptimizeOut):
        return ast.OptimizeOut(expr.kind,
                               _resolve_arith(analysis, expr.objective),
                               _resolve_formula(analysis, expr.formula))
    raise SemanticError(f"unknown SELECT expression {expr!r}")


# ---------------------------------------------------------------------------
# Formula resolution
# ---------------------------------------------------------------------------


def _resolve_formula(analysis: AnalyzedQuery,
                     formula: ast.CstFormula) -> ast.CstFormula:
    return ast.CstFormula(formula.head,
                          _resolve_formula_node(analysis, formula.body))


def _resolve_formula_node(analysis: AnalyzedQuery,
                          node: ast.Formula) -> ast.Formula:
    if isinstance(node, ast.FAtom):
        return ast.FAtom(_resolve_arith(analysis, node.left),
                         node.relop,
                         _resolve_arith(analysis, node.right))
    if isinstance(node, ast.FRef):
        return _resolve_ref(analysis, node)
    if isinstance(node, ast.FAnd):
        return ast.FAnd(tuple(_resolve_formula_node(analysis, p)
                              for p in node.parts))
    if isinstance(node, ast.FOr):
        return ast.FOr(tuple(_resolve_formula_node(analysis, p)
                             for p in node.parts))
    if isinstance(node, ast.FNot):
        return ast.FNot(_resolve_formula_node(analysis, node.part))
    if isinstance(node, ast.FTrue):
        return node
    raise SemanticError(f"unknown formula node {node!r}")


def _resolve_ref(analysis: AnalyzedQuery, ref: ast.FRef) -> ast.FRef:
    if isinstance(ref.source, str):
        info = analysis.var_info.get(ref.source)
        if info is None:
            raise SemanticError(
                f"constraint reference {ref.source!r} is not a bound "
                "variable")
        if info.kind not in ("cst", "object"):
            raise SemanticError(
                f"constraint reference {ref.source!r} does not denote "
                "a CST object")
        resolved = ref
        analysis.ref_info[resolved] = RefInfo(
            spec=info.cst_spec,
            last_edge=info.last_edge,
            edge_formals=info.edge_formals,
            edge_source=info.edge_source,
            parent_prefix=info.parent_prefix
            or PathExpression(VarRef(ref.source), ()))
        return resolved

    # Path reference: type it and extract the final CST attribute.
    path = _type_path(analysis, ref.source, declare=False)
    spec, last_edge, formals, source, parent = \
        _path_cst_info(analysis, path)
    resolved = ast.FRef(path, ref.args)
    analysis.ref_info[resolved] = RefInfo(
        spec=spec, last_edge=last_edge, edge_formals=formals,
        edge_source=source, parent_prefix=parent)
    return resolved


def _path_cst_info(analysis: AnalyzedQuery, path: PathExpression):
    """Recompute the CST spec and edge provenance of a path reference's
    final attribute (mirrors the walk in :func:`_type_path`)."""
    head = path.head
    if isinstance(head, VarRef):
        info = analysis.var_info.get(head.name)
        current_class = info.class_name if info else None
        edge = info.last_edge if info else None
        formals = info.edge_formals if info else ()
        source = info.edge_source if info else None
    else:
        current_class, edge, formals, source = None, None, (), None
    prefix = PathExpression(head, ())
    parent = prefix
    spec: CSTSpec | None = None
    for step in path.steps:
        spec = None
        parent = prefix
        prefix = PathExpression(prefix.head, prefix.steps + (step,))
        if current_class is None or not isinstance(step.attribute, str):
            current_class = None
            continue
        attr_def = analysis.schema.attributes_of(current_class).get(
            step.attribute)
        if attr_def is None:
            current_class = None
            continue
        if attr_def.is_cst:
            spec = attr_def.target
            current_class = None
        else:
            current_class = attr_def.target
            if attr_def.interface_args is not None:
                edge = attr_def
                formals = analysis.schema.interface_of(attr_def.target)
                source = parent
    return spec, edge, formals, source, parent


def _resolve_arith(analysis: AnalyzedQuery, node: ast.Arith) -> ast.Arith:
    if isinstance(node, (ast.ANum, ast.AName, ast.AParam)):
        # Parameters stay symbolic: their value is typed (numeric
        # constant required) when the binding arrives at run time.
        return node
    if isinstance(node, ast.APath):
        return ast.APath(_type_path(analysis, node.path, declare=False))
    if isinstance(node, ast.ABinary):
        return ast.ABinary(node.op,
                           _resolve_arith(analysis, node.left),
                           _resolve_arith(analysis, node.right))
    if isinstance(node, ast.ANeg):
        return ast.ANeg(_resolve_arith(analysis, node.operand))
    raise SemanticError(f"unknown arithmetic node {node!r}")


def _check_oid_function(analysis: AnalyzedQuery) -> None:
    names = analysis.query.oid_function_of or ()
    for name in names:
        if name not in analysis.var_info:
            raise SemanticError(
                f"OID FUNCTION OF mentions unbound variable {name!r}")

"""Query results.

XSQL queries produce relations of oids with set semantics; with an
``OID FUNCTION OF`` clause each tuple additionally carries its own
object identity (used by views to materialize new objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator

from repro.model.oid import CstOid, LiteralOid, Oid


@dataclass(frozen=True)
class ResultRow:
    values: tuple[Oid, ...]
    oid: Oid | None = None

    def __iter__(self):
        return iter(self.values)

    def __len__(self):
        return len(self.values)

    def __getitem__(self, index):
        return self.values[index]


class ResultSet:
    """An ordered, duplicate-free collection of result rows."""

    def __init__(self, columns: tuple[str, ...]):
        self._columns = columns
        self._rows: list[ResultRow] = []
        self._seen: set[tuple] = set()
        self._warnings: list[str] = []

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    @property
    def warnings(self) -> tuple[str, ...]:
        """Execution warnings (e.g. "partial result: deadline
        exceeded" under ``on_exhaustion="degrade"``)."""
        return tuple(self._warnings)

    @property
    def is_partial(self) -> bool:
        """True when a resource budget tripped and rows may be missing."""
        return bool(self._warnings)

    def add_warning(self, message: str) -> None:
        self._warnings.append(message)

    def add(self, row: ResultRow) -> None:
        key = (row.values, row.oid)
        if key not in self._seen:
            self._seen.add(key)
            self._rows.append(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    @property
    def rows(self) -> tuple[ResultRow, ...]:
        return tuple(self._rows)

    def column(self, name: str) -> list[Oid]:
        index = self._columns.index(name)
        return [row.values[index] for row in self._rows]

    def first(self) -> ResultRow:
        if not self._rows:
            raise LookupError("empty result")
        return self._rows[0]

    def single(self) -> ResultRow:
        if len(self._rows) != 1:
            raise LookupError(
                f"expected exactly one row, found {len(self._rows)}")
        return self._rows[0]

    def scalars(self, column: str | int = 0) -> list:
        """A column as plain Python values: numbers/strings unwrapped,
        CST oids as CSTObject instances, other oids as-is."""
        if isinstance(column, str):
            index = self._columns.index(column)
        else:
            index = column
        out = []
        for row in self._rows:
            value = row.values[index]
            if isinstance(value, LiteralOid):
                raw = value.value
                out.append(float(raw) if isinstance(raw, Fraction)
                           and raw.denominator != 1 else
                           int(raw) if isinstance(raw, Fraction)
                           else raw)
            elif isinstance(value, CstOid):
                out.append(value.cst)
            else:
                out.append(value)
        return out

    def pretty(self, limit: int = 20) -> str:
        lines = [" | ".join(self._columns)]
        for row in self._rows[:limit]:
            cells = [str(v) for v in row.values]
            if row.oid is not None:
                cells.insert(0, f"<{row.oid}>")
            lines.append(" | ".join(cells))
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        for warning in self._warnings:
            lines.append(f"warning: {warning}")
        return "\n".join(lines)

    def __repr__(self):
        return (f"ResultSet({self._columns!r}, {len(self._rows)} rows)")

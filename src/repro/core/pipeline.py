"""The staged compile pipeline: parse → translate → logical plan →
rewrite rules → physical plan → execute.

Until now compilation was a monolith (``run_translated`` parsed,
translated, optimized, and executed in one opaque call).  This module
restages it as an explicit :class:`Pipeline` of named phases over one
:class:`~repro.runtime.context.QueryContext`:

* **parse** — concrete syntax → AST plus semantic analysis;
* **translate** — AST → the Section 5 flat-relational logical plan;
* **logical-plan** — the flat catalog is built and bound into the
  context (it feeds the cost-based rewrites);
* **rewrite rules** — each enabled
  :class:`~repro.sqlc.optimizer.RewriteRule` runs in order, recorded
  individually as a ``rewrite:<name>`` phase with the plan before and
  after;
* **physical-plan** — the physical rules (index-join selection,
  parallelism annotation) produce the executable plan;
* **execute** — :func:`repro.sqlc.engine.execute` evaluates it.

Every phase appends a :class:`~repro.runtime.context.PhaseRecord`
(timing, detail, and plan snapshots where applicable) to the context's
stats, which is what the CLI's ``--analyze`` renders as the per-phase
trace.  Compilation and execution read *all* options (cache, guard,
indexing, parallelism, optimizer) from the pipeline's context, so two
pipelines over different contexts are fully isolated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core import ast
from repro.core.parser import parse_query
from repro.core.result import ResultRow, ResultSet
from repro.core.semantics import AnalyzedQuery, analyze
from repro.model.database import Database
from repro.model.relations import flatten
from repro.runtime import context as context_mod
from repro.runtime.context import (
    ExecutionStats,
    PhaseRecord,
    QueryContext,
)
from repro.sqlc import engine
from repro.sqlc import optimizer as optimizer_mod
from repro.sqlc.algebra import Catalog, Plan
from repro.sqlc.relation import ConstraintRelation


@dataclass
class CompiledQuery:
    """Product of the compile stages: an executable physical plan bound
    to the catalog and context it was compiled against."""

    analysis: AnalyzedQuery
    plan: Plan
    columns: tuple[str, ...]
    oid_column: str | None
    catalog: Catalog
    ctx: QueryContext
    optimized: bool


class Pipeline:
    """The staged compiler/executor for one database and context.

    ``ctx`` defaults to the ambient context with a *fresh* stats
    account (so repeated pipeline runs do not grow the process-default
    account); pass an explicit context to direct the phase trace and
    counters somewhere specific.
    """

    def __init__(self, db: Database,
                 ctx: QueryContext | None = None) -> None:
        self.db = db
        base = context_mod.resolve(ctx)
        self.ctx = base if ctx is not None \
            else base.derive(stats=ExecutionStats())

    # -- phases ----------------------------------------------------------

    def compile(self, query: str | ast.Query) -> CompiledQuery:
        """Run every compile phase; execution is left to :meth:`run`."""
        from repro.core.translator import translate_analyzed
        stats = self.ctx.stats

        started = time.perf_counter()
        query_ast = parse_query(query) if isinstance(query, str) \
            else query
        analysis = analyze(self.db.schema, query_ast)
        stats.phases.append(PhaseRecord(
            "parse", time.perf_counter() - started,
            detail=f"{len(analysis.query.from_items)} FROM items, "
                   f"{len(analysis.query.select)} SELECT items"))

        started = time.perf_counter()
        translated = translate_analyzed(self.db, analysis)
        stats.phases.append(PhaseRecord(
            "translate", time.perf_counter() - started,
            detail=f"{len(translated.columns)} columns",
            plan_after=translated.plan.explain()))

        started = time.perf_counter()
        catalog = flatten(self.db)
        exec_ctx = self.ctx.derive(catalog=catalog)
        total_rows = sum(len(r) for r in catalog.values())
        stats.phases.append(PhaseRecord(
            "logical-plan", time.perf_counter() - started,
            detail=f"catalog: {len(catalog)} relations, "
                   f"{total_rows} rows",
            plan_after=translated.plan.explain()))

        plan = translated.plan
        if exec_ctx.use_optimizer:
            plan = optimizer_mod.apply_rules(
                plan, exec_ctx, optimizer_mod.LOGICAL_RULES,
                record=True)
            started = time.perf_counter()
            plan = optimizer_mod.apply_rules(
                plan, exec_ctx, optimizer_mod.PHYSICAL_RULES,
                record=True)
            stats.phases.append(PhaseRecord(
                "physical-plan", time.perf_counter() - started,
                detail="index-join selection, parallelism",
                plan_after=plan.explain()))

        return CompiledQuery(
            analysis=analysis, plan=plan,
            columns=translated.columns,
            oid_column=translated.oid_column,
            catalog=catalog, ctx=exec_ctx,
            optimized=exec_ctx.use_optimizer)

    def execute(self, compiled: CompiledQuery) -> ConstraintRelation:
        """The execute phase: evaluate an already-rewritten plan."""
        started = time.perf_counter()
        relation = engine.execute(
            compiled.plan, compiled.catalog,
            use_optimizer=False,  # the rewrite phases already ran
            ctx=compiled.ctx)
        stats = compiled.ctx.stats
        stats.phases.append(PhaseRecord(
            "execute", time.perf_counter() - started,
            detail=f"{len(relation)} rows"))
        stats.optimized = compiled.optimized
        return relation

    def run(self, query: str | ast.Query) -> ResultSet:
        """All phases end to end, re-packaging the flat relation into a
        :class:`ResultSet` comparable with the naive evaluator's."""
        compiled = self.compile(query)
        relation = self.execute(compiled)
        result = ResultSet(compiled.columns)
        for warning in compiled.ctx.stats.warnings:
            result.add_warning(warning)
        for row in relation:
            mapping = relation.row_dict(row)
            values = tuple(mapping[c] for c in compiled.columns)
            oid = mapping.get(compiled.oid_column) \
                if compiled.oid_column else None
            result.add(ResultRow(values, oid))
        return result


def render_trace(stats: ExecutionStats) -> str:
    """The per-phase timing trace (one line per recorded phase), as
    printed by ``--explain --analyze``."""
    lines = ["phase trace:"]
    for record in stats.phases:
        line = f"  {record.name:<32} {record.seconds * 1000:9.3f} ms"
        if record.detail:
            line += f"  {record.detail}"
        lines.append(line)
    if len(lines) == 1:
        lines.append("  (no phases recorded)")
    return "\n".join(lines)
